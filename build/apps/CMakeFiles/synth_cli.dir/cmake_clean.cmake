file(REMOVE_RECURSE
  "CMakeFiles/synth_cli.dir/synth_cli.cpp.o"
  "CMakeFiles/synth_cli.dir/synth_cli.cpp.o.d"
  "synth_cli"
  "synth_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synth_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
