# Empty dependencies file for synth_cli.
# This may be replaced when dependencies are built.
