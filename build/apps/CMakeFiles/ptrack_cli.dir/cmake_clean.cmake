file(REMOVE_RECURSE
  "CMakeFiles/ptrack_cli.dir/ptrack_cli.cpp.o"
  "CMakeFiles/ptrack_cli.dir/ptrack_cli.cpp.o.d"
  "ptrack_cli"
  "ptrack_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
