# Empty dependencies file for ptrack_cli.
# This may be replaced when dependencies are built.
