file(REMOVE_RECURSE
  "CMakeFiles/spoof_audit.dir/spoof_audit.cpp.o"
  "CMakeFiles/spoof_audit.dir/spoof_audit.cpp.o.d"
  "spoof_audit"
  "spoof_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoof_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
