# Empty compiler generated dependencies file for spoof_audit.
# This may be replaced when dependencies are built.
