# Empty compiler generated dependencies file for selftraining.
# This may be replaced when dependencies are built.
