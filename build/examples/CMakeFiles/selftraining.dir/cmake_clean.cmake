file(REMOVE_RECURSE
  "CMakeFiles/selftraining.dir/selftraining.cpp.o"
  "CMakeFiles/selftraining.dir/selftraining.cpp.o.d"
  "selftraining"
  "selftraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
