file(REMOVE_RECURSE
  "CMakeFiles/fitness_day.dir/fitness_day.cpp.o"
  "CMakeFiles/fitness_day.dir/fitness_day.cpp.o.d"
  "fitness_day"
  "fitness_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitness_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
