# Empty compiler generated dependencies file for fitness_day.
# This may be replaced when dependencies are built.
