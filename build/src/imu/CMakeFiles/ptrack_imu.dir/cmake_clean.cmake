file(REMOVE_RECURSE
  "CMakeFiles/ptrack_imu.dir/faults.cpp.o"
  "CMakeFiles/ptrack_imu.dir/faults.cpp.o.d"
  "CMakeFiles/ptrack_imu.dir/noise.cpp.o"
  "CMakeFiles/ptrack_imu.dir/noise.cpp.o.d"
  "CMakeFiles/ptrack_imu.dir/trace.cpp.o"
  "CMakeFiles/ptrack_imu.dir/trace.cpp.o.d"
  "CMakeFiles/ptrack_imu.dir/trace_io.cpp.o"
  "CMakeFiles/ptrack_imu.dir/trace_io.cpp.o.d"
  "libptrack_imu.a"
  "libptrack_imu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
