
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imu/faults.cpp" "src/imu/CMakeFiles/ptrack_imu.dir/faults.cpp.o" "gcc" "src/imu/CMakeFiles/ptrack_imu.dir/faults.cpp.o.d"
  "/root/repo/src/imu/noise.cpp" "src/imu/CMakeFiles/ptrack_imu.dir/noise.cpp.o" "gcc" "src/imu/CMakeFiles/ptrack_imu.dir/noise.cpp.o.d"
  "/root/repo/src/imu/trace.cpp" "src/imu/CMakeFiles/ptrack_imu.dir/trace.cpp.o" "gcc" "src/imu/CMakeFiles/ptrack_imu.dir/trace.cpp.o.d"
  "/root/repo/src/imu/trace_io.cpp" "src/imu/CMakeFiles/ptrack_imu.dir/trace_io.cpp.o" "gcc" "src/imu/CMakeFiles/ptrack_imu.dir/trace_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
