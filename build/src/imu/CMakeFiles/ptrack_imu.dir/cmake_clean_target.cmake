file(REMOVE_RECURSE
  "libptrack_imu.a"
)
