# Empty dependencies file for ptrack_imu.
# This may be replaced when dependencies are built.
