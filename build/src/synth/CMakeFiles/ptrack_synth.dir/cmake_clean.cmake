file(REMOVE_RECURSE
  "CMakeFiles/ptrack_synth.dir/arc_motion.cpp.o"
  "CMakeFiles/ptrack_synth.dir/arc_motion.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/gait_generator.cpp.o"
  "CMakeFiles/ptrack_synth.dir/gait_generator.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/interference.cpp.o"
  "CMakeFiles/ptrack_synth.dir/interference.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/profile.cpp.o"
  "CMakeFiles/ptrack_synth.dir/profile.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/scenario.cpp.o"
  "CMakeFiles/ptrack_synth.dir/scenario.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/synthesizer.cpp.o"
  "CMakeFiles/ptrack_synth.dir/synthesizer.cpp.o.d"
  "CMakeFiles/ptrack_synth.dir/truth.cpp.o"
  "CMakeFiles/ptrack_synth.dir/truth.cpp.o.d"
  "libptrack_synth.a"
  "libptrack_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
