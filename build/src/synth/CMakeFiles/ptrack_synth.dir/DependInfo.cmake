
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/arc_motion.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/arc_motion.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/arc_motion.cpp.o.d"
  "/root/repo/src/synth/gait_generator.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/gait_generator.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/gait_generator.cpp.o.d"
  "/root/repo/src/synth/interference.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/interference.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/interference.cpp.o.d"
  "/root/repo/src/synth/profile.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/profile.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/profile.cpp.o.d"
  "/root/repo/src/synth/scenario.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/scenario.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/scenario.cpp.o.d"
  "/root/repo/src/synth/synthesizer.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/synthesizer.cpp.o.d"
  "/root/repo/src/synth/truth.cpp" "src/synth/CMakeFiles/ptrack_synth.dir/truth.cpp.o" "gcc" "src/synth/CMakeFiles/ptrack_synth.dir/truth.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/ptrack_imu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
