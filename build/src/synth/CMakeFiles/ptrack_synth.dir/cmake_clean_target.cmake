file(REMOVE_RECURSE
  "libptrack_synth.a"
)
