# Empty compiler generated dependencies file for ptrack_synth.
# This may be replaced when dependencies are built.
