file(REMOVE_RECURSE
  "libptrack_dsp.a"
)
