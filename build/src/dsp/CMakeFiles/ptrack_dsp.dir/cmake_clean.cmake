file(REMOVE_RECURSE
  "CMakeFiles/ptrack_dsp.dir/attitude.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/attitude.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/biquad.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/butterworth.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/butterworth.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/correlate.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/correlate.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/detrend.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/detrend.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/fft.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/fft.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/filtfilt.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/filtfilt.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/integrate.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/integrate.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/moving.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/moving.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/peaks.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/peaks.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/projection.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/projection.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/resample.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/ptrack_dsp.dir/windows.cpp.o"
  "CMakeFiles/ptrack_dsp.dir/windows.cpp.o.d"
  "libptrack_dsp.a"
  "libptrack_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
