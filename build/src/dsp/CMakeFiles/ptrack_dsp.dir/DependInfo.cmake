
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/attitude.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/attitude.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/attitude.cpp.o.d"
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/butterworth.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/butterworth.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/butterworth.cpp.o.d"
  "/root/repo/src/dsp/correlate.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/correlate.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/correlate.cpp.o.d"
  "/root/repo/src/dsp/detrend.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/detrend.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/detrend.cpp.o.d"
  "/root/repo/src/dsp/fft.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/fft.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/fft.cpp.o.d"
  "/root/repo/src/dsp/filtfilt.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/filtfilt.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/filtfilt.cpp.o.d"
  "/root/repo/src/dsp/integrate.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/integrate.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/integrate.cpp.o.d"
  "/root/repo/src/dsp/moving.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/moving.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/moving.cpp.o.d"
  "/root/repo/src/dsp/peaks.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/peaks.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/peaks.cpp.o.d"
  "/root/repo/src/dsp/projection.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/projection.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/projection.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/windows.cpp" "src/dsp/CMakeFiles/ptrack_dsp.dir/windows.cpp.o" "gcc" "src/dsp/CMakeFiles/ptrack_dsp.dir/windows.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
