# Empty dependencies file for ptrack_dsp.
# This may be replaced when dependencies are built.
