file(REMOVE_RECURSE
  "libptrack_common.a"
)
