file(REMOVE_RECURSE
  "CMakeFiles/ptrack_common.dir/cdf.cpp.o"
  "CMakeFiles/ptrack_common.dir/cdf.cpp.o.d"
  "CMakeFiles/ptrack_common.dir/cli.cpp.o"
  "CMakeFiles/ptrack_common.dir/cli.cpp.o.d"
  "CMakeFiles/ptrack_common.dir/csv.cpp.o"
  "CMakeFiles/ptrack_common.dir/csv.cpp.o.d"
  "CMakeFiles/ptrack_common.dir/json.cpp.o"
  "CMakeFiles/ptrack_common.dir/json.cpp.o.d"
  "CMakeFiles/ptrack_common.dir/stats.cpp.o"
  "CMakeFiles/ptrack_common.dir/stats.cpp.o.d"
  "CMakeFiles/ptrack_common.dir/table.cpp.o"
  "CMakeFiles/ptrack_common.dir/table.cpp.o.d"
  "libptrack_common.a"
  "libptrack_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
