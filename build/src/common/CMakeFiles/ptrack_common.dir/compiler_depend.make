# Empty compiler generated dependencies file for ptrack_common.
# This may be replaced when dependencies are built.
