file(REMOVE_RECURSE
  "CMakeFiles/ptrack_core.dir/adaptive_delta.cpp.o"
  "CMakeFiles/ptrack_core.dir/adaptive_delta.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/bounce.cpp.o"
  "CMakeFiles/ptrack_core.dir/bounce.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/calibration.cpp.o"
  "CMakeFiles/ptrack_core.dir/calibration.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/critical_points.cpp.o"
  "CMakeFiles/ptrack_core.dir/critical_points.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/frontend.cpp.o"
  "CMakeFiles/ptrack_core.dir/frontend.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/gait_id.cpp.o"
  "CMakeFiles/ptrack_core.dir/gait_id.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/offset_metric.cpp.o"
  "CMakeFiles/ptrack_core.dir/offset_metric.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/ptrack.cpp.o"
  "CMakeFiles/ptrack_core.dir/ptrack.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/segmentation.cpp.o"
  "CMakeFiles/ptrack_core.dir/segmentation.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/self_training.cpp.o"
  "CMakeFiles/ptrack_core.dir/self_training.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/step_counter.cpp.o"
  "CMakeFiles/ptrack_core.dir/step_counter.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/streaming.cpp.o"
  "CMakeFiles/ptrack_core.dir/streaming.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/stride_estimator.cpp.o"
  "CMakeFiles/ptrack_core.dir/stride_estimator.cpp.o.d"
  "CMakeFiles/ptrack_core.dir/summary.cpp.o"
  "CMakeFiles/ptrack_core.dir/summary.cpp.o.d"
  "libptrack_core.a"
  "libptrack_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
