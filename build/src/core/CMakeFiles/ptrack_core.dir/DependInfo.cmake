
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/adaptive_delta.cpp" "src/core/CMakeFiles/ptrack_core.dir/adaptive_delta.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/adaptive_delta.cpp.o.d"
  "/root/repo/src/core/bounce.cpp" "src/core/CMakeFiles/ptrack_core.dir/bounce.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/bounce.cpp.o.d"
  "/root/repo/src/core/calibration.cpp" "src/core/CMakeFiles/ptrack_core.dir/calibration.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/calibration.cpp.o.d"
  "/root/repo/src/core/critical_points.cpp" "src/core/CMakeFiles/ptrack_core.dir/critical_points.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/critical_points.cpp.o.d"
  "/root/repo/src/core/frontend.cpp" "src/core/CMakeFiles/ptrack_core.dir/frontend.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/frontend.cpp.o.d"
  "/root/repo/src/core/gait_id.cpp" "src/core/CMakeFiles/ptrack_core.dir/gait_id.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/gait_id.cpp.o.d"
  "/root/repo/src/core/offset_metric.cpp" "src/core/CMakeFiles/ptrack_core.dir/offset_metric.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/offset_metric.cpp.o.d"
  "/root/repo/src/core/ptrack.cpp" "src/core/CMakeFiles/ptrack_core.dir/ptrack.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/ptrack.cpp.o.d"
  "/root/repo/src/core/segmentation.cpp" "src/core/CMakeFiles/ptrack_core.dir/segmentation.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/segmentation.cpp.o.d"
  "/root/repo/src/core/self_training.cpp" "src/core/CMakeFiles/ptrack_core.dir/self_training.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/self_training.cpp.o.d"
  "/root/repo/src/core/step_counter.cpp" "src/core/CMakeFiles/ptrack_core.dir/step_counter.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/step_counter.cpp.o.d"
  "/root/repo/src/core/streaming.cpp" "src/core/CMakeFiles/ptrack_core.dir/streaming.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/streaming.cpp.o.d"
  "/root/repo/src/core/stride_estimator.cpp" "src/core/CMakeFiles/ptrack_core.dir/stride_estimator.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/stride_estimator.cpp.o.d"
  "/root/repo/src/core/summary.cpp" "src/core/CMakeFiles/ptrack_core.dir/summary.cpp.o" "gcc" "src/core/CMakeFiles/ptrack_core.dir/summary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/ptrack_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ptrack_models.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
