file(REMOVE_RECURSE
  "libptrack_core.a"
)
