# Empty dependencies file for ptrack_core.
# This may be replaced when dependencies are built.
