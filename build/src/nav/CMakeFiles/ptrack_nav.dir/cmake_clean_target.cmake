file(REMOVE_RECURSE
  "libptrack_nav.a"
)
