file(REMOVE_RECURSE
  "CMakeFiles/ptrack_nav.dir/dead_reckoning.cpp.o"
  "CMakeFiles/ptrack_nav.dir/dead_reckoning.cpp.o.d"
  "CMakeFiles/ptrack_nav.dir/route.cpp.o"
  "CMakeFiles/ptrack_nav.dir/route.cpp.o.d"
  "libptrack_nav.a"
  "libptrack_nav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_nav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
