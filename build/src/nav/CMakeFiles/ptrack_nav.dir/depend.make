# Empty dependencies file for ptrack_nav.
# This may be replaced when dependencies are built.
