
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nav/dead_reckoning.cpp" "src/nav/CMakeFiles/ptrack_nav.dir/dead_reckoning.cpp.o" "gcc" "src/nav/CMakeFiles/ptrack_nav.dir/dead_reckoning.cpp.o.d"
  "/root/repo/src/nav/route.cpp" "src/nav/CMakeFiles/ptrack_nav.dir/route.cpp.o" "gcc" "src/nav/CMakeFiles/ptrack_nav.dir/route.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptrack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ptrack_models.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/ptrack_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
