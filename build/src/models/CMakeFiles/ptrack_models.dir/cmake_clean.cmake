file(REMOVE_RECURSE
  "CMakeFiles/ptrack_models.dir/gfit.cpp.o"
  "CMakeFiles/ptrack_models.dir/gfit.cpp.o.d"
  "CMakeFiles/ptrack_models.dir/montage.cpp.o"
  "CMakeFiles/ptrack_models.dir/montage.cpp.o.d"
  "CMakeFiles/ptrack_models.dir/scar.cpp.o"
  "CMakeFiles/ptrack_models.dir/scar.cpp.o.d"
  "CMakeFiles/ptrack_models.dir/stride_baselines.cpp.o"
  "CMakeFiles/ptrack_models.dir/stride_baselines.cpp.o.d"
  "libptrack_models.a"
  "libptrack_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
