file(REMOVE_RECURSE
  "libptrack_models.a"
)
