
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/gfit.cpp" "src/models/CMakeFiles/ptrack_models.dir/gfit.cpp.o" "gcc" "src/models/CMakeFiles/ptrack_models.dir/gfit.cpp.o.d"
  "/root/repo/src/models/montage.cpp" "src/models/CMakeFiles/ptrack_models.dir/montage.cpp.o" "gcc" "src/models/CMakeFiles/ptrack_models.dir/montage.cpp.o.d"
  "/root/repo/src/models/scar.cpp" "src/models/CMakeFiles/ptrack_models.dir/scar.cpp.o" "gcc" "src/models/CMakeFiles/ptrack_models.dir/scar.cpp.o.d"
  "/root/repo/src/models/stride_baselines.cpp" "src/models/CMakeFiles/ptrack_models.dir/stride_baselines.cpp.o" "gcc" "src/models/CMakeFiles/ptrack_models.dir/stride_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/ptrack_imu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
