# Empty compiler generated dependencies file for ptrack_models.
# This may be replaced when dependencies are built.
