# Empty dependencies file for u2_probe.
# This may be replaced when dependencies are built.
