file(REMOVE_RECURSE
  "CMakeFiles/u2_probe.dir/u2_probe.cpp.o"
  "CMakeFiles/u2_probe.dir/u2_probe.cpp.o.d"
  "u2_probe"
  "u2_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/u2_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
