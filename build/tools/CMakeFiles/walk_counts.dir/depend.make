# Empty dependencies file for walk_counts.
# This may be replaced when dependencies are built.
