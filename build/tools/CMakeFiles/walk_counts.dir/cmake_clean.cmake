file(REMOVE_RECURSE
  "CMakeFiles/walk_counts.dir/walk_counts.cpp.o"
  "CMakeFiles/walk_counts.dir/walk_counts.cpp.o.d"
  "walk_counts"
  "walk_counts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/walk_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
