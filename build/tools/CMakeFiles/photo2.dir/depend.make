# Empty dependencies file for photo2.
# This may be replaced when dependencies are built.
