file(REMOVE_RECURSE
  "CMakeFiles/photo2.dir/photo2.cpp.o"
  "CMakeFiles/photo2.dir/photo2.cpp.o.d"
  "photo2"
  "photo2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/photo2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
