# Empty compiler generated dependencies file for debug_offsets.
# This may be replaced when dependencies are built.
