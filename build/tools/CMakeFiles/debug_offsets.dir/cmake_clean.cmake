file(REMOVE_RECURSE
  "CMakeFiles/debug_offsets.dir/debug_offsets.cpp.o"
  "CMakeFiles/debug_offsets.dir/debug_offsets.cpp.o.d"
  "debug_offsets"
  "debug_offsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debug_offsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
