# Empty compiler generated dependencies file for run_probe.
# This may be replaced when dependencies are built.
