file(REMOVE_RECURSE
  "CMakeFiles/run_probe.dir/run_probe.cpp.o"
  "CMakeFiles/run_probe.dir/run_probe.cpp.o.d"
  "run_probe"
  "run_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
