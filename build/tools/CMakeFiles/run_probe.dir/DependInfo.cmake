
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/run_probe.cpp" "tools/CMakeFiles/run_probe.dir/run_probe.cpp.o" "gcc" "tools/CMakeFiles/run_probe.dir/run_probe.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/CMakeFiles/ptrack_bench_util.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/ptrack_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/nav/CMakeFiles/ptrack_nav.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ptrack_core.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/ptrack_models.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/ptrack_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/ptrack_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ptrack_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
