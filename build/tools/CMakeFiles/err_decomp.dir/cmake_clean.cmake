file(REMOVE_RECURSE
  "CMakeFiles/err_decomp.dir/err_decomp.cpp.o"
  "CMakeFiles/err_decomp.dir/err_decomp.cpp.o.d"
  "err_decomp"
  "err_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/err_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
