# Empty compiler generated dependencies file for err_decomp.
# This may be replaced when dependencies are built.
