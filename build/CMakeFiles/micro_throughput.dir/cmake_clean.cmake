file(REMOVE_RECURSE
  "CMakeFiles/micro_throughput.dir/bench/micro_throughput.cpp.o"
  "CMakeFiles/micro_throughput.dir/bench/micro_throughput.cpp.o.d"
  "bench/micro_throughput"
  "bench/micro_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
