file(REMOVE_RECURSE
  "CMakeFiles/fig3_offset_separation.dir/bench/fig3_offset_separation.cpp.o"
  "CMakeFiles/fig3_offset_separation.dir/bench/fig3_offset_separation.cpp.o.d"
  "bench/fig3_offset_separation"
  "bench/fig3_offset_separation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_offset_separation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
