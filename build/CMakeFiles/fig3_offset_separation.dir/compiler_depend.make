# Empty compiler generated dependencies file for fig3_offset_separation.
# This may be replaced when dependencies are built.
