file(REMOVE_RECURSE
  "CMakeFiles/fig7b_spoofing.dir/bench/fig7b_spoofing.cpp.o"
  "CMakeFiles/fig7b_spoofing.dir/bench/fig7b_spoofing.cpp.o.d"
  "bench/fig7b_spoofing"
  "bench/fig7b_spoofing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_spoofing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
