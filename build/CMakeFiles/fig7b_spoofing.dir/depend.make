# Empty dependencies file for fig7b_spoofing.
# This may be replaced when dependencies are built.
