file(REMOVE_RECURSE
  "CMakeFiles/fig6a_step_accuracy.dir/bench/fig6a_step_accuracy.cpp.o"
  "CMakeFiles/fig6a_step_accuracy.dir/bench/fig6a_step_accuracy.cpp.o.d"
  "bench/fig6a_step_accuracy"
  "bench/fig6a_step_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6a_step_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
