# Empty dependencies file for fig6a_step_accuracy.
# This may be replaced when dependencies are built.
