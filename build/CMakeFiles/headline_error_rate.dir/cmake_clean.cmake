file(REMOVE_RECURSE
  "CMakeFiles/headline_error_rate.dir/bench/headline_error_rate.cpp.o"
  "CMakeFiles/headline_error_rate.dir/bench/headline_error_rate.cpp.o.d"
  "bench/headline_error_rate"
  "bench/headline_error_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/headline_error_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
