# Empty compiler generated dependencies file for headline_error_rate.
# This may be replaced when dependencies are built.
