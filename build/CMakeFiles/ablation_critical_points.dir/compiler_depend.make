# Empty compiler generated dependencies file for ablation_critical_points.
# This may be replaced when dependencies are built.
