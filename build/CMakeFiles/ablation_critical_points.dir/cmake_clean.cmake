file(REMOVE_RECURSE
  "CMakeFiles/ablation_critical_points.dir/bench/ablation_critical_points.cpp.o"
  "CMakeFiles/ablation_critical_points.dir/bench/ablation_critical_points.cpp.o.d"
  "bench/ablation_critical_points"
  "bench/ablation_critical_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_critical_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
