file(REMOVE_RECURSE
  "CMakeFiles/ptrack_bench_util.dir/bench/bench_util.cpp.o"
  "CMakeFiles/ptrack_bench_util.dir/bench/bench_util.cpp.o.d"
  "libptrack_bench_util.a"
  "libptrack_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ptrack_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
