file(REMOVE_RECURSE
  "libptrack_bench_util.a"
)
