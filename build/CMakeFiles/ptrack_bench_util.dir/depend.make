# Empty dependencies file for ptrack_bench_util.
# This may be replaced when dependencies are built.
