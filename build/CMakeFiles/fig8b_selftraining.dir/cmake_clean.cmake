file(REMOVE_RECURSE
  "CMakeFiles/fig8b_selftraining.dir/bench/fig8b_selftraining.cpp.o"
  "CMakeFiles/fig8b_selftraining.dir/bench/fig8b_selftraining.cpp.o.d"
  "bench/fig8b_selftraining"
  "bench/fig8b_selftraining.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8b_selftraining.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
