# Empty compiler generated dependencies file for fig8b_selftraining.
# This may be replaced when dependencies are built.
