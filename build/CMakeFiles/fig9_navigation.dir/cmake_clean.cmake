file(REMOVE_RECURSE
  "CMakeFiles/fig9_navigation.dir/bench/fig9_navigation.cpp.o"
  "CMakeFiles/fig9_navigation.dir/bench/fig9_navigation.cpp.o.d"
  "bench/fig9_navigation"
  "bench/fig9_navigation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_navigation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
