# Empty dependencies file for fig9_navigation.
# This may be replaced when dependencies are built.
