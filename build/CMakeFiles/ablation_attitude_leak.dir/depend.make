# Empty dependencies file for ablation_attitude_leak.
# This may be replaced when dependencies are built.
