file(REMOVE_RECURSE
  "CMakeFiles/ablation_attitude_leak.dir/bench/ablation_attitude_leak.cpp.o"
  "CMakeFiles/ablation_attitude_leak.dir/bench/ablation_attitude_leak.cpp.o.d"
  "bench/ablation_attitude_leak"
  "bench/ablation_attitude_leak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_attitude_leak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
