# Empty compiler generated dependencies file for ablation_delta_sweep.
# This may be replaced when dependencies are built.
