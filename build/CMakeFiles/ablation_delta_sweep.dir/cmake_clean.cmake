file(REMOVE_RECURSE
  "CMakeFiles/ablation_delta_sweep.dir/bench/ablation_delta_sweep.cpp.o"
  "CMakeFiles/ablation_delta_sweep.dir/bench/ablation_delta_sweep.cpp.o.d"
  "bench/ablation_delta_sweep"
  "bench/ablation_delta_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_delta_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
