# Empty dependencies file for fig1b_mobile_miscounts.
# This may be replaced when dependencies are built.
