file(REMOVE_RECURSE
  "CMakeFiles/fig1b_mobile_miscounts.dir/bench/fig1b_mobile_miscounts.cpp.o"
  "CMakeFiles/fig1b_mobile_miscounts.dir/bench/fig1b_mobile_miscounts.cpp.o.d"
  "bench/fig1b_mobile_miscounts"
  "bench/fig1b_mobile_miscounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1b_mobile_miscounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
