file(REMOVE_RECURSE
  "CMakeFiles/fig1a_wearable_miscounts.dir/bench/fig1a_wearable_miscounts.cpp.o"
  "CMakeFiles/fig1a_wearable_miscounts.dir/bench/fig1a_wearable_miscounts.cpp.o.d"
  "bench/fig1a_wearable_miscounts"
  "bench/fig1a_wearable_miscounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1a_wearable_miscounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
