# Empty dependencies file for fig1a_wearable_miscounts.
# This may be replaced when dependencies are built.
