file(REMOVE_RECURSE
  "CMakeFiles/ablation_stride_smoothing.dir/bench/ablation_stride_smoothing.cpp.o"
  "CMakeFiles/ablation_stride_smoothing.dir/bench/ablation_stride_smoothing.cpp.o.d"
  "bench/ablation_stride_smoothing"
  "bench/ablation_stride_smoothing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stride_smoothing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
