# Empty dependencies file for ablation_stride_smoothing.
# This may be replaced when dependencies are built.
