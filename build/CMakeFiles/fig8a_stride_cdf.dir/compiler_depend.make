# Empty compiler generated dependencies file for fig8a_stride_cdf.
# This may be replaced when dependencies are built.
