file(REMOVE_RECURSE
  "CMakeFiles/fig8a_stride_cdf.dir/bench/fig8a_stride_cdf.cpp.o"
  "CMakeFiles/fig8a_stride_cdf.dir/bench/fig8a_stride_cdf.cpp.o.d"
  "bench/fig8a_stride_cdf"
  "bench/fig8a_stride_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8a_stride_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
