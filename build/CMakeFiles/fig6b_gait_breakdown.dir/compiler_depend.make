# Empty compiler generated dependencies file for fig6b_gait_breakdown.
# This may be replaced when dependencies are built.
