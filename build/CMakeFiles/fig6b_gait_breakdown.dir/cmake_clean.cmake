file(REMOVE_RECURSE
  "CMakeFiles/fig6b_gait_breakdown.dir/bench/fig6b_gait_breakdown.cpp.o"
  "CMakeFiles/fig6b_gait_breakdown.dir/bench/fig6b_gait_breakdown.cpp.o.d"
  "bench/fig6b_gait_breakdown"
  "bench/fig6b_gait_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6b_gait_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
