# Empty dependencies file for fig1d_naive_stride_cdf.
# This may be replaced when dependencies are built.
