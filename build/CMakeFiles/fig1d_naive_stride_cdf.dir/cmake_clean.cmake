file(REMOVE_RECURSE
  "CMakeFiles/fig1d_naive_stride_cdf.dir/bench/fig1d_naive_stride_cdf.cpp.o"
  "CMakeFiles/fig1d_naive_stride_cdf.dir/bench/fig1d_naive_stride_cdf.cpp.o.d"
  "bench/fig1d_naive_stride_cdf"
  "bench/fig1d_naive_stride_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1d_naive_stride_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
