# Empty dependencies file for fig7a_interference.
# This may be replaced when dependencies are built.
