file(REMOVE_RECURSE
  "CMakeFiles/fig7a_interference.dir/bench/fig7a_interference.cpp.o"
  "CMakeFiles/fig7a_interference.dir/bench/fig7a_interference.cpp.o.d"
  "bench/fig7a_interference"
  "bench/fig7a_interference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
