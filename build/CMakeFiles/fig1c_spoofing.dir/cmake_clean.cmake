file(REMOVE_RECURSE
  "CMakeFiles/fig1c_spoofing.dir/bench/fig1c_spoofing.cpp.o"
  "CMakeFiles/fig1c_spoofing.dir/bench/fig1c_spoofing.cpp.o.d"
  "bench/fig1c_spoofing"
  "bench/fig1c_spoofing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1c_spoofing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
