# Empty dependencies file for fig1c_spoofing.
# This may be replaced when dependencies are built.
