# Empty compiler generated dependencies file for test_core_critical_points.
# This may be replaced when dependencies are built.
