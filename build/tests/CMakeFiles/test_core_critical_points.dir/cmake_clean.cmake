file(REMOVE_RECURSE
  "CMakeFiles/test_core_critical_points.dir/test_core_critical_points.cpp.o"
  "CMakeFiles/test_core_critical_points.dir/test_core_critical_points.cpp.o.d"
  "test_core_critical_points"
  "test_core_critical_points.pdb"
  "test_core_critical_points[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_critical_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
