# Empty compiler generated dependencies file for test_dsp_attitude.
# This may be replaced when dependencies are built.
