file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_attitude.dir/test_dsp_attitude.cpp.o"
  "CMakeFiles/test_dsp_attitude.dir/test_dsp_attitude.cpp.o.d"
  "test_dsp_attitude"
  "test_dsp_attitude.pdb"
  "test_dsp_attitude[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_attitude.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
