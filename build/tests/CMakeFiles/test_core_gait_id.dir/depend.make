# Empty dependencies file for test_core_gait_id.
# This may be replaced when dependencies are built.
