file(REMOVE_RECURSE
  "CMakeFiles/test_core_gait_id.dir/test_core_gait_id.cpp.o"
  "CMakeFiles/test_core_gait_id.dir/test_core_gait_id.cpp.o.d"
  "test_core_gait_id"
  "test_core_gait_id.pdb"
  "test_core_gait_id[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_gait_id.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
