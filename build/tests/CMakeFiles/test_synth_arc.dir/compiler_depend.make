# Empty compiler generated dependencies file for test_synth_arc.
# This may be replaced when dependencies are built.
