file(REMOVE_RECURSE
  "CMakeFiles/test_synth_arc.dir/test_synth_arc.cpp.o"
  "CMakeFiles/test_synth_arc.dir/test_synth_arc.cpp.o.d"
  "test_synth_arc"
  "test_synth_arc.pdb"
  "test_synth_arc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_arc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
