# Empty compiler generated dependencies file for test_models_strides.
# This may be replaced when dependencies are built.
