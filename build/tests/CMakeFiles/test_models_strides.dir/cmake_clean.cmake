file(REMOVE_RECURSE
  "CMakeFiles/test_models_strides.dir/test_models_strides.cpp.o"
  "CMakeFiles/test_models_strides.dir/test_models_strides.cpp.o.d"
  "test_models_strides"
  "test_models_strides.pdb"
  "test_models_strides[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_strides.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
