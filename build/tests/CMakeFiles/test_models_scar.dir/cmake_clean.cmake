file(REMOVE_RECURSE
  "CMakeFiles/test_models_scar.dir/test_models_scar.cpp.o"
  "CMakeFiles/test_models_scar.dir/test_models_scar.cpp.o.d"
  "test_models_scar"
  "test_models_scar.pdb"
  "test_models_scar[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_scar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
