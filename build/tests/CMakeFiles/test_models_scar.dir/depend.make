# Empty dependencies file for test_models_scar.
# This may be replaced when dependencies are built.
