file(REMOVE_RECURSE
  "CMakeFiles/test_models_counters.dir/test_models_counters.cpp.o"
  "CMakeFiles/test_models_counters.dir/test_models_counters.cpp.o.d"
  "test_models_counters"
  "test_models_counters.pdb"
  "test_models_counters[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_models_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
