file(REMOVE_RECURSE
  "CMakeFiles/test_synth_profile.dir/test_synth_profile.cpp.o"
  "CMakeFiles/test_synth_profile.dir/test_synth_profile.cpp.o.d"
  "test_synth_profile"
  "test_synth_profile.pdb"
  "test_synth_profile[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
