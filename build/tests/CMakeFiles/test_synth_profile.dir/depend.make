# Empty dependencies file for test_synth_profile.
# This may be replaced when dependencies are built.
