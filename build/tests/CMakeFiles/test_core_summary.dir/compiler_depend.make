# Empty compiler generated dependencies file for test_core_summary.
# This may be replaced when dependencies are built.
