file(REMOVE_RECURSE
  "CMakeFiles/test_core_summary.dir/test_core_summary.cpp.o"
  "CMakeFiles/test_core_summary.dir/test_core_summary.cpp.o.d"
  "test_core_summary"
  "test_core_summary.pdb"
  "test_core_summary[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
