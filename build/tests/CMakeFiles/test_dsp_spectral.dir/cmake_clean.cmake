file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_spectral.dir/test_dsp_spectral.cpp.o"
  "CMakeFiles/test_dsp_spectral.dir/test_dsp_spectral.cpp.o.d"
  "test_dsp_spectral"
  "test_dsp_spectral.pdb"
  "test_dsp_spectral[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_spectral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
