# Empty dependencies file for test_dsp_spectral.
# This may be replaced when dependencies are built.
