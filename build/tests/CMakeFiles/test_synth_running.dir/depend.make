# Empty dependencies file for test_synth_running.
# This may be replaced when dependencies are built.
