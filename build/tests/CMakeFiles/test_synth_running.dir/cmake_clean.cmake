file(REMOVE_RECURSE
  "CMakeFiles/test_synth_running.dir/test_synth_running.cpp.o"
  "CMakeFiles/test_synth_running.dir/test_synth_running.cpp.o.d"
  "test_synth_running"
  "test_synth_running.pdb"
  "test_synth_running[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_running.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
