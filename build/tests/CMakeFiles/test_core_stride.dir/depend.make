# Empty dependencies file for test_core_stride.
# This may be replaced when dependencies are built.
