file(REMOVE_RECURSE
  "CMakeFiles/test_core_stride.dir/test_core_stride.cpp.o"
  "CMakeFiles/test_core_stride.dir/test_core_stride.cpp.o.d"
  "test_core_stride"
  "test_core_stride.pdb"
  "test_core_stride[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_stride.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
