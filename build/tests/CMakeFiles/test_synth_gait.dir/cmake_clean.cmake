file(REMOVE_RECURSE
  "CMakeFiles/test_synth_gait.dir/test_synth_gait.cpp.o"
  "CMakeFiles/test_synth_gait.dir/test_synth_gait.cpp.o.d"
  "test_synth_gait"
  "test_synth_gait.pdb"
  "test_synth_gait[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_synth_gait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
