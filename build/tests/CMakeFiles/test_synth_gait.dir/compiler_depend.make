# Empty compiler generated dependencies file for test_synth_gait.
# This may be replaced when dependencies are built.
