file(REMOVE_RECURSE
  "CMakeFiles/test_core_segmentation.dir/test_core_segmentation.cpp.o"
  "CMakeFiles/test_core_segmentation.dir/test_core_segmentation.cpp.o.d"
  "test_core_segmentation"
  "test_core_segmentation.pdb"
  "test_core_segmentation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_segmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
