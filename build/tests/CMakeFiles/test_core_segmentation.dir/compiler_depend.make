# Empty compiler generated dependencies file for test_core_segmentation.
# This may be replaced when dependencies are built.
