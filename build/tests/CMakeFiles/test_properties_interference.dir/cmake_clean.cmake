file(REMOVE_RECURSE
  "CMakeFiles/test_properties_interference.dir/test_properties_interference.cpp.o"
  "CMakeFiles/test_properties_interference.dir/test_properties_interference.cpp.o.d"
  "test_properties_interference"
  "test_properties_interference.pdb"
  "test_properties_interference[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_properties_interference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
