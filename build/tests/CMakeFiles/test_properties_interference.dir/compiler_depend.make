# Empty compiler generated dependencies file for test_properties_interference.
# This may be replaced when dependencies are built.
