# Empty dependencies file for test_core_self_training.
# This may be replaced when dependencies are built.
