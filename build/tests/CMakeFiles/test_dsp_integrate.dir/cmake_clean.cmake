file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_integrate.dir/test_dsp_integrate.cpp.o"
  "CMakeFiles/test_dsp_integrate.dir/test_dsp_integrate.cpp.o.d"
  "test_dsp_integrate"
  "test_dsp_integrate.pdb"
  "test_dsp_integrate[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_integrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
