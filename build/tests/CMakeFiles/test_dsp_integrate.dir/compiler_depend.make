# Empty compiler generated dependencies file for test_dsp_integrate.
# This may be replaced when dependencies are built.
