file(REMOVE_RECURSE
  "CMakeFiles/test_dsp_projection.dir/test_dsp_projection.cpp.o"
  "CMakeFiles/test_dsp_projection.dir/test_dsp_projection.cpp.o.d"
  "test_dsp_projection"
  "test_dsp_projection.pdb"
  "test_dsp_projection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dsp_projection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
