# Empty compiler generated dependencies file for test_common_cli_json.
# This may be replaced when dependencies are built.
