# Empty dependencies file for test_core_bounce.
# This may be replaced when dependencies are built.
