file(REMOVE_RECURSE
  "CMakeFiles/test_core_bounce.dir/test_core_bounce.cpp.o"
  "CMakeFiles/test_core_bounce.dir/test_core_bounce.cpp.o.d"
  "test_core_bounce"
  "test_core_bounce.pdb"
  "test_core_bounce[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_bounce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
