file(REMOVE_RECURSE
  "CMakeFiles/test_core_adaptive_delta.dir/test_core_adaptive_delta.cpp.o"
  "CMakeFiles/test_core_adaptive_delta.dir/test_core_adaptive_delta.cpp.o.d"
  "test_core_adaptive_delta"
  "test_core_adaptive_delta.pdb"
  "test_core_adaptive_delta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_adaptive_delta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
