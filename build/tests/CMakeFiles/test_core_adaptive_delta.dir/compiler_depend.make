# Empty compiler generated dependencies file for test_core_adaptive_delta.
# This may be replaced when dependencies are built.
