file(REMOVE_RECURSE
  "CMakeFiles/test_imu_faults.dir/test_imu_faults.cpp.o"
  "CMakeFiles/test_imu_faults.dir/test_imu_faults.cpp.o.d"
  "test_imu_faults"
  "test_imu_faults.pdb"
  "test_imu_faults[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_imu_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
