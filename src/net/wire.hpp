// PTrack ingest wire protocol v1: versioned, length-prefixed binary frames
// over a byte stream (TCP or Unix domain socket).
//
// Every frame is a 12-byte header followed by a bounded payload:
//
//   offset  size  field
//        0     4  magic "PTRK" (0x4B525450 little-endian)
//        4     1  protocol version (currently 1)
//        5     1  frame type (FrameType)
//        6     2  flags (must be 0 in v1)
//        8     4  payload length (<= kMaxPayloadBytes)
//
// Client -> server: HELLO (session id, sample rate, precision), SAMPLES
// (bounded block of 6-channel f64 readings — no timestamps on the wire, the
// session assigns t = index/fs exactly like core::StreamingTracker),
// BYE (drain request). Server -> client: HELLO_ACK, EVENT (finalized step
// events), ERROR (code + optional RETRY-AFTER hint), DRAINED (final
// stats after a BYE or a server-side drain).
//
// Robustness contract: FrameDecoder is a strict bounded incremental parser.
// It never allocates past its construction-time reservation, never reads
// past the buffered bytes, rejects bad magic / unknown versions / nonzero
// flags / unknown types / oversized payloads with a typed ErrorCode, and
// poisons itself after the first error (a stream that has desynchronized
// once can never be trusted to resynchronize). Truncated frames are simply
// kNeedMore — the *session* layer decides when a stall has lasted too long.
// All multi-byte fields are little-endian; integers are composed bytewise
// so the codec is byte-order portable.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/types.hpp"
#include "imu/sample.hpp"

namespace ptrack::net {

inline constexpr std::uint32_t kMagic = 0x4B525450u;  // "PTRK"
inline constexpr std::uint8_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderBytes = 12;
/// Hard payload bound; anything larger is rejected before buffering.
inline constexpr std::size_t kMaxPayloadBytes = 64 * 1024;
/// Samples per SAMPLES frame (48 wire bytes each).
inline constexpr std::size_t kMaxSamplesPerFrame = 1024;
inline constexpr std::size_t kSampleWireBytes = 48;  // 6 x f64
inline constexpr std::size_t kEventWireBytes = 24;
inline constexpr std::size_t kHelloPayloadBytes = 24;
inline constexpr std::size_t kHelloAckPayloadBytes = 16;
inline constexpr std::size_t kDrainedPayloadBytes = 16;
inline constexpr std::size_t kMaxErrorDetailBytes = 256;

enum class FrameType : std::uint8_t {
  // client -> server
  kHello = 0x01,
  kSamples = 0x02,
  kBye = 0x03,
  // server -> client
  kHelloAck = 0x10,
  kEvent = 0x11,
  kError = 0x12,
  kDrained = 0x13,
};

/// Typed reason a frame or a session was rejected. Carried on the wire in
/// ERROR frames (u16) and surfaced by FrameDecoder::error().
enum class ErrorCode : std::uint16_t {
  kNone = 0,
  kMalformedFrame = 1,  ///< structure violation inside a known frame type
  kOversizedFrame = 2,  ///< payload length beyond kMaxPayloadBytes
  kBadMagic = 3,        ///< stream desynchronized or not speaking PTRK
  kBadVersion = 4,      ///< unknown protocol version
  kProtocol = 5,        ///< valid frame, wrong state (re-HELLO, early SAMPLES)
  kBadHello = 6,        ///< HELLO fields out of range (fs, precision)
  kOverloaded = 7,      ///< admission shed; retry_after_s is the hint
  kSlowConsumer = 8,    ///< client not reading its event stream
  kIdleTimeout = 9,     ///< no complete frame within the idle deadline
  kShuttingDown = 10,   ///< server draining; stream not accepted
};

[[nodiscard]] const char* to_string(ErrorCode code);
[[nodiscard]] const char* to_string(FrameType type);
[[nodiscard]] bool known_frame_type(std::uint8_t raw);

// ---------------------------------------------------------------------------
// Payload structs

/// HELLO payload: u64 session id, f64 sample rate, u8 precision
/// (0 = double, 1 = float32 fast path), 7 reserved bytes (must be 0).
struct Hello {
  std::uint64_t session_id = 0;
  double fs = 0.0;
  std::uint8_t precision = 0;
};

/// HELLO_ACK payload: u64 session id (echo), u32 max samples per SAMPLES
/// frame the server accepts, u32 negotiated protocol version.
struct HelloAck {
  std::uint64_t session_id = 0;
  std::uint32_t max_samples_per_frame = 0;
  std::uint32_t version = 0;
};

/// ERROR payload: u16 code, u16 retry-after hint (s; 0 = do not retry),
/// u32 detail length, detail bytes (<= kMaxErrorDetailBytes, not
/// NUL-terminated).
struct WireError {
  ErrorCode code = ErrorCode::kNone;
  std::uint16_t retry_after_s = 0;
  std::string detail;
};

/// DRAINED payload: u64 total events emitted, u64 total samples ingested.
struct Drained {
  std::uint64_t events_total = 0;
  std::uint64_t samples_total = 0;
};

/// Zero-copy view over a validated SAMPLES payload. `data` points at
/// count * kSampleWireBytes bytes borrowed from the decoder buffer; decode
/// individual samples with sample_at. Valid until the decoder is fed again.
struct SampleBlockView {
  std::uint32_t count = 0;
  const std::uint8_t* data = nullptr;
};

/// Decodes sample `i` of a validated block (ax ay az gx gy gz as f64).
/// The timestamp is left 0 — the receiving session owns the time base.
[[nodiscard]] imu::Sample sample_at(const SampleBlockView& block,
                                    std::size_t i);

// ---------------------------------------------------------------------------
// Encoders (append to a byte vector; the caller owns buffering/limits)

void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload);
void append_hello(std::vector<std::uint8_t>& out, const Hello& hello);
void append_hello_ack(std::vector<std::uint8_t>& out, const HelloAck& ack);
void append_bye(std::vector<std::uint8_t>& out);
/// Encodes samples[first, first+count) as one SAMPLES frame
/// (count <= kMaxSamplesPerFrame).
void append_samples(std::vector<std::uint8_t>& out,
                    std::span<const imu::Sample> samples);
/// Encodes up to kMaxPayloadBytes worth of events as one EVENT frame
/// (events.size() bounded by the caller; asserts it fits).
void append_events(std::vector<std::uint8_t>& out,
                   std::span<const core::StepEvent> events);
void append_error(std::vector<std::uint8_t>& out, ErrorCode code,
                  std::uint16_t retry_after_s, std::string_view detail);
void append_drained(std::vector<std::uint8_t>& out, const Drained& drained);

// ---------------------------------------------------------------------------
// Payload parsers (strict: exact sizes, bounded counts, zero reserved
// bytes). Return false on any violation, leaving `out` unspecified.

[[nodiscard]] bool parse_hello(std::span<const std::uint8_t> payload,
                               Hello& out);
[[nodiscard]] bool parse_hello_ack(std::span<const std::uint8_t> payload,
                                   HelloAck& out);
[[nodiscard]] bool parse_samples(std::span<const std::uint8_t> payload,
                                 SampleBlockView& out);
[[nodiscard]] bool parse_events(std::span<const std::uint8_t> payload,
                                std::vector<core::StepEvent>& out);
[[nodiscard]] bool parse_error(std::span<const std::uint8_t> payload,
                               WireError& out);
[[nodiscard]] bool parse_drained(std::span<const std::uint8_t> payload,
                                 Drained& out);

// ---------------------------------------------------------------------------
// Incremental decoder

/// One decoded frame. `payload` borrows the decoder's buffer: it is valid
/// until the next feed() or next() call.
struct Frame {
  FrameType type = FrameType::kHello;
  std::span<const std::uint8_t> payload;
};

enum class DecodeStatus : std::uint8_t {
  kNeedMore,  ///< no complete frame buffered yet
  kFrame,     ///< one frame produced
  kError,     ///< stream poisoned; see error()
};

/// Strict bounded incremental frame parser. Feed raw bytes as they arrive,
/// then pull frames until kNeedMore. All storage is reserved up front
/// (header + max payload + one read chunk); feeding beyond that bound —
/// which a disciplined reader that drains frames between feeds can never
/// do — poisons the decoder instead of growing.
class FrameDecoder {
 public:
  /// `read_chunk_hint`: largest single feed() the owner will issue; sizes
  /// the reservation so steady-state operation never reallocates.
  explicit FrameDecoder(std::size_t max_payload = kMaxPayloadBytes,
                        std::size_t read_chunk_hint = 16 * 1024);

  /// Appends raw stream bytes to the internal buffer.
  void feed(std::span<const std::uint8_t> bytes);

  /// Extracts the next complete frame, validating the header. On kError
  /// the decoder is poisoned: every later call returns the same error.
  [[nodiscard]] DecodeStatus next(Frame& out);

  [[nodiscard]] ErrorCode error() const { return error_; }
  /// Static description of the poisoning error ("" when healthy).
  [[nodiscard]] const char* error_detail() const { return detail_; }

  /// Bytes buffered but not yet consumed (the per-connection ingest-queue
  /// depth the server reports).
  [[nodiscard]] std::size_t buffered() const { return buf_.size() - pos_; }

  /// True when a frame header has been seen but its payload has not fully
  /// arrived — the "trickling writer" state the session stall deadline
  /// guards against.
  [[nodiscard]] bool mid_frame() const;

 private:
  void poison(ErrorCode code, const char* detail);
  void compact(std::size_t incoming);

  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;        ///< consumed prefix inside buf_
  std::size_t max_payload_;
  std::size_t capacity_;       ///< hard bound on buf_.size()
  ErrorCode error_ = ErrorCode::kNone;
  const char* detail_ = "";
};

}  // namespace ptrack::net
