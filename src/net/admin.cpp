#include "net/admin.hpp"

#include <algorithm>
#include <sstream>

#include "common/error.hpp"
#include "common/json.hpp"
#include "obs/export.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace ptrack::net {

AdminRoute admin_route(std::string_view target) {
  const std::size_t q = target.find('?');
  if (q != std::string_view::npos) target = target.substr(0, q);
  if (target == "/metrics") return AdminRoute::kMetrics;
  if (target == "/metrics.json") return AdminRoute::kMetricsJson;
  if (target == "/healthz") return AdminRoute::kHealthz;
  if (target == "/readyz") return AdminRoute::kReadyz;
  if (target == "/sessions") return AdminRoute::kSessions;
  return AdminRoute::kUnknown;
}

namespace {

void write_server_stats(json::Writer& w, const AdminStatusView& view) {
  const ServerStats& s = view.stats;
  w.begin_object();
  w.key("accepted").value(s.accepted);
  w.key("shed").value(s.shed);
  w.key("evicted_idle").value(s.evicted_idle);
  w.key("evicted_stall").value(s.evicted_stall);
  w.key("evicted_slow").value(s.evicted_slow);
  w.key("closed").value(s.closed);
  w.key("session_errors").value(s.session_errors);
  w.key("frames_ok").value(s.frames_ok);
  w.key("frames_rejected").value(s.frames_rejected);
  w.key("samples_in").value(s.samples_in);
  w.key("events_out").value(s.events_out);
  w.key("bytes_in").value(s.bytes_in);
  w.key("bytes_out").value(s.bytes_out);
  w.key("sessions_active").value(s.sessions_active);
  w.key("memory_charged_bytes").value(s.memory_charged_bytes);
  w.key("admin_requests").value(view.admin_requests);
  w.key("admin_shed").value(view.admin_shed);
  w.end_object();
}

std::string render_sessions(const AdminStatusView& view,
                            const std::vector<AdminSessionRow>& sessions) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value("ptrack.sessions.v1");
  w.key("uptime_s").value(view.uptime_s);
  w.key("draining").value(view.draining);
  w.key("server");
  write_server_stats(w, view);
  w.key("sessions").begin_array();
  for (const AdminSessionRow& row : sessions) {
    w.begin_object();
    w.key("id").value(row.id);
    w.key("state").value(row.state);
    w.key("fs").value(row.fs);
    w.key("uptime_s").value(row.uptime_s);
    w.key("frames_ok").value(row.frames_ok);
    w.key("frames_rejected").value(row.frames_rejected);
    w.key("samples").value(row.samples);
    w.key("events").value(row.events);
    w.key("bytes_in").value(row.bytes_in);
    w.key("out_pending_bytes").value(row.out_pending_bytes);
    w.key("queue_depth_bytes").value(row.queue_depth_bytes);
    w.key("backpressured").value(row.backpressured);
    w.key("degraded_fraction").value(row.degraded_fraction);
    w.key("distance_m").value(row.distance_m);
    w.key("windows_processed").value(row.windows_processed);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  return os.str();
}

std::string render_status(const AdminStatusView& view, const char* status) {
  std::ostringstream os;
  json::Writer w(os);
  w.begin_object();
  w.key("status").value(status);
  w.key("uptime_s").value(view.uptime_s);
  w.key("sessions_active").value(view.stats.sessions_active);
  w.end_object();
  os << "\n";
  return os.str();
}

}  // namespace

std::string render_admin_body(AdminRoute route, const AdminStatusView& view,
                              const std::vector<AdminSessionRow>& sessions,
                              std::string_view* content_type_out,
                              int* status_out) {
  *status_out = 200;
  *content_type_out = "application/json";
  switch (route) {
    case AdminRoute::kMetrics: {
      std::ostringstream os;
      obs::write_prometheus(os);
      *content_type_out = "text/plain; version=0.0.4; charset=utf-8";
      return os.str();
    }
    case AdminRoute::kMetricsJson: {
      std::ostringstream os;
      obs::write_metrics_document(os);
      return os.str();
    }
    case AdminRoute::kHealthz:
      return render_status(view, "ok");
    case AdminRoute::kReadyz:
      if (view.draining) {
        *status_out = 503;
        return render_status(view, "draining");
      }
      return render_status(view, "ready");
    case AdminRoute::kSessions:
      return render_sessions(view, sessions);
    case AdminRoute::kUnknown:
      break;
  }
  *status_out = 404;
  return "{\"error\":\"unknown route\",\"routes\":[\"/metrics\","
         "\"/metrics.json\",\"/healthz\",\"/readyz\",\"/sessions\"]}\n";
}

// ---------------------------------------------------------------------------
// Server admin-plane handlers. They live here (not server.cpp) because the
// admin plane is control-plane code: it may allocate per request, and the
// allocation lint's hot-path list exempts this TU like net/chaos.cpp.

namespace {

double admin_seconds_between(std::chrono::steady_clock::time_point a,
                             std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

std::span<const std::uint8_t> as_bytes(const std::string& s,
                                       std::size_t from) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()) + from,
          s.size() - from};
}

}  // namespace

void Server::accept_admin_pending(const Socket& listener) {
  while (true) {
    Socket sock = accept_on(listener);
    if (!sock.valid()) return;
    if (admin_conns_.size() >= cfg_.admin_max_sessions) {
      // Immediate 503: an admin client must never queue behind ingest,
      // and a scraper storm must never grow reactor state.
      const std::string resp = http_response(
          503, "application/json",
          "{\"error\":\"admin connection budget exhausted\"}\n");
      try {
        static_cast<void>(sock.write_some(as_bytes(resp, 0)));
      } catch (const Error&) {
        // peer already gone
      }
      counters_.admin_shed.fetch_add(1, std::memory_order_relaxed);
      PTRACK_COUNT("ptrack.net.admin.shed");
      PTRACK_LOG_WARN("net", "admin_shed",
                      kv("budget", cfg_.admin_max_sessions));
      continue;
    }
    const int fd = sock.fd();
    admin_conns_.try_emplace(fd, std::move(sock), Clock::now());
    PTRACK_COUNT("ptrack.net.admin.accepted");
  }
}

void Server::handle_admin_readable(AdminConn& conn) {
  if (conn.responded) return;
  std::ptrdiff_t n = 0;
  try {
    n = conn.sock.read_some(read_buf_);
  } catch (const Error&) {
    admin_to_close_.push_back(conn.sock.fd());
    return;
  }
  if (n < 0) return;  // spurious wakeup
  if (n == 0) {
    admin_to_close_.push_back(conn.sock.fd());
    return;
  }
  const HttpParseStatus status = conn.parser.feed(
      std::span<const std::uint8_t>(read_buf_.data(),
                                    static_cast<std::size_t>(n)));
  if (status == HttpParseStatus::kNeedMore) return;
  build_admin_response(conn, status);
  handle_admin_writable(conn);
}

void Server::handle_admin_writable(AdminConn& conn) {
  while (conn.out_pos < conn.out.size()) {
    std::size_t written = 0;
    try {
      written = conn.sock.write_some(as_bytes(conn.out, conn.out_pos));
    } catch (const Error&) {
      admin_to_close_.push_back(conn.sock.fd());
      return;
    }
    if (written == 0) return;  // socket buffer full; POLLOUT resumes
    conn.out_pos += written;
  }
  if (conn.responded) admin_to_close_.push_back(conn.sock.fd());
}

void Server::build_admin_response(AdminConn& conn,
                                  HttpParseStatus status) {
  int code = 200;
  std::string_view content_type = "application/json";
  std::string body;
  std::string_view target;
  if (status == HttpParseStatus::kError) {
    code = 400;
    body = std::string("{\"error\":\"") + conn.parser.error() + "\"}\n";
  } else if (conn.parser.request().method != "GET") {
    code = 405;
    body = "{\"error\":\"admin plane is read-only (GET)\"}\n";
  } else {
    target = conn.parser.request().target;
    const AdminRoute route = admin_route(target);
    const Clock::time_point now = Clock::now();
    AdminStatusView view;
    view.uptime_s = admin_seconds_between(start_time_, now);
    view.draining = draining_;
    view.stats = stats();
    view.admin_requests = view.stats.admin_requests;
    view.admin_shed = view.stats.admin_shed;
    std::vector<AdminSessionRow> rows;
    if (route == AdminRoute::kSessions) {
      rows.reserve(conns_.size());
      for (const auto& [fd, c] : conns_) {
        static_cast<void>(fd);
        AdminSessionRow row;
        row.id = c.session.id();
        switch (c.session.state()) {
          case Session::State::kAwaitHello: row.state = "await_hello"; break;
          case Session::State::kStreaming: row.state = "streaming"; break;
          case Session::State::kClosing: row.state = "closing"; break;
        }
        row.fs = c.session.fs();
        row.uptime_s = admin_seconds_between(c.established, now);
        const SessionCounters& sc = c.session.counters();
        row.frames_ok = sc.frames_ok;
        row.frames_rejected = sc.frames_rejected;
        row.samples = sc.samples;
        row.events = sc.events;
        row.bytes_in = sc.bytes_in;
        row.out_pending_bytes = c.session.out_pending();
        row.queue_depth_bytes = c.session.queue_depth();
        row.backpressured = c.backpressured;
        const core::StreamingStats st = c.session.streaming_stats();
        row.degraded_fraction = st.degraded_fraction();
        row.distance_m = st.distance_m;
        row.windows_processed = st.windows_processed;
        rows.push_back(row);
      }
    }
    body = render_admin_body(route, view, rows, &content_type, &code);
  }
  conn.out = http_response(code, content_type, body);
  conn.out_pos = 0;
  conn.responded = true;
  counters_.admin_requests.fetch_add(1, std::memory_order_relaxed);
  PTRACK_COUNT("ptrack.net.admin.requests");
  PTRACK_LOG_DEBUG("net", "admin_request", kv("target", target),
                   kv("status", code));
}

void Server::enforce_admin_deadlines(Clock::time_point now) {
  for (const auto& [fd, conn] : admin_conns_) {
    if (admin_seconds_between(conn.since, now) > cfg_.admin_timeout_s) {
      admin_to_close_.push_back(fd);
    }
  }
}

void Server::close_marked_admin() {
  if (admin_to_close_.empty()) return;
  std::sort(admin_to_close_.begin(), admin_to_close_.end());
  admin_to_close_.erase(
      std::unique(admin_to_close_.begin(), admin_to_close_.end()),
      admin_to_close_.end());
  for (const int fd : admin_to_close_) admin_conns_.erase(fd);
  admin_to_close_.clear();
}

void Server::teardown_admin() {
  admin_conns_.clear();
  for (std::size_t i = 0; i < admin_listeners_.size(); ++i) {
    admin_listeners_[i].close();
    unlink_uds(admin_endpoints_[i]);
  }
  admin_listeners_.clear();
  admin_endpoints_.clear();
}

}  // namespace ptrack::net
