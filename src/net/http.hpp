// Minimal HTTP/1.0 support for the read-only admin plane: a strictly
// bounded request parser (fuzzed by fuzz/fuzz_http_admin), a response
// builder, and a small blocking GET client shared by ptrack_top, tests
// and the ingest_storm scraper.
//
// Scope is deliberately tiny: one request per connection (the server
// always answers `Connection: close`), GET-only enforcement lives in the
// router, request bodies and header *values* are ignored. The parser's
// job is to never read past its bound, never allocate proportionally to
// attacker input beyond that bound, and classify bytes as a well-formed
// request line or an error — not to be a general HTTP implementation.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "net/socket.hpp"

namespace ptrack::net {

/// Hard cap on one admin request (request line + headers). More than this
/// without a blank-line terminator is an error, not a bigger buffer.
inline constexpr std::size_t kMaxHttpRequestBytes = 4096;
/// Request-target length cap (path + optional query).
inline constexpr std::size_t kMaxHttpTargetBytes = 1024;

struct HttpRequest {
  std::string method;  ///< uppercase token, e.g. "GET"
  std::string target;  ///< origin-form, e.g. "/metrics.json?x=1"
  int minor_version = 0;  ///< HTTP/1.<minor>
};

enum class HttpParseStatus : std::uint8_t {
  kNeedMore,  ///< terminator not seen yet; feed more bytes
  kDone,      ///< request() is valid; surplus bytes were ignored
  kError,     ///< malformed or over budget; error() names the reason
};

/// Incremental parser for one request. feed() accumulates until the
/// header-terminating blank line, then parses the request line once.
/// Tolerates both CRLF and bare LF line endings (curl sends CRLF; hand
/// clients often do not).
class HttpRequestParser {
 public:
  [[nodiscard]] HttpParseStatus feed(std::span<const std::uint8_t> bytes);

  /// Valid after kDone.
  [[nodiscard]] const HttpRequest& request() const { return request_; }
  /// Static reason string after kError.
  [[nodiscard]] const char* error() const { return error_; }
  [[nodiscard]] bool done() const { return done_; }
  [[nodiscard]] bool failed() const { return error_ != nullptr; }

 private:
  [[nodiscard]] HttpParseStatus fail(const char* reason);
  [[nodiscard]] HttpParseStatus parse_request_line(std::string_view line);

  std::string buf_;
  HttpRequest request_;
  const char* error_ = nullptr;
  bool done_ = false;
};

/// Builds a complete HTTP/1.0 response with Content-Length and
/// `Connection: close`.
[[nodiscard]] std::string http_response(int status,
                                        std::string_view content_type,
                                        std::string_view body);

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
[[nodiscard]] const char* http_status_text(int status);

/// Blocking one-shot GET for tools and tests. Connects, sends the
/// request, reads to EOF, parses the status line. Never throws: transport
/// and protocol failures come back as ok=false + error text.
struct HttpGetResult {
  bool ok = false;     ///< transport + parse succeeded (any status code)
  int status = 0;
  std::string body;
  std::string error;
};
[[nodiscard]] HttpGetResult http_get(const Endpoint& ep,
                                     std::string_view target,
                                     double timeout_s = 5.0);

}  // namespace ptrack::net
