// Test and fault-injection clients for ptrack_serve.
//
// Two kinds of peers live here:
//   * run_healthy_client — a well-behaved device: HELLO, stream SAMPLES
//     frames while draining EVENT frames, BYE, collect the final flush and
//     the DRAINED summary. The caller compares its events bit-for-bit
//     against a local StreamingTracker fed the same samples (the soak
//     suite's oracle).
//   * ChaosClient (run_chaos_client) — a deliberately faulty device. Each
//     ChaosMode scripts one failure family from the issue's threat model:
//     truncated / corrupt / oversized frames, slowloris byte-dripping,
//     mid-stream disconnects, protocol-order violations (re-HELLO,
//     SAMPLES-before-HELLO) and connection storms. A chaos run succeeds
//     when the *server* stays correct: it answers with the right ERROR
//     code or closes the connection; it must never hang or crash.
//
// Everything here is client-side test support: blocking sockets, wall-clock
// sleeps and per-call allocations are fine (this file is deliberately not a
// hot-path TU for ptrack_lint's allocation rule).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "imu/sample.hpp"
#include "net/socket.hpp"
#include "net/wire.hpp"

namespace ptrack::net {

/// Outcome of one healthy-client run.
struct ClientResult {
  /// Full protocol completed: HELLO acked, every frame accepted, DRAINED
  /// received after BYE.
  bool ok = false;
  /// What failed, when !ok (for test diagnostics).
  std::string detail;
  /// Every event the server emitted, in order (compare with the oracle).
  std::vector<core::StepEvent> events;
  /// The server's end-of-session summary.
  Drained drained{};
  /// Set when the server answered with an ERROR frame.
  ErrorCode error = ErrorCode::kNone;
};

struct ClientConfig {
  std::uint64_t session_id = 1;
  double fs = 100.0;
  std::uint8_t precision = 0;  ///< 0 = f64, 1 = f32
  std::size_t samples_per_frame = 256;
  /// false: skip the BYE and wait for a *server-initiated* drain instead
  /// (the SIGTERM-path test: the server must flush and send DRAINED).
  bool send_bye = true;
  /// Hard wall-clock bound on the whole run (handshake, streaming, drain).
  double timeout_s = 30.0;
};

/// Streams `samples` to the server at `ep` and collects everything it says.
/// Never throws on server misbehavior (reports through ClientResult);
/// throws ptrack::Error only when the transport itself fails to connect.
[[nodiscard]] ClientResult run_healthy_client(
    const Endpoint& ep, const ClientConfig& cfg,
    std::span<const imu::Sample> samples);

/// One failure family per mode (see file comment).
enum class ChaosMode : std::uint8_t {
  kTruncatedFrame,       ///< header promises bytes that never arrive, EOF
  kCorruptMagic,         ///< garbage where the magic belongs
  kCorruptPayload,       ///< valid SAMPLES header, short/garbled payload
  kOversizedFrame,       ///< header with payload_len past the bound
  kBadVersion,           ///< unknown protocol version
  kSlowloris,            ///< drip a frame one byte at a time
  kMidStreamDisconnect,  ///< valid HELLO + some SAMPLES, then abrupt close
  kReHello,              ///< second HELLO with a different fs mid-session
  kSamplesBeforeHello,   ///< protocol-order violation
  kConnectionStorm,      ///< rapid connect/forget cycles, no traffic
};

struct ChaosConfig {
  ChaosMode mode = ChaosMode::kTruncatedFrame;
  std::uint64_t session_id = 0xC4A05;
  double fs = 100.0;
  /// kSlowloris: how long to keep dripping before giving up on the server
  /// evicting us (the server's stall timeout should be below this).
  double slowloris_duration_s = 5.0;
  double slowloris_byte_interval_s = 0.05;
  /// kMidStreamDisconnect: samples streamed before vanishing.
  std::size_t samples_before_disconnect = 400;
  /// kConnectionStorm: connect/close cycles.
  std::size_t storm_connections = 32;
  /// Wall-clock bound on reading the server's reaction.
  double response_timeout_s = 10.0;
};

/// Outcome of one chaos run, judged from the client's side.
struct ChaosResult {
  /// The server reacted correctly for the mode: an ERROR frame and/or an
  /// orderly close within the timeout — never a hang.
  bool server_contained = false;
  /// ERROR code received, if any.
  ErrorCode error = ErrorCode::kNone;
  std::string detail;
};

/// Runs one scripted fault against the server at `ep`.
[[nodiscard]] ChaosResult run_chaos_client(const Endpoint& ep,
                                           const ChaosConfig& cfg);

[[nodiscard]] const char* to_string(ChaosMode mode);

}  // namespace ptrack::net
