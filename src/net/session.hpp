// One ingest session: the protocol state machine between a device
// connection and a core::StreamingTracker.
//
// Lifecycle:  kAwaitHello --HELLO--> kStreaming --BYE/drain--> kClosing
// Any protocol violation (SAMPLES before HELLO, re-HELLO, malformed or
// oversized frame, unknown type) moves the session to kClosing with an
// ERROR frame queued — the fault is contained here; neighbor sessions
// never observe it.
//
// Robustness contract:
//   * All parsing is bounded (FrameDecoder + strict payload parsers); a
//     session's ingest queue is the decoder buffer, reserved once at
//     connection setup and never grown past its bound.
//   * Output is a bounded byte queue. The *server* enforces the
//     slow-consumer limit and backpressure (it stops reading a connection
//     whose output backlog is high, letting the kernel socket buffer and
//     TCP flow control push back on the device).
//   * The session never throws on malformed *input*; exceptions can only
//     come from pipeline contract violations, which the server catches and
//     converts into a session close (fault isolation, matching the batch
//     runner's per-trace Expected capture).
//
// Sample time base: the wire carries no timestamps; the tracker assigns
// t = index/fs exactly as it does for every other ingest path, so a healthy
// client's event stream is bit-identical to a local StreamingTracker fed
// the same samples (the soak suite's oracle).

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/streaming.hpp"
#include "net/wire.hpp"

namespace ptrack::net {

/// Per-session policy knobs (shared by every session of a server).
struct SessionConfig {
  /// Streaming pipeline configuration; `precision` is overridden per
  /// session from the HELLO (and attitude-filter mode must stay off for
  /// float32 HELLOs to be acceptable).
  core::StreamingConfig streaming{};
  double fs_min = 1.0;     ///< HELLO sample-rate plausibility window (Hz)
  double fs_max = 1024.0;
  std::size_t max_samples_per_frame = kMaxSamplesPerFrame;
  /// Queued output bytes beyond which the server declares the client a
  /// slow consumer and disconnects it.
  std::size_t out_buf_limit = 256 * 1024;
  /// Largest single read the server issues (sizes the decoder reservation).
  std::size_t read_chunk = 16 * 1024;
  bool allow_f32 = true;   ///< accept precision=1 HELLOs
};

/// Monotone per-session counters (server aggregates them into ptrack.net.*).
struct SessionCounters {
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  std::uint64_t bytes_in = 0;
};

/// Estimated steady-state memory footprint of one session at sample rate
/// `fs` (decoder + output reservations + tracker ring retention) — the
/// unit of the server's global memory budget.
[[nodiscard]] std::size_t session_memory_estimate(const SessionConfig& cfg,
                                                  double fs);

class Session {
 public:
  enum class State : std::uint8_t { kAwaitHello, kStreaming, kClosing };
  /// What the server must do after an ingest call.
  enum class IoResult : std::uint8_t {
    kOk,     ///< keep the connection open
    kClose,  ///< flush out() (best effort), then close
  };

  explicit Session(const SessionConfig& cfg);

  /// Feeds raw connection bytes through the decoder and dispatches every
  /// complete frame. Never throws on malformed input (see file comment).
  [[nodiscard]] IoResult on_bytes(std::span<const std::uint8_t> bytes);

  /// Graceful finalization: flushes the tracker's margins, queues the
  /// final EVENT/DRAINED frames and moves to kClosing. Used for BYE and
  /// for the server's drain-on-SIGTERM path. Safe in any state.
  void drain();

  /// Queues a final ERROR frame after any pending output and moves to
  /// kClosing (admission shed, idle/stall eviction, slow consumer,
  /// shutdown refusals). The ERROR is appended, not substituted: a partial
  /// frame may already be on the wire, and the stream must stay decodable
  /// up to and including the ERROR.
  void reject(ErrorCode code, std::uint16_t retry_after_s,
              const char* detail);

  [[nodiscard]] State state() const { return state_; }
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] bool hello_done() const { return tracker_.has_value(); }
  [[nodiscard]] double fs() const { return fs_; }
  [[nodiscard]] const SessionCounters& counters() const { return counters_; }
  /// Pipeline statistics for the admin plane's /sessions quality columns
  /// (all-zero before HELLO builds the tracker).
  [[nodiscard]] core::StreamingStats streaming_stats() const {
    return tracker_.has_value() ? tracker_->stats() : core::StreamingStats{};
  }

  /// Queued output bytes; the server writes from the front.
  [[nodiscard]] std::span<const std::uint8_t> out() const {
    return {out_.data() + out_pos_, out_.size() - out_pos_};
  }
  void consume_out(std::size_t n);
  [[nodiscard]] std::size_t out_pending() const {
    return out_.size() - out_pos_;
  }

  /// Ingest-queue depth (bytes buffered awaiting a complete frame).
  [[nodiscard]] std::size_t queue_depth() const {
    return decoder_.buffered();
  }
  /// True while a partially received frame is pending (stall detection).
  [[nodiscard]] bool mid_frame() const { return decoder_.mid_frame(); }

  [[nodiscard]] std::size_t memory_estimate() const { return mem_estimate_; }

 private:
  [[nodiscard]] IoResult dispatch(const Frame& frame);
  [[nodiscard]] IoResult on_hello(const Frame& frame);
  [[nodiscard]] IoResult on_samples(const Frame& frame);
  [[nodiscard]] IoResult protocol_error(ErrorCode code, const char* detail);
  /// Appends tracker events queued since the last call as EVENT frames.
  void flush_events();
  void compact_out();

  SessionConfig cfg_;
  FrameDecoder decoder_;
  State state_ = State::kAwaitHello;
  std::uint64_t id_ = 0;
  double fs_ = 0.0;
  std::optional<core::StreamingTracker> tracker_;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;  ///< consumed prefix inside out_
  std::vector<core::StepEvent> events_;  ///< poll scratch, reused
  SessionCounters counters_;
  std::size_t mem_estimate_;
};

}  // namespace ptrack::net
