#include "net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>
#include <utility>

#include "common/error.hpp"

namespace ptrack::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw Error(what + ": " + std::strerror(errno));
}

sockaddr_un uds_addr(const Endpoint& ep) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (ep.path.empty() || ep.path.size() >= sizeof(addr.sun_path)) {
    throw Error("uds path empty or too long: '" + ep.path + "'");
  }
  std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
  return addr;
}

sockaddr_in tcp_addr(const Endpoint& ep) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    throw Error("bad IPv4 address: '" + ep.host + "'");
  }
  return addr;
}

}  // namespace

Endpoint Endpoint::uds(std::string p) {
  Endpoint ep;
  ep.kind = Kind::kUds;
  ep.path = std::move(p);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int Socket::release() { return std::exchange(fd_, -1); }

void Socket::set_nonblocking(bool on) const {
  const int flags = fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  const int want = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (fcntl(fd_, F_SETFL, want) < 0) throw_errno("fcntl(F_SETFL)");
}

void Socket::set_io_timeout(double seconds) const {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      1e6 * (seconds - std::floor(seconds)));
  if (setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) < 0 ||
      setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) < 0) {
    throw_errno("setsockopt(SO_RCVTIMEO/SO_SNDTIMEO)");
  }
}

void Socket::set_send_buffer(std::size_t bytes) const {
  const int value = static_cast<int>(bytes);
  if (setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &value, sizeof(value)) < 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
}

std::ptrdiff_t Socket::read_some(std::span<std::uint8_t> buf) const {
  while (true) {
    const ssize_t n = ::recv(fd_, buf.data(), buf.size(), 0);
    if (n >= 0) return static_cast<std::ptrdiff_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    if (errno == ECONNRESET) return 0;  // peer loss == orderly close here
    throw_errno("recv");
  }
}

std::size_t Socket::write_some(std::span<const std::uint8_t> buf) const {
  while (true) {
    const ssize_t n =
        ::send(fd_, buf.data(), buf.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    throw_errno("send");
  }
}

bool Socket::write_all(std::span<const std::uint8_t> buf) const {
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::send(fd_, buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;  // timeout, peer gone, or zero-progress send
  }
  return true;
}

Socket listen_on(const Endpoint& ep, int backlog) {
  const int domain = ep.kind == Endpoint::Kind::kUds ? AF_UNIX : AF_INET;
  Socket s(::socket(domain, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  if (ep.kind == Endpoint::Kind::kUds) {
    ::unlink(ep.path.c_str());  // stale socket file from a crashed run
    const sockaddr_un addr = uds_addr(ep);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind(" + ep.path + ")");
    }
  } else {
    const int one = 1;
    if (setsockopt(s.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) <
        0) {
      throw_errno("setsockopt(SO_REUSEADDR)");
    }
    const sockaddr_in addr = tcp_addr(ep);
    if (::bind(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
               sizeof(addr)) < 0) {
      throw_errno("bind(" + ep.host + ")");
    }
  }
  if (::listen(s.fd(), backlog) < 0) throw_errno("listen");
  s.set_nonblocking(true);
  return s;
}

std::uint16_t local_port(const Socket& listener) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (getsockname(listener.fd(), reinterpret_cast<sockaddr*>(&addr),
                  &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket accept_on(const Socket& listener) {
  while (true) {
    const int fd = ::accept(listener.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket s(fd);
      s.set_nonblocking(true);
      return s;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == ECONNABORTED) {
      return Socket();
    }
    throw_errno("accept");
  }
}

Socket connect_to(const Endpoint& ep) {
  const int domain = ep.kind == Endpoint::Kind::kUds ? AF_UNIX : AF_INET;
  Socket s(::socket(domain, SOCK_STREAM, 0));
  if (!s.valid()) throw_errno("socket");
  int rc = 0;
  if (ep.kind == Endpoint::Kind::kUds) {
    const sockaddr_un addr = uds_addr(ep);
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } else {
    const sockaddr_in addr = tcp_addr(ep);
    rc = ::connect(s.fd(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  }
  if (rc < 0) throw_errno("connect");
  return s;
}

void unlink_uds(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUds && !ep.path.empty()) {
    ::unlink(ep.path.c_str());
  }
}

}  // namespace ptrack::net
