#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::net {

namespace {

// Bytewise little-endian scalar codec: portable across host byte orders,
// and memcpy-free of alignment assumptions.

// ptrack-lint: push-allow(alloc) encoders append into the caller's output
// buffer, which the session pre-reserves and recycles (compact_out keeps
// capacity) — steady-state growth into reserved scratch
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFFu));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFu));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
  put_u32(out, std::bit_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                    static_cast<std::uint16_t>(p[1]) << 8);
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

double get_f64(const std::uint8_t* p) {
  return std::bit_cast<double>(get_u64(p));
}

float get_f32(const std::uint8_t* p) {
  return std::bit_cast<float>(get_u32(p));
}

/// Writes the 12-byte header. The payload length is patched in by
/// append_frame once the payload has been appended.
void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint32_t payload_len) {
  put_u32(out, kMagic);
  out.push_back(kProtocolVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // flags: must be 0 in v1
  put_u32(out, payload_len);
}
// ptrack-lint: pop-allow(alloc)

}  // namespace

const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone: return "none";
    case ErrorCode::kMalformedFrame: return "malformed frame";
    case ErrorCode::kOversizedFrame: return "oversized frame";
    case ErrorCode::kBadMagic: return "bad magic";
    case ErrorCode::kBadVersion: return "unsupported protocol version";
    case ErrorCode::kProtocol: return "protocol state violation";
    case ErrorCode::kBadHello: return "invalid HELLO";
    case ErrorCode::kOverloaded: return "server overloaded";
    case ErrorCode::kSlowConsumer: return "slow consumer";
    case ErrorCode::kIdleTimeout: return "idle timeout";
    case ErrorCode::kShuttingDown: return "server shutting down";
  }
  return "unknown";
}

const char* to_string(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kSamples: return "SAMPLES";
    case FrameType::kBye: return "BYE";
    case FrameType::kHelloAck: return "HELLO_ACK";
    case FrameType::kEvent: return "EVENT";
    case FrameType::kError: return "ERROR";
    case FrameType::kDrained: return "DRAINED";
  }
  return "unknown";
}

bool known_frame_type(std::uint8_t raw) {
  switch (static_cast<FrameType>(raw)) {
    case FrameType::kHello:
    case FrameType::kSamples:
    case FrameType::kBye:
    case FrameType::kHelloAck:
    case FrameType::kEvent:
    case FrameType::kError:
    case FrameType::kDrained:
      return true;
  }
  return false;
}

imu::Sample sample_at(const SampleBlockView& block, std::size_t i) {
  PTRACK_CHECK_MSG(i < block.count, "sample_at: index inside the block");
  const std::uint8_t* p = block.data + i * kSampleWireBytes;
  imu::Sample s;
  s.accel = {get_f64(p), get_f64(p + 8), get_f64(p + 16)};
  s.gyro = {get_f64(p + 24), get_f64(p + 32), get_f64(p + 40)};
  return s;
}

// ---------------------------------------------------------------------------
// Encoders

// ptrack-lint: push-allow(alloc) same contract as the codec helpers: all
// growth lands in the caller's recycled output buffer
void append_frame(std::vector<std::uint8_t>& out, FrameType type,
                  std::span<const std::uint8_t> payload) {
  expects(payload.size() <= kMaxPayloadBytes,
          "append_frame: payload within the wire bound");
  put_header(out, type, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

void append_hello(std::vector<std::uint8_t>& out, const Hello& hello) {
  put_header(out, FrameType::kHello,
             static_cast<std::uint32_t>(kHelloPayloadBytes));
  put_u64(out, hello.session_id);
  put_f64(out, hello.fs);
  out.push_back(hello.precision);
  for (int i = 0; i < 7; ++i) out.push_back(0);  // reserved
}

void append_hello_ack(std::vector<std::uint8_t>& out, const HelloAck& ack) {
  put_header(out, FrameType::kHelloAck,
             static_cast<std::uint32_t>(kHelloAckPayloadBytes));
  put_u64(out, ack.session_id);
  put_u32(out, ack.max_samples_per_frame);
  put_u32(out, ack.version);
}

void append_bye(std::vector<std::uint8_t>& out) {
  put_header(out, FrameType::kBye, 0);
}

void append_samples(std::vector<std::uint8_t>& out,
                    std::span<const imu::Sample> samples) {
  expects(!samples.empty() && samples.size() <= kMaxSamplesPerFrame,
          "append_samples: 1..kMaxSamplesPerFrame samples");
  const std::size_t payload = 4 + samples.size() * kSampleWireBytes;
  put_header(out, FrameType::kSamples, static_cast<std::uint32_t>(payload));
  put_u32(out, static_cast<std::uint32_t>(samples.size()));
  for (const imu::Sample& s : samples) {
    put_f64(out, s.accel.x);
    put_f64(out, s.accel.y);
    put_f64(out, s.accel.z);
    put_f64(out, s.gyro.x);
    put_f64(out, s.gyro.y);
    put_f64(out, s.gyro.z);
  }
}

void append_events(std::vector<std::uint8_t>& out,
                   std::span<const core::StepEvent> events) {
  const std::size_t payload = 4 + events.size() * kEventWireBytes;
  expects(payload <= kMaxPayloadBytes,
          "append_events: event block within the wire bound");
  put_header(out, FrameType::kEvent, static_cast<std::uint32_t>(payload));
  put_u32(out, static_cast<std::uint32_t>(events.size()));
  for (const core::StepEvent& e : events) {
    put_f64(out, e.t);
    put_f64(out, e.stride);
    put_f32(out, static_cast<float>(e.quality));
    out.push_back(static_cast<std::uint8_t>(e.type));
    out.push_back(e.degraded ? 1 : 0);
    put_u16(out, 0);  // reserved
  }
}

void append_error(std::vector<std::uint8_t>& out, ErrorCode code,
                  std::uint16_t retry_after_s, std::string_view detail) {
  if (detail.size() > kMaxErrorDetailBytes) {
    detail = detail.substr(0, kMaxErrorDetailBytes);
  }
  const std::size_t payload = 8 + detail.size();
  put_header(out, FrameType::kError, static_cast<std::uint32_t>(payload));
  put_u16(out, static_cast<std::uint16_t>(code));
  put_u16(out, retry_after_s);
  put_u32(out, static_cast<std::uint32_t>(detail.size()));
  for (const char c : detail) out.push_back(static_cast<std::uint8_t>(c));
}

void append_drained(std::vector<std::uint8_t>& out, const Drained& drained) {
  put_header(out, FrameType::kDrained,
             static_cast<std::uint32_t>(kDrainedPayloadBytes));
  put_u64(out, drained.events_total);
  put_u64(out, drained.samples_total);
}
// ptrack-lint: pop-allow(alloc)

// ---------------------------------------------------------------------------
// Payload parsers

bool parse_hello(std::span<const std::uint8_t> payload, Hello& out) {
  if (payload.size() != kHelloPayloadBytes) return false;
  out.session_id = get_u64(payload.data());
  out.fs = get_f64(payload.data() + 8);
  out.precision = payload[16];
  for (std::size_t i = 17; i < kHelloPayloadBytes; ++i) {
    if (payload[i] != 0) return false;  // reserved bytes must be zero
  }
  return true;
}

bool parse_hello_ack(std::span<const std::uint8_t> payload, HelloAck& out) {
  if (payload.size() != kHelloAckPayloadBytes) return false;
  out.session_id = get_u64(payload.data());
  out.max_samples_per_frame = get_u32(payload.data() + 8);
  out.version = get_u32(payload.data() + 12);
  return true;
}

bool parse_samples(std::span<const std::uint8_t> payload,
                   SampleBlockView& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t count = get_u32(payload.data());
  if (count == 0 || count > kMaxSamplesPerFrame) return false;
  if (payload.size() != 4 + static_cast<std::size_t>(count) *
                                kSampleWireBytes) {
    return false;
  }
  out.count = count;
  out.data = payload.data() + 4;
  return true;
}

bool parse_events(std::span<const std::uint8_t> payload,
                  std::vector<core::StepEvent>& out) {
  if (payload.size() < 4) return false;
  const std::uint32_t count = get_u32(payload.data());
  if (payload.size() != 4 + static_cast<std::size_t>(count) *
                                kEventWireBytes) {
    return false;
  }
  // ptrack-lint: allow(alloc) client-side decode into the caller's reused vector
  out.reserve(out.size() + count);
  const std::uint8_t* p = payload.data() + 4;
  for (std::uint32_t i = 0; i < count; ++i, p += kEventWireBytes) {
    core::StepEvent e;
    e.t = get_f64(p);
    e.stride = get_f64(p + 8);
    e.quality = static_cast<double>(get_f32(p + 16));
    const std::uint8_t type = p[20];
    if (type > static_cast<std::uint8_t>(core::GaitType::Interference)) {
      return false;
    }
    e.type = static_cast<core::GaitType>(type);
    if (p[21] > 1) return false;
    e.degraded = p[21] == 1;
    if (get_u16(p + 22) != 0) return false;  // reserved
    // ptrack-lint: allow(alloc) bounded by the reserve above
    out.push_back(e);
  }
  return true;
}

bool parse_error(std::span<const std::uint8_t> payload, WireError& out) {
  if (payload.size() < 8) return false;
  const std::uint16_t code = get_u16(payload.data());
  if (code == 0 ||
      code > static_cast<std::uint16_t>(ErrorCode::kShuttingDown)) {
    return false;
  }
  out.code = static_cast<ErrorCode>(code);
  out.retry_after_s = get_u16(payload.data() + 2);
  const std::uint32_t len = get_u32(payload.data() + 4);
  if (len > kMaxErrorDetailBytes || payload.size() != 8 + len) return false;
  // ptrack-lint: allow(alloc) error path, not steady state (<= 256 bytes)
  out.detail.assign(reinterpret_cast<const char*>(payload.data() + 8), len);
  return true;
}

bool parse_drained(std::span<const std::uint8_t> payload, Drained& out) {
  if (payload.size() != kDrainedPayloadBytes) return false;
  out.events_total = get_u64(payload.data());
  out.samples_total = get_u64(payload.data() + 8);
  return true;
}

// ---------------------------------------------------------------------------
// FrameDecoder

FrameDecoder::FrameDecoder(std::size_t max_payload,
                           std::size_t read_chunk_hint)
    : max_payload_(max_payload),
      capacity_(kHeaderBytes + max_payload + read_chunk_hint) {
  expects(max_payload <= kMaxPayloadBytes,
          "FrameDecoder: max_payload within the protocol bound");
  // Connection-setup reservation: after this, a disciplined reader (drain
  // frames between feeds, feed <= read_chunk_hint at a time) never grows
  // the buffer again.
  buf_.reserve(capacity_);
}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != ErrorCode::kNone) return;  // poisoned: drop input
  if (buffered() + bytes.size() > capacity_) {
    // A reader that drains frames between feeds cannot get here; treat it
    // as an oversize violation rather than growing without bound.
    poison(ErrorCode::kOversizedFrame, "decoder buffer bound exceeded");
    return;
  }
  compact(bytes.size());
  // Appends into the ctor reservation; the feed discipline above bounds
  // buffered bytes below the reserved capacity.
  // ptrack-lint: allow(alloc) bounded append into the ctor reservation
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

DecodeStatus FrameDecoder::next(Frame& out) {
  if (error_ != ErrorCode::kNone) return DecodeStatus::kError;
  if (buffered() < kHeaderBytes) return DecodeStatus::kNeedMore;
  const std::uint8_t* h = buf_.data() + pos_;
  if (get_u32(h) != kMagic) {
    poison(ErrorCode::kBadMagic, "frame magic mismatch");
    return DecodeStatus::kError;
  }
  if (h[4] != kProtocolVersion) {
    poison(ErrorCode::kBadVersion, "unknown protocol version");
    return DecodeStatus::kError;
  }
  if (!known_frame_type(h[5])) {
    poison(ErrorCode::kMalformedFrame, "unknown frame type");
    return DecodeStatus::kError;
  }
  if (get_u16(h + 6) != 0) {
    poison(ErrorCode::kMalformedFrame, "nonzero flags in v1");
    return DecodeStatus::kError;
  }
  const std::uint32_t payload_len = get_u32(h + 8);
  if (payload_len > max_payload_) {
    poison(ErrorCode::kOversizedFrame, "payload length beyond bound");
    return DecodeStatus::kError;
  }
  if (buffered() < kHeaderBytes + payload_len) return DecodeStatus::kNeedMore;
  out.type = static_cast<FrameType>(h[5]);
  out.payload = std::span<const std::uint8_t>(h + kHeaderBytes, payload_len);
  pos_ += kHeaderBytes + payload_len;
  return DecodeStatus::kFrame;
}

bool FrameDecoder::mid_frame() const {
  if (error_ != ErrorCode::kNone || buffered() == 0) return false;
  if (buffered() < kHeaderBytes) return true;  // partial header
  const std::uint8_t* h = buf_.data() + pos_;
  const std::uint32_t payload_len = get_u32(h + 8);
  // A header that will be rejected on the next pull is not "mid frame".
  if (get_u32(h) != kMagic || payload_len > max_payload_) return false;
  return buffered() < kHeaderBytes + payload_len;
}

void FrameDecoder::poison(ErrorCode code, const char* detail) {
  error_ = code;
  detail_ = detail;
  buf_.clear();
  pos_ = 0;
}

void FrameDecoder::compact(std::size_t incoming) {
  // Reclaim the consumed prefix before it can push the live region past
  // the reservation; one memmove, amortized over the consumed bytes.
  if (pos_ == 0) return;
  if (pos_ >= buf_.size()) {
    buf_.clear();
    pos_ = 0;
    return;
  }
  if (pos_ >= capacity_ / 2 || buf_.size() + incoming > capacity_) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }
}

}  // namespace ptrack::net
