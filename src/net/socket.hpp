// Thin RAII layer over POSIX stream sockets (TCP and Unix-domain), shaped
// for the single-threaded poll reactor in net/server.cpp and the blocking
// test clients in net/chaos.cpp. Deliberately minimal: no buffering, no
// framing (net/wire.hpp owns that), no platform abstraction beyond what the
// repo targets (POSIX).

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace ptrack::net {

/// Where a server listens / a client connects. kUds is the default for
/// tests and CI (no port allocation races, works in sandboxes); kTcp is the
/// deployment front door.
struct Endpoint {
  enum class Kind { kUds, kTcp };
  Kind kind = Kind::kUds;
  std::string path;             ///< kUds: filesystem path of the socket
  std::string host = "127.0.0.1";  ///< kTcp
  std::uint16_t port = 0;          ///< kTcp; 0 = ephemeral (listen only)

  static Endpoint uds(std::string p);
  static Endpoint tcp(std::string host, std::uint16_t port);
};

/// Owning file-descriptor wrapper. Move-only; close() is idempotent.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  void close();
  /// Releases ownership of the descriptor without closing it.
  [[nodiscard]] int release();

  void set_nonblocking(bool on) const;
  /// SO_RCVTIMEO/SO_SNDTIMEO for the blocking client paths (seconds).
  void set_io_timeout(double seconds) const;
  /// SO_SNDBUF (the kernel may round/double it). Tests shrink it to make
  /// backpressure observable without megabytes of traffic.
  void set_send_buffer(std::size_t bytes) const;

  /// Nonblocking-friendly read. Returns bytes read (> 0), 0 on orderly
  /// peer shutdown, -1 when the call would block, and throws ptrack::Error
  /// on a hard socket error.
  [[nodiscard]] std::ptrdiff_t read_some(std::span<std::uint8_t> buf) const;

  /// Nonblocking-friendly write. Returns bytes written (>= 0; 0 or short
  /// when the send buffer is full), throws ptrack::Error on a hard error
  /// (EPIPE/ECONNRESET included — callers treat that as peer loss).
  [[nodiscard]] std::size_t write_some(
      std::span<const std::uint8_t> buf) const;

  /// Blocking write of the whole buffer (client paths; honors
  /// set_io_timeout). Returns false when the peer vanished or the timeout
  /// elapsed before everything was written.
  [[nodiscard]] bool write_all(std::span<const std::uint8_t> buf) const;

 private:
  int fd_ = -1;
};

/// Binds and listens on the endpoint. For kUds any stale socket file is
/// unlinked first. Throws ptrack::Error on failure. The returned socket is
/// nonblocking.
[[nodiscard]] Socket listen_on(const Endpoint& ep, int backlog = 128);

/// The port a kTcp listener actually bound (resolves port 0).
[[nodiscard]] std::uint16_t local_port(const Socket& listener);

/// Accepts one pending connection (nonblocking listener). Returns an
/// invalid Socket when no connection is pending; throws on hard errors.
/// The accepted socket is nonblocking.
[[nodiscard]] Socket accept_on(const Socket& listener);

/// Blocking connect for the client paths. Throws ptrack::Error on failure.
[[nodiscard]] Socket connect_to(const Endpoint& ep);

/// Removes the socket file of a kUds endpoint (server shutdown hygiene).
void unlink_uds(const Endpoint& ep);

}  // namespace ptrack::net
