#include "net/chaos.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <thread>

#include "common/error.hpp"

namespace ptrack::net {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

void sleep_s(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

void push_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xFF));
}

/// Hand-crafts a frame header; the knob every header-level chaos mode
/// turns. Defaults describe a valid empty SAMPLES frame.
struct RawHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kProtocolVersion;
  std::uint8_t type = static_cast<std::uint8_t>(FrameType::kSamples);
  std::uint16_t flags = 0;
  std::uint32_t payload_len = 0;
};

void push_header(std::vector<std::uint8_t>& out, const RawHeader& h) {
  push_u32(out, h.magic);
  out.push_back(h.version);
  out.push_back(h.type);
  out.push_back(static_cast<std::uint8_t>(h.flags & 0xFF));
  out.push_back(static_cast<std::uint8_t>((h.flags >> 8) & 0xFF));
  push_u32(out, h.payload_len);
}

/// Deterministic walking-ish accelerometer trace (the chaos clients only
/// need plausible bytes, not plausible gait).
imu::Sample synthetic_sample(std::size_t i) {
  imu::Sample s;
  const double phase = static_cast<double>(i) * 0.11;
  s.accel = {0.3 * std::sin(phase), 0.2 * std::cos(phase * 0.7),
             9.81 + 1.5 * std::sin(phase * 2.0)};
  s.gyro = {0.01 * std::sin(phase), 0.01 * std::cos(phase), 0.0};
  return s;
}

/// Pulls server frames from a nonblocking socket. Accumulates into a
/// decoder; the per-call handlers decide what the caller is waiting for.
class ServerReader {
 public:
  ServerReader() : rx_(4096) {}

  enum class Pump : std::uint8_t { kIdle, kProgress, kClosed, kBroken };

  /// Drains whatever is readable right now. kIdle = nothing to read,
  /// kProgress = bytes and/or frames arrived, kClosed = orderly EOF,
  /// kBroken = transport error or undecodable server stream.
  template <typename OnFrame>
  Pump pump(const Socket& sock, OnFrame&& on_frame) {
    Pump state = Pump::kIdle;
    while (true) {
      std::ptrdiff_t n = 0;
      try {
        n = sock.read_some(rx_);
      } catch (const Error&) {
        return Pump::kBroken;
      }
      if (n < 0) return state;
      if (n == 0) return Pump::kClosed;
      state = Pump::kProgress;
      decoder_.feed({rx_.data(), static_cast<std::size_t>(n)});
      Frame frame;
      while (true) {
        const DecodeStatus st = decoder_.next(frame);
        if (st == DecodeStatus::kNeedMore) break;
        if (st == DecodeStatus::kError) return Pump::kBroken;
        if (!on_frame(frame)) return Pump::kProgress;
      }
    }
  }

 private:
  FrameDecoder decoder_;
  std::vector<std::uint8_t> rx_;
};

/// Writes all of `bytes` to a nonblocking socket, draining server frames
/// between short writes so neither side's buffer can deadlock the pair.
template <typename OnFrame>
bool write_draining(const Socket& sock, std::span<const std::uint8_t> bytes,
                    ServerReader& reader, OnFrame&& on_frame,
                    Clock::time_point deadline, bool* peer_gone) {
  std::span<const std::uint8_t> rest = bytes;
  while (!rest.empty()) {
    if (Clock::now() > deadline) return false;
    std::size_t w = 0;
    try {
      w = sock.write_some(rest);
    } catch (const Error&) {
      if (peer_gone != nullptr) *peer_gone = true;
      return false;
    }
    rest = rest.subspan(w);
    const ServerReader::Pump p = reader.pump(sock, on_frame);
    if (p == ServerReader::Pump::kClosed ||
        p == ServerReader::Pump::kBroken) {
      if (peer_gone != nullptr) *peer_gone = true;
      return rest.empty();
    }
    if (w == 0) sleep_s(0.001);
  }
  return true;
}

/// Shared chaos epilogue: watch the server until it answers with an ERROR
/// frame or closes the connection. Containment means "the server reacted";
/// a silent hang until the timeout is the failure being tested for.
void await_reaction(const Socket& sock, double timeout_s, ChaosResult& out) {
  ServerReader reader;
  const Clock::time_point start = Clock::now();
  while (seconds_since(start) < timeout_s) {
    bool saw_error = false;
    const ServerReader::Pump p =
        reader.pump(sock, [&](const Frame& frame) {
          if (frame.type == FrameType::kError) {
            WireError err;
            if (parse_error(frame.payload, err)) {
              out.error = err.code;
              out.detail = err.detail;
              saw_error = true;
            }
          }
          return true;  // keep decoding; close still ends the wait
        });
    if (saw_error || p == ServerReader::Pump::kClosed ||
        p == ServerReader::Pump::kBroken) {
      out.server_contained = true;
      return;
    }
    sleep_s(0.002);
  }
  out.detail = "server did not react before the timeout";
}

/// HELLO + HELLO_ACK over a nonblocking socket; several chaos modes need a
/// live session before injecting their fault.
bool chaos_handshake(const Socket& sock, const ChaosConfig& cfg,
                     ChaosResult& out) {
  std::vector<std::uint8_t> tx;
  append_hello(tx, Hello{cfg.session_id, cfg.fs, 0});
  ServerReader reader;
  bool acked = false;
  bool peer_gone = false;
  const Clock::time_point deadline =
      Clock::now() +
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(cfg.response_timeout_s));
  auto on_frame = [&](const Frame& frame) {
    if (frame.type == FrameType::kHelloAck) acked = true;
    if (frame.type == FrameType::kError) {
      WireError err;
      if (parse_error(frame.payload, err)) {
        out.error = err.code;
        out.detail = err.detail;
      }
    }
    return true;
  };
  if (!write_draining(sock, tx, reader, on_frame, deadline, &peer_gone)) {
    out.detail = "HELLO write failed";
    return false;
  }
  while (!acked && !peer_gone && Clock::now() < deadline) {
    const ServerReader::Pump p = reader.pump(sock, on_frame);
    if (p == ServerReader::Pump::kClosed ||
        p == ServerReader::Pump::kBroken) {
      peer_gone = true;
    }
    if (p == ServerReader::Pump::kIdle) sleep_s(0.001);
  }
  if (!acked) {
    if (out.detail.empty()) out.detail = "no HELLO_ACK";
    // An admission shed (ERROR + close) is still a contained reaction.
    out.server_contained = out.error != ErrorCode::kNone || peer_gone;
  }
  return acked;
}

void best_effort_write(const Socket& sock,
                       std::span<const std::uint8_t> bytes) {
  try {
    static_cast<void>(sock.write_all(bytes));
  } catch (const Error&) {
    // The server hanging up mid-injection is a reaction, not a failure;
    // await_reaction scores it.
  }
}

}  // namespace

const char* to_string(ChaosMode mode) {
  switch (mode) {
    case ChaosMode::kTruncatedFrame: return "truncated-frame";
    case ChaosMode::kCorruptMagic: return "corrupt-magic";
    case ChaosMode::kCorruptPayload: return "corrupt-payload";
    case ChaosMode::kOversizedFrame: return "oversized-frame";
    case ChaosMode::kBadVersion: return "bad-version";
    case ChaosMode::kSlowloris: return "slowloris";
    case ChaosMode::kMidStreamDisconnect: return "mid-stream-disconnect";
    case ChaosMode::kReHello: return "re-hello";
    case ChaosMode::kSamplesBeforeHello: return "samples-before-hello";
    case ChaosMode::kConnectionStorm: return "connection-storm";
  }
  return "unknown";
}

ClientResult run_healthy_client(const Endpoint& ep, const ClientConfig& cfg,
                                std::span<const imu::Sample> samples) {
  ClientResult res;
  Socket sock = connect_to(ep);
  sock.set_nonblocking(true);

  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(cfg.timeout_s));
  ServerReader reader;
  bool acked = false;
  bool drained_seen = false;
  bool failed = false;
  auto on_frame = [&](const Frame& frame) {
    switch (frame.type) {
      case FrameType::kHelloAck: {
        HelloAck ack;
        if (!parse_hello_ack(frame.payload, ack) ||
            ack.session_id != cfg.session_id) {
          res.detail = "bad HELLO_ACK";
          failed = true;
          return false;
        }
        acked = true;
        return true;
      }
      case FrameType::kEvent:
        if (!parse_events(frame.payload, res.events)) {
          res.detail = "bad EVENT payload";
          failed = true;
          return false;
        }
        return true;
      case FrameType::kDrained:
        if (!parse_drained(frame.payload, res.drained)) {
          res.detail = "bad DRAINED payload";
          failed = true;
          return false;
        }
        drained_seen = true;
        return false;
      case FrameType::kError: {
        WireError err;
        if (parse_error(frame.payload, err)) {
          res.error = err.code;
          res.detail = err.detail;
        } else {
          res.detail = "bad ERROR payload";
        }
        failed = true;
        return false;
      }
      default:
        res.detail = "unexpected frame type from server";
        failed = true;
        return false;
    }
  };

  bool peer_gone = false;
  std::vector<std::uint8_t> tx;
  append_hello(tx, Hello{cfg.session_id, cfg.fs, cfg.precision});

  std::size_t sent = 0;
  const std::size_t per_frame =
      std::clamp<std::size_t>(cfg.samples_per_frame, 1, kMaxSamplesPerFrame);
  bool sent_all = write_draining(sock, tx, reader, on_frame, deadline,
                                 &peer_gone);
  while (sent_all && !failed && !peer_gone && sent < samples.size()) {
    const std::size_t n = std::min(per_frame, samples.size() - sent);
    tx.clear();
    append_samples(tx, samples.subspan(sent, n));
    sent_all =
        write_draining(sock, tx, reader, on_frame, deadline, &peer_gone);
    sent += n;
  }
  if (sent_all && !failed && !peer_gone && cfg.send_bye) {
    tx.clear();
    append_bye(tx);
    sent_all =
        write_draining(sock, tx, reader, on_frame, deadline, &peer_gone);
  }

  // Await the final flush: EVENT frames, then DRAINED.
  while (sent_all && !failed && !drained_seen && Clock::now() < deadline) {
    const ServerReader::Pump p = reader.pump(sock, on_frame);
    if (p == ServerReader::Pump::kClosed) {
      if (!drained_seen) res.detail = "server closed before DRAINED";
      break;
    }
    if (p == ServerReader::Pump::kBroken) {
      res.detail = "server stream undecodable";
      break;
    }
    if (p == ServerReader::Pump::kIdle) sleep_s(0.0005);
  }

  // A write failure usually means the server rejected us and hung up; the
  // explaining ERROR frame may still sit unread in the receive buffer
  // (stream data written before a close stays readable). Drain it so the
  // caller sees the typed reason, not just a broken pipe.
  if (!sent_all && !failed) {
    const Clock::time_point grace =
        Clock::now() + std::chrono::milliseconds(200);
    while (!failed && !drained_seen && Clock::now() < grace) {
      const ServerReader::Pump p = reader.pump(sock, on_frame);
      if (p == ServerReader::Pump::kClosed ||
          p == ServerReader::Pump::kBroken) {
        break;
      }
      if (p == ServerReader::Pump::kIdle) sleep_s(0.001);
    }
  }

  if (!sent_all && res.detail.empty()) {
    res.detail = peer_gone ? "server closed mid-stream" : "write timeout";
  }
  if (!drained_seen && res.detail.empty()) res.detail = "no DRAINED frame";
  res.ok = acked && drained_seen && !failed &&
           res.error == ErrorCode::kNone && sent == samples.size();
  return res;
}

ChaosResult run_chaos_client(const Endpoint& ep, const ChaosConfig& cfg) {
  ChaosResult res;
  std::vector<std::uint8_t> tx;

  switch (cfg.mode) {
    case ChaosMode::kCorruptMagic: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      RawHeader h;
      h.magic = 0xDEADBEEFu;
      push_header(tx, h);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kBadVersion: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      RawHeader h;
      h.version = 9;
      push_header(tx, h);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kOversizedFrame: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      RawHeader h;
      h.payload_len = static_cast<std::uint32_t>(kMaxPayloadBytes + 1);
      push_header(tx, h);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kCorruptPayload: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      if (!chaos_handshake(sock, cfg, res)) return res;
      // SAMPLES frame whose payload length disagrees with its count.
      std::vector<std::uint8_t> payload;
      push_u32(payload, 4);                 // claims 4 samples...
      payload.resize(payload.size() + 50);  // ...delivers ~1 of bytes
      append_frame(tx, FrameType::kSamples, payload);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kTruncatedFrame: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      if (!chaos_handshake(sock, cfg, res)) return res;
      // Promise 8 samples, deliver half a sample, then go silent with the
      // connection held open: only the stall deadline can reclaim this.
      RawHeader h;
      h.payload_len = 4 + 8 * static_cast<std::uint32_t>(kSampleWireBytes);
      push_header(tx, h);
      push_u32(tx, 8);
      tx.resize(tx.size() + kSampleWireBytes / 2);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kSlowloris: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      if (!chaos_handshake(sock, cfg, res)) return res;
      RawHeader h;
      h.payload_len = 4 + 8 * static_cast<std::uint32_t>(kSampleWireBytes);
      push_header(tx, h);
      push_u32(tx, 8);
      const Clock::time_point start = Clock::now();
      std::size_t dripped = 0;
      ServerReader reader;
      while (seconds_since(start) < cfg.slowloris_duration_s) {
        const std::uint8_t byte =
            dripped < tx.size() ? tx[dripped] : std::uint8_t{0};
        ++dripped;
        try {
          static_cast<void>(
              sock.write_some(std::span<const std::uint8_t>(&byte, 1)));
        } catch (const Error&) {
          res.server_contained = true;  // evicted mid-drip
          return res;
        }
        bool saw_error = false;
        const ServerReader::Pump p =
            reader.pump(sock, [&](const Frame& frame) {
              if (frame.type == FrameType::kError) {
                WireError err;
                if (parse_error(frame.payload, err)) {
                  res.error = err.code;
                  res.detail = err.detail;
                  saw_error = true;
                }
              }
              return true;
            });
        if (saw_error || p == ServerReader::Pump::kClosed ||
            p == ServerReader::Pump::kBroken) {
          res.server_contained = true;
          return res;
        }
        sleep_s(cfg.slowloris_byte_interval_s);
      }
      res.detail = "server tolerated the drip past the duration bound";
      return res;
    }
    case ChaosMode::kMidStreamDisconnect: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      if (!chaos_handshake(sock, cfg, res)) return res;
      std::vector<imu::Sample> samples;
      samples.reserve(cfg.samples_before_disconnect);
      for (std::size_t i = 0; i < cfg.samples_before_disconnect; ++i) {
        samples.push_back(synthetic_sample(i));
      }
      std::span<const imu::Sample> rest(samples);
      ServerReader reader;
      const Clock::time_point deadline =
          Clock::now() +
          std::chrono::duration_cast<Clock::duration>(
              std::chrono::duration<double>(cfg.response_timeout_s));
      while (!rest.empty()) {
        const std::size_t n = std::min<std::size_t>(rest.size(), 256);
        tx.clear();
        append_samples(tx, rest.subspan(0, n));
        bool peer_gone = false;
        if (!write_draining(sock, tx, reader,
                            [](const Frame&) { return true; }, deadline,
                            &peer_gone)) {
          break;
        }
        rest = rest.subspan(n);
      }
      // Vanish abruptly: no BYE, just a close. Containment is judged by
      // the caller via server stats (the session must be reclaimed).
      sock.close();
      res.server_contained = true;
      res.detail = "disconnected mid-stream";
      return res;
    }
    case ChaosMode::kReHello: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      if (!chaos_handshake(sock, cfg, res)) return res;
      // The fs-mismatch renegotiation attempt: a second HELLO on a live
      // session, announcing a different rate.
      append_hello(tx, Hello{cfg.session_id, cfg.fs * 2.0, 0});
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kSamplesBeforeHello: {
      Socket sock = connect_to(ep);
      sock.set_nonblocking(true);
      std::vector<imu::Sample> samples;
      for (std::size_t i = 0; i < 16; ++i) {
        samples.push_back(synthetic_sample(i));
      }
      append_samples(tx, samples);
      best_effort_write(sock, tx);
      await_reaction(sock, cfg.response_timeout_s, res);
      return res;
    }
    case ChaosMode::kConnectionStorm: {
      // Rapid connect/forget cycles. The server must stay reachable
      // (verified by the caller running a healthy client afterwards) and
      // reclaim every stormed connection.
      std::size_t connected = 0;
      for (std::size_t i = 0; i < cfg.storm_connections; ++i) {
        try {
          Socket sock = connect_to(ep);
          ++connected;
          if (i % 2 == 0) {
            // Half the storm leaves a partial header behind.
            tx.clear();
            push_u32(tx, kMagic);
            best_effort_write(sock, tx);
          }
        } catch (const Error&) {
          // Listen backlog overflow under the storm is acceptable
          // shedding, not a containment failure.
        }
      }
      res.server_contained = connected > 0;
      if (connected == 0) res.detail = "no storm connection ever landed";
      return res;
    }
  }
  res.detail = "unknown chaos mode";
  return res;
}

}  // namespace ptrack::net
