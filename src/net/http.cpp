#include "net/http.hpp"

#include <array>
#include <cctype>

#include "common/error.hpp"

namespace ptrack::net {

namespace {

/// Response-size cap for the blocking client: admin bodies are small; a
/// misbehaving peer must not grow our buffer without bound.
constexpr std::size_t kMaxHttpResponseBytes = std::size_t{8} << 20;

bool token_upper(std::string_view s) {
  if (s.empty() || s.size() > 16) return false;
  for (const char c : s) {
    if (c < 'A' || c > 'Z') return false;
  }
  return true;
}

bool printable_target(std::string_view s) {
  for (const char c : s) {
    const auto uc = static_cast<unsigned char>(c);
    if (uc <= 0x20 || uc >= 0x7f) return false;
  }
  return true;
}

/// Index one past the header-terminating blank line, or npos. Accepts
/// CRLF and bare-LF line endings.
std::size_t find_header_end(std::string_view buf) {
  for (std::size_t i = 0; i < buf.size(); ++i) {
    if (buf[i] != '\n') continue;
    if (i + 1 < buf.size() && buf[i + 1] == '\n') return i + 2;
    if (i + 2 < buf.size() && buf[i + 1] == '\r' && buf[i + 2] == '\n') {
      return i + 3;
    }
  }
  return std::string_view::npos;
}

}  // namespace

HttpParseStatus HttpRequestParser::fail(const char* reason) {
  error_ = reason;
  return HttpParseStatus::kError;
}

HttpParseStatus HttpRequestParser::parse_request_line(std::string_view line) {
  if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return fail("no space after method");
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) return fail("missing HTTP version");
  const std::string_view method = line.substr(0, sp1);
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string_view version = line.substr(sp2 + 1);
  if (!token_upper(method)) return fail("bad method token");
  if (target.empty() || target.front() != '/') {
    return fail("target must be origin-form");
  }
  if (target.size() > kMaxHttpTargetBytes) return fail("target too long");
  if (!printable_target(target)) return fail("bad byte in target");
  if (version == "HTTP/1.0") {
    request_.minor_version = 0;
  } else if (version == "HTTP/1.1") {
    request_.minor_version = 1;
  } else {
    return fail("unsupported HTTP version");
  }
  request_.method.assign(method);
  request_.target.assign(target);
  done_ = true;
  return HttpParseStatus::kDone;
}

HttpParseStatus HttpRequestParser::feed(std::span<const std::uint8_t> bytes) {
  if (error_ != nullptr) return HttpParseStatus::kError;
  if (done_) return HttpParseStatus::kDone;
  if (buf_.size() + bytes.size() > kMaxHttpRequestBytes) {
    return fail("request exceeds size budget");
  }
  buf_.append(reinterpret_cast<const char*>(bytes.data()), bytes.size());
  const std::size_t end = find_header_end(buf_);
  if (end == std::string_view::npos) {
    if (buf_.size() >= kMaxHttpRequestBytes) {
      return fail("request exceeds size budget");
    }
    return HttpParseStatus::kNeedMore;
  }
  const std::string_view head(buf_.data(), end);
  const std::size_t eol = head.find('\n');
  if (eol == 0) return fail("empty request line");
  return parse_request_line(head.substr(0, eol));
}

const char* http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string http_response(int status, std::string_view content_type,
                          std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out += "HTTP/1.0 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

HttpGetResult http_get(const Endpoint& ep, std::string_view target,
                       double timeout_s) {
  HttpGetResult res;
  try {
    const Socket sock = connect_to(ep);
    sock.set_io_timeout(timeout_s);
    std::string req;
    req.reserve(target.size() + 64);
    req += "GET ";
    req += target;
    req += " HTTP/1.0\r\nHost: ptrack\r\nConnection: close\r\n\r\n";
    if (!sock.write_all(std::span<const std::uint8_t>(
            reinterpret_cast<const std::uint8_t*>(req.data()),
            req.size()))) {
      res.error = "send failed or timed out";
      return res;
    }
    std::string raw;
    std::array<std::uint8_t, 4096> chunk{};
    while (true) {
      const std::ptrdiff_t n = sock.read_some(chunk);
      if (n == 0) break;  // EOF: HTTP/1.0 close delimits the body
      if (n < 0) {
        res.error = "receive timed out";
        return res;
      }
      if (raw.size() + static_cast<std::size_t>(n) >
          kMaxHttpResponseBytes) {
        res.error = "response exceeds size budget";
        return res;
      }
      raw.append(reinterpret_cast<const char*>(chunk.data()),
                 static_cast<std::size_t>(n));
    }
    const std::string_view view(raw);
    if (view.substr(0, 7) != "HTTP/1.") {
      res.error = "not an HTTP response";
      return res;
    }
    const std::size_t sp = view.find(' ');
    if (sp == std::string_view::npos || sp + 4 > view.size()) {
      res.error = "bad status line";
      return res;
    }
    int status = 0;
    for (std::size_t i = sp + 1; i < sp + 4 && i < view.size(); ++i) {
      const char c = view[i];
      if (c < '0' || c > '9') {
        res.error = "bad status code";
        return res;
      }
      status = status * 10 + (c - '0');
    }
    const std::size_t body_at = find_header_end(view);
    if (body_at == std::string_view::npos) {
      res.error = "headers not terminated";
      return res;
    }
    res.status = status;
    res.body.assign(view.substr(body_at));
    res.ok = true;
    return res;
  } catch (const Error& e) {
    res.error = e.what();
    return res;
  }
}

}  // namespace ptrack::net
