#include "net/session.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace ptrack::net {

namespace {

/// Events per EVENT frame: bounded well below the payload limit so one
/// flush can never produce an oversized frame.
constexpr std::size_t kEventsPerFrame = 512;
static_assert(4 + kEventsPerFrame * kEventWireBytes <= kMaxPayloadBytes);

/// Retention horizon of the incremental pipeline (projection context +
/// axis history + finalization margins), used for admission accounting —
/// deliberately rounded up: shedding slightly early beats paging.
constexpr double kTrackerRetentionS = 40.0;
/// Ring bytes per retained sample: 7 channels of f64 (6 + flags padding)
/// plus the f32 mirrors and quality bookkeeping, rounded up.
constexpr std::size_t kBytesPerRetainedSample = 80;

}  // namespace

std::size_t session_memory_estimate(const SessionConfig& cfg, double fs) {
  const double rate = std::max(1.0, fs);
  const auto ring_bytes = static_cast<std::size_t>(
      rate * kTrackerRetentionS * static_cast<double>(
                                      kBytesPerRetainedSample));
  const std::size_t decoder_bytes =
      kHeaderBytes + kMaxPayloadBytes + cfg.read_chunk;
  return decoder_bytes + cfg.out_buf_limit + ring_bytes;
}

Session::Session(const SessionConfig& cfg)
    : cfg_(cfg),
      decoder_(kMaxPayloadBytes, cfg.read_chunk),
      // Pre-HELLO estimate (no tracker yet): what admission charges until
      // the HELLO announces the real sample rate.
      mem_estimate_(session_memory_estimate(cfg, 0.0) -
                    static_cast<std::size_t>(
                        kTrackerRetentionS *
                        static_cast<double>(kBytesPerRetainedSample))) {
  // Connection-setup reservations: steady-state appends stay within them.
  out_.reserve(cfg.out_buf_limit / 4);
  events_.reserve(kEventsPerFrame);
}

Session::IoResult Session::on_bytes(std::span<const std::uint8_t> bytes) {
  if (state_ == State::kClosing) return IoResult::kClose;
  counters_.bytes_in += bytes.size();
  decoder_.feed(bytes);
  Frame frame;
  while (true) {
    switch (decoder_.next(frame)) {
      case DecodeStatus::kNeedMore:
        return IoResult::kOk;
      case DecodeStatus::kError:
        ++counters_.frames_rejected;
        PTRACK_COUNT("ptrack.net.frames.rejected");
        return protocol_error(decoder_.error(), decoder_.error_detail());
      case DecodeStatus::kFrame: {
        const IoResult r = dispatch(frame);
        if (r == IoResult::kClose) return r;
        break;
      }
    }
  }
}

Session::IoResult Session::dispatch(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello:
      return on_hello(frame);
    case FrameType::kSamples:
      return on_samples(frame);
    case FrameType::kBye:
      ++counters_.frames_ok;
      PTRACK_COUNT("ptrack.net.frames.ok");
      drain();
      return IoResult::kClose;
    case FrameType::kHelloAck:
    case FrameType::kEvent:
    case FrameType::kError:
    case FrameType::kDrained:
      ++counters_.frames_rejected;
      PTRACK_COUNT("ptrack.net.frames.rejected");
      return protocol_error(ErrorCode::kProtocol,
                            "server-to-client frame type from a client");
  }
  return protocol_error(ErrorCode::kMalformedFrame, "unreachable");
}

Session::IoResult Session::on_hello(const Frame& frame) {
  Hello hello;
  if (!parse_hello(frame.payload, hello)) {
    ++counters_.frames_rejected;
    PTRACK_COUNT("ptrack.net.frames.rejected");
    return protocol_error(ErrorCode::kMalformedFrame, "bad HELLO payload");
  }
  if (state_ != State::kAwaitHello) {
    // Re-HELLO (including the fs-mismatch re-negotiation attempt the chaos
    // suite sends): one stream is one session; reconnect to renegotiate.
    ++counters_.frames_rejected;
    PTRACK_COUNT("ptrack.net.frames.rejected");
    return protocol_error(ErrorCode::kProtocol, "HELLO on an open session");
  }
  const bool fs_ok = std::isfinite(hello.fs) && hello.fs >= cfg_.fs_min &&
                     hello.fs <= cfg_.fs_max;
  const bool precision_ok =
      hello.precision == 0 || (hello.precision == 1 && cfg_.allow_f32);
  if (!fs_ok || !precision_ok) {
    ++counters_.frames_rejected;
    PTRACK_COUNT("ptrack.net.frames.rejected");
    return protocol_error(ErrorCode::kBadHello,
                          fs_ok ? "unsupported precision"
                                : "sample rate out of range");
  }
  core::StreamingConfig streaming = cfg_.streaming;
  streaming.precision = hello.precision == 1 ? core::Precision::kFloat32
                                             : core::Precision::kDouble;
  // Connection setup: the tracker and its rings are built once per
  // session, before any steady-state traffic.
  // ptrack-lint: allow(alloc) one-time session setup at HELLO
  tracker_.emplace(hello.fs, streaming);
  id_ = hello.session_id;
  fs_ = hello.fs;
  mem_estimate_ = session_memory_estimate(cfg_, fs_);
  state_ = State::kStreaming;
  PTRACK_LOG_DEBUG("net", "session_hello", kv("session_id", id_),
                   kv("fs", fs_),
                   kv("f32", hello.precision == 1));
  ++counters_.frames_ok;
  PTRACK_COUNT("ptrack.net.frames.ok");
  HelloAck ack;
  ack.session_id = hello.session_id;
  ack.max_samples_per_frame =
      static_cast<std::uint32_t>(cfg_.max_samples_per_frame);
  ack.version = kProtocolVersion;
  compact_out();
  append_hello_ack(out_, ack);
  return IoResult::kOk;
}

Session::IoResult Session::on_samples(const Frame& frame) {
  if (state_ != State::kStreaming) {
    ++counters_.frames_rejected;
    PTRACK_COUNT("ptrack.net.frames.rejected");
    return protocol_error(ErrorCode::kProtocol, "SAMPLES before HELLO");
  }
  SampleBlockView block;
  if (!parse_samples(frame.payload, block) ||
      block.count > cfg_.max_samples_per_frame) {
    ++counters_.frames_rejected;
    PTRACK_COUNT("ptrack.net.frames.rejected");
    return protocol_error(ErrorCode::kMalformedFrame,
                          "bad SAMPLES payload");
  }
  PTRACK_CHECK_MSG(tracker_.has_value(),
                   "Session::on_samples: streaming implies a tracker");
  for (std::uint32_t i = 0; i < block.count; ++i) {
    tracker_->push(sample_at(block, i));
  }
  counters_.samples += block.count;
  ++counters_.frames_ok;
  PTRACK_COUNT("ptrack.net.frames.ok");
  PTRACK_COUNT_N("ptrack.net.samples.in", block.count);
  flush_events();
  return IoResult::kOk;
}

void Session::drain() {
  if (state_ == State::kClosing) return;
  if (tracker_.has_value()) {
    events_.clear();
    tracker_->drain_into(events_);
    counters_.events += events_.size();
    PTRACK_COUNT_N("ptrack.net.events.out", events_.size());
    compact_out();
    std::span<const core::StepEvent> rest(events_);
    while (!rest.empty()) {
      const std::size_t n = std::min(rest.size(), kEventsPerFrame);
      append_events(out_, rest.subspan(0, n));
      rest = rest.subspan(n);
    }
    Drained drained;
    drained.events_total = counters_.events;
    drained.samples_total = counters_.samples;
    append_drained(out_, drained);
  }
  state_ = State::kClosing;
}

void Session::reject(ErrorCode code, std::uint16_t retry_after_s,
                     const char* detail) {
  // Append after whatever is queued — a frame may already be half-written
  // to the socket, and truncating the stream mid-frame would desync the
  // client's decoder right when it needs to read the ERROR. The backlog is
  // bounded (the server evicts past out_buf_limit), so appending is too.
  compact_out();
  append_error(out_, code, retry_after_s, detail);
  state_ = State::kClosing;
}

void Session::consume_out(std::size_t n) {
  PTRACK_CHECK_MSG(n <= out_pending(),
                   "Session::consume_out: within the pending region");
  out_pos_ += n;
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
  }
}

Session::IoResult Session::protocol_error(ErrorCode code,
                                          const char* detail) {
  PTRACK_LOG_WARN("net", "session_protocol_error", kv("session_id", id_),
                  kv("code", static_cast<unsigned>(code)),
                  kv("detail", detail));
  compact_out();
  append_error(out_, code, 0, detail);
  state_ = State::kClosing;
  return IoResult::kClose;
}

void Session::flush_events() {
  PTRACK_CHECK_MSG(tracker_.has_value(),
                   "Session::flush_events: tracker present");
  events_.clear();
  tracker_->poll_into(events_);
  if (events_.empty()) return;
  counters_.events += events_.size();
  PTRACK_COUNT_N("ptrack.net.events.out", events_.size());
  compact_out();
  std::span<const core::StepEvent> rest(events_);
  while (!rest.empty()) {
    const std::size_t n = std::min(rest.size(), kEventsPerFrame);
    append_events(out_, rest.subspan(0, n));
    rest = rest.subspan(n);
  }
}

void Session::compact_out() {
  // Drop the consumed prefix before appending, so the buffer level tracks
  // the true backlog (the slow-consumer limit compares against it).
  if (out_pos_ == 0) return;
  out_.erase(out_.begin(), out_.begin() + static_cast<std::ptrdiff_t>(
                                              out_pos_));
  out_pos_ = 0;
}

}  // namespace ptrack::net
