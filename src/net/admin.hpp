// Read-only admin routes served by the Server's HTTP listener: request
// routing (pure, fuzz-friendly) and body rendering for the live telemetry
// surface. The server gathers the per-session rows and status view on its
// reactor thread; rendering here is just formatting.
//
// Endpoint surface (GET-only, one request per connection):
//   /metrics       Prometheus text exposition of the metrics registry
//   /metrics.json  the ptrack.metrics.v1 JSON document (same bytes as
//                  --metrics-out and the SIGUSR1 dump)
//   /healthz       liveness: 200 {"status":"ok"} while the reactor runs
//   /readyz        readiness: 200 until drain starts, then 503
//   /sessions      ptrack.sessions.v1 JSON: server stats + one row per
//                  live session (uptime, counters, lag, quality, state)

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/server.hpp"

namespace ptrack::net {

enum class AdminRoute : std::uint8_t {
  kMetrics,
  kMetricsJson,
  kHealthz,
  kReadyz,
  kSessions,
  kUnknown,
};

/// Maps a request target to a route. The query string (from '?') is
/// ignored; matching is exact otherwise.
[[nodiscard]] AdminRoute admin_route(std::string_view target);

/// One live ingest session as shown by /sessions.
struct AdminSessionRow {
  std::uint64_t id = 0;            ///< HELLO session id (0 pre-HELLO)
  const char* state = "await_hello";
  double fs = 0.0;
  double uptime_s = 0.0;
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t samples = 0;
  std::uint64_t events = 0;
  std::uint64_t bytes_in = 0;
  std::size_t out_pending_bytes = 0;  ///< event backlog (lag) toward client
  std::size_t queue_depth_bytes = 0;  ///< ingest bytes awaiting a frame
  bool backpressured = false;
  double degraded_fraction = 0.0;     ///< quality: degraded / emitted events
  double distance_m = 0.0;
  std::size_t windows_processed = 0;
};

/// Server-level status snapshot for /healthz, /readyz and /sessions.
struct AdminStatusView {
  double uptime_s = 0.0;
  bool draining = false;
  ServerStats stats;
  std::uint64_t admin_requests = 0;
  std::uint64_t admin_shed = 0;
};

/// Renders the response body (and content type) for a route. kUnknown
/// renders a 404 body. `status_out` receives the HTTP status code.
[[nodiscard]] std::string render_admin_body(
    AdminRoute route, const AdminStatusView& view,
    const std::vector<AdminSessionRow>& sessions,
    std::string_view* content_type_out, int* status_out);

}  // namespace ptrack::net
