#include "net/server.hpp"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstring>
#include <exception>
#include <fcntl.h>
#include <poll.h>
#include <span>
#include <unistd.h>

#include "common/check.hpp"
#include "common/error.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace ptrack::net {

namespace {

/// Reactor tick: deadlines are seconds-scale, so a coarse poll timeout
/// costs nothing while keeping the loop responsive to stop/drain.
constexpr int kPollTimeoutMs = 50;
/// How long a closing connection may linger to flush its final frames.
constexpr double kLingerS = 1.0;

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

void observe_queue_depth(std::size_t depth) {
  if (!obs::enabled()) return;
  static constexpr std::array<double, 6> kBounds = {
      256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0};
  static obs::Histogram& h = obs::Registry::instance().histogram(
      "ptrack.net.queue.depth_bytes",
      std::span<const double>(kBounds.data(), kBounds.size()));
  h.observe(static_cast<double>(depth));
}

}  // namespace

Server::Server(ServerConfig cfg) : cfg_(std::move(cfg)) {
  int fds[2];
  if (::pipe(fds) != 0) {
    throw Error(std::string("Server: pipe: ") + std::strerror(errno));
  }
  wake_rd_ = fds[0];
  wake_wr_ = fds[1];
  for (const int fd : {wake_rd_, wake_wr_}) {
    const int flags = fcntl(fd, F_GETFL, 0);
    fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  read_buf_.resize(cfg_.session.read_chunk);
}

Server::~Server() {
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    listeners_[i].close();
    unlink_uds(endpoints_[i]);
  }
  for (std::size_t i = 0; i < admin_listeners_.size(); ++i) {
    admin_listeners_[i].close();
    unlink_uds(admin_endpoints_[i]);
  }
  if (wake_rd_ >= 0) ::close(wake_rd_);
  if (wake_wr_ >= 0) ::close(wake_wr_);
}

void Server::listen(const Endpoint& ep) {
  expects(!running_.load(std::memory_order_acquire),
          "Server::listen: bind before run()");
  Socket s = listen_on(ep);
  if (ep.kind == Endpoint::Kind::kTcp) tcp_port_ = local_port(s);
  // ptrack-lint: allow(alloc) bind-time setup, before the reactor runs
  listeners_.push_back(std::move(s));
  // ptrack-lint: allow(alloc) bind-time setup, before the reactor runs
  endpoints_.push_back(ep);
}

void Server::listen_admin(const Endpoint& ep) {
  expects(!running_.load(std::memory_order_acquire),
          "Server::listen_admin: bind before run()");
  Socket s = listen_on(ep);
  if (ep.kind == Endpoint::Kind::kTcp) admin_tcp_port_ = local_port(s);
  // ptrack-lint: allow(alloc) bind-time setup, before the reactor runs
  admin_listeners_.push_back(std::move(s));
  // ptrack-lint: allow(alloc) bind-time setup, before the reactor runs
  admin_endpoints_.push_back(ep);
}

void Server::request_stop() {
  stop_flag_.store(true, std::memory_order_release);
  const std::uint8_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &one, 1);
}

void Server::request_drain() {
  drain_flag_.store(true, std::memory_order_release);
  const std::uint8_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_wr_, &one, 1);
}

ServerStats Server::stats() const {
  ServerStats s;
  s.accepted = counters_.accepted.load(std::memory_order_relaxed);
  s.shed = counters_.shed.load(std::memory_order_relaxed);
  s.evicted_idle = counters_.evicted_idle.load(std::memory_order_relaxed);
  s.evicted_stall = counters_.evicted_stall.load(std::memory_order_relaxed);
  s.evicted_slow = counters_.evicted_slow.load(std::memory_order_relaxed);
  s.closed = counters_.closed.load(std::memory_order_relaxed);
  s.session_errors =
      counters_.session_errors.load(std::memory_order_relaxed);
  s.frames_ok = counters_.frames_ok.load(std::memory_order_relaxed);
  s.frames_rejected =
      counters_.frames_rejected.load(std::memory_order_relaxed);
  s.samples_in = counters_.samples_in.load(std::memory_order_relaxed);
  s.events_out = counters_.events_out.load(std::memory_order_relaxed);
  s.bytes_in = counters_.bytes_in.load(std::memory_order_relaxed);
  s.bytes_out = counters_.bytes_out.load(std::memory_order_relaxed);
  s.admin_requests =
      counters_.admin_requests.load(std::memory_order_relaxed);
  s.admin_shed = counters_.admin_shed.load(std::memory_order_relaxed);
  s.sessions_active = counters_.active.load(std::memory_order_relaxed);
  s.memory_charged_bytes =
      counters_.memory_charged.load(std::memory_order_relaxed);
  return s;
}

void Server::publish_gauges() {
  counters_.active.store(conns_.size(), std::memory_order_relaxed);
  counters_.memory_charged.store(memory_charged_,
                                 std::memory_order_relaxed);
  if (obs::enabled()) {
    static obs::Gauge& g = obs::Registry::instance().gauge(
        "ptrack.net.sessions.active");
    g.set(static_cast<double>(conns_.size()));
  }
}

void Server::drain_wakeup_fd(int fd) {
  std::array<std::uint8_t, 64> sink{};
  while (::read(fd, sink.data(), sink.size()) > 0) {
  }
}

void Server::service_shutdown_fd() {
  // The self-pipe carries a one-byte command per signal: byte 2 = dump
  // (SIGUSR1), anything else = drain (SIGTERM/SIGINT). Both may arrive in
  // one burst; dump first so a drain request cannot outrun the snapshot.
  std::array<std::uint8_t, 64> buf{};
  bool drain_requested = false;
  bool dump_requested = false;
  ssize_t n = 0;
  while ((n = ::read(cfg_.shutdown_fd, buf.data(), buf.size())) > 0) {
    for (ssize_t i = 0; i < n; ++i) {
      if (buf[static_cast<std::size_t>(i)] == 2) {
        dump_requested = true;
      } else {
        drain_requested = true;
      }
    }
  }
  if (dump_requested && cfg_.dump_hook) {
    PTRACK_LOG_INFO("net", "dump_requested");
    try {
      cfg_.dump_hook();
    } catch (const std::exception&) {
      PTRACK_LOG_ERROR("net", "dump_hook_failed");
    }
  }
  if (drain_requested) {
    drain_flag_.store(true, std::memory_order_release);
  }
}

void Server::run() {
  expects(!listeners_.empty(), "Server::run: call listen() first");
  start_time_ = Clock::now();
  running_.store(true, std::memory_order_release);
  PTRACK_LOG_INFO("net", "server_started",
                  kv("listeners", listeners_.size()),
                  kv("admin_listeners", admin_listeners_.size()),
                  kv("max_sessions", cfg_.max_sessions));
  std::vector<pollfd> pfds;
  // Reactor-setup reservation; the per-iteration rebuilds below stay
  // within it (sessions and admin connections are capped by their
  // admission budgets).
  // ptrack-lint: allow(alloc) one-time reactor-setup reservation
  pfds.reserve(cfg_.max_sessions + cfg_.admin_max_sessions +
               listeners_.size() + admin_listeners_.size() + 2);

  while (true) {
    if (stop_flag_.load(std::memory_order_acquire)) break;
    const Clock::time_point now = Clock::now();
    if (drain_flag_.exchange(false, std::memory_order_acq_rel) &&
        !draining_) {
      enter_drain(now);
    }
    if (draining_ &&
        (conns_.empty() || now >= drain_deadline_)) {
      break;
    }

    pfds.clear();
    // ptrack-lint: allow(alloc) within the run()-entry reservation
    pfds.push_back({wake_rd_, POLLIN, 0});
    if (cfg_.shutdown_fd >= 0) {
      // ptrack-lint: allow(alloc) within the run()-entry reservation
      pfds.push_back({cfg_.shutdown_fd, POLLIN, 0});
    }
    if (!draining_) {
      for (const Socket& l : listeners_) {
        // ptrack-lint: allow(alloc) within the run()-entry reservation
        pfds.push_back({l.fd(), POLLIN, 0});
      }
    }
    // The admin plane stays up during drain: operators watch it finish.
    for (const Socket& l : admin_listeners_) {
      // ptrack-lint: allow(alloc) within the run()-entry reservation
      pfds.push_back({l.fd(), POLLIN, 0});
    }
    for (const auto& [fd, ac] : admin_conns_) {
      int events = 0;
      if (!ac.responded) events |= POLLIN;
      if (ac.out_pos < ac.out.size()) events |= POLLOUT;
      // ptrack-lint: allow(alloc) within the run()-entry reservation
      pfds.push_back({fd, static_cast<short>(events), 0});
    }
    for (const auto& [fd, conn] : conns_) {
      int events = 0;
      // Backpressure: stop reading once the output backlog crosses half
      // the slow-consumer limit; the kernel buffer then pushes back.
      if (!conn.closing &&
          conn.session.out_pending() < cfg_.session.out_buf_limit / 2) {
        events |= POLLIN;
      }
      if (conn.session.out_pending() > 0) events |= POLLOUT;
      // ptrack-lint: allow(alloc) within the run()-entry reservation
      pfds.push_back({fd, static_cast<short>(events), 0});
    }

    const int rc = ::poll(pfds.data(),
                          static_cast<nfds_t>(pfds.size()),
                          kPollTimeoutMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw Error(std::string("Server: poll: ") + std::strerror(errno));
    }

    for (const pollfd& p : pfds) {
      if (p.revents == 0) continue;
      if (p.fd == wake_rd_) {
        drain_wakeup_fd(wake_rd_);
        continue;
      }
      if (cfg_.shutdown_fd >= 0 && p.fd == cfg_.shutdown_fd) {
        service_shutdown_fd();
        continue;
      }
      bool is_listener = false;
      for (const Socket& l : listeners_) {
        if (l.fd() == p.fd) {
          if (!draining_) accept_pending(l);
          is_listener = true;
          break;
        }
      }
      if (is_listener) continue;
      for (const Socket& l : admin_listeners_) {
        if (l.fd() == p.fd) {
          accept_admin_pending(l);
          is_listener = true;
          break;
        }
      }
      if (is_listener) continue;
      const auto it = conns_.find(p.fd);
      if (it == conns_.end()) {
        const auto ait = admin_conns_.find(p.fd);
        if (ait == admin_conns_.end()) continue;
        AdminConn& ac = ait->second;
        if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
          // ptrack-lint: allow(alloc) reused close list, bounded by budget
          admin_to_close_.push_back(p.fd);
          continue;
        }
        if ((p.revents & POLLIN) != 0) handle_admin_readable(ac);
        if ((p.revents & POLLOUT) != 0) handle_admin_writable(ac);
        if ((p.revents & POLLHUP) != 0 && (p.revents & POLLIN) == 0) {
          // ptrack-lint: allow(alloc) reused close list, bounded by budget
          admin_to_close_.push_back(p.fd);
        }
        continue;
      }
      Conn& conn = it->second;
      if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
        // ptrack-lint: allow(alloc) reused close list, bounded by live fds
        to_close_.push_back(p.fd);
        continue;
      }
      if ((p.revents & POLLIN) != 0) handle_readable(conn);
      if ((p.revents & POLLOUT) != 0) handle_writable(conn);
      // POLLHUP with unread data still delivers POLLIN first; a bare HUP
      // means the peer is gone for good.
      if ((p.revents & POLLHUP) != 0 && (p.revents & POLLIN) == 0) {
        // ptrack-lint: allow(alloc) reused close list, bounded by live fds
        to_close_.push_back(p.fd);
      }
    }

    const Clock::time_point tick_end = Clock::now();
    enforce_deadlines(tick_end);
    enforce_admin_deadlines(tick_end);
    close_marked();
    close_marked_admin();
    // The reactor is the log drainer: every ring flushes to the sink at
    // tick cadence, so records are at most one poll interval stale.
    obs::log::drain();
  }

  // Teardown: whatever is still open gets closed; drain already flushed
  // what the deadline allowed.
  for (auto& [fd, conn] : conns_) {
    static_cast<void>(fd);
    memory_charged_ -= std::min(memory_charged_, conn.charged);
    counters_.closed.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.net.sessions.closed");
  }
  conns_.clear();
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    listeners_[i].close();
    unlink_uds(endpoints_[i]);
  }
  listeners_.clear();
  endpoints_.clear();
  teardown_admin();
  publish_gauges();
  PTRACK_LOG_INFO("net", "server_stopped",
                  kv("accepted",
                     counters_.accepted.load(std::memory_order_relaxed)),
                  kv("closed",
                     counters_.closed.load(std::memory_order_relaxed)));
  obs::log::drain();
  running_.store(false, std::memory_order_release);
}

void Server::accept_pending(const Socket& listener) {
  while (true) {
    Socket sock = accept_on(listener);
    if (!sock.valid()) return;
    const Clock::time_point now = Clock::now();
    const std::size_t pre_charge =
        session_memory_estimate(cfg_.session, 0.0);
    const bool table_full = conns_.size() >= cfg_.max_sessions;
    const bool over_budget =
        memory_charged_ + pre_charge > cfg_.memory_budget_bytes;
    if (table_full || over_budget) {
      shed_connection(std::move(sock));
      continue;
    }
    if (cfg_.sndbuf_bytes > 0) sock.set_send_buffer(cfg_.sndbuf_bytes);
    const int fd = sock.fd();
    auto [it, inserted] = conns_.try_emplace(
        fd, std::move(sock), cfg_.session, now);
    PTRACK_CHECK_MSG(inserted, "Server::accept_pending: fresh fd key");
    it->second.charged = pre_charge;
    it->second.stalled = true;  // pre-HELLO counts against the stall clock
    it->second.stall_since = now;
    memory_charged_ += pre_charge;
    counters_.accepted.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.net.sessions.accepted");
    publish_gauges();
  }
}

void Server::shed_connection(Socket sock) {
  // Best-effort RETRY-AFTER hint; if the socket buffer cannot even take
  // one small frame the client learns from the close instead.
  std::vector<std::uint8_t> frame;
  append_error(frame, ErrorCode::kOverloaded, cfg_.retry_after_s,
               "session budget exhausted; retry later");
  try {
    static_cast<void>(sock.write_some(frame));
  } catch (const Error&) {
    // peer already gone: nothing to hint at
  }
  counters_.shed.fetch_add(1, std::memory_order_relaxed);
  PTRACK_COUNT("ptrack.net.sessions.shed");
  PTRACK_LOG_WARN("net", "session_shed",
                  kv("sessions_active", conns_.size()),
                  kv("memory_charged_bytes", memory_charged_));
}

void Server::handle_readable(Conn& conn) {
  if (conn.closing) return;
  std::ptrdiff_t n = 0;
  try {
    n = conn.sock.read_some(read_buf_);
  } catch (const Error&) {
    // ptrack-lint: allow(alloc) reused close list, bounded by live fds
    to_close_.push_back(conn.sock.fd());
    return;
  }
  if (n < 0) return;  // spurious wakeup
  if (n == 0) {
    // Orderly or abrupt peer departure; mid-stream disconnects land here.
    // ptrack-lint: allow(alloc) reused close list, bounded by live fds
    to_close_.push_back(conn.sock.fd());
    return;
  }

  const SessionCounters before = conn.session.counters();
  Session::IoResult result = Session::IoResult::kClose;
  try {
    result = conn.session.on_bytes(
        std::span<const std::uint8_t>(read_buf_.data(),
                                      static_cast<std::size_t>(n)));
  } catch (const std::exception&) {
    // Pipeline contract violation inside this session: contain it. The
    // neighbor sessions keep streaming; this one is torn down.
    counters_.session_errors.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.net.sessions.errors");
    PTRACK_LOG_ERROR("net", "session_error",
                     kv("session_id", conn.session.id()),
                     kv("fd", conn.sock.fd()));
    // ptrack-lint: allow(alloc) reused close list, bounded by live fds
    to_close_.push_back(conn.sock.fd());
    return;
  }
  const SessionCounters& after = conn.session.counters();

  counters_.bytes_in.fetch_add(after.bytes_in - before.bytes_in,
                               std::memory_order_relaxed);
  counters_.frames_ok.fetch_add(after.frames_ok - before.frames_ok,
                                std::memory_order_relaxed);
  counters_.frames_rejected.fetch_add(
      after.frames_rejected - before.frames_rejected,
      std::memory_order_relaxed);
  counters_.samples_in.fetch_add(after.samples - before.samples,
                                 std::memory_order_relaxed);
  counters_.events_out.fetch_add(after.events - before.events,
                                 std::memory_order_relaxed);
  PTRACK_COUNT_N("ptrack.net.bytes.in", static_cast<std::size_t>(n));
  observe_queue_depth(conn.session.queue_depth());

  const Clock::time_point now = Clock::now();
  const bool frame_progress =
      after.frames_ok != before.frames_ok ||
      after.frames_rejected != before.frames_rejected;
  if (frame_progress) conn.last_frame_activity = now;

  // Stall clock: armed while a partial frame pends or HELLO is missing.
  const bool stalled_now =
      conn.session.mid_frame() ||
      (!conn.session.hello_done() &&
       conn.session.state() == Session::State::kAwaitHello);
  if (stalled_now && !conn.stalled) {
    conn.stalled = true;
    conn.stall_since = now;
  } else if (!stalled_now) {
    conn.stalled = false;
  }

  // HELLO upgrades the admission charge to the session's true footprint;
  // if that upgrade blows the budget the session is shed late (better
  // than letting one 1 kHz device starve a hundred 100 Hz ones).
  if (conn.session.hello_done() && !conn.hello_charged) {
    conn.hello_charged = true;
    charge(conn);
    if (memory_charged_ > cfg_.memory_budget_bytes) {
      conn.session.reject(ErrorCode::kOverloaded, cfg_.retry_after_s,
                          "memory budget exhausted; retry later");
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      PTRACK_COUNT("ptrack.net.sessions.shed");
      begin_close(conn);
      return;
    }
  }

  if (result == Session::IoResult::kClose) {
    begin_close(conn);
    return;
  }
  if (conn.session.out_pending() > 0) handle_writable(conn);
}

void Server::handle_writable(Conn& conn) {
  while (conn.session.out_pending() > 0) {
    std::size_t written = 0;
    try {
      written = conn.sock.write_some(conn.session.out());
    } catch (const Error&) {
      // ptrack-lint: allow(alloc) reused close list, bounded by live fds
      to_close_.push_back(conn.sock.fd());
      return;
    }
    if (written == 0) break;  // socket buffer full; POLLOUT will resume
    conn.session.consume_out(written);
    counters_.bytes_out.fetch_add(written, std::memory_order_relaxed);
    PTRACK_COUNT_N("ptrack.net.bytes.out", written);
  }
  if (conn.closing && conn.session.out_pending() == 0) {
    // ptrack-lint: allow(alloc) reused close list, bounded by live fds
    to_close_.push_back(conn.sock.fd());
  }
}

void Server::begin_close(Conn& conn) {
  if (conn.closing) return;
  conn.closing = true;
  conn.linger_deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(kLingerS));
  handle_writable(conn);
}

void Server::enforce_deadlines(Clock::time_point now) {
  for (auto& [fd, conn] : conns_) {
    if (conn.closing) {
      // ptrack-lint: allow(alloc) reused close list, bounded by live fds
      if (now >= conn.linger_deadline) to_close_.push_back(fd);
      continue;
    }
    if (conn.stalled &&
        seconds_between(conn.stall_since, now) > cfg_.stall_timeout_s) {
      conn.session.reject(ErrorCode::kIdleTimeout, 0,
                          conn.session.hello_done()
                              ? "frame stalled past the deadline"
                              : "HELLO not completed in time");
      counters_.evicted_stall.fetch_add(1, std::memory_order_relaxed);
      PTRACK_COUNT("ptrack.net.sessions.evicted");
      PTRACK_LOG_WARN("net", "session_evicted", kv("reason", "stall"),
                      kv("session_id", conn.session.id()));
      begin_close(conn);
      continue;
    }
    // Slow consumer: a client that lets its event backlog sit. Crossing
    // the full limit evicts at once (burst overflow); holding the
    // backpressure watermark past the deadline evicts too (the socket
    // buffer is full and the client has stopped draining it).
    const std::size_t pending = conn.session.out_pending();
    if (pending >= cfg_.session.out_buf_limit / 2) {
      if (!conn.backpressured) {
        conn.backpressured = true;
        conn.backpressure_since = now;
      }
      if (pending > cfg_.session.out_buf_limit ||
          seconds_between(conn.backpressure_since, now) >
              cfg_.slow_consumer_timeout_s) {
        conn.session.reject(ErrorCode::kSlowConsumer, 0,
                            "event backlog not being read");
        counters_.evicted_slow.fetch_add(1, std::memory_order_relaxed);
        PTRACK_COUNT("ptrack.net.sessions.evicted");
        PTRACK_LOG_WARN("net", "session_evicted",
                        kv("reason", "slow_consumer"),
                        kv("session_id", conn.session.id()),
                        kv("out_pending_bytes", pending));
        begin_close(conn);
        continue;
      }
    } else {
      conn.backpressured = false;
    }
    if (seconds_between(conn.last_frame_activity, now) >
        cfg_.idle_timeout_s) {
      conn.session.reject(ErrorCode::kIdleTimeout, 0,
                          "no complete frame within the idle timeout");
      counters_.evicted_idle.fetch_add(1, std::memory_order_relaxed);
      PTRACK_COUNT("ptrack.net.sessions.evicted");
      PTRACK_LOG_WARN("net", "session_evicted", kv("reason", "idle"),
                      kv("session_id", conn.session.id()));
      begin_close(conn);
    }
  }
}

void Server::enter_drain(Clock::time_point now) {
  draining_ = true;
  PTRACK_LOG_INFO("net", "drain_started", kv("sessions", conns_.size()),
                  kv("deadline_s", cfg_.drain_deadline_s));
  drain_deadline_ =
      now + std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(cfg_.drain_deadline_s));
  for (std::size_t i = 0; i < listeners_.size(); ++i) {
    listeners_[i].close();
    unlink_uds(endpoints_[i]);
  }
  for (auto& [fd, conn] : conns_) {
    static_cast<void>(fd);
    if (conn.closing) continue;
    if (conn.session.state() == Session::State::kStreaming) {
      const std::uint64_t events_before = conn.session.counters().events;
      try {
        conn.session.drain();
      } catch (const std::exception&) {
        counters_.session_errors.fetch_add(1, std::memory_order_relaxed);
        PTRACK_COUNT("ptrack.net.sessions.errors");
      }
      counters_.events_out.fetch_add(
          conn.session.counters().events - events_before,
          std::memory_order_relaxed);
    } else {
      conn.session.reject(ErrorCode::kShuttingDown, cfg_.retry_after_s,
                          "draining; reconnect later");
    }
    conn.closing = true;
    conn.linger_deadline = drain_deadline_;
    handle_writable(conn);
  }
}

void Server::close_marked() {
  if (to_close_.empty()) return;
  std::sort(to_close_.begin(), to_close_.end());
  to_close_.erase(std::unique(to_close_.begin(), to_close_.end()),
                  to_close_.end());
  for (const int fd : to_close_) {
    const auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    memory_charged_ -= std::min(memory_charged_, it->second.charged);
    conns_.erase(it);
    counters_.closed.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.net.sessions.closed");
  }
  to_close_.clear();
  publish_gauges();
}

void Server::charge(Conn& conn) {
  const std::size_t est = conn.session.memory_estimate();
  memory_charged_ -= std::min(memory_charged_, conn.charged);
  conn.charged = est;
  memory_charged_ += est;
  publish_gauges();
}

}  // namespace ptrack::net
