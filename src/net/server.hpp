// ptrack_serve's engine: a single-threaded poll(2) reactor multiplexing
// many device connections onto incremental streaming pipelines.
//
// Why single-threaded: PR 5-7 made a steady-state stream hop cost ~74 µs
// flat, so one core sustains ~20k live 100 Hz streams; the reactor stays
// allocation-light, lock-free and trivially convincible about fault
// isolation (no cross-session shared state to corrupt). Scale-out is
// process-per-core behind SO_REUSEPORT, not threads in this loop.
//
// Overload & failure policy (DESIGN.md §16):
//   * Admission: a new connection is shed with ERROR{kOverloaded,
//     RETRY-AFTER} when the session table is full or the global memory
//     budget (sum of per-session estimates) is exhausted. Budgets are
//     re-checked at HELLO time, when the session's true sample rate is
//     known.
//   * Backpressure: the server stops reading a connection whose output
//     backlog crosses half the slow-consumer limit — the kernel socket
//     buffer fills and TCP/UDS flow control pushes back on the device.
//     Crossing the full limit disconnects the client (kSlowConsumer).
//   * Eviction: no complete frame within idle_timeout_s, a partial frame
//     older than stall_timeout_s (slowloris), or a connection that never
//     completes HELLO within stall_timeout_s.
//   * Fault isolation: any exception escaping a session's pipeline is
//     caught per-connection and closes only that session.
//   * Drain: request_drain() (or a readable shutdown_fd — the signal-safe
//     hook ptrack_serve's SIGTERM handler writes to) stops accepting,
//     flushes every open tracker through StreamingTracker::drain_into,
//     writes the final EVENT/DRAINED frames within drain_deadline_s and
//     returns from run().

#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/http.hpp"
#include "net/session.hpp"
#include "net/socket.hpp"

namespace ptrack::net {

struct ServerConfig {
  SessionConfig session{};
  std::size_t max_sessions = 4096;
  /// Global budget over the sum of session_memory_estimate() charges.
  std::size_t memory_budget_bytes = std::size_t{512} << 20;
  double idle_timeout_s = 30.0;
  /// Slowloris / handshake deadline: a partial frame or an incomplete
  /// HELLO may pend at most this long.
  double stall_timeout_s = 10.0;
  /// Slow-consumer deadline: a connection may stay backpressured (output
  /// backlog at or above half out_buf_limit) at most this long before it
  /// is disconnected. Crossing the full limit disconnects immediately.
  double slow_consumer_timeout_s = 5.0;
  /// Graceful-drain budget for flushing final frames on shutdown.
  double drain_deadline_s = 2.0;
  /// RETRY-AFTER hint carried by admission-shed ERROR frames (s).
  std::uint16_t retry_after_s = 5;
  /// SO_SNDBUF applied to accepted sockets (0 = kernel default). Tests
  /// shrink it to exercise the slow-consumer path without megabytes of
  /// event traffic.
  std::size_t sndbuf_bytes = 0;
  /// Readable => act. The async-signal-safe control hook: ptrack_serve
  /// installs a self-pipe whose write end its signal handlers write to.
  /// Byte value 2 invokes dump_hook on the reactor thread (SIGUSR1
  /// snapshot); any other byte requests a drain (SIGTERM/SIGINT).
  /// -1 disables. Not owned by the server.
  int shutdown_fd = -1;
  /// Invoked on the reactor thread when shutdown_fd receives byte 2 —
  /// ptrack_serve's on-demand metrics + log dump. May be empty.
  std::function<void()> dump_hook;
  /// Admission budget of the read-only HTTP admin plane (listen_admin).
  /// Separate from max_sessions so scrapers can never crowd out ingest
  /// and vice versa. Excess admin connections get an immediate 503.
  std::size_t admin_max_sessions = 8;
  /// An admin connection must complete request + response within this.
  double admin_timeout_s = 5.0;
};

/// Snapshot of the server's lifetime counters (thread-safe to take while
/// run() is live; values are relaxed-atomic reads).
struct ServerStats {
  std::uint64_t accepted = 0;        ///< connections admitted
  std::uint64_t shed = 0;            ///< refused by admission control
  std::uint64_t evicted_idle = 0;
  std::uint64_t evicted_stall = 0;   ///< slowloris / handshake deadline
  std::uint64_t evicted_slow = 0;    ///< slow consumers disconnected
  std::uint64_t closed = 0;          ///< sessions fully torn down
  std::uint64_t session_errors = 0;  ///< pipeline exceptions contained
  std::uint64_t frames_ok = 0;
  std::uint64_t frames_rejected = 0;
  std::uint64_t samples_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t admin_requests = 0;  ///< admin-plane requests answered
  std::uint64_t admin_shed = 0;      ///< admin connections refused (503)
  std::size_t sessions_active = 0;
  std::size_t memory_charged_bytes = 0;
};

class Server {
 public:
  explicit Server(ServerConfig cfg = {});
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds a listener; call before run(), repeatable (e.g. UDS + TCP).
  void listen(const Endpoint& ep);
  /// Port of the most recent kTcp listener (resolves port 0).
  [[nodiscard]] std::uint16_t tcp_port() const { return tcp_port_; }

  /// Binds a read-only HTTP admin listener (GET /metrics, /metrics.json,
  /// /healthz, /readyz, /sessions — see net/admin.hpp). Served inside the
  /// same reactor with its own admission budget; stays up during drain so
  /// operators can watch it finish.
  void listen_admin(const Endpoint& ep);
  /// Port of the most recent kTcp admin listener (resolves port 0).
  [[nodiscard]] std::uint16_t admin_tcp_port() const {
    return admin_tcp_port_;
  }

  /// Runs the reactor until request_stop() or a completed drain. Throws
  /// only on reactor-level failures (socket layer breakage), never on
  /// client misbehavior.
  void run();

  /// Immediate shutdown: close everything, no flushes. Thread-safe.
  void request_stop();
  /// Graceful shutdown: stop accepting, flush every session's pipeline,
  /// then return from run(). Thread-safe.
  void request_drain();

  [[nodiscard]] ServerStats stats() const;
  /// True between run() entry and exit (tests use it to await startup).
  [[nodiscard]] bool running() const {
    return running_.load(std::memory_order_acquire);
  }

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    Socket sock;
    Session session;
    Clock::time_point established;  ///< accept time (/sessions uptime)
    Clock::time_point last_frame_activity;
    Clock::time_point stall_since;  ///< mid-frame or pre-HELLO onset
    bool stalled = false;
    Clock::time_point backpressure_since;  ///< backlog >= limit/2 onset
    bool backpressured = false;
    Clock::time_point linger_deadline;
    bool closing = false;           ///< flush out, then close
    std::size_t charged = 0;        ///< memory admission charge
    bool hello_charged = false;     ///< charge upgraded after HELLO

    Conn(Socket s, const SessionConfig& cfg, Clock::time_point now)
        : sock(std::move(s)), session(cfg), established(now),
          last_frame_activity(now), stall_since(now), linger_deadline(now) {}
  };

  /// One admin-plane connection: parse one GET, queue one response,
  /// flush, close. Defined alongside the route logic in net/admin.cpp.
  struct AdminConn {
    Socket sock;
    HttpRequestParser parser;
    std::string out;            ///< complete response once responded
    std::size_t out_pos = 0;
    Clock::time_point since;    ///< accept time (admin_timeout_s clock)
    bool responded = false;

    AdminConn(Socket s, Clock::time_point now)
        : sock(std::move(s)), since(now) {}
  };

  void accept_pending(const Socket& listener);
  void shed_connection(Socket sock);
  void handle_readable(Conn& conn);
  void handle_writable(Conn& conn);
  void begin_close(Conn& conn);
  void enforce_deadlines(Clock::time_point now);
  void enter_drain(Clock::time_point now);
  void close_marked();
  void charge(Conn& conn);
  void publish_gauges();
  void drain_wakeup_fd(int fd);
  void service_shutdown_fd();

  // Admin plane (net/admin.cpp).
  void accept_admin_pending(const Socket& listener);
  void handle_admin_readable(AdminConn& conn);
  void handle_admin_writable(AdminConn& conn);
  void build_admin_response(AdminConn& conn, HttpParseStatus status);
  void enforce_admin_deadlines(Clock::time_point now);
  void close_marked_admin();
  void teardown_admin();

  ServerConfig cfg_;
  std::vector<Socket> listeners_;
  std::vector<Endpoint> endpoints_;
  std::uint16_t tcp_port_ = 0;
  std::unordered_map<int, Conn> conns_;
  std::vector<int> to_close_;        ///< fds marked dead this iteration
  std::vector<std::uint8_t> read_buf_;

  std::vector<Socket> admin_listeners_;
  std::vector<Endpoint> admin_endpoints_;
  std::uint16_t admin_tcp_port_ = 0;
  std::unordered_map<int, AdminConn> admin_conns_;
  std::vector<int> admin_to_close_;
  Clock::time_point start_time_{};   ///< run() entry (uptime reporting)

  int wake_rd_ = -1;                 ///< self-pipe (request_stop/drain)
  int wake_wr_ = -1;
  std::atomic<bool> stop_flag_{false};
  std::atomic<bool> drain_flag_{false};
  bool draining_ = false;
  Clock::time_point drain_deadline_{};
  std::atomic<bool> running_{false};

  std::size_t memory_charged_ = 0;

  // Lifetime counters (relaxed atomics: written by the reactor thread,
  // snapshot by stats() from anywhere).
  struct Counters {
    std::atomic<std::uint64_t> accepted{0}, shed{0}, evicted_idle{0},
        evicted_stall{0}, evicted_slow{0}, closed{0}, session_errors{0},
        frames_ok{0}, frames_rejected{0}, samples_in{0}, events_out{0},
        bytes_in{0}, bytes_out{0}, admin_requests{0}, admin_shed{0};
    std::atomic<std::size_t> active{0}, memory_charged{0};
  };
  Counters counters_;
};

}  // namespace ptrack::net
