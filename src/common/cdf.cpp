#include "common/cdf.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace ptrack {

EmpiricalCdf::EmpiricalCdf(std::span<const double> samples)
    : sorted_(samples.begin(), samples.end()) {
  expects(!sorted_.empty(), "EmpiricalCdf: non-empty samples");
  std::sort(sorted_.begin(), sorted_.end());
  mean_ = stats::mean(sorted_);
}

double EmpiricalCdf::at(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalCdf::quantile(double q) const {
  expects(q >= 0.0 && q <= 1.0, "quantile: q in [0,1]");
  return stats::percentile(sorted_, q * 100.0);
}

std::vector<std::pair<double, double>> EmpiricalCdf::series(
    std::size_t points) const {
  expects(points >= 2, "series: points >= 2");
  std::vector<std::pair<double, double>> out;
  out.reserve(points);
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

std::string EmpiricalCdf::summary() const {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f (n=%zu)",
                mean(), quantile(0.5), quantile(0.9), quantile(0.99), max(),
                size());
  return buf;
}

}  // namespace ptrack
