#include "common/json.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace ptrack::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Writer::Writer(std::ostream& os) : os_(os) {}

void Writer::before_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  check(stack_.empty() || stack_.back() == Ctx::Array,
        "json: value without key inside an object");
  check(!stack_.empty() || !root_written_, "json: multiple root values");
  if (!stack_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  } else {
    root_written_ = true;
  }
}

Writer& Writer::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::Object);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_object() {
  check(!stack_.empty() && stack_.back() == Ctx::Object,
        "json: end_object outside an object");
  check(!expecting_value_, "json: dangling key");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::Array);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_array() {
  check(!stack_.empty() && stack_.back() == Ctx::Array,
        "json: end_array outside an array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::key(const std::string& name) {
  check(!stack_.empty() && stack_.back() == Ctx::Object,
        "json: key outside an object");
  check(!expecting_value_, "json: key after key");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  write_string(name);
  os_ << ':';
  expecting_value_ = true;
  return *this;
}

void Writer::write_string(const std::string& s) {
  os_ << '"' << escape(s) << '"';
}

Writer& Writer::value(const std::string& v) {
  before_value();
  write_string(v);
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

Writer& Writer::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::size_t v) {
  return value(static_cast<long long>(v));
}

Writer& Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  before_value();
  os_ << "null";
  return *this;
}

bool Writer::complete() const {
  return stack_.empty() && root_written_ && !expecting_value_;
}

}  // namespace ptrack::json
