#include "common/json.hpp"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/error.hpp"

namespace ptrack::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

Writer::Writer(std::ostream& os) : os_(os) {}

void Writer::before_value() {
  if (expecting_value_) {
    expecting_value_ = false;
    return;
  }
  check(stack_.empty() || stack_.back() == Ctx::Array,
        "json: value without key inside an object");
  check(!stack_.empty() || !root_written_, "json: multiple root values");
  if (!stack_.empty()) {
    if (!first_.back()) os_ << ',';
    first_.back() = false;
  } else {
    root_written_ = true;
  }
}

Writer& Writer::begin_object() {
  before_value();
  os_ << '{';
  stack_.push_back(Ctx::Object);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_object() {
  check(!stack_.empty() && stack_.back() == Ctx::Object,
        "json: end_object outside an object");
  check(!expecting_value_, "json: dangling key");
  os_ << '}';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::begin_array() {
  before_value();
  os_ << '[';
  stack_.push_back(Ctx::Array);
  first_.push_back(true);
  return *this;
}

Writer& Writer::end_array() {
  check(!stack_.empty() && stack_.back() == Ctx::Array,
        "json: end_array outside an array");
  os_ << ']';
  stack_.pop_back();
  first_.pop_back();
  return *this;
}

Writer& Writer::key(const std::string& name) {
  check(!stack_.empty() && stack_.back() == Ctx::Object,
        "json: key outside an object");
  check(!expecting_value_, "json: key after key");
  if (!first_.back()) os_ << ',';
  first_.back() = false;
  write_string(name);
  os_ << ':';
  expecting_value_ = true;
  return *this;
}

void Writer::write_string(const std::string& s) {
  os_ << '"' << escape(s) << '"';
}

Writer& Writer::value(const std::string& v) {
  before_value();
  write_string(v);
  return *this;
}

Writer& Writer::value(const char* v) { return value(std::string(v)); }

Writer& Writer::value(double v) {
  before_value();
  if (std::isfinite(v)) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.10g", v);
    os_ << buf;
  } else {
    os_ << "null";  // JSON has no NaN/Inf
  }
  return *this;
}

Writer& Writer::value(long long v) {
  before_value();
  os_ << v;
  return *this;
}

Writer& Writer::value(std::size_t v) {
  return value(static_cast<long long>(v));
}

Writer& Writer::value(bool v) {
  before_value();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::null() {
  before_value();
  os_ << "null";
  return *this;
}

bool Writer::complete() const {
  return stack_.empty() && root_written_ && !expecting_value_;
}

// ---------------------------------------------------------------------------
// Parser

namespace {

[[noreturn]] void parse_fail(std::string_view what, std::size_t pos) {
  throw InvalidArgument("json parse error at offset " + std::to_string(pos) +
                        ": " + std::string(what));
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

/// Recursive-descent parser over a string_view; friend of Value so it can
/// fill the tagged storage directly.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value run() {
    Value root = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) parse_fail("trailing characters", pos_);
    return root;
  }

 private:
  static constexpr int kMaxDepth = 128;

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) parse_fail("unexpected end of input", pos_);
    return text_[pos_];
  }

  void expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) {
      parse_fail("invalid literal", pos_);
    }
    pos_ += lit.size();
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) parse_fail("truncated \\u escape", pos_);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        parse_fail("bad hex digit in \\u escape", pos_ - 1);
      }
    }
    return v;
  }

  std::string parse_string() {
    // Caller consumed nothing; we are on the opening quote.
    if (peek() != '"') parse_fail("expected string", pos_);
    ++pos_;
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) parse_fail("unterminated string", pos_);
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parse_fail("unescaped control character in string", pos_ - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail("truncated escape", pos_);
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: a low surrogate escape must follow.
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                text_[pos_ + 1] == 'u') {
              pos_ += 2;
              const std::uint32_t lo = parse_hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) {
                parse_fail("invalid low surrogate", pos_ - 4);
              }
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              parse_fail("lone high surrogate", pos_);
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            parse_fail("lone low surrogate", pos_);
          }
          append_utf8(out, cp);
          break;
        }
        default: parse_fail("invalid escape character", pos_ - 1);
      }
    }
  }

  double parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    // Integer part: 0, or [1-9][0-9]*.
    if (pos_ >= text_.size()) parse_fail("truncated number", pos_);
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      parse_fail("invalid number", pos_);
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        parse_fail("digit required after decimal point", pos_);
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        parse_fail("digit required in exponent", pos_);
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    // The token was validated char-by-char above, so strtod on a bounded
    // copy cannot read past it or accept hex/inf forms JSON forbids.
    const std::string tok(text_.substr(start, pos_ - start));
    return std::strtod(tok.c_str(), nullptr);
  }

  Value parse_value(int depth) {
    if (depth > kMaxDepth) parse_fail("nesting too deep", pos_);
    skip_ws();
    Value v;
    switch (peek()) {
      case '{': {
        ++pos_;
        v.type_ = Value::Type::Object;
        skip_ws();
        if (peek() == '}') {
          ++pos_;
          return v;
        }
        while (true) {
          skip_ws();
          std::string k = parse_string();
          skip_ws();
          if (peek() != ':') parse_fail("expected ':' after object key", pos_);
          ++pos_;
          v.obj_[std::move(k)] = parse_value(depth + 1);
          skip_ws();
          const char c = peek();
          ++pos_;
          if (c == '}') return v;
          if (c != ',') parse_fail("expected ',' or '}' in object", pos_ - 1);
        }
      }
      case '[': {
        ++pos_;
        v.type_ = Value::Type::Array;
        skip_ws();
        if (peek() == ']') {
          ++pos_;
          return v;
        }
        while (true) {
          v.arr_.push_back(parse_value(depth + 1));
          skip_ws();
          const char c = peek();
          ++pos_;
          if (c == ']') return v;
          if (c != ',') parse_fail("expected ',' or ']' in array", pos_ - 1);
        }
      }
      case '"':
        v.type_ = Value::Type::String;
        v.str_ = parse_string();
        return v;
      case 't':
        expect_literal("true");
        v.type_ = Value::Type::Bool;
        v.bool_ = true;
        return v;
      case 'f':
        expect_literal("false");
        v.type_ = Value::Type::Bool;
        v.bool_ = false;
        return v;
      case 'n':
        expect_literal("null");
        return v;
      default:
        v.type_ = Value::Type::Number;
        v.num_ = parse_number();
        return v;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool Value::as_bool() const {
  if (type_ != Type::Bool) throw InvalidArgument("json: value is not a bool");
  return bool_;
}

double Value::as_number() const {
  if (type_ != Type::Number) {
    throw InvalidArgument("json: value is not a number");
  }
  return num_;
}

const std::string& Value::as_string() const {
  if (type_ != Type::String) {
    throw InvalidArgument("json: value is not a string");
  }
  return str_;
}

const std::vector<Value>& Value::items() const {
  if (type_ != Type::Array) throw InvalidArgument("json: value is not an array");
  return arr_;
}

const std::map<std::string, Value>& Value::members() const {
  if (type_ != Type::Object) {
    throw InvalidArgument("json: value is not an object");
  }
  return obj_;
}

bool Value::contains(const std::string& k) const {
  return type_ == Type::Object && obj_.count(k) != 0;
}

const Value& Value::at(const std::string& k) const {
  const auto& m = members();
  const auto it = m.find(k);
  if (it == m.end()) throw InvalidArgument("json: missing member '" + k + "'");
  return it->second;
}

Value parse(std::string_view text) { return Parser(text).run(); }

}  // namespace ptrack::json
