// Empirical CDF utility used to reproduce the paper's CDF figures
// (Fig. 1(d), Fig. 8(a), Fig. 8(b)).

#pragma once

#include <span>
#include <string>
#include <vector>

namespace ptrack {

/// Empirical cumulative distribution built from a sample set.
class EmpiricalCdf {
 public:
  /// Builds the CDF from a non-empty sample set (copied and sorted).
  explicit EmpiricalCdf(std::span<const double> samples);

  /// P(X <= x) under the empirical distribution.
  [[nodiscard]] double at(double x) const;

  /// Value v such that P(X <= v) ~= q, q in [0, 1].
  [[nodiscard]] double quantile(double q) const;

  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double min() const { return sorted_.front(); }
  [[nodiscard]] double max() const { return sorted_.back(); }
  [[nodiscard]] std::size_t size() const { return sorted_.size(); }

  /// Evenly spaced (value, cumulative-probability) pairs, e.g. for plotting
  /// or printing a figure series. `points` >= 2.
  [[nodiscard]] std::vector<std::pair<double, double>> series(
      std::size_t points = 20) const;

  /// Renders a fixed-width textual summary line:
  /// "mean=... p50=... p90=... max=..." — used by the bench binaries.
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<double> sorted_;
  double mean_ = 0.0;
};

}  // namespace ptrack
