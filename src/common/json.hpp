// Minimal streaming JSON writer for the CLI tools' machine-readable
// output. Write-only by design (the library never needs to parse JSON).

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ptrack::json {

/// Streaming writer producing compact, valid JSON. Usage:
///
///   Writer w(os);
///   w.begin_object();
///   w.key("steps").value(42);
///   w.key("events").begin_array();
///   w.begin_object().key("t").value(1.5).end_object();
///   w.end_array().end_object();
///
/// Structural misuse (e.g. a key outside an object) throws
/// ptrack::InvariantViolation.
class Writer {
 public:
  explicit Writer(std::ostream& os);

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits an object key; must be inside an object and followed by a value.
  Writer& key(const std::string& name);

  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);
  Writer& value(long long v);
  Writer& value(std::size_t v);
  Writer& value(bool v);
  Writer& null();

  /// True when all containers are closed (the document is complete).
  [[nodiscard]] bool complete() const;

 private:
  enum class Ctx { Object, Array };
  void before_value();
  void write_string(const std::string& s);

  std::ostream& os_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;  ///< parallel to stack_: no comma yet?
  bool expecting_value_ = false;  ///< a key was just written
  bool root_written_ = false;
};

/// Escapes a string per JSON rules (exposed for tests).
std::string escape(const std::string& s);

}  // namespace ptrack::json
