// Minimal streaming JSON writer plus a small DOM parser. The writer
// produces the CLI tools' machine-readable output; the parser exists so
// tools and tests can read those documents back (metrics snapshots,
// Chrome traces) without a third-party dependency.

#pragma once

#include <cstddef>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace ptrack::json {

/// Streaming writer producing compact, valid JSON. Usage:
///
///   Writer w(os);
///   w.begin_object();
///   w.key("steps").value(42);
///   w.key("events").begin_array();
///   w.begin_object().key("t").value(1.5).end_object();
///   w.end_array().end_object();
///
/// Structural misuse (e.g. a key outside an object) throws
/// ptrack::InvariantViolation.
class Writer {
 public:
  explicit Writer(std::ostream& os);

  Writer& begin_object();
  Writer& end_object();
  Writer& begin_array();
  Writer& end_array();

  /// Emits an object key; must be inside an object and followed by a value.
  Writer& key(const std::string& name);

  Writer& value(const std::string& v);
  Writer& value(const char* v);
  Writer& value(double v);
  Writer& value(long long v);
  Writer& value(std::size_t v);
  Writer& value(bool v);
  Writer& null();

  /// True when all containers are closed (the document is complete).
  [[nodiscard]] bool complete() const;

 private:
  enum class Ctx { Object, Array };
  void before_value();
  void write_string(const std::string& s);

  std::ostream& os_;
  std::vector<Ctx> stack_;
  std::vector<bool> first_;  ///< parallel to stack_: no comma yet?
  bool expecting_value_ = false;  ///< a key was just written
  bool root_written_ = false;
};

/// Escapes a string per JSON rules (exposed for tests).
std::string escape(const std::string& s);

/// Parsed JSON value (object keys keep lexicographic order, which is also
/// the order the Writer-based serializers in this repo emit). Accessors
/// throw ptrack::InvalidArgument on type mismatch or missing member, so
/// readers get a named error instead of UB.
class Value {
 public:
  enum class Type { Null, Bool, Number, String, Array, Object };

  Value() = default;

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::Null; }
  [[nodiscard]] bool is_object() const { return type_ == Type::Object; }
  [[nodiscard]] bool is_array() const { return type_ == Type::Array; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;

  /// Array elements (throws unless this is an array).
  [[nodiscard]] const std::vector<Value>& items() const;
  /// Object members (throws unless this is an object).
  [[nodiscard]] const std::map<std::string, Value>& members() const;

  [[nodiscard]] bool contains(const std::string& k) const;
  /// Member lookup; throws InvalidArgument when the key is absent.
  [[nodiscard]] const Value& at(const std::string& k) const;

 private:
  friend class Parser;
  Type type_ = Type::Null;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> arr_;
  std::map<std::string, Value> obj_;
};

/// Parses one complete JSON document. Strict: rejects trailing garbage,
/// unterminated containers, bad escapes and bare NaN/Inf. Nesting is
/// capped (128 levels) so hostile input cannot blow the stack. Throws
/// ptrack::InvalidArgument with an offset-bearing message on any error.
Value parse(std::string_view text);

}  // namespace ptrack::json
