// Minimal 3x3 rotation-matrix type used for device mounting orientation and
// heading rotations. Row-major, value semantics.

#pragma once

#include <array>
#include <cmath>

#include "common/vec3.hpp"

namespace ptrack {

/// 3x3 matrix, row-major. Only the operations PTrack needs.
struct Mat3 {
  std::array<std::array<double, 3>, 3> m{{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}}};

  static constexpr Mat3 identity() { return {}; }

  /// Rotation about the world Z axis by yaw radians (right-handed).
  static Mat3 rot_z(double yaw) {
    const double c = std::cos(yaw);
    const double s = std::sin(yaw);
    Mat3 r;
    r.m = {{{c, -s, 0}, {s, c, 0}, {0, 0, 1}}};
    return r;
  }

  /// Rotation about the world Y axis by pitch radians.
  static Mat3 rot_y(double pitch) {
    const double c = std::cos(pitch);
    const double s = std::sin(pitch);
    Mat3 r;
    r.m = {{{c, 0, s}, {0, 1, 0}, {-s, 0, c}}};
    return r;
  }

  /// Rotation about the world X axis by roll radians.
  static Mat3 rot_x(double roll) {
    const double c = std::cos(roll);
    const double s = std::sin(roll);
    Mat3 r;
    r.m = {{{1, 0, 0}, {0, c, -s}, {0, s, c}}};
    return r;
  }

  /// Intrinsic Z-Y-X (yaw, pitch, roll) composition.
  static Mat3 from_euler(double roll, double pitch, double yaw) {
    return rot_z(yaw) * rot_y(pitch) * rot_x(roll);
  }

  /// Rodrigues rotation about a unit axis by `angle` radians.
  static Mat3 axis_angle(const Vec3& axis, double angle) {
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    const double t = 1.0 - c;
    const double x = axis.x;
    const double y = axis.y;
    const double z = axis.z;
    Mat3 r;
    r.m = {{{t * x * x + c, t * x * y - s * z, t * x * z + s * y},
            {t * x * y + s * z, t * y * y + c, t * y * z - s * x},
            {t * x * z - s * y, t * y * z + s * x, t * z * z + c}}};
    return r;
  }

  friend Mat3 operator*(const Mat3& a, const Mat3& b) {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) {
        double acc = 0.0;
        for (int k = 0; k < 3; ++k) acc += a.m[i][k] * b.m[k][j];
        r.m[i][j] = acc;
      }
    return r;
  }

  [[nodiscard]] Vec3 apply(const Vec3& v) const {
    return {m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z};
  }

  [[nodiscard]] Mat3 transposed() const {
    Mat3 r;
    for (int i = 0; i < 3; ++i)
      for (int j = 0; j < 3; ++j) r.m[i][j] = m[j][i];
    return r;
  }
};

}  // namespace ptrack
