// Error-handling primitives shared across all PTrack modules.
//
// Policy (per C++ Core Guidelines E.2 / I.5): invalid *configuration* or
// *arguments* supplied by a caller throw an exception derived from
// ptrack::Error; internal invariant violations use PT_CHECK which also throws
// so failures are observable in release builds (we never silently continue
// with corrupted state in a tracking system).

#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace ptrack {

/// Base class of every exception thrown by the PTrack library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown when a caller supplies an invalid parameter or configuration.
class InvalidArgument : public Error {
 public:
  using Error::Error;
};

/// Thrown when an internal invariant does not hold (a bug, or numerically
/// impossible sensor input such as NaN accelerations).
class InvariantViolation : public Error {
 public:
  using Error::Error;
};

namespace detail {

[[noreturn]] inline void fail_check(const char* what, std::string_view msg,
                                    const std::source_location& loc) {
  throw InvariantViolation(std::string(what) + " failed at " +
                           loc.file_name() + ":" + std::to_string(loc.line()) +
                           " (" + loc.function_name() + "): " +
                           std::string(msg));
}

}  // namespace detail

/// Precondition check for caller-supplied values. Throws InvalidArgument.
inline void expects(bool cond, std::string_view msg) {
  if (!cond) throw InvalidArgument("precondition violated: " + std::string(msg));
}

/// Internal invariant check. Throws InvariantViolation with location info.
inline void check(bool cond, std::string_view msg,
                  const std::source_location loc = std::source_location::current()) {
  if (!cond) detail::fail_check("invariant", msg, loc);
}

}  // namespace ptrack
