// Generic bounded-retention ring over a single value type: the scalar
// sibling of imu::SampleRing (see its header for the full design notes).
//
// Values are addressed by an *absolute* index that never resets over the
// stream's lifetime; trim_to(b) drops everything below b by advancing a
// dead-prefix head, and the storage is compacted with one erase when the
// dead prefix outgrows the live region. Push is amortized O(1) and span
// views stay contiguous, which a wrap-around ring cannot offer.
//
// Invalidation: any push() or trim_to() may reallocate or slide the
// storage — treat spans as borrowed for the current hop only.

#pragma once

#include <algorithm>
#include <cstddef>
#include <span>
#include <vector>

#include "common/check.hpp"

namespace ptrack {

template <class T>
class Ring {
 public:
  void push(const T& v) { data_.push_back(v); }

  /// Absolute index of the oldest retained value.
  [[nodiscard]] std::size_t base() const { return base_; }
  /// One past the absolute index of the newest value (== values pushed
  /// since construction; unaffected by trimming).
  [[nodiscard]] std::size_t end() const { return base_ + size(); }
  /// Retained value count.
  [[nodiscard]] std::size_t size() const { return data_.size() - head_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Drops values below absolute index `new_base` (clamped to
  /// [base(), end()]). Amortized O(1).
  void trim_to(std::size_t new_base) {
    new_base = std::clamp(new_base, base_, end());
    head_ += new_base - base_;
    base_ = new_base;
    if (head_ > 0 && head_ > size()) {
      data_.erase(data_.begin(), data_.begin() + static_cast<std::ptrdiff_t>(head_));
      head_ = 0;
    }
  }

  /// Borrowed view over the absolute range [b, e); requires
  /// base() <= b <= e <= end().
  [[nodiscard]] std::span<const T> span(std::size_t b, std::size_t e) const {
    PTRACK_CHECK_MSG(b <= e && b >= base_ && e <= end(),
                     "Ring: span inside the retained range");
    return {data_.data() + head_ + (b - base_), e - b};
  }

  [[nodiscard]] const T& operator[](std::size_t abs_index) const {
    PTRACK_CHECK_MSG(abs_index >= base_ && abs_index < end(),
                     "Ring: absolute index inside the retained range");
    return data_[head_ + (abs_index - base_)];
  }

  /// Mutable access for retained values (e.g. retroactive backfill of a
  /// pending tail). Finalized (trimmed-away) values are gone by definition.
  [[nodiscard]] T& at(std::size_t abs_index) {
    PTRACK_CHECK_MSG(abs_index >= base_ && abs_index < end(),
                     "Ring: absolute index inside the retained range");
    return data_[head_ + (abs_index - base_)];
  }

 private:
  std::vector<T> data_;
  std::size_t base_ = 0;  ///< absolute index of the value at head_
  std::size_t head_ = 0;  ///< dead-prefix length inside the vector
};

}  // namespace ptrack
