// Fixed-width console table used by the bench binaries to print
// paper-figure reproductions as aligned rows.

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ptrack {

/// Accumulates rows of cells and renders them with aligned columns.
/// Cells are strings; helpers format numbers consistently.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with the given precision.
  static std::string num(double v, int precision = 2);

  /// Formats an integer.
  static std::string num(long long v);

  /// Formats a percentage (0.937 -> "93.7%").
  static std::string pct(double fraction, int precision = 1);

  /// Renders the table to the stream with a separator under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner ("== title ==") used by bench binaries.
void print_banner(std::ostream& os, const std::string& title);

}  // namespace ptrack
