#include "common/csv.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace ptrack::csv {

void write(const std::string& path, const std::vector<std::string>& header,
           const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) throw Error("csv::write: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out << ',';
    out << header[i];
  }
  out << '\n';
  out.precision(12);
  for (const auto& row : rows) {
    expects(row.size() == header.size(), "csv::write: row width == header");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) throw Error("csv::write: write failed for " + path);
}

Document read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("csv::read: cannot open " + path);
  Document doc;
  std::string line;
  if (!std::getline(in, line)) throw Error("csv::read: empty file " + path);
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) doc.header.push_back(cell);
  }
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<double> row;
    row.reserve(doc.header.size());
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      try {
        row.push_back(std::stod(cell));
      } catch (const std::exception&) {
        throw Error("csv::read: non-numeric cell '" + cell + "' in " + path);
      }
    }
    if (row.size() != doc.header.size())
      throw Error("csv::read: ragged row in " + path);
    doc.rows.push_back(std::move(row));
  }
  return doc;
}

}  // namespace ptrack::csv
