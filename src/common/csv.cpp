#include "common/csv.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::csv {

namespace {

// std::stod accepts leading whitespace, trailing junk ("1.5x"), hex floats
// and "nan"/"inf" spellings. None of those belong in a trace file, so cells
// are converted under a full-match rule and non-finite values are rejected
// at the boundary (the pipeline's contracts assume finite samples).
double parse_cell(const std::string& cell, std::size_t row,
                  const std::string& name) {
  if (cell.empty() || cell.size() > kMaxCellChars) {
    throw Error("csv: empty or oversized cell in row " + std::to_string(row) +
                " of " + name);
  }
  double value = 0.0;
  std::size_t consumed = 0;
  try {
    value = std::stod(cell, &consumed);
  } catch (const std::exception&) {
    throw Error("csv: non-numeric cell '" + cell + "' in row " +
                std::to_string(row) + " of " + name);
  }
  if (consumed != cell.size()) {
    throw Error("csv: trailing junk in cell '" + cell + "' in row " +
                std::to_string(row) + " of " + name);
  }
  if (!std::isfinite(value)) {
    throw Error("csv: non-finite cell '" + cell + "' in row " +
                std::to_string(row) + " of " + name);
  }
  return value;
}

}  // namespace

void write(const std::string& path, const std::vector<std::string>& header,
           const std::vector<std::vector<double>>& rows) {
  std::ofstream out(path);
  if (!out) throw Error("csv::write: cannot open " + path);
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i) out << ',';
    out << header[i];
  }
  out << '\n';
  out.precision(12);
  for (const auto& row : rows) {
    expects(row.size() == header.size(), "csv::write: row width == header");
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << ',';
      out << row[i];
    }
    out << '\n';
  }
  if (!out) throw Error("csv::write: write failed for " + path);
}

Document parse(std::istream& in, const std::string& name) {
  Document doc;
  std::string line;
  if (!std::getline(in, line)) throw Error("csv: empty document " + name);
  {
    std::stringstream ss(line);
    std::string cell;
    while (std::getline(ss, cell, ',')) {
      if (doc.header.size() >= kMaxColumns) {
        throw Error("csv: too many columns in " + name);
      }
      doc.header.push_back(cell);
    }
  }
  if (doc.header.empty()) throw Error("csv: empty header in " + name);

  std::size_t row_number = 1;
  while (std::getline(in, line)) {
    ++row_number;
    if (line.empty()) continue;
    if (doc.rows.size() >= kMaxRows) {
      throw Error("csv: too many rows in " + name);
    }
    std::vector<double> row;
    row.reserve(doc.header.size());
    std::stringstream ss(line);
    std::string cell;
    bool extra_cells = false;
    while (std::getline(ss, cell, ',')) {
      if (row.size() >= doc.header.size()) {
        extra_cells = true;
        break;
      }
      row.push_back(parse_cell(cell, row_number, name));
    }
    // A trailing comma yields a final empty cell that getline never
    // surfaces (it hits EOF first), so it is checked on the raw line.
    if (extra_cells || row.size() != doc.header.size() ||
        line.back() == ',') {
      throw Error("csv: ragged row " + std::to_string(row_number) + " in " +
                  name + " (expected " + std::to_string(doc.header.size()) +
                  " cells)");
    }
    doc.rows.push_back(std::move(row));
  }

  // Parse postcondition relied on by every consumer: rectangular output.
  PTRACK_CHECK_MSG(
      std::all_of(doc.rows.begin(), doc.rows.end(),
                  [&](const std::vector<double>& r) {
                    return r.size() == doc.header.size();
                  }),
      "csv::parse: document is rectangular");
  return doc;
}

Document read(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("csv::read: cannot open " + path);
  return parse(in, path);
}

}  // namespace ptrack::csv
