// Deterministic random-number helper.
//
// Every stochastic component in PTrack (sensor noise, user generation,
// activity jitter) draws from an explicitly seeded Rng so that experiments
// and tests are exactly reproducible. No global RNG state exists anywhere in
// the library.

#pragma once

#include <cstdint>
#include <random>

#include "common/error.hpp"

namespace ptrack {

/// Thin wrapper over std::mt19937_64 with the distributions PTrack needs.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    expects(lo <= hi, "uniform: lo <= hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    expects(lo <= hi, "uniform_int: lo <= hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Normal with the given mean and standard deviation (stddev >= 0).
  double normal(double mean, double stddev) {
    expects(stddev >= 0.0, "normal: stddev >= 0");
    if (stddev == 0.0) return mean;
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p in [0, 1].
  bool chance(double p) {
    expects(p >= 0.0 && p <= 1.0, "chance: p in [0,1]");
    return std::bernoulli_distribution(p)(engine_);
  }

  /// Derive an independent child generator; useful to decouple the random
  /// streams of unrelated components from one master seed.
  Rng fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace ptrack
