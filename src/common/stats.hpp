// Descriptive statistics over contiguous double sequences.
//
// All functions take std::span<const double> and are pure. Functions that
// need at least one element state it; violating a precondition throws
// ptrack::InvalidArgument (these are analysis utilities, not hot loops).

#pragma once

#include <span>
#include <vector>

namespace ptrack::stats {

/// Arithmetic mean. Requires a non-empty input.
double mean(std::span<const double> xs);

/// Population variance (divides by N). Requires a non-empty input.
double variance(std::span<const double> xs);

/// Sample variance (divides by N-1). Requires at least two elements.
double sample_variance(std::span<const double> xs);

/// Population standard deviation. Requires a non-empty input.
double stddev(std::span<const double> xs);

/// Root mean square. Requires a non-empty input.
double rms(std::span<const double> xs);

/// Minimum value. Requires a non-empty input.
double min(std::span<const double> xs);

/// Maximum value. Requires a non-empty input.
double max(std::span<const double> xs);

/// Median (average of the two middle elements for even N). Non-empty input.
double median(std::span<const double> xs);

/// Linear-interpolated percentile, p in [0, 100]. Non-empty input.
double percentile(std::span<const double> xs, double p);

/// Pearson correlation coefficient of two equally sized sequences with at
/// least two elements. Returns 0 when either sequence is constant.
double pearson(std::span<const double> a, std::span<const double> b);

/// Mean absolute value.
double mean_abs(std::span<const double> xs);

/// Sum of all elements (0 for empty input).
double sum(std::span<const double> xs);

/// Remove the mean in place; no-op on empty input.
void demean(std::span<double> xs);

/// Returns xs with its mean removed.
std::vector<double> demeaned(std::span<const double> xs);

/// Online mean/variance accumulator (Welford). Suitable for streaming use.
class Running {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  /// Mean of the values seen so far; requires count() > 0.
  [[nodiscard]] double mean() const;
  /// Population variance of the values seen so far; requires count() > 0.
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace ptrack::stats
