#include "common/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/error.hpp"

namespace ptrack {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  expects(!headers_.empty(), "Table: at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  expects(cells.size() == headers_.size(), "Table: row width == header width");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::num(long long v) { return std::to_string(v); }

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", precision, fraction * 100.0);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void print_banner(std::ostream& os, const std::string& title) {
  os << "\n== " << title << " ==\n";
}

}  // namespace ptrack
