// Allocation-discipline instrumentation.
//
// When PTRACK_ALLOC_HOOKS_ENABLED is non-zero (the default; the build turns
// it off with -DPTRACK_ALLOC_HOOKS=OFF), this translation unit replaces the
// global operator new/delete family with thin wrappers over malloc/
// posix_memalign that maintain:
//
//  * per-thread monotonic counters (allocations, deallocations, cumulative
//    bytes requested) — `thread_stats()` deltas bracket a region with zero
//    synchronization cost, which is what the steady-state no-alloc test and
//    `NoAllocScope::observed()` read;
//  * process-wide live-allocation gauges (`live_allocations()`,
//    `live_bytes()`), sampled into the obs registry at metrics-scrape time
//    as `ptrack.common.alloc.live_{allocations,bytes}`.
//
// `NoAllocScope` is the enforcement half: a region that must not touch the
// heap at steady state constructs one. In `kCount` mode it only measures
// (`observed()`); in `kEnforce` mode — armed only when both the hooks and
// the PTRACK_CHECK contract layer are compiled in — any throwing operator
// new on the same thread inside the scope raises InvariantViolation *at the
// offending allocation site*, so a debugger or sanitizer backtrace lands on
// the line that allocated, not on the scope exit.
//
// Sanitizer interplay: the hooks forward to malloc/free, which ASan/TSan
// intercept, so leak detection and bounds checking keep working under the
// replaced operators (new/delete-mismatch checking is the one ASan feature
// this trades away). All state is either plain `thread_local` PODs (safe to
// touch from the very first allocation on a thread, no dynamic init) or
// `constinit` atomics.

#pragma once

#include <cstdint>

#ifndef PTRACK_ALLOC_HOOKS_ENABLED
#define PTRACK_ALLOC_HOOKS_ENABLED 1
#endif

namespace ptrack::alloc {

/// Monotonic per-thread allocation counters. Deltas of two snapshots bound
/// the allocator activity of the current thread between them.
struct ThreadStats {
  std::uint64_t allocations = 0;    ///< operator-new calls on this thread
  std::uint64_t deallocations = 0;  ///< operator-delete calls on this thread
  std::uint64_t bytes = 0;          ///< cumulative bytes requested
};

/// True when the operator new/delete replacements are compiled in. All
/// counters read as zero when this is false.
constexpr bool hooks_enabled() noexcept {
  return PTRACK_ALLOC_HOOKS_ENABLED != 0;
}

/// Snapshot of the calling thread's counters.
ThreadStats thread_stats() noexcept;

/// Process-wide count of currently-live heap blocks / bytes.
std::uint64_t live_allocations() noexcept;
std::uint64_t live_bytes() noexcept;

/// RAII allocation guard for a steady-state region.
class NoAllocScope {
 public:
  enum class Mode {
    kCount,    ///< measure only; read the result via observed()
    kEnforce,  ///< additionally fail on any allocation (checks builds)
  };

  /// `label` must outlive the scope (pass a string literal); it names the
  /// region in the violation message.
  explicit NoAllocScope(const char* label, Mode mode = Mode::kCount) noexcept;
  ~NoAllocScope();

  NoAllocScope(const NoAllocScope&) = delete;
  NoAllocScope& operator=(const NoAllocScope&) = delete;

  /// Allocations observed on this thread since the scope was entered.
  std::uint64_t observed() const noexcept;

  /// True when kEnforce actually arms (hooks and contract checks both
  /// compiled in); otherwise kEnforce degrades to kCount.
  static bool enforcement_available() noexcept;

 private:
  const char* label_;
  std::uint64_t entry_allocations_;
  bool armed_;
};

}  // namespace ptrack::alloc
