// Contract macros for internal invariants.
//
// PTRACK_CHECK / PTRACK_CHECK_MSG complement the always-on ptrack::expects
// (argument validation at API boundaries) with *internal* invariant
// assertions that are free in optimized production builds:
//
//  * Compiled IN whenever PTRACK_ENABLE_CHECKS is defined. The build system
//    defines it for Debug builds, for every sanitizer build
//    (PTRACK_SANITIZE != ""), and for the default RelWithDebInfo developer
//    configuration (PTRACK_CHECKS=AUTO), so ctest always exercises the
//    contracts.
//  * Compiled OUT (condition not evaluated) for Release/MinSizeRel or
//    -DPTRACK_CHECKS=OFF, so a violated-contract expression may not have
//    side effects.
//
// A failed check throws ptrack::InvariantViolation carrying the expression
// text and source location, matching the error.hpp policy: a tracking
// system must never silently continue with corrupted state.

#pragma once

#include "common/error.hpp"

namespace ptrack {

/// True when contract checks are compiled into this translation unit.
/// Lets tests (and callers choosing an algorithmic fallback) branch on the
/// active contract mode instead of duplicating the preprocessor logic.
constexpr bool checks_enabled() noexcept {
#ifdef PTRACK_ENABLE_CHECKS
  return true;
#else
  return false;
#endif
}

namespace detail {

[[noreturn]] inline void fail_contract(const char* expr, std::string_view msg,
                                       const std::source_location& loc) {
  std::string what = "contract violated: (";
  what += expr;
  what += ") at ";
  what += loc.file_name();
  what += ":";
  what += std::to_string(loc.line());
  what += " (";
  what += loc.function_name();
  what += ")";
  if (!msg.empty()) {
    what += ": ";
    what += msg;
  }
  throw InvariantViolation(what);
}

}  // namespace detail
}  // namespace ptrack

#ifdef PTRACK_ENABLE_CHECKS

#define PTRACK_CHECK(cond)                                        \
  do {                                                            \
    if (!(cond)) {                                                \
      ::ptrack::detail::fail_contract(#cond, {},                  \
                                      std::source_location::current()); \
    }                                                             \
  } while (false)

#define PTRACK_CHECK_MSG(cond, msg)                               \
  do {                                                            \
    if (!(cond)) {                                                \
      ::ptrack::detail::fail_contract(#cond, (msg),               \
                                      std::source_location::current()); \
    }                                                             \
  } while (false)

#else

// Checks compiled out: the condition is NOT evaluated (contract expressions
// must be side-effect free), but it stays visible to the compiler so the
// code keeps type-checking in every configuration.
#define PTRACK_CHECK(cond) \
  do {                     \
    if (false) {           \
      (void)(cond);        \
    }                      \
  } while (false)

#define PTRACK_CHECK_MSG(cond, msg) \
  do {                              \
    if (false) {                    \
      (void)(cond);                 \
      (void)(msg);                  \
    }                               \
  } while (false)

#endif  // PTRACK_ENABLE_CHECKS
