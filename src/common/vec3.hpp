// A small 3-vector used for accelerations, angular rates and positions.
// Value type, constexpr-friendly, no dynamic allocation.

#pragma once

#include <cmath>
#include <ostream>

namespace ptrack {

/// 3-component double vector. Components follow the *world* convention used
/// throughout PTrack: x = anterior (walking direction), y = lateral (left),
/// z = vertical (up). Device-frame vectors use the same type; the frame is
/// documented at each use site.
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }
  constexpr Vec3& operator/=(double s) {
    x /= s; y /= s; z /= s;
    return *this;
  }

  friend constexpr Vec3 operator+(Vec3 a, const Vec3& b) { return a += b; }
  friend constexpr Vec3 operator-(Vec3 a, const Vec3& b) { return a -= b; }
  friend constexpr Vec3 operator*(Vec3 a, double s) { return a *= s; }
  friend constexpr Vec3 operator*(double s, Vec3 a) { return a *= s; }
  friend constexpr Vec3 operator/(Vec3 a, double s) { return a /= s; }
  friend constexpr Vec3 operator-(const Vec3& a) { return {-a.x, -a.y, -a.z}; }
  friend constexpr bool operator==(const Vec3&, const Vec3&) = default;

  [[nodiscard]] constexpr double dot(const Vec3& o) const {
    return x * o.x + y * o.y + z * o.z;
  }
  [[nodiscard]] constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  [[nodiscard]] double norm() const { return std::sqrt(dot(*this)); }
  [[nodiscard]] constexpr double norm2() const { return dot(*this); }

  /// Unit vector in the same direction; returns the zero vector unchanged.
  [[nodiscard]] Vec3 normalized() const {
    const double n = norm();
    return n > 0.0 ? *this / n : *this;
  }

  friend std::ostream& operator<<(std::ostream& os, const Vec3& v) {
    return os << '(' << v.x << ", " << v.y << ", " << v.z << ')';
  }
};

/// Standard gravity used across the library (m/s^2).
inline constexpr double kGravity = 9.80665;

/// World-frame unit vectors.
inline constexpr Vec3 kAnterior{1.0, 0.0, 0.0};
inline constexpr Vec3 kLateral{0.0, 1.0, 0.0};
inline constexpr Vec3 kVertical{0.0, 0.0, 1.0};

}  // namespace ptrack
