// Angle helpers: conversions and wrapping.

#pragma once

#include <cmath>
#include <numbers>

namespace ptrack {

inline constexpr double kPi = std::numbers::pi;
inline constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Degrees -> radians.
constexpr double deg2rad(double deg) { return deg * kPi / 180.0; }

/// Radians -> degrees.
constexpr double rad2deg(double rad) { return rad * 180.0 / kPi; }

/// Wrap an angle to (-pi, pi].
inline double wrap_pi(double a) {
  a = std::fmod(a + kPi, kTwoPi);
  if (a <= 0.0) a += kTwoPi;
  return a - kPi;
}

/// Wrap an angle to [0, 2*pi).
inline double wrap_2pi(double a) {
  a = std::fmod(a, kTwoPi);
  if (a < 0.0) a += kTwoPi;
  return a;
}

/// Smallest signed difference a-b wrapped to (-pi, pi].
inline double angle_diff(double a, double b) { return wrap_pi(a - b); }

}  // namespace ptrack
