// Result-or-error vocabulary type for fault-isolated batch execution.
//
// A cohort run must not let one bad trace abort the other ten thousand:
// runtime::BatchRunner and runtime::load_trace_dir report per-item failures
// as values instead of exceptions, and Expected<T, E> is the carrier. It is
// a deliberately small subset of std::expected (C++23, not yet available on
// every toolchain we target): implicit construction from a value or from
// Unexpected<E>, observers, and value_or. Accessing the wrong alternative
// throws ptrack::Error — misuse must be loud, per the error.hpp policy.

#pragma once

#include <utility>
#include <variant>

#include "common/error.hpp"

namespace ptrack {

/// Wraps an error value so Expected<T, E> construction is unambiguous even
/// when T and E are convertible to each other.
template <typename E>
struct Unexpected {
  E error;
};

template <typename E>
[[nodiscard]] Unexpected<std::decay_t<E>> make_unexpected(E&& error) {
  return Unexpected<std::decay_t<E>>{std::forward<E>(error)};
}

/// Holds either a success value T or an error E. Default-constructs to a
/// default T (a success), so vectors of Expected can be sized up front and
/// filled positionally by worker threads.
template <typename T, typename E>
class Expected {
 public:
  Expected() : v_(std::in_place_index<0>) {}
  Expected(T value) : v_(std::in_place_index<0>, std::move(value)) {}
  Expected(Unexpected<E> error)
      : v_(std::in_place_index<1>, std::move(error.error)) {}

  [[nodiscard]] bool has_value() const { return v_.index() == 0; }
  explicit operator bool() const { return has_value(); }

  [[nodiscard]] const T& value() const& {
    expects_value();
    return std::get<0>(v_);
  }
  [[nodiscard]] T& value() & {
    expects_value();
    return std::get<0>(v_);
  }
  [[nodiscard]] T&& value() && {
    expects_value();
    return std::get<0>(std::move(v_));
  }

  [[nodiscard]] const E& error() const& {
    if (has_value()) throw Error("Expected: error() called on a value");
    return std::get<1>(v_);
  }
  [[nodiscard]] E& error() & {
    if (has_value()) throw Error("Expected: error() called on a value");
    return std::get<1>(v_);
  }

  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T& operator*() & { return value(); }

  [[nodiscard]] T value_or(T fallback) const& {
    return has_value() ? std::get<0>(v_) : std::move(fallback);
  }

 private:
  void expects_value() const {
    if (!has_value()) throw Error("Expected: value() called on an error");
  }

  std::variant<T, E> v_;
};

}  // namespace ptrack
