#include "common/alloc_hooks.hpp"

#include "common/check.hpp"

#if PTRACK_ALLOC_HOOKS_ENABLED

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>
#include <string>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

namespace ptrack::alloc {
namespace {

// Plain PODs: zero-initialized, no dynamic init, so the hooks may run from
// the very first allocation of a thread (including before main).
struct Tls {
  std::uint64_t allocations;
  std::uint64_t deallocations;
  std::uint64_t bytes;
  int enforce_depth;         // > 0: an armed NoAllocScope encloses us
  const char* enforce_label; // innermost armed scope, for the message
  bool reporting;            // true while building the violation exception
};
thread_local Tls t_alloc;

constinit std::atomic<std::uint64_t> g_live_allocs{0};
constinit std::atomic<std::uint64_t> g_live_bytes{0};

std::size_t usable_size(void* p, std::size_t requested) noexcept {
#if defined(__GLIBC__)
  (void)requested;
  return malloc_usable_size(p);
#else
  (void)p;
  return requested;
#endif
}

void note_alloc(void* p, std::size_t requested) noexcept {
  ++t_alloc.allocations;
  t_alloc.bytes += requested;
  g_live_allocs.fetch_add(1, std::memory_order_relaxed);
  g_live_bytes.fetch_add(usable_size(p, requested), std::memory_order_relaxed);
}

[[noreturn]] void fail_enforced(std::size_t size) {
  // Building the exception string allocates; flag the thread so the hook
  // lets those allocations through (NoAllocScope's destructor clears the
  // flag during unwinding).
  t_alloc.reporting = true;
  const char* label =
      t_alloc.enforce_label != nullptr ? t_alloc.enforce_label : "<unnamed>";
  throw InvariantViolation(std::string("heap allocation of ") +
                           std::to_string(size) + " bytes inside NoAllocScope '" +
                           label + "'");
}

void* do_alloc(std::size_t size, std::size_t align, bool can_throw) {
  if (t_alloc.enforce_depth > 0 && !t_alloc.reporting && can_throw) {
    fail_enforced(size);
  }
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (align > alignof(std::max_align_t)) {
      const std::size_t a = align < sizeof(void*) ? sizeof(void*) : align;
      if (posix_memalign(&p, a, size) != 0) p = nullptr;
    } else {
      p = std::malloc(size);
    }
    if (p != nullptr) {
      note_alloc(p, size);
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) {
      if (can_throw) throw std::bad_alloc{};
      return nullptr;
    }
    handler();
  }
}

void do_free(void* p) noexcept {
  if (p == nullptr) return;
  ++t_alloc.deallocations;
  g_live_allocs.fetch_sub(1, std::memory_order_relaxed);
  g_live_bytes.fetch_sub(usable_size(p, 0), std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

ThreadStats thread_stats() noexcept {
  return ThreadStats{t_alloc.allocations, t_alloc.deallocations, t_alloc.bytes};
}

std::uint64_t live_allocations() noexcept {
  return g_live_allocs.load(std::memory_order_relaxed);
}

std::uint64_t live_bytes() noexcept {
  return g_live_bytes.load(std::memory_order_relaxed);
}

bool NoAllocScope::enforcement_available() noexcept { return checks_enabled(); }

NoAllocScope::NoAllocScope(const char* label, Mode mode) noexcept
    : label_(label),
      entry_allocations_(t_alloc.allocations),
      armed_(mode == Mode::kEnforce && enforcement_available()) {
  if (armed_) {
    ++t_alloc.enforce_depth;
    t_alloc.enforce_label = label_;
  }
}

NoAllocScope::~NoAllocScope() {
  if (armed_) {
    --t_alloc.enforce_depth;
    if (t_alloc.enforce_depth == 0) t_alloc.enforce_label = nullptr;
    t_alloc.reporting = false;  // re-arm after a reported violation unwinds
  }
}

std::uint64_t NoAllocScope::observed() const noexcept {
  return t_alloc.allocations - entry_allocations_;
}

}  // namespace ptrack::alloc

// ---------------------------------------------------------------------------
// Global replacement set. Everything funnels through do_alloc/do_free so the
// counters agree regardless of which overload the compiler picks; aligned
// storage comes from posix_memalign, which free() releases, so the delete
// overloads do not need to distinguish alignment.

// ptrack-lint: push-allow(alloc) operator-new replacement TU

void* operator new(std::size_t size) {
  return ptrack::alloc::do_alloc(size, 0, /*can_throw=*/true);
}
void* operator new[](std::size_t size) {
  return ptrack::alloc::do_alloc(size, 0, /*can_throw=*/true);
}
void* operator new(std::size_t size, std::align_val_t al) {
  return ptrack::alloc::do_alloc(size, static_cast<std::size_t>(al),
                                 /*can_throw=*/true);
}
void* operator new[](std::size_t size, std::align_val_t al) {
  return ptrack::alloc::do_alloc(size, static_cast<std::size_t>(al),
                                 /*can_throw=*/true);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return ptrack::alloc::do_alloc(size, 0, /*can_throw=*/false);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return ptrack::alloc::do_alloc(size, 0, /*can_throw=*/false);
}
void* operator new(std::size_t size, std::align_val_t al,
                   const std::nothrow_t&) noexcept {
  return ptrack::alloc::do_alloc(size, static_cast<std::size_t>(al),
                                 /*can_throw=*/false);
}
void* operator new[](std::size_t size, std::align_val_t al,
                     const std::nothrow_t&) noexcept {
  return ptrack::alloc::do_alloc(size, static_cast<std::size_t>(al),
                                 /*can_throw=*/false);
}

void operator delete(void* p) noexcept { ptrack::alloc::do_free(p); }
void operator delete[](void* p) noexcept { ptrack::alloc::do_free(p); }
void operator delete(void* p, std::size_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  ptrack::alloc::do_free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  ptrack::alloc::do_free(p);
}

// ptrack-lint: pop-allow(alloc)

#else  // !PTRACK_ALLOC_HOOKS_ENABLED

namespace ptrack::alloc {

ThreadStats thread_stats() noexcept { return {}; }
std::uint64_t live_allocations() noexcept { return 0; }
std::uint64_t live_bytes() noexcept { return 0; }

bool NoAllocScope::enforcement_available() noexcept { return false; }

NoAllocScope::NoAllocScope(const char* label, Mode) noexcept
    : label_(label), entry_allocations_(0), armed_(false) {}
NoAllocScope::~NoAllocScope() = default;
std::uint64_t NoAllocScope::observed() const noexcept { return 0; }

}  // namespace ptrack::alloc

#endif  // PTRACK_ALLOC_HOOKS_ENABLED
