#include "common/cli.hpp"

#include <sstream>

#include "common/error.hpp"

namespace ptrack::cli {

Args::Args(int argc, const char* const* argv, std::vector<OptionSpec> specs)
    : specs_(std::move(specs)) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      throw InvalidArgument("unexpected argument '" + arg +
                            "' (options start with --)");
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const OptionSpec* spec = find_spec(arg);
    if (spec == nullptr) throw InvalidArgument("unknown option --" + arg);
    if (spec->boolean) {
      if (has_value) {
        throw InvalidArgument("option --" + arg + " takes no value");
      }
      values_[arg] = "true";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        throw InvalidArgument("option --" + arg + " needs a value");
      }
      value = argv[++i];
    }
    values_[arg] = value;
  }
}

const OptionSpec* Args::find_spec(const std::string& name) const {
  for (const OptionSpec& s : specs_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

bool Args::has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Args::get_string(const std::string& name) const {
  const auto it = values_.find(name);
  if (it != values_.end()) return it->second;
  const OptionSpec* spec = find_spec(name);
  expects(spec != nullptr, "get_string: option is declared");
  if (!spec->default_value.empty()) return spec->default_value;
  throw InvalidArgument("missing required option --" + name);
}

double Args::get_double(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    return std::stod(v);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + ": '" + v + "' is not a number");
  }
}

long Args::get_int(const std::string& name) const {
  const std::string v = get_string(name);
  try {
    return std::stol(v);
  } catch (const std::exception&) {
    throw InvalidArgument("option --" + name + ": '" + v +
                          "' is not an integer");
  }
}

bool Args::get_bool(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Args::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [options]\n\noptions:\n";
  for (const OptionSpec& s : specs_) {
    os << "  --" << s.name;
    if (!s.boolean) os << " <value>";
    os << "\n      " << s.help;
    if (!s.default_value.empty()) os << " (default: " << s.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this text\n";
  return os.str();
}

}  // namespace ptrack::cli
