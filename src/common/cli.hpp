// Minimal command-line argument parser for the PTrack tools.
//
// Supports --flag value, --flag=value and boolean --flag forms, typed
// accessors with defaults, required-argument checks and an auto-generated
// usage text. Deliberately tiny: no subcommands, no positional arguments.

#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace ptrack::cli {

/// Declarative description of one option (for the usage text).
struct OptionSpec {
  std::string name;     ///< without the leading "--"
  std::string help;
  std::string default_value;  ///< shown in usage; empty = required/bool
  bool boolean = false;
};

/// Parsed arguments.
class Args {
 public:
  /// Parses argv; throws ptrack::InvalidArgument on malformed input or
  /// unknown options (specs define the accepted set).
  Args(int argc, const char* const* argv, std::vector<OptionSpec> specs);

  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed accessors; throw InvalidArgument when absent and no default was
  /// declared, or when conversion fails.
  [[nodiscard]] std::string get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] long get_int(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Usage text assembled from the specs.
  [[nodiscard]] std::string usage(const std::string& program) const;

  /// True when --help was passed.
  [[nodiscard]] bool help_requested() const { return help_; }

 private:
  [[nodiscard]] const OptionSpec* find_spec(const std::string& name) const;

  std::vector<OptionSpec> specs_;
  std::map<std::string, std::string> values_;
  bool help_ = false;
};

}  // namespace ptrack::cli
