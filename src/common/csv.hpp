// Minimal CSV reader/writer used for trace I/O and bench exports.
// Handles plain numeric CSV (no quoting/escapes — traces never need them).

#pragma once

#include <string>
#include <vector>

namespace ptrack::csv {

/// One parsed CSV document: a header row plus data rows of doubles.
struct Document {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Writes rows of doubles with a header line. Throws ptrack::Error on I/O
/// failure.
void write(const std::string& path, const std::vector<std::string>& header,
           const std::vector<std::vector<double>>& rows);

/// Reads a CSV written by write(); throws ptrack::Error on I/O or parse
/// failure (including ragged rows).
Document read(const std::string& path);

}  // namespace ptrack::csv
