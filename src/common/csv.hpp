// Minimal CSV reader/writer used for trace I/O and bench exports.
// Handles plain numeric CSV (no quoting/escapes — traces never need them).
//
// The reader is deliberately strict: it is the trust boundary between
// on-disk data (possibly truncated, corrupted, or hostile) and the numeric
// pipeline, so every malformed shape is rejected with a ptrack::Error
// instead of propagating garbage values downstream. The fuzz harnesses in
// fuzz/ drive parse() directly with arbitrary bytes.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace ptrack::csv {

/// One parsed CSV document: a header row plus data rows of doubles.
struct Document {
  std::vector<std::string> header;
  std::vector<std::vector<double>> rows;
};

/// Hard limits on accepted documents. Generous for every legitimate trace
/// (days of 100 Hz data), small enough to reject absurd or adversarial
/// inputs before they allocate unbounded memory.
inline constexpr std::size_t kMaxColumns = 4096;
inline constexpr std::size_t kMaxRows = 50'000'000;
inline constexpr std::size_t kMaxCellChars = 64;

/// Writes rows of doubles with a header line. Throws ptrack::Error on I/O
/// failure.
void write(const std::string& path, const std::vector<std::string>& header,
           const std::vector<std::vector<double>>& rows);

/// Parses CSV from a stream. `name` labels the source in error messages.
/// Throws ptrack::Error on malformed input: empty document, ragged rows,
/// non-numeric or non-finite cells, oversized cells, or documents exceeding
/// kMaxColumns / kMaxRows.
Document parse(std::istream& in, const std::string& name);

/// Reads a CSV file via parse(); throws ptrack::Error on I/O or parse
/// failure.
Document read(const std::string& path);

}  // namespace ptrack::csv
