#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.hpp"

namespace ptrack::stats {

double mean(std::span<const double> xs) {
  expects(!xs.empty(), "mean: non-empty input");
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  expects(!xs.empty(), "variance: non-empty input");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double sample_variance(std::span<const double> xs) {
  expects(xs.size() >= 2, "sample_variance: at least two elements");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double rms(std::span<const double> xs) {
  expects(!xs.empty(), "rms: non-empty input");
  double acc = 0.0;
  for (double x : xs) acc += x * x;
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double min(std::span<const double> xs) {
  expects(!xs.empty(), "min: non-empty input");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  expects(!xs.empty(), "max: non-empty input");
  return *std::max_element(xs.begin(), xs.end());
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  expects(!xs.empty(), "percentile: non-empty input");
  expects(p >= 0.0 && p <= 100.0, "percentile: p in [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  expects(a.size() == b.size(), "pearson: equal sizes");
  expects(a.size() >= 2, "pearson: at least two elements");
  const double ma = mean(a);
  const double mb = mean(b);
  double sab = 0.0;
  double saa = 0.0;
  double sbb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double da = a[i] - ma;
    const double db = b[i] - mb;
    sab += da * db;
    saa += da * da;
    sbb += db * db;
  }
  if (saa == 0.0 || sbb == 0.0) return 0.0;
  return sab / std::sqrt(saa * sbb);
}

double mean_abs(std::span<const double> xs) {
  expects(!xs.empty(), "mean_abs: non-empty input");
  double acc = 0.0;
  for (double x : xs) acc += std::abs(x);
  return acc / static_cast<double>(xs.size());
}

double sum(std::span<const double> xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0);
}

void demean(std::span<double> xs) {
  if (xs.empty()) return;
  const double m = mean(xs);
  for (double& x : xs) x -= m;
}

std::vector<double> demeaned(std::span<const double> xs) {
  std::vector<double> out(xs.begin(), xs.end());
  demean(out);
  return out;
}

void Running::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Running::mean() const {
  expects(n_ > 0, "Running::mean: no samples");
  return mean_;
}

double Running::variance() const {
  expects(n_ > 0, "Running::variance: no samples");
  return m2_ / static_cast<double>(n_);
}

double Running::stddev() const { return std::sqrt(variance()); }

double Running::min() const {
  expects(n_ > 0, "Running::min: no samples");
  return min_;
}

double Running::max() const {
  expects(n_ > 0, "Running::max: no samples");
  return max_;
}

}  // namespace ptrack::stats
