#include "dsp/biquad.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::dsp {

namespace {

void check_band(double f, double fs) {
  expects(fs > 0.0, "biquad design: fs > 0");
  expects(f > 0.0 && f < fs / 2.0, "biquad design: 0 < f < fs/2");
}

}  // namespace

BiquadCoeffs lowpass(double cutoff_hz, double fs, double q) {
  check_band(cutoff_hz, fs);
  expects(q > 0.0, "lowpass: q > 0");
  const double w0 = kTwoPi * cutoff_hz / fs;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 - cw) / 2.0 / a0;
  c.b1 = (1.0 - cw) / a0;
  c.b2 = c.b0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs highpass(double cutoff_hz, double fs, double q) {
  check_band(cutoff_hz, fs);
  expects(q > 0.0, "highpass: q > 0");
  const double w0 = kTwoPi * cutoff_hz / fs;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = (1.0 + cw) / 2.0 / a0;
  c.b1 = -(1.0 + cw) / a0;
  c.b2 = c.b0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

BiquadCoeffs bandpass(double center_hz, double fs, double q) {
  check_band(center_hz, fs);
  expects(q > 0.0, "bandpass: q > 0");
  const double w0 = kTwoPi * center_hz / fs;
  const double cw = std::cos(w0);
  const double sw = std::sin(w0);
  const double alpha = sw / (2.0 * q);
  const double a0 = 1.0 + alpha;
  BiquadCoeffs c;
  c.b0 = alpha / a0;
  c.b1 = 0.0;
  c.b2 = -alpha / a0;
  c.a1 = -2.0 * cw / a0;
  c.a2 = (1.0 - alpha) / a0;
  return c;
}

std::vector<double> Biquad::process(std::span<const double> xs) {
  std::vector<double> out;
  // ptrack-lint: push-allow(alloc) batch-only wrapper; streaming uses
  // the allocation-free incremental path
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  // ptrack-lint: pop-allow(alloc)
  return out;
}

void Biquad::process_inplace(std::span<double> xs) {
  for (double& x : xs) x = step(x);
}

BiquadCascade::BiquadCascade(std::span<const BiquadCoeffs> sections) {
  expects(sections.size() <= kMaxSections,
          "BiquadCascade: at most kMaxSections sections");
  count_ = sections.size();
  for (std::size_t i = 0; i < count_; ++i) sections_[i] = Biquad(sections[i]);
}

std::vector<double> BiquadCascade::process(std::span<const double> xs) {
  std::vector<double> out;
  // ptrack-lint: push-allow(alloc) batch-only wrapper; streaming uses
  // the allocation-free incremental path
  out.reserve(xs.size());
  for (double x : xs) out.push_back(step(x));
  // ptrack-lint: pop-allow(alloc)
  return out;
}

void BiquadCascade::process_inplace(std::span<double> xs) {
  for (double& x : xs) x = step(x);
}

void BiquadCascade::reset() {
  for (auto& s : sections_) s.reset();
}

}  // namespace ptrack::dsp
