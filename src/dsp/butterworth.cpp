#include "dsp/butterworth.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::dsp {

namespace {

// Section quality factors of an order-n Butterworth: one section per
// conjugate pole pair, Q_k = 1 / (2 sin((2k+1)pi/(2n))). An odd order adds a
// real pole, realized as a degenerate (first-order) biquad. Order is capped
// at 12, so the section set always fits BiquadCascade's inline storage and
// filter design stays heap-free (it runs on the per-hop projection path).
struct SectionSet {
  std::array<BiquadCoeffs, BiquadCascade::kMaxSections> coeffs{};
  std::size_t count = 0;

  void push(const BiquadCoeffs& c) { coeffs[count++] = c; }
  [[nodiscard]] std::span<const BiquadCoeffs> span() const {
    return {coeffs.data(), count};
  }
};

double butterworth_q(int k, int order) {
  const double theta = (2.0 * k + 1.0) * kPi / (2.0 * order);
  return 1.0 / (2.0 * std::sin(theta));
}

BiquadCoeffs first_order_lowpass(double cutoff_hz, double fs) {
  const double k = std::tan(kPi * cutoff_hz / fs);
  BiquadCoeffs c;
  c.b0 = k / (k + 1.0);
  c.b1 = c.b0;
  c.b2 = 0.0;
  c.a1 = (k - 1.0) / (k + 1.0);
  c.a2 = 0.0;
  return c;
}

BiquadCoeffs first_order_highpass(double cutoff_hz, double fs) {
  const double k = std::tan(kPi * cutoff_hz / fs);
  BiquadCoeffs c;
  c.b0 = 1.0 / (k + 1.0);
  c.b1 = -c.b0;
  c.b2 = 0.0;
  c.a1 = (k - 1.0) / (k + 1.0);
  c.a2 = 0.0;
  return c;
}

void check_design(int order, double cutoff_hz, double fs) {
  expects(order >= 1 && order <= 12, "butterworth: order in [1,12]");
  expects(fs > 0.0, "butterworth: fs > 0");
  expects(cutoff_hz > 0.0 && cutoff_hz < fs / 2.0,
          "butterworth: 0 < cutoff < fs/2");
}

}  // namespace

BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double fs) {
  check_design(order, cutoff_hz, fs);
  SectionSet sections;
  for (int k = 0; k < order / 2; ++k)
    sections.push(lowpass(cutoff_hz, fs, butterworth_q(k, order)));
  if (order % 2 == 1) sections.push(first_order_lowpass(cutoff_hz, fs));
  return BiquadCascade(sections.span());
}

BiquadCascade butterworth_highpass(int order, double cutoff_hz, double fs) {
  check_design(order, cutoff_hz, fs);
  SectionSet sections;
  for (int k = 0; k < order / 2; ++k)
    sections.push(highpass(cutoff_hz, fs, butterworth_q(k, order)));
  if (order % 2 == 1) sections.push(first_order_highpass(cutoff_hz, fs));
  return BiquadCascade(sections.span());
}

}  // namespace ptrack::dsp
