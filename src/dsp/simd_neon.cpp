// NEON lane of dsp::simd (aarch64; NEON is baseline there, so no extra
// -m flags — only -ffp-contract=off to uphold the no-FMA contract).
//
// Reductions keep the canonical lane-position partials in two 2×double
// (resp. two 4×float) accumulators and combine them in the canonical
// pairwise order; elementwise maps and the lane-parallel cascade mirror the
// scalar expression trees with vmulq/vaddq (never vfmaq). The scan and
// normalization kernels reuse the canonical scalar implementations — they
// are cheap relative to the filters, and branchy early-exit scans gain
// little from 2-wide vectors.

#include <arm_neon.h>

#include <cstddef>

#include "dsp/simd_impl.hpp"

namespace ptrack::dsp::simd::detail {

namespace {

/// acc0 holds lane positions {0,1}, acc1 holds {2,3}:
/// (p0+p1)+(p2+p3) == vaddvq(acc0) + vaddvq(acc1) only if vaddvq pairs
/// adjacently — it does on aarch64 (vaddvq_f64 is lane0+lane1).
inline double hsum(float64x2_t acc0, float64x2_t acc1) {
  return vaddvq_f64(acc0) + vaddvq_f64(acc1);
}

/// acc0 = {p0..p3}, acc1 = {p4..p7}; vpadds gives the canonical pairwise
/// ((p0+p1)+(p2+p3)) per accumulator.
inline float hsumf(float32x4_t acc) {
  const float32x2_t pair =
      vpadd_f32(vget_low_f32(acc), vget_high_f32(acc));  // (p0+p1, p2+p3)
  return vget_lane_f32(pair, 0) + vget_lane_f32(pair, 1);
}

double sum_neon(const double* xs, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vld1q_f64(xs + i));
    acc1 = vaddq_f64(acc1, vld1q_f64(xs + i + 2));
  }
  double total = hsum(acc0, acc1);
  for (; i < n; ++i) total += xs[i];
  return total;
}

float sumf_neon(const float* xs, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0F);
  float32x4_t acc1 = vdupq_n_f32(0.0F);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vaddq_f32(acc0, vld1q_f32(xs + i));
    acc1 = vaddq_f32(acc1, vld1q_f32(xs + i + 4));
  }
  float total = hsumf(acc0) + hsumf(acc1);
  for (; i < n; ++i) total += xs[i];
  return total;
}

double dot_neon(const double* a, const double* b, std::size_t n) {
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc0 = vaddq_f64(acc0, vmulq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
    acc1 = vaddq_f64(acc1,
                     vmulq_f64(vld1q_f64(a + i + 2), vld1q_f64(b + i + 2)));
  }
  double total = hsum(acc0, acc1);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

float dotf_neon(const float* a, const float* b, std::size_t n) {
  float32x4_t acc0 = vdupq_n_f32(0.0F);
  float32x4_t acc1 = vdupq_n_f32(0.0F);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc0 = vaddq_f32(acc0, vmulq_f32(vld1q_f32(a + i), vld1q_f32(b + i)));
    acc1 = vaddq_f32(acc1,
                     vmulq_f32(vld1q_f32(a + i + 4), vld1q_f32(b + i + 4)));
  }
  float total = hsumf(acc0) + hsumf(acc1);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double sumsq_dev_neon(const double* xs, std::size_t n, double mean) {
  const float64x2_t mv = vdupq_n_f64(mean);
  float64x2_t acc0 = vdupq_n_f64(0.0);
  float64x2_t acc1 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d0 = vsubq_f64(vld1q_f64(xs + i), mv);
    const float64x2_t d1 = vsubq_f64(vld1q_f64(xs + i + 2), mv);
    acc0 = vaddq_f64(acc0, vmulq_f64(d0, d0));
    acc1 = vaddq_f64(acc1, vmulq_f64(d1, d1));
  }
  double total = hsum(acc0, acc1);
  for (; i < n; ++i) {
    const double d = xs[i] - mean;
    total += d * d;
  }
  return total;
}

float sumsq_devf_neon(const float* xs, std::size_t n, float mean) {
  const float32x4_t mv = vdupq_n_f32(mean);
  float32x4_t acc0 = vdupq_n_f32(0.0F);
  float32x4_t acc1 = vdupq_n_f32(0.0F);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const float32x4_t d0 = vsubq_f32(vld1q_f32(xs + i), mv);
    const float32x4_t d1 = vsubq_f32(vld1q_f32(xs + i + 4), mv);
    acc0 = vaddq_f32(acc0, vmulq_f32(d0, d0));
    acc1 = vaddq_f32(acc1, vmulq_f32(d1, d1));
  }
  float total = hsumf(acc0) + hsumf(acc1);
  for (; i < n; ++i) {
    const float d = xs[i] - mean;
    total += d * d;
  }
  return total;
}

void axis_project_neon(const double* x, const double* y, const double* z,
                       std::size_t n, Vec3 u, double bias, double* out) {
  const float64x2_t uxv = vdupq_n_f64(u.x);
  const float64x2_t uyv = vdupq_n_f64(u.y);
  const float64x2_t uzv = vdupq_n_f64(u.z);
  const float64x2_t bv = vdupq_n_f64(bias);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t d = vaddq_f64(
        vaddq_f64(vmulq_f64(vld1q_f64(x + i), uxv),
                  vmulq_f64(vld1q_f64(y + i), uyv)),
        vmulq_f64(vld1q_f64(z + i), uzv));
    vst1q_f64(out + i, vsubq_f64(d, bv));
  }
  for (; i < n; ++i) {
    out[i] = ((x[i] * u.x + y[i] * u.y) + z[i] * u.z) - bias;
  }
}

void axis_projectf_neon(const float* x, const float* y, const float* z,
                        std::size_t n, Vec3 u, float bias, float* out) {
  const float ux = static_cast<float>(u.x);
  const float uy = static_cast<float>(u.y);
  const float uz = static_cast<float>(u.z);
  const float32x4_t uxv = vdupq_n_f32(ux);
  const float32x4_t uyv = vdupq_n_f32(uy);
  const float32x4_t uzv = vdupq_n_f32(uz);
  const float32x4_t bv = vdupq_n_f32(bias);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t d = vaddq_f32(
        vaddq_f32(vmulq_f32(vld1q_f32(x + i), uxv),
                  vmulq_f32(vld1q_f32(y + i), uyv)),
        vmulq_f32(vld1q_f32(z + i), uzv));
    vst1q_f32(out + i, vsubq_f32(d, bv));
  }
  for (; i < n; ++i) {
    out[i] = ((x[i] * ux + y[i] * uy) + z[i] * uz) - bias;
  }
}

void residual_project_neon(const double* x, const double* y, const double* z,
                           std::size_t n, Vec3 up, Vec3 dir, double* out) {
  const float64x2_t uxv = vdupq_n_f64(up.x);
  const float64x2_t uyv = vdupq_n_f64(up.y);
  const float64x2_t uzv = vdupq_n_f64(up.z);
  const float64x2_t dxv = vdupq_n_f64(dir.x);
  const float64x2_t dyv = vdupq_n_f64(dir.y);
  const float64x2_t dzv = vdupq_n_f64(dir.z);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t xv = vld1q_f64(x + i);
    const float64x2_t yv = vld1q_f64(y + i);
    const float64x2_t zv = vld1q_f64(z + i);
    const float64x2_t t = vaddq_f64(
        vaddq_f64(vmulq_f64(xv, uxv), vmulq_f64(yv, uyv)),
        vmulq_f64(zv, uzv));
    const float64x2_t rx = vsubq_f64(xv, vmulq_f64(uxv, t));
    const float64x2_t ry = vsubq_f64(yv, vmulq_f64(uyv, t));
    const float64x2_t rz = vsubq_f64(zv, vmulq_f64(uzv, t));
    vst1q_f64(out + i,
              vaddq_f64(vaddq_f64(vmulq_f64(rx, dxv), vmulq_f64(ry, dyv)),
                        vmulq_f64(rz, dzv)));
  }
  for (; i < n; ++i) {
    const double t = (x[i] * up.x + y[i] * up.y) + z[i] * up.z;
    const double rx = x[i] - up.x * t;
    const double ry = y[i] - up.y * t;
    const double rz = z[i] - up.z * t;
    out[i] = (rx * dir.x + ry * dir.y) + rz * dir.z;
  }
}

void residual_projectf_neon(const float* x, const float* y, const float* z,
                            std::size_t n, Vec3 up, Vec3 dir, float* out) {
  const float ux = static_cast<float>(up.x);
  const float uy = static_cast<float>(up.y);
  const float uz = static_cast<float>(up.z);
  const float dx = static_cast<float>(dir.x);
  const float dy = static_cast<float>(dir.y);
  const float dz = static_cast<float>(dir.z);
  const float32x4_t uxv = vdupq_n_f32(ux);
  const float32x4_t uyv = vdupq_n_f32(uy);
  const float32x4_t uzv = vdupq_n_f32(uz);
  const float32x4_t dxv = vdupq_n_f32(dx);
  const float32x4_t dyv = vdupq_n_f32(dy);
  const float32x4_t dzv = vdupq_n_f32(dz);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float32x4_t xv = vld1q_f32(x + i);
    const float32x4_t yv = vld1q_f32(y + i);
    const float32x4_t zv = vld1q_f32(z + i);
    const float32x4_t t = vaddq_f32(
        vaddq_f32(vmulq_f32(xv, uxv), vmulq_f32(yv, uyv)),
        vmulq_f32(zv, uzv));
    const float32x4_t rx = vsubq_f32(xv, vmulq_f32(uxv, t));
    const float32x4_t ry = vsubq_f32(yv, vmulq_f32(uyv, t));
    const float32x4_t rz = vsubq_f32(zv, vmulq_f32(uzv, t));
    vst1q_f32(out + i,
              vaddq_f32(vaddq_f32(vmulq_f32(rx, dxv), vmulq_f32(ry, dyv)),
                        vmulq_f32(rz, dzv)));
  }
  for (; i < n; ++i) {
    const float t = (x[i] * ux + y[i] * uy) + z[i] * uz;
    const float rx = x[i] - ux * t;
    const float ry = y[i] - uy * t;
    const float rz = z[i] - uz * t;
    out[i] = (rx * dx + ry * dy) + rz * dz;
  }
}

void negate_neon(const double* xs, std::size_t n, double* out) {
  std::size_t i = 0;
  // vnegq flips the sign bit (preserves -0.0/+0.0), matching unary minus.
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vnegq_f64(vld1q_f64(xs + i)));
  }
  for (; i < n; ++i) out[i] = -xs[i];
}

void sub_scalar_neon(const double* xs, std::size_t n, double m, double* out) {
  const float64x2_t mv = vdupq_n_f64(m);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vsubq_f64(vld1q_f64(xs + i), mv));
  }
  for (; i < n; ++i) out[i] = xs[i] - m;
}

void diff_div_neon(const double* hi, const double* lo, std::size_t n,
                   double div, double* out) {
  const float64x2_t dv = vdupq_n_f64(div);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i,
              vdivq_f64(vsubq_f64(vld1q_f64(hi + i), vld1q_f64(lo + i)), dv));
  }
  for (; i < n; ++i) out[i] = (hi[i] - lo[i]) / div;
}

void widen_neon(const float* xs, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(out + i, vcvt_f64_f32(vld1_f32(xs + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

void narrow_neon(const double* xs, std::size_t n, float* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1_f32(out + i, vcvt_f32_f64(vld1q_f64(xs + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(xs[i]);
}

// As in the AVX2 lane: a compile-time section count keeps the recurrence
// state in registers instead of a runtime-indexed array, removing a
// store-forward round trip from the serial dependency chain.
template <std::size_t NSec>
void cascade_multi_neon_n(const BiquadCoeffs* sections, double* data,
                          std::size_t n, bool backward) {
  struct SecV {
    float64x2_t b0, b1, b2, a1, a2;
  };
  SecV cs[NSec];
  float64x2_t s1lo[NSec];
  float64x2_t s1hi[NSec];
  float64x2_t s2lo[NSec];
  float64x2_t s2hi[NSec];
  for (std::size_t s = 0; s < NSec; ++s) {
    cs[s] = {vdupq_n_f64(sections[s].b0), vdupq_n_f64(sections[s].b1),
             vdupq_n_f64(sections[s].b2), vdupq_n_f64(sections[s].a1),
             vdupq_n_f64(sections[s].a2)};
    s1lo[s] = vdupq_n_f64(0.0);
    s1hi[s] = vdupq_n_f64(0.0);
    s2lo[s] = vdupq_n_f64(0.0);
    s2hi[s] = vdupq_n_f64(0.0);
  }
  for (std::size_t k = 0; k < n; ++k) {
    double* p = data + (backward ? n - 1 - k : k) * kIirLanes;
    float64x2_t xlo = vld1q_f64(p);
    float64x2_t xhi = vld1q_f64(p + 2);
    for (std::size_t s = 0; s < NSec; ++s) {
      const float64x2_t ylo = vaddq_f64(vmulq_f64(cs[s].b0, xlo), s1lo[s]);
      const float64x2_t yhi = vaddq_f64(vmulq_f64(cs[s].b0, xhi), s1hi[s]);
      s1lo[s] = vaddq_f64(vsubq_f64(vmulq_f64(cs[s].b1, xlo),
                                    vmulq_f64(cs[s].a1, ylo)),
                          s2lo[s]);
      s1hi[s] = vaddq_f64(vsubq_f64(vmulq_f64(cs[s].b1, xhi),
                                    vmulq_f64(cs[s].a1, yhi)),
                          s2hi[s]);
      s2lo[s] = vsubq_f64(vmulq_f64(cs[s].b2, xlo), vmulq_f64(cs[s].a2, ylo));
      s2hi[s] = vsubq_f64(vmulq_f64(cs[s].b2, xhi), vmulq_f64(cs[s].a2, yhi));
      xlo = ylo;
      xhi = yhi;
    }
    vst1q_f64(p, xlo);
    vst1q_f64(p + 2, xhi);
  }
}

void cascade_multi_neon(const BiquadCoeffs* sections, std::size_t nsec,
                        double* data, std::size_t n, bool backward) {
  switch (nsec) {
    case 0: return;
    case 1: return cascade_multi_neon_n<1>(sections, data, n, backward);
    case 2: return cascade_multi_neon_n<2>(sections, data, n, backward);
    case 3: return cascade_multi_neon_n<3>(sections, data, n, backward);
    case 4: return cascade_multi_neon_n<4>(sections, data, n, backward);
    default: break;
  }
  cascade_multi_canonical<double>(sections, nsec, data, n, backward);
}

template <std::size_t NSec>
void cascade_multif_neon_n(const BiquadCoeffs* sections, float* data,
                           std::size_t n, bool backward) {
  struct SecV {
    float32x4_t b0, b1, b2, a1, a2;
  };
  SecV cs[NSec];
  float32x4_t s1[NSec];
  float32x4_t s2[NSec];
  for (std::size_t s = 0; s < NSec; ++s) {
    cs[s] = {vdupq_n_f32(static_cast<float>(sections[s].b0)),
             vdupq_n_f32(static_cast<float>(sections[s].b1)),
             vdupq_n_f32(static_cast<float>(sections[s].b2)),
             vdupq_n_f32(static_cast<float>(sections[s].a1)),
             vdupq_n_f32(static_cast<float>(sections[s].a2))};
    s1[s] = vdupq_n_f32(0.0F);
    s2[s] = vdupq_n_f32(0.0F);
  }
  for (std::size_t k = 0; k < n; ++k) {
    float* p = data + (backward ? n - 1 - k : k) * kIirLanes;
    float32x4_t x = vld1q_f32(p);
    for (std::size_t s = 0; s < NSec; ++s) {
      const float32x4_t y = vaddq_f32(vmulq_f32(cs[s].b0, x), s1[s]);
      s1[s] = vaddq_f32(
          vsubq_f32(vmulq_f32(cs[s].b1, x), vmulq_f32(cs[s].a1, y)), s2[s]);
      s2[s] = vsubq_f32(vmulq_f32(cs[s].b2, x), vmulq_f32(cs[s].a2, y));
      x = y;
    }
    vst1q_f32(p, x);
  }
}

void cascade_multif_neon(const BiquadCoeffs* sections, std::size_t nsec,
                         float* data, std::size_t n, bool backward) {
  switch (nsec) {
    case 0: return;
    case 1: return cascade_multif_neon_n<1>(sections, data, n, backward);
    case 2: return cascade_multif_neon_n<2>(sections, data, n, backward);
    case 3: return cascade_multif_neon_n<3>(sections, data, n, backward);
    case 4: return cascade_multif_neon_n<4>(sections, data, n, backward);
    default: break;
  }
  cascade_multi_canonical<float>(sections, nsec, data, n, backward);
}

}  // namespace

const KernelTable& neon_table() {
  static const KernelTable t = {
      &sum_neon,
      &sumf_neon,
      &dot_neon,
      &dotf_neon,
      &sumsq_dev_neon,
      &sumsq_devf_neon,
      &axis_project_neon,
      &axis_projectf_neon,
      &residual_project_neon,
      &residual_projectf_neon,
      &negate_neon,
      &sub_scalar_neon,
      &diff_div_neon,
      &widen_neon,
      &narrow_neon,
      &min_until_greater_fwd_canonical,
      &min_until_greater_bwd_canonical,
      &normalize_lags_canonical,
      &cascade_multi_neon,
      &cascade_multif_neon,
  };
  return t;
}

}  // namespace ptrack::dsp::simd::detail
