// Internal dispatch plumbing for dsp::simd — the per-ISA kernel table and
// the canonical scalar kernels every ISA must reproduce bit for bit.
//
// The scalar kernels below are the *definition* of each kernel's result:
// reductions keep kDoubleBlock/kFloatBlock independent partial accumulators
// (one per vector lane position) combined pairwise, elementwise maps fix
// one expression-tree order per element. A vector implementation is correct
// exactly when it computes the same thing — same lanes, same combine, no
// FMA — so the scalar fallback (and the PTRACK_SIMD=OFF build) is not an
// approximation of the SIMD path but its reference.
//
// Not a public header: include only from simd*.cpp.

#pragma once

#include <algorithm>
#include <cstddef>

#include "common/vec3.hpp"
#include "dsp/biquad.hpp"
#include "dsp/simd.hpp"

namespace ptrack::dsp::simd::detail {

/// Upper bound on cascade sections the lane-parallel IIR kernels support
/// (order 16 — the tree uses order <= 4).
inline constexpr std::size_t kMaxSections = 8;

/// One entry per kernel; each ISA provides a table of these.
struct KernelTable {
  double (*sum_d)(const double*, std::size_t);
  float (*sum_f)(const float*, std::size_t);
  double (*dot_d)(const double*, const double*, std::size_t);
  float (*dot_f)(const float*, const float*, std::size_t);
  double (*sumsq_dev_d)(const double*, std::size_t, double);
  float (*sumsq_dev_f)(const float*, std::size_t, float);
  void (*axis_project_d)(const double*, const double*, const double*,
                         std::size_t, Vec3, double, double*);
  void (*axis_project_f)(const float*, const float*, const float*,
                         std::size_t, Vec3, float, float*);
  void (*residual_project_d)(const double*, const double*, const double*,
                             std::size_t, Vec3, Vec3, double*);
  void (*residual_project_f)(const float*, const float*, const float*,
                             std::size_t, Vec3, Vec3, float*);
  void (*negate_d)(const double*, std::size_t, double*);
  void (*sub_scalar_d)(const double*, std::size_t, double, double*);
  void (*diff_div_d)(const double*, const double*, std::size_t, double,
                     double*);
  void (*widen_f)(const float*, std::size_t, double*);
  void (*narrow_d)(const double*, std::size_t, float*);
  double (*min_until_greater_fwd_d)(const double*, std::size_t, double);
  double (*min_until_greater_bwd_d)(const double*, std::size_t, double);
  void (*normalize_lags_d)(const double*, std::size_t, std::size_t, double,
                           double*);
  void (*cascade_multi_d)(const BiquadCoeffs*, std::size_t, double*,
                          std::size_t, bool);
  void (*cascade_multi_f)(const BiquadCoeffs*, std::size_t, float*,
                          std::size_t, bool);
};

/// The canonical scalar table (always compiled).
const KernelTable& scalar_table();

#ifdef PTRACK_SIMD_HAVE_AVX2
const KernelTable& avx2_table();
#endif
#ifdef PTRACK_SIMD_HAVE_NEON
const KernelTable& neon_table();
#endif

// --- Canonical scalar kernels ----------------------------------------------

template <typename T>
inline constexpr std::size_t kBlock =
    sizeof(T) == sizeof(double) ? kDoubleBlock : kFloatBlock;

/// Pairwise combine of the partial accumulators — the fixed order a vector
/// horizontal sum reproduces.
template <typename T, std::size_t B = kBlock<T>>
T combine_block(const T* acc) {
  if constexpr (B == 4) {
    return (acc[0] + acc[1]) + (acc[2] + acc[3]);
  } else {
    static_assert(B == 8);
    return ((acc[0] + acc[1]) + (acc[2] + acc[3])) +
           ((acc[4] + acc[5]) + (acc[6] + acc[7]));
  }
}

template <typename T>
T sum_canonical(const T* xs, std::size_t n) {
  constexpr std::size_t B = kBlock<T>;
  T acc[B] = {};
  std::size_t i = 0;
  for (; i + B <= n; i += B) {
    for (std::size_t j = 0; j < B; ++j) acc[j] += xs[i + j];
  }
  T total = combine_block<T>(acc);
  for (; i < n; ++i) total += xs[i];
  return total;
}

template <typename T>
T dot_canonical(const T* a, const T* b, std::size_t n) {
  constexpr std::size_t B = kBlock<T>;
  T acc[B] = {};
  std::size_t i = 0;
  for (; i + B <= n; i += B) {
    for (std::size_t j = 0; j < B; ++j) acc[j] += a[i + j] * b[i + j];
  }
  T total = combine_block<T>(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

template <typename T>
T sumsq_dev_canonical(const T* xs, std::size_t n, T mean) {
  constexpr std::size_t B = kBlock<T>;
  T acc[B] = {};
  std::size_t i = 0;
  for (; i + B <= n; i += B) {
    for (std::size_t j = 0; j < B; ++j) {
      const T d = xs[i + j] - mean;
      acc[j] += d * d;
    }
  }
  T total = combine_block<T>(acc);
  for (; i < n; ++i) {
    const T d = xs[i] - mean;
    total += d * d;
  }
  return total;
}

template <typename T>
void axis_project_canonical(const T* x, const T* y, const T* z, std::size_t n,
                            Vec3 u, T bias, T* out) {
  const T ux = static_cast<T>(u.x);
  const T uy = static_cast<T>(u.y);
  const T uz = static_cast<T>(u.z);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ((x[i] * ux + y[i] * uy) + z[i] * uz) - bias;
  }
}

template <typename T>
void residual_project_canonical(const T* x, const T* y, const T* z,
                                std::size_t n, Vec3 up, Vec3 dir, T* out) {
  const T ux = static_cast<T>(up.x);
  const T uy = static_cast<T>(up.y);
  const T uz = static_cast<T>(up.z);
  const T dx = static_cast<T>(dir.x);
  const T dy = static_cast<T>(dir.y);
  const T dz = static_cast<T>(dir.z);
  for (std::size_t i = 0; i < n; ++i) {
    const T t = (x[i] * ux + y[i] * uy) + z[i] * uz;
    const T rx = x[i] - ux * t;
    const T ry = y[i] - uy * t;
    const T rz = z[i] - uz * t;
    out[i] = (rx * dx + ry * dy) + rz * dz;
  }
}

inline void negate_canonical(const double* xs, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = -xs[i];
}

inline void sub_scalar_canonical(const double* xs, std::size_t n, double m,
                                 double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = xs[i] - m;
}

inline void diff_div_canonical(const double* hi, const double* lo,
                               std::size_t n, double div, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (hi[i] - lo[i]) / div;
}

inline void widen_canonical(const float* xs, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

inline void narrow_canonical(const double* xs, std::size_t n, float* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = static_cast<float>(xs[i]);
}

inline double min_until_greater_fwd_canonical(const double* xs, std::size_t n,
                                              double h) {
  double m = h;
  for (std::size_t i = 0; i < n; ++i) {
    m = std::min(m, xs[i]);
    if (xs[i] > h) break;
  }
  return m;
}

inline double min_until_greater_bwd_canonical(const double* xs, std::size_t n,
                                              double h) {
  double m = h;
  for (std::size_t i = n; i-- > 0;) {
    m = std::min(m, xs[i]);
    if (xs[i] > h) break;
  }
  return m;
}

inline void normalize_lags_canonical(const double* raw, std::size_t n,
                                     std::size_t nlags, double den,
                                     double* out) {
  for (std::size_t lag = 0; lag < nlags; ++lag) {
    const double scale =
        static_cast<double>(n) / static_cast<double>(n - lag);
    out[lag] = std::clamp(raw[lag] * scale / den, -1.0, 1.0);
  }
}

/// Lane-parallel biquad cascade; per lane this is exactly Biquad::step's
/// update order, so any lane matches a single-channel BiquadCascade run.
template <typename T>
void cascade_multi_canonical(const BiquadCoeffs* sections, std::size_t nsec,
                             T* data, std::size_t n, bool backward) {
  struct Sec {
    T b0, b1, b2, a1, a2;
  };
  Sec cs[kMaxSections];
  T s1[kMaxSections][kIirLanes] = {};
  T s2[kMaxSections][kIirLanes] = {};
  for (std::size_t s = 0; s < nsec; ++s) {
    cs[s] = {static_cast<T>(sections[s].b0), static_cast<T>(sections[s].b1),
             static_cast<T>(sections[s].b2), static_cast<T>(sections[s].a1),
             static_cast<T>(sections[s].a2)};
  }
  for (std::size_t k = 0; k < n; ++k) {
    T* x = data + (backward ? n - 1 - k : k) * kIirLanes;
    for (std::size_t s = 0; s < nsec; ++s) {
      for (std::size_t j = 0; j < kIirLanes; ++j) {
        const T y = cs[s].b0 * x[j] + s1[s][j];
        s1[s][j] = cs[s].b1 * x[j] - cs[s].a1 * y + s2[s][j];
        s2[s][j] = cs[s].b2 * x[j] - cs[s].a2 * y;
        x[j] = y;
      }
    }
  }
}

}  // namespace ptrack::dsp::simd::detail
