// Trend removal (constant and linear).

#pragma once

#include <span>
#include <vector>

namespace ptrack::dsp {

/// Least-squares line fit y = a + b*i over sample index i.
struct LineFit {
  double intercept = 0.0;
  double slope = 0.0;
};

/// Fits a line to xs (size >= 2).
LineFit fit_line(std::span<const double> xs);

/// Returns xs with its least-squares linear trend removed.
std::vector<double> detrend_linear(std::span<const double> xs);

}  // namespace ptrack::dsp
