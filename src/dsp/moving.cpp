#include "dsp/moving.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dsp/simd.hpp"

namespace ptrack::dsp {

std::vector<double> moving_average(std::span<const double> xs, std::size_t w) {
  expects(w >= 1, "moving_average: w >= 1");
  if (w % 2 == 0) ++w;
  const std::size_t half = w / 2;
  const std::size_t n = xs.size();
  std::vector<double> out(n);

  // Prefix sums give O(n) irrespective of window size.
  std::vector<double> prefix(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) prefix[i + 1] = prefix[i] + xs[i];

  // Interior samples see the full window (count w), so that region is one
  // vectorizable (prefix[i+half+1] - prefix[i-half]) / w map; only the
  // clipped edges need per-sample counts. Same arithmetic per element as
  // the single loop this replaces.
  const std::size_t mid_begin = half;
  const std::size_t mid_end = n > half ? n - half : 0;
  for (std::size_t i = 0; i < std::min(mid_begin, n); ++i) {
    const std::size_t hi = std::min(i + half, n - 1);
    out[i] = (prefix[hi + 1] - prefix[0]) / static_cast<double>(hi + 1);
  }
  if (mid_begin < mid_end) {
    const std::size_t count = mid_end - mid_begin;
    simd::diff_div({prefix.data() + 2 * half + 1, count},
                   {prefix.data(), count}, static_cast<double>(w),
                   {out.data() + mid_begin, count});
  }
  for (std::size_t i = std::max(mid_end, std::min(mid_begin, n)); i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, n - 1);
    out[i] = (prefix[hi + 1] - prefix[lo]) / static_cast<double>(hi - lo + 1);
  }
  return out;
}

std::vector<double> moving_median(std::span<const double> xs, std::size_t w) {
  expects(w >= 1, "moving_median: w >= 1");
  if (w % 2 == 0) ++w;
  const std::size_t half = w / 2;
  const std::size_t n = xs.size();
  std::vector<double> out(n);
  std::vector<double> window;
  // ptrack-lint: allow(alloc) batch-only helper; not on the streaming path
  window.reserve(w);
  // ptrack-lint: push-allow(alloc) per-window refill of the local scratch

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t lo = i >= half ? i - half : 0;
    const std::size_t hi = std::min(i + half, n - 1);
    window.assign(xs.begin() + static_cast<std::ptrdiff_t>(lo),
                  xs.begin() + static_cast<std::ptrdiff_t>(hi + 1));
    const auto mid = window.begin() + static_cast<std::ptrdiff_t>(window.size() / 2);
    std::nth_element(window.begin(), mid, window.end());
    if (window.size() % 2 == 1) {
      out[i] = *mid;
    } else {
      const double hi_mid = *mid;
      const double lo_mid = *std::max_element(window.begin(), mid);
      out[i] = 0.5 * (lo_mid + hi_mid);
    }
  }
  // ptrack-lint: pop-allow(alloc)
  return out;
}

std::vector<double> ema(std::span<const double> xs, double alpha) {
  expects(alpha > 0.0 && alpha <= 1.0, "ema: alpha in (0,1]");
  std::vector<double> out;
  // ptrack-lint: allow(alloc) batch-only helper; not on the streaming path
  out.reserve(xs.size());
  double y = xs.empty() ? 0.0 : xs.front();
  for (double x : xs) {
    y = alpha * x + (1.0 - alpha) * y;
    // ptrack-lint: allow(alloc) appends within the reservation above
    out.push_back(y);
  }
  return out;
}

}  // namespace ptrack::dsp
