// Sample-rate conversion by linear interpolation.
//
// The synthesizer generates kinematics at a high internal rate and resamples
// to the device rate; trace tooling uses it to normalize recorded rates.

#pragma once

#include <span>
#include <vector>

namespace ptrack::dsp {

/// Resamples a uniformly sampled signal from fs_in to fs_out using linear
/// interpolation. Both rates must be positive; returns an empty vector for
/// an empty input.
std::vector<double> resample_linear(std::span<const double> xs, double fs_in,
                                    double fs_out);

/// Value of the signal at time t (seconds from the first sample) by linear
/// interpolation; clamps outside the support.
double sample_at(std::span<const double> xs, double fs, double t);

}  // namespace ptrack::dsp
