#include "dsp/simd.hpp"

#include "common/error.hpp"
#include "dsp/simd_impl.hpp"

#ifndef PTRACK_SIMD_ENABLED
#define PTRACK_SIMD_ENABLED 1
#endif

namespace ptrack::dsp::simd {

namespace detail {

const KernelTable& scalar_table() {
  static const KernelTable t = {
      &sum_canonical<double>,
      &sum_canonical<float>,
      &dot_canonical<double>,
      &dot_canonical<float>,
      &sumsq_dev_canonical<double>,
      &sumsq_dev_canonical<float>,
      &axis_project_canonical<double>,
      &axis_project_canonical<float>,
      &residual_project_canonical<double>,
      &residual_project_canonical<float>,
      &negate_canonical,
      &sub_scalar_canonical,
      &diff_div_canonical,
      &widen_canonical,
      &narrow_canonical,
      &min_until_greater_fwd_canonical,
      &min_until_greater_bwd_canonical,
      &normalize_lags_canonical,
      &cascade_multi_canonical<double>,
      &cascade_multi_canonical<float>,
  };
  return t;
}

}  // namespace detail

namespace {

const detail::KernelTable& table_for(Isa isa) {
  switch (isa) {
#ifdef PTRACK_SIMD_HAVE_AVX2
    case Isa::kAvx2:
      return detail::avx2_table();
#endif
#ifdef PTRACK_SIMD_HAVE_NEON
    case Isa::kNeon:
      return detail::neon_table();
#endif
    default:
      return detail::scalar_table();
  }
}

/// Active table + ISA, initialized from the CPU on first use. force_isa is
/// a single-threaded test hook by contract, so plain members suffice.
struct Dispatch {
  Isa isa;
  const detail::KernelTable* table;
  Dispatch() : isa(detected()), table(&table_for(isa)) {}
};

Dispatch& dispatch() {
  static Dispatch d;
  return d;
}

}  // namespace

Isa detected() {
#if !PTRACK_SIMD_ENABLED
  return Isa::kScalar;
#elif defined(PTRACK_SIMD_HAVE_AVX2)
  return __builtin_cpu_supports("avx2") ? Isa::kAvx2 : Isa::kScalar;
#elif defined(PTRACK_SIMD_HAVE_NEON)
  return Isa::kNeon;
#else
  return Isa::kScalar;
#endif
}

Isa active() { return dispatch().isa; }

void force_isa(Isa isa) {
  // Clamp to what this build + CPU can actually run.
  if (isa != detected()) isa = Isa::kScalar;
  dispatch().isa = isa;
  dispatch().table = &table_for(isa);
}

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kAvx2:
      return "avx2";
    case Isa::kNeon:
      return "neon";
    default:
      return "scalar";
  }
}

double sum(std::span<const double> xs) {
  return dispatch().table->sum_d(xs.data(), xs.size());
}

float sumf(std::span<const float> xs) {
  return dispatch().table->sum_f(xs.data(), xs.size());
}

double dot(std::span<const double> a, std::span<const double> b) {
  expects(a.size() == b.size(), "simd::dot: equal lengths");
  return dispatch().table->dot_d(a.data(), b.data(), a.size());
}

float dotf(std::span<const float> a, std::span<const float> b) {
  expects(a.size() == b.size(), "simd::dotf: equal lengths");
  return dispatch().table->dot_f(a.data(), b.data(), a.size());
}

double sumsq_dev(std::span<const double> xs, double mean) {
  return dispatch().table->sumsq_dev_d(xs.data(), xs.size(), mean);
}

float sumsq_devf(std::span<const float> xs, float mean) {
  return dispatch().table->sumsq_dev_f(xs.data(), xs.size(), mean);
}

void axis_project(std::span<const double> x, std::span<const double> y,
                  std::span<const double> z, const Vec3& u, double bias,
                  std::span<double> out) {
  expects(x.size() == y.size() && y.size() == z.size() &&
              z.size() == out.size(),
          "simd::axis_project: equal lengths");
  dispatch().table->axis_project_d(x.data(), y.data(), z.data(), x.size(), u,
                                   bias, out.data());
}

void axis_projectf(std::span<const float> x, std::span<const float> y,
                   std::span<const float> z, const Vec3& u, float bias,
                   std::span<float> out) {
  expects(x.size() == y.size() && y.size() == z.size() &&
              z.size() == out.size(),
          "simd::axis_projectf: equal lengths");
  dispatch().table->axis_project_f(x.data(), y.data(), z.data(), x.size(), u,
                                   bias, out.data());
}

void residual_project(std::span<const double> x, std::span<const double> y,
                      std::span<const double> z, const Vec3& up,
                      const Vec3& dir, std::span<double> out) {
  expects(x.size() == y.size() && y.size() == z.size() &&
              z.size() == out.size(),
          "simd::residual_project: equal lengths");
  dispatch().table->residual_project_d(x.data(), y.data(), z.data(), x.size(),
                                       up, dir, out.data());
}

void residual_projectf(std::span<const float> x, std::span<const float> y,
                       std::span<const float> z, const Vec3& up,
                       const Vec3& dir, std::span<float> out) {
  expects(x.size() == y.size() && y.size() == z.size() &&
              z.size() == out.size(),
          "simd::residual_projectf: equal lengths");
  dispatch().table->residual_project_f(x.data(), y.data(), z.data(), x.size(),
                                       up, dir, out.data());
}

void negate(std::span<const double> xs, std::span<double> out) {
  expects(xs.size() == out.size(), "simd::negate: equal lengths");
  dispatch().table->negate_d(xs.data(), xs.size(), out.data());
}

void sub_scalar(std::span<const double> xs, double m, std::span<double> out) {
  expects(xs.size() == out.size(), "simd::sub_scalar: equal lengths");
  dispatch().table->sub_scalar_d(xs.data(), xs.size(), m, out.data());
}

void diff_div(std::span<const double> hi, std::span<const double> lo,
              double div, std::span<double> out) {
  expects(hi.size() == lo.size() && lo.size() == out.size(),
          "simd::diff_div: equal lengths");
  dispatch().table->diff_div_d(hi.data(), lo.data(), hi.size(), div,
                               out.data());
}

void widen(std::span<const float> xs, std::span<double> out) {
  expects(xs.size() == out.size(), "simd::widen: equal lengths");
  dispatch().table->widen_f(xs.data(), xs.size(), out.data());
}

void narrow(std::span<const double> xs, std::span<float> out) {
  expects(xs.size() == out.size(), "simd::narrow: equal lengths");
  dispatch().table->narrow_d(xs.data(), xs.size(), out.data());
}

double min_until_greater_fwd(std::span<const double> xs, double h) {
  return dispatch().table->min_until_greater_fwd_d(xs.data(), xs.size(), h);
}

double min_until_greater_bwd(std::span<const double> xs, double h) {
  return dispatch().table->min_until_greater_bwd_d(xs.data(), xs.size(), h);
}

void normalize_lags(std::span<const double> raw, std::size_t n, double den,
                    std::span<double> out) {
  expects(out.size() <= raw.size(), "simd::normalize_lags: raw covers lags");
  expects(out.empty() || out.size() - 1 < n,
          "simd::normalize_lags: lags < n");
  dispatch().table->normalize_lags_d(raw.data(), n, out.size(), den,
                                     out.data());
}

void cascade_multi(std::span<const BiquadCoeffs> sections, double* data,
                   std::size_t n, bool backward) {
  expects(sections.size() <= detail::kMaxSections,
          "simd::cascade_multi: section count");
  dispatch().table->cascade_multi_d(sections.data(), sections.size(), data, n,
                                    backward);
}

void cascade_multif(std::span<const BiquadCoeffs> sections, float* data,
                    std::size_t n, bool backward) {
  expects(sections.size() <= detail::kMaxSections,
          "simd::cascade_multif: section count");
  dispatch().table->cascade_multi_f(sections.data(), sections.size(), data, n,
                                    backward);
}

}  // namespace ptrack::dsp::simd
