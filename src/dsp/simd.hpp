// Runtime-dispatched SIMD kernels for the per-hop DSP hot path.
//
// One scalar fallback plus explicit AVX2 (x86-64) and NEON (aarch64) lanes,
// selected once at startup from the CPU and switchable for tests/benches
// via force_isa(). The whole tree compiles for the baseline target; only
// the per-ISA translation units (simd_avx2.cpp, simd_neon.cpp) opt into
// wider instructions, so one binary runs everywhere and still uses the
// host's vector units. Configure with -DPTRACK_SIMD=OFF to compile the
// scalar kernels only.
//
// Bit-equality contract: for every kernel here, the scalar fallback and
// the vector lanes produce *identical* results, bit for bit
// (tests/test_dsp_simd.cpp asserts it). Elementwise maps replicate the
// exact expression-tree order of the code they replaced; reductions follow
// one canonical lane-block order — kDoubleBlock (kFloatBlock) independent
// partial accumulators, one per lane position, combined pairwise as
// ((p0+p1)+(p2+p3)) [+ ((p4+p5)+(p6+p7))], then the tail added serially —
// which is exactly what a vector accumulator plus that horizontal combine
// computes. No kernel uses FMA (every TU builds with -ffp-contract=off):
// contraction would round differently per ISA and break the contract.
//
// Alignment: kernels take unaligned spans (ring views land on arbitrary
// offsets) and use unaligned loads; dsp::Workspace hands out 64-byte
// aligned scratch so the blocks of workspace-fed kernels straddle no cache
// line, but alignment is a performance contract only, never correctness.

#pragma once

#include <cstddef>
#include <span>

#include "common/vec3.hpp"
#include "dsp/biquad.hpp"

namespace ptrack::dsp::simd {

/// Instruction sets the dispatcher can select.
enum class Isa { kScalar, kAvx2, kNeon };

/// Widest ISA this build supports on this CPU (kScalar when PTRACK_SIMD=OFF).
[[nodiscard]] Isa detected();

/// ISA the kernels currently dispatch to (detected() unless forced).
[[nodiscard]] Isa active();

/// Test/bench hook: pins dispatch to `isa`, clamped to detected() — forcing
/// an ISA the CPU lacks selects the scalar fallback instead. Not
/// thread-safe; call only from single-threaded setup code.
void force_isa(Isa isa);

/// Human-readable ISA name ("scalar", "avx2", "neon").
[[nodiscard]] const char* isa_name(Isa isa);

/// Canonical reduction block widths (partial accumulators per reduction).
inline constexpr std::size_t kDoubleBlock = 4;
inline constexpr std::size_t kFloatBlock = 8;

// --- Reductions (canonical block order) ------------------------------------

/// Sum of xs.
[[nodiscard]] double sum(std::span<const double> xs);
[[nodiscard]] float sumf(std::span<const float> xs);

/// Inner product of a and b (a.size() == b.size()).
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] float dotf(std::span<const float> a, std::span<const float> b);

/// Sum of squared deviations from `mean`.
[[nodiscard]] double sumsq_dev(std::span<const double> xs, double mean);
[[nodiscard]] float sumsq_devf(std::span<const float> xs, float mean);

// --- Elementwise maps (exact expression-order replicas) ---------------------

/// out[i] = ((x[i]*u.x + y[i]*u.y) + z[i]*u.z) - bias — the vertical
/// projection (Vec3::dot order, then the gravity subtraction).
void axis_project(std::span<const double> x, std::span<const double> y,
                  std::span<const double> z, const Vec3& u, double bias,
                  std::span<double> out);
void axis_projectf(std::span<const float> x, std::span<const float> y,
                   std::span<const float> z, const Vec3& u, float bias,
                   std::span<float> out);

/// out[i] = (f - up * f.dot(up)).dot(dir) for f = (x[i], y[i], z[i]) — the
/// anterior projection of the gravity-removed residual, in the exact
/// component order of the Vec3 arithmetic it replaces.
void residual_project(std::span<const double> x, std::span<const double> y,
                      std::span<const double> z, const Vec3& up,
                      const Vec3& dir, std::span<double> out);
void residual_projectf(std::span<const float> x, std::span<const float> y,
                       std::span<const float> z, const Vec3& up,
                       const Vec3& dir, std::span<float> out);

/// out[i] = -xs[i].
void negate(std::span<const double> xs, std::span<double> out);

/// out[i] = xs[i] - m (demeaning into scratch).
void sub_scalar(std::span<const double> xs, double m, std::span<double> out);

/// out[i] = (hi[i] - lo[i]) / div — the constant-count middle region of a
/// prefix-sum moving average.
void diff_div(std::span<const double> hi, std::span<const double> lo,
              double div, std::span<double> out);

/// Precision casts between the double rings and the float32 pipeline view.
void widen(std::span<const float> xs, std::span<double> out);
void narrow(std::span<const double> xs, std::span<float> out);

// --- Scans ------------------------------------------------------------------

/// Minimum over xs[0..k] where k is the first index with xs[k] > h (k = n-1
/// when none exceeds h) — one side of a peak-prominence walk. Returns h for
/// empty input. min is exact, so any evaluation order is bit-identical.
[[nodiscard]] double min_until_greater_fwd(std::span<const double> xs,
                                           double h);
/// Same walk right-to-left (from xs.back() towards xs.front()).
[[nodiscard]] double min_until_greater_bwd(std::span<const double> xs,
                                           double h);

/// Unbiased autocorrelation normalization: out[lag] =
/// clamp(raw[lag] * (n / (n - lag)) / den, -1, 1) for lag in
/// [0, out.size()), replicating dsp/correlate.cpp's normalize_lag.
void normalize_lags(std::span<const double> raw, std::size_t n, double den,
                    std::span<double> out);

// --- Lane-parallel IIR ------------------------------------------------------

/// Channel lanes per sample in the interleaved multi-channel filter layout.
inline constexpr std::size_t kIirLanes = 4;

/// Runs a biquad cascade over `n` samples of kIirLanes interleaved channels
/// (data[i * kIirLanes + c]; state starts at zero), forward or backward in
/// sample order. Per lane this is bit-identical to BiquadCascade::step over
/// that channel alone: IIR recurrences are serial in time, so the
/// parallelism comes from the lanes, not the samples — which is why the
/// filtfilt hot path batches channels (filtfilt_multi_*) instead of
/// vectorizing one. Unused lanes may hold arbitrary values; they never
/// influence the others. `sections.size() <= 8`.
void cascade_multi(std::span<const BiquadCoeffs> sections, double* data,
                   std::size_t n, bool backward);
void cascade_multif(std::span<const BiquadCoeffs> sections, float* data,
                    std::size_t n, bool backward);

}  // namespace ptrack::dsp::simd
