// Radix-2 FFT and spectral helpers.
//
// Used by the SCAR baseline's frequency-domain features (dominant frequency,
// spectral energy/entropy) and by tests validating the synthesizer's
// spectral content.

#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ptrack::dsp {

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of two
/// (>= 1). Set `inverse` for the inverse transform (includes the 1/N scale).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// One-sided magnitude spectrum of a real signal, zero-padded to the next
/// power of two. Output size is nfft/2 + 1. Magnitudes are scaled by 2/N
/// (except DC and Nyquist, scaled by 1/N) so a unit-amplitude sinusoid shows
/// magnitude ~= 1 in its bin.
std::vector<double> magnitude_spectrum(std::span<const double> xs);

/// Frequency (Hz) of the largest non-DC bin of the magnitude spectrum.
/// Returns 0 for inputs shorter than 4 samples or an all-zero spectrum.
double dominant_frequency(std::span<const double> xs, double fs);

/// Total spectral energy excluding DC (sum of squared one-sided magnitudes).
double spectral_energy(std::span<const double> xs);

/// Normalized spectral entropy in [0, 1] (0 = single tone, 1 = flat).
double spectral_entropy(std::span<const double> xs);

}  // namespace ptrack::dsp
