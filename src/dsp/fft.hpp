// Radix-2 FFT and spectral helpers.
//
// Used by the SCAR baseline's frequency-domain features (dominant frequency,
// spectral energy/entropy), by the FFT-accelerated correlation kernels
// (dsp/correlate.hpp) and by tests validating the synthesizer's spectral
// content.

#pragma once

#include <complex>
#include <span>
#include <vector>

namespace ptrack::dsp {

/// Precomputed twiddle factors for one transform size. Building a plan costs
/// O(n) trigonometric evaluations; every transform that reuses it then runs
/// off pure table lookups. Plans are immutable after construction and safe to
/// share across threads; dsp::Workspace caches them per size.
struct FftPlan {
  std::size_t n = 0;  ///< transform size (power of two)
  /// Stage-packed forward twiddles: stage `len` (2, 4, ..., n) stores
  /// exp(-2*pi*i*k/len) for k in [0, len/2) starting at offset len/2 - 1.
  /// Inverse transforms conjugate at use. Total size n - 1.
  std::vector<std::complex<double>> twiddles;
};

/// Builds the twiddle tables for a power-of-two transform size (n >= 1).
FftPlan make_fft_plan(std::size_t n);

/// In-place iterative radix-2 Cooley-Tukey FFT. Size must be a power of two
/// (>= 1). Set `inverse` for the inverse transform (includes the 1/N scale).
void fft(std::span<std::complex<double>> data, bool inverse = false);

/// Plan-based variant: same transform, twiddles read from `plan`. The plan
/// may be larger than the data (plan.n >= data.size()): stage tables depend
/// only on the stage length, so one plan serves every power-of-two size up
/// to its own. Preferred on hot paths that transform many buffers of the
/// same size.
void fft(std::span<std::complex<double>> data, const FftPlan& plan,
         bool inverse = false);

/// Forward FFT of a real signal via one complex FFT of half size (the
/// even/odd packing trick). `xs.size()` = n must be a power of two >= 2 and
/// `plan.n >= n`; writes the non-redundant half-spectrum X[0..n/2] into
/// `spectrum` (size n/2 + 1). Roughly 2x faster than a complex FFT of the
/// zero-imaginary signal.
void rfft(std::span<const double> xs, const FftPlan& plan,
          std::span<std::complex<double>> spectrum);

/// Inverse of rfft: consumes (destroys) the half-spectrum of a real signal
/// (`spectrum`, size n/2 + 1 where n = out.size()) and writes the n real
/// samples to `out`, including the 1/n inverse-DFT scale. `plan.n >= n`.
void irfft(std::span<std::complex<double>> spectrum, const FftPlan& plan,
           std::span<double> out);

/// Vector convenience overload (historic interface).
void fft(std::vector<std::complex<double>>& data, bool inverse = false);

/// Next power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// One-sided magnitude spectrum of a real signal, zero-padded to the next
/// power of two. Output size is nfft/2 + 1. Magnitudes are scaled by 2/N
/// (except DC and Nyquist, scaled by 1/N) so a unit-amplitude sinusoid shows
/// magnitude ~= 1 in its bin.
std::vector<double> magnitude_spectrum(std::span<const double> xs);

/// Frequency (Hz) of the largest non-DC bin of the magnitude spectrum.
/// Returns 0 for inputs shorter than 4 samples or an all-zero spectrum.
double dominant_frequency(std::span<const double> xs, double fs);

/// Total spectral energy excluding DC (sum of squared one-sided magnitudes).
double spectral_energy(std::span<const double> xs);

/// Normalized spectral entropy in [0, 1] (0 = single tone, 1 = flat).
double spectral_entropy(std::span<const double> xs);

}  // namespace ptrack::dsp
