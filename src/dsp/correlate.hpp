// Correlation utilities.
//
// PTrack's stepping test uses the *half-cycle autocorrelation* of anterior
// acceleration (large positive value confirms the twice-per-gait-cycle
// (co)sine pattern of stepping; arm gestures are not guaranteed positive)
// and a cross-correlation lag to verify the fixed quarter-period phase
// difference between vertical and anterior body accelerations (Kim et al.).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrack::dsp {

/// Normalized autocorrelation at a single lag (mean removed, normalized by
/// variance; result in [-1, 1]). Requires lag < xs.size() and a non-constant
/// signal (returns 0 for constant input).
double autocorr_at(std::span<const double> xs, std::size_t lag);

/// Normalized autocorrelation for all lags in [0, max_lag].
std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag);

/// Normalized cross-correlation of a and b (equal sizes) at integer lag k in
/// [-max_lag, max_lag]; positive k means b is delayed relative to a.
/// Output index i corresponds to lag (i - max_lag).
std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag);

/// The lag in [-max_lag, max_lag] that maximizes xcorr(a, b).
int best_lag(std::span<const double> a, std::span<const double> b,
             std::size_t max_lag);

/// Fundamental period estimate (in samples) via the highest autocorrelation
/// peak in [min_lag, max_lag]; returns 0 when no peak exists.
std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag);

}  // namespace ptrack::dsp
