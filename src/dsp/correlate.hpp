// Correlation utilities.
//
// PTrack's stepping test uses the *half-cycle autocorrelation* of anterior
// acceleration (large positive value confirms the twice-per-gait-cycle
// (co)sine pattern of stepping; arm gestures are not guaranteed positive)
// and a cross-correlation lag to verify the fixed quarter-period phase
// difference between vertical and anterior body accelerations (Kim et al.).
//
// Two kernel families compute the same quantities:
//  * `*_naive` — direct O(n * lags) lag loops; the reference oracle.
//  * `*_fft`   — Wiener-Khinchin: zero-pad to next_pow2(n + max_lag + 1),
//    forward FFT, multiply by the conjugate spectrum, inverse FFT,
//    normalize. O(n log n) regardless of the lag count.
// The un-suffixed entry points dispatch on problem size: small cycles (the
// per-cycle gait tests) stay on the cache-friendly naive loops, long traces
// (dominant-period search, SCAR features, batch analytics) go through the
// FFT. Both paths agree to ~1e-9 (validated by tests/test_dsp_correlate_fft).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrack::dsp {

class Workspace;

/// Normalized autocorrelation at a single lag (mean removed, normalized by
/// variance; result in [-1, 1]). Requires lag < xs.size() and a non-constant
/// signal (returns 0 for constant input).
double autocorr_at(std::span<const double> xs, std::size_t lag);

/// Normalized autocorrelation for all lags in [0, max_lag] (unbiased
/// normalization, clamped to [-1, 1]; all zeros for a constant signal).
/// Dispatches between the naive and FFT kernels on problem size.
std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag);

/// As above, with caller-provided scratch (allocation-free steady state
/// apart from the returned vector). Uses workspace complex slot 0.
std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag,
                             Workspace& ws);

/// Direct O(n * max_lag) reference kernel (mean and variance hoisted out of
/// the lag loop). Exposed as the oracle for tests and benchmarks.
std::vector<double> autocorr_naive(std::span<const double> xs,
                                   std::size_t max_lag);

/// Wiener-Khinchin kernel, always FFT regardless of size. Exposed for tests
/// and benchmarks. Uses workspace complex slot 0.
std::vector<double> autocorr_fft(std::span<const double> xs,
                                 std::size_t max_lag, Workspace& ws);

/// Normalized cross-correlation of a and b (equal sizes) at integer lag k in
/// [-max_lag, max_lag]; positive k means b is delayed relative to a.
/// Output index i corresponds to lag (i - max_lag). Dispatches between the
/// naive and FFT kernels on problem size.
std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag);

/// As above, with caller-provided scratch. Uses workspace complex slots 0-1.
std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag, Workspace& ws);

/// Direct O(n * max_lag) reference kernel (oracle for tests/benchmarks).
std::vector<double> xcorr_naive(std::span<const double> a,
                                std::span<const double> b,
                                std::size_t max_lag);

/// FFT kernel: both real signals packed into one complex forward transform
/// (two-for-one), cross-spectrum, one inverse transform. Uses workspace
/// complex slots 0-1.
std::vector<double> xcorr_fft(std::span<const double> a,
                              std::span<const double> b, std::size_t max_lag,
                              Workspace& ws);

/// The lag in [-max_lag, max_lag] that maximizes xcorr(a, b).
int best_lag(std::span<const double> a, std::span<const double> b,
             std::size_t max_lag);

/// Fundamental period estimate (in samples) via the highest autocorrelation
/// peak in [min_lag, max_lag]; returns 0 when no peak exists.
std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag);

/// As above, with caller-provided scratch for the autocorrelation.
std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag, Workspace& ws);

}  // namespace ptrack::dsp
