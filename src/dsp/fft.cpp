#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::dsp {

namespace {

void bit_reverse_permute(std::span<std::complex<double>> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

FftPlan make_fft_plan(std::size_t n) {
  expects(n >= 1 && (n & (n - 1)) == 0, "make_fft_plan: size is a power of two");
  FftPlan plan;
  plan.n = n;
  if (n == 1) return plan;
  // ptrack-lint: allow(alloc) plan construction (setup; cached by Workspace)
  plan.twiddles.resize(n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = -kTwoPi / static_cast<double>(len);
    std::complex<double>* tw = plan.twiddles.data() + (len / 2 - 1);
    for (std::size_t k = 0; k < len / 2; ++k) {
      const double a = ang * static_cast<double>(k);
      tw[k] = {std::cos(a), std::sin(a)};
    }
  }
  // The per-stage tables are packed back to back: sum over stages of len/2
  // twiddles is exactly n - 1, and every kernel indexes relative to that
  // layout (tw = data + len/2 - 1).
  PTRACK_CHECK_MSG(plan.twiddles.size() == plan.n - 1,
                   "make_fft_plan: packed twiddle table covers all stages");
  return plan;
}

void fft(std::span<std::complex<double>> data, bool inverse) {
  const std::size_t n = data.size();
  expects(n >= 1 && (n & (n - 1)) == 0, "fft: size is a power of two");
  if (n == 1) return;

  bit_reverse_permute(data);

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

void fft(std::span<std::complex<double>> data, const FftPlan& plan,
         bool inverse) {
  const std::size_t n = data.size();
  expects(n >= 1 && (n & (n - 1)) == 0, "fft: size is a power of two");
  expects(plan.n >= n, "fft: plan covers the data size");
  if (n == 1) return;

  bit_reverse_permute(data);

  // Butterflies in explicit real arithmetic: std::complex operator* lowers
  // to a libcall with inf/nan handling on common compilers, which dominates
  // the transform; the inline formula is bit-identical on finite inputs.
  const double sign = inverse ? -1.0 : 1.0;  // conjugates the stored twiddles
  // Stage len = 2 has unit twiddles: pure add/sub.
  for (std::size_t i = 0; i < n; i += 2) {
    const std::complex<double> u = data[i];
    const std::complex<double> v = data[i + 1];
    data[i] = u + v;
    data[i + 1] = u - v;
  }
  for (std::size_t len = 4; len <= n; len <<= 1) {
    const std::complex<double>* tw = plan.twiddles.data() + (len / 2 - 1);
    const std::size_t half = len / 2;
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double>* a = data.data() + i;
      std::complex<double>* b = a + half;
      for (std::size_t k = 0; k < half; ++k) {
        const double wr = tw[k].real();
        const double wi = sign * tw[k].imag();
        const double br = b[k].real();
        const double bi = b[k].imag();
        const double vr = br * wr - bi * wi;
        const double vi = br * wi + bi * wr;
        const double ur = a[k].real();
        const double ui = a[k].imag();
        a[k] = {ur + vr, ui + vi};
        b[k] = {ur - vr, ui - vi};
      }
    }
  }

  if (inverse) {
    // n is a power of two, so 1/n is exact and the multiply is bit-identical
    // to the division.
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x = {x.real() * inv_n, x.imag() * inv_n};
  }
}

void rfft(std::span<const double> xs, const FftPlan& plan,
          std::span<std::complex<double>> spectrum) {
  const std::size_t n = xs.size();
  expects(n >= 2 && (n & (n - 1)) == 0, "rfft: size is a power of two >= 2");
  expects(spectrum.size() == n / 2 + 1, "rfft: spectrum size is n/2 + 1");
  expects(plan.n >= n, "rfft: plan covers the transform size");
  const std::size_t m = n / 2;

  // Pack even samples as real parts, odd samples as imaginary parts, and
  // transform once at half size.
  std::complex<double>* z = spectrum.data();
  for (std::size_t j = 0; j < m; ++j) z[j] = {xs[2 * j], xs[2 * j + 1]};
  fft(std::span<std::complex<double>>(z, m), plan);

  // Untangle the spectra of the even and odd subsequences and recombine:
  // X[k] = E[k] + W^k O[k] with W = exp(-2*pi*i/n). The pair (k, m-k) is
  // processed together so the unpack runs in place. W^k is the stage-n
  // twiddle table of the plan.
  const std::complex<double>* wn = plan.twiddles.data() + (n / 2 - 1);
  const double re0 = z[0].real();
  const double im0 = z[0].imag();
  spectrum[m] = {re0 - im0, 0.0};
  z[0] = {re0 + im0, 0.0};
  for (std::size_t k = 1; k <= m / 2; ++k) {
    // E[k] = (z[k] + conj(z[m-k])) / 2, O[k] = -i (z[k] - conj(z[m-k])) / 2,
    // in explicit real arithmetic (see the butterfly note above).
    const double zkr = z[k].real();
    const double zki = z[k].imag();
    const double zmr = z[m - k].real();
    const double zmi = z[m - k].imag();
    const double xer = 0.5 * (zkr + zmr);
    const double xei = 0.5 * (zki - zmi);
    const double xor_ = 0.5 * (zki + zmi);
    const double xoi = -0.5 * (zkr - zmr);
    const double wr = wn[k].real();
    const double wi = wn[k].imag();
    const double wxr = wr * xor_ - wi * xoi;
    const double wxi = wr * xoi + wi * xor_;
    z[k] = {xer + wxr, xei + wxi};
    if (k != m - k) {
      // X[m-k] = conj(E[k]) + W^{m-k} conj(O[k]); W^{m-k} = -conj(W^k), so
      // the second output reuses the same product: conj(W^k O[k]).
      z[m - k] = {xer - wxr, -xei + wxi};
    }
  }
}

void irfft(std::span<std::complex<double>> spectrum, const FftPlan& plan,
           std::span<double> out) {
  const std::size_t n = out.size();
  expects(n >= 2 && (n & (n - 1)) == 0, "irfft: size is a power of two >= 2");
  expects(spectrum.size() == n / 2 + 1, "irfft: spectrum size is n/2 + 1");
  expects(plan.n >= n, "irfft: plan covers the transform size");
  const std::size_t m = n / 2;

  // Exact inverse of the rfft unpack: recover E[k] and O[k] from the pair
  // (X[k], X[m-k]) and re-pack Z[k] = E[k] + i O[k], in place.
  std::complex<double>* z = spectrum.data();
  const std::complex<double>* wn = plan.twiddles.data() + (n / 2 - 1);
  const std::complex<double> x0 = z[0];
  const std::complex<double> xm = std::conj(spectrum[m]);
  const std::complex<double> e0 = 0.5 * (x0 + xm);
  const std::complex<double> o0 = 0.5 * (x0 - xm);
  z[0] = e0 + std::complex<double>(0.0, 1.0) * o0;
  for (std::size_t k = 1; k <= m / 2; ++k) {
    // E[k] = (X[k] + conj(X[m-k])) / 2, W^k O[k] = (X[k] - conj(X[m-k])) / 2,
    // O[k] = conj(W^k) (W^k O[k]); then Z[k] = E[k] + i O[k].
    const double xkr = z[k].real();
    const double xki = z[k].imag();
    const double xmr = z[m - k].real();
    const double xmi = z[m - k].imag();
    const double xer = 0.5 * (xkr + xmr);
    const double xei = 0.5 * (xki - xmi);
    const double wxr = 0.5 * (xkr - xmr);
    const double wxi = 0.5 * (xki + xmi);
    const double wr = wn[k].real();
    const double wi = wn[k].imag();
    const double xor_ = wr * wxr + wi * wxi;
    const double xoi = wr * wxi - wi * wxr;
    z[k] = {xer - xoi, xei + xor_};
    if (k != m - k) {
      z[m - k] = {xer + xoi, -xei + xor_};
    }
  }

  // The half-size inverse (with its 1/m scale) composed with the packing
  // above yields exactly the 1/n-normalized inverse DFT.
  fft(std::span<std::complex<double>>(z, m), plan, /*inverse=*/true);
  for (std::size_t j = 0; j < m; ++j) {
    out[2 * j] = z[j].real();
    out[2 * j + 1] = z[j].imag();
  }
}

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  fft(std::span<std::complex<double>>(data), inverse);
}

std::size_t next_pow2(std::size_t n) {
  expects(n >= 1, "next_pow2: n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  PTRACK_CHECK_MSG((p & (p - 1)) == 0 && p >= n && p < 2 * n,
                   "next_pow2: tightest covering power of two");
  return p;
}

std::vector<double> magnitude_spectrum(std::span<const double> xs) {
  if (xs.empty()) return {};
  const std::size_t nfft = next_pow2(xs.size());
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) buf[i] = {xs[i], 0.0};
  fft(buf);
  std::vector<double> mag(nfft / 2 + 1);
  const double scale = 1.0 / static_cast<double>(xs.size());
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double m = std::abs(buf[k]) * scale;
    const bool interior = k != 0 && k != nfft / 2;
    mag[k] = interior ? 2.0 * m : m;
  }
  return mag;
}

double dominant_frequency(std::span<const double> xs, double fs) {
  expects(fs > 0.0, "dominant_frequency: fs > 0");
  if (xs.size() < 4) return 0.0;
  const auto mag = magnitude_spectrum(xs);
  std::size_t best = 0;
  double best_val = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > best_val) {
      best_val = mag[k];
      best = k;
    }
  }
  if (best == 0) return 0.0;
  const std::size_t nfft = (mag.size() - 1) * 2;
  return static_cast<double>(best) * fs / static_cast<double>(nfft);
}

double spectral_energy(std::span<const double> xs) {
  const auto mag = magnitude_spectrum(xs);
  double acc = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) acc += mag[k] * mag[k];
  return acc;
}

double spectral_entropy(std::span<const double> xs) {
  const auto mag = magnitude_spectrum(xs);
  if (mag.size() <= 2) return 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) total += mag[k] * mag[k];
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double p = mag[k] * mag[k] / total;
    if (p > 0.0) h -= p * std::log(p);
  }
  const double hmax = std::log(static_cast<double>(mag.size() - 1));
  return hmax > 0.0 ? h / hmax : 0.0;
}

}  // namespace ptrack::dsp
