#include "dsp/fft.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::dsp {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  expects(n >= 1 && (n & (n - 1)) == 0, "fft: size is a power of two");
  if (n == 1) return;

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = (inverse ? kTwoPi : -kTwoPi) / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::size_t next_pow2(std::size_t n) {
  expects(n >= 1, "next_pow2: n >= 1");
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> magnitude_spectrum(std::span<const double> xs) {
  if (xs.empty()) return {};
  const std::size_t nfft = next_pow2(xs.size());
  std::vector<std::complex<double>> buf(nfft, {0.0, 0.0});
  for (std::size_t i = 0; i < xs.size(); ++i) buf[i] = {xs[i], 0.0};
  fft(buf);
  std::vector<double> mag(nfft / 2 + 1);
  const double scale = 1.0 / static_cast<double>(xs.size());
  for (std::size_t k = 0; k < mag.size(); ++k) {
    const double m = std::abs(buf[k]) * scale;
    const bool interior = k != 0 && k != nfft / 2;
    mag[k] = interior ? 2.0 * m : m;
  }
  return mag;
}

double dominant_frequency(std::span<const double> xs, double fs) {
  expects(fs > 0.0, "dominant_frequency: fs > 0");
  if (xs.size() < 4) return 0.0;
  const auto mag = magnitude_spectrum(xs);
  std::size_t best = 0;
  double best_val = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    if (mag[k] > best_val) {
      best_val = mag[k];
      best = k;
    }
  }
  if (best == 0) return 0.0;
  const std::size_t nfft = (mag.size() - 1) * 2;
  return static_cast<double>(best) * fs / static_cast<double>(nfft);
}

double spectral_energy(std::span<const double> xs) {
  const auto mag = magnitude_spectrum(xs);
  double acc = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) acc += mag[k] * mag[k];
  return acc;
}

double spectral_entropy(std::span<const double> xs) {
  const auto mag = magnitude_spectrum(xs);
  if (mag.size() <= 2) return 0.0;
  double total = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) total += mag[k] * mag[k];
  if (total <= 0.0) return 0.0;
  double h = 0.0;
  for (std::size_t k = 1; k < mag.size(); ++k) {
    const double p = mag[k] * mag[k] / total;
    if (p > 0.0) h -= p * std::log(p);
  }
  const double hmax = std::log(static_cast<double>(mag.size() - 1));
  return hmax > 0.0 ? h / hmax : 0.0;
}

}  // namespace ptrack::dsp
