// Acceleration projection onto the vertical and anterior directions.
//
// This is PTrack's projection frontend (paper SIII-B2): the vertical
// direction comes from the gravity estimate (commodity platforms expose the
// same via their gravity virtual sensor); the anterior direction is the
// principal axis of the horizontal residual acceleration, recovered by a
// least-squares fit — when a user walks, the arm's back-and-forth swing
// makes the anterior axis the direction of largest horizontal variance.

#pragma once

#include <span>
#include <vector>

#include "common/vec3.hpp"

namespace ptrack::dsp {

/// Result of projecting a specific-force (accelerometer) sequence.
struct ProjectedSignal {
  std::vector<double> vertical;  ///< linear vertical acceleration, up positive (m/s^2)
  std::vector<double> anterior;  ///< linear anterior acceleration (m/s^2), sign arbitrary
  std::vector<double> lateral;   ///< horizontal residual orthogonal to anterior
  Vec3 up;                       ///< estimated unit up vector
  Vec3 forward;                  ///< estimated unit anterior vector (horizontal)
  double fs = 0.0;               ///< sample rate (Hz)
};

/// Estimates the unit "up" direction from specific-force readings by heavy
/// low-pass filtering (cutoff_hz, default 0.3 Hz) and averaging. For a device
/// at rest or in cyclic motion the low-passed specific force points up with
/// magnitude ~g.
Vec3 estimate_up(std::span<const Vec3> specific_force, double fs,
                 double cutoff_hz = 0.3);

class Workspace;

/// Structure-of-arrays variant of estimate_up for span views over channel
/// storage (e.g. imu::SampleRing): no AoS materialization. Arithmetic is
/// identical to the Vec3 overload (which delegates here). `ws` (optional)
/// provides filter scratch; real slots 0 and 1 are clobbered.
Vec3 estimate_up(std::span<const double> x, std::span<const double> y,
                 std::span<const double> z, double fs, double cutoff_hz = 0.3,
                 Workspace* ws = nullptr);

/// Principal horizontal direction of the residual (gravity-removed)
/// acceleration: the eigenvector of the 2x2 horizontal covariance with the
/// larger eigenvalue. `up` must be a unit vector.
Vec3 principal_horizontal_direction(std::span<const Vec3> specific_force,
                                    const Vec3& up);

/// Structure-of-arrays variant (same arithmetic; shared implementation).
Vec3 principal_horizontal_direction(std::span<const double> x,
                                    std::span<const double> y,
                                    std::span<const double> z,
                                    const Vec3& up);

/// Full projection: vertical = f.u - g, horizontal residual decomposed into
/// anterior/lateral. Requires at least 4 samples and fs > 0.
ProjectedSignal project(std::span<const Vec3> specific_force, double fs);

/// Projection with caller-supplied axes (used in streaming mode where the
/// axes are estimated over a longer history than a single gait cycle).
ProjectedSignal project_with_axes(std::span<const Vec3> specific_force,
                                  double fs, const Vec3& up,
                                  const Vec3& forward);

}  // namespace ptrack::dsp
