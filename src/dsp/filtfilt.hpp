// Zero-phase (forward-backward) filtering.
//
// Offline analysis in PTrack (gait-cycle segmentation, critical-point
// extraction) must not shift critical-point *positions*, so it uses
// zero-phase filtering: run the cascade forward, reverse, run again,
// reverse. Reflected edge padding suppresses start-up transients.

#pragma once

#include <span>
#include <vector>

#include "dsp/biquad.hpp"

namespace ptrack::dsp {

class Workspace;

/// Applies `cascade` forward and backward over `xs` with reflected padding of
/// `pad` samples on each side (clamped to xs.size()-1). The cascade is copied
/// internally, so the caller's filter state is untouched.
std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad = 64);

/// As above, with caller-provided scratch for the padded working buffer
/// (workspace real slot 0) — repeated calls allocate only the returned
/// output vector.
std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad,
                             Workspace& ws);

/// Fully allocation-free steady state: writes the filtered signal into
/// `out` (resized to xs.size(), capacity reused across calls). `out` must
/// not alias `xs` or workspace real slot 0. Identical arithmetic to the
/// allocating overloads (they delegate here).
void filtfilt_into(const BiquadCascade& cascade, std::span<const double> xs,
                   std::size_t pad, Workspace& ws, std::vector<double>& out);

/// Convenience: zero-phase Butterworth low-pass of the given order.
std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs,
                                       int order = 4);

/// Workspace variant of zero_phase_lowpass.
std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order,
                                       Workspace& ws);

/// Workspace + output-reuse variant of zero_phase_lowpass.
void zero_phase_lowpass_into(std::span<const double> xs, double cutoff_hz,
                             double fs, int order, Workspace& ws,
                             std::vector<double>& out);

}  // namespace ptrack::dsp
