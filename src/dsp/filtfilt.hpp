// Zero-phase (forward-backward) filtering.
//
// Offline analysis in PTrack (gait-cycle segmentation, critical-point
// extraction) must not shift critical-point *positions*, so it uses
// zero-phase filtering: run the cascade forward, reverse, run again,
// reverse. Reflected edge padding suppresses start-up transients.

#pragma once

#include <array>
#include <span>
#include <vector>

#include "dsp/biquad.hpp"
#include "dsp/simd.hpp"

namespace ptrack::dsp {

class Workspace;

/// Applies `cascade` forward and backward over `xs` with reflected padding of
/// `pad` samples on each side (clamped to xs.size()-1). The cascade is copied
/// internally, so the caller's filter state is untouched.
std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad = 64);

/// As above, with caller-provided scratch for the padded working buffer
/// (workspace real slot 0) — repeated calls allocate only the returned
/// output vector.
std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad,
                             Workspace& ws);

/// Fully allocation-free steady state: writes the filtered signal into
/// `out` (resized to xs.size(), capacity reused across calls). `out` must
/// not alias `xs` or workspace real slot 0. Identical arithmetic to the
/// allocating overloads (they delegate here).
void filtfilt_into(const BiquadCascade& cascade, std::span<const double> xs,
                   std::size_t pad, Workspace& ws, std::vector<double>& out);

/// Zero-phase-filters up to simd::kIirLanes equal-length channels in one
/// lane-parallel pass (one channel per SIMD lane; IIR recurrences are serial
/// in time, so batching channels is where the parallelism comes from). Each
/// output is bit-identical to filtfilt_into() on that channel alone with the
/// same pad. `outs[c]` must be sized to the channel length and must alias
/// neither the inputs nor workspace real slot 0. `xs.size() <= kIirLanes`,
/// `cascade.sections().size() <= 8`.
void filtfilt_multi_into(const BiquadCascade& cascade,
                         std::span<const std::span<const double>> xs,
                         std::size_t pad, Workspace& ws,
                         std::span<const std::span<double>> outs);

/// Float32 variant of filtfilt_multi_into (float slot 0; coefficients are
/// narrowed to float once, matching the canonical cascade_multif contract).
void filtfilt_multif_into(const BiquadCascade& cascade,
                          std::span<const std::span<const float>> xs,
                          std::size_t pad, Workspace& ws,
                          std::span<const std::span<float>> outs);

/// Lane-parallel zero-phase filter returning only each channel's mean over
/// the unpadded region (entries past xs.size() are zero). The mean is the
/// plain serial left-to-right sum over the filtered channel divided by its
/// length — bit-identical to accumulating filtfilt_into()'s output — so the
/// up-axis estimate is unchanged by the batched path.
std::array<double, simd::kIirLanes> filtfilt_multi_mean(
    const BiquadCascade& cascade, std::span<const std::span<const double>> xs,
    std::size_t pad, Workspace& ws);

/// Float32 variant of filtfilt_multi_mean (accumulates in float).
std::array<float, simd::kIirLanes> filtfilt_multif_mean(
    const BiquadCascade& cascade, std::span<const std::span<const float>> xs,
    std::size_t pad, Workspace& ws);

/// Convenience: zero-phase Butterworth low-pass of the given order.
std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs,
                                       int order = 4);

/// Workspace variant of zero_phase_lowpass.
std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order,
                                       Workspace& ws);

/// Workspace + output-reuse variant of zero_phase_lowpass.
void zero_phase_lowpass_into(std::span<const double> xs, double cutoff_hz,
                             double fs, int order, Workspace& ws,
                             std::vector<double>& out);

}  // namespace ptrack::dsp
