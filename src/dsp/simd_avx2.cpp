// AVX2 lane of dsp::simd. Compiled with -mavx2 -ffp-contract=off (this TU
// only); nothing here executes unless runtime dispatch selected kAvx2.
//
// Every kernel reproduces the canonical scalar result bit for bit: vector
// accumulators hold the same lane-position partials the canonical block
// reduction keeps, horizontal combines use the same pairwise order, and no
// kernel emits FMA (mul and add stay separate intrinsics). min/max are
// exact operations, so the scan and clamp kernels match in any order.

#include <immintrin.h>

#include <algorithm>
#include <cstddef>

#include "dsp/simd_impl.hpp"

namespace ptrack::dsp::simd::detail {

namespace {

/// (p0+p1)+(p2+p3) — the canonical 4-lane pairwise combine.
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_hadd_pd(lo, hi);  // (p0+p1, p2+p3)
  return _mm_cvtsd_f64(pair) + _mm_cvtsd_f64(_mm_unpackhi_pd(pair, pair));
}

/// ((p0+p1)+(p2+p3)) + ((p4+p5)+(p6+p7)) — the canonical 8-lane combine.
inline float hsumf(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  const __m128 pair = _mm_hadd_ps(lo, hi);    // (p0+p1, p2+p3, p4+p5, p6+p7)
  const __m128 quad = _mm_hadd_ps(pair, pair);
  return _mm_cvtss_f32(quad) +
         _mm_cvtss_f32(_mm_shuffle_ps(quad, quad, 1));
}

inline double hmin(__m256d v) {
  const __m128d m =
      _mm_min_pd(_mm256_castpd256_pd128(v), _mm256_extractf128_pd(v, 1));
  return std::min(_mm_cvtsd_f64(m), _mm_cvtsd_f64(_mm_unpackhi_pd(m, m)));
}

double sum_avx2(const double* xs, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(xs + i));
  }
  double total = hsum(acc);
  for (; i < n; ++i) total += xs[i];
  return total;
}

float sumf_avx2(const float* xs, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(xs + i));
  }
  float total = hsumf(acc);
  for (; i < n; ++i) total += xs[i];
  return total;
}

double dot_avx2(const double* a, const double* b, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
  double total = hsum(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

float dotf_avx2(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  float total = hsumf(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

double sumsq_dev_avx2(const double* xs, std::size_t n, double mean) {
  const __m256d mv = _mm256_set1_pd(mean);
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(_mm256_loadu_pd(xs + i), mv);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
  }
  double total = hsum(acc);
  for (; i < n; ++i) {
    const double d = xs[i] - mean;
    total += d * d;
  }
  return total;
}

float sumsq_devf_avx2(const float* xs, std::size_t n, float mean) {
  const __m256 mv = _mm256_set1_ps(mean);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_sub_ps(_mm256_loadu_ps(xs + i), mv);
    acc = _mm256_add_ps(acc, _mm256_mul_ps(d, d));
  }
  float total = hsumf(acc);
  for (; i < n; ++i) {
    const float d = xs[i] - mean;
    total += d * d;
  }
  return total;
}

void axis_project_avx2(const double* x, const double* y, const double* z,
                       std::size_t n, Vec3 u, double bias, double* out) {
  const __m256d uxv = _mm256_set1_pd(u.x);
  const __m256d uyv = _mm256_set1_pd(u.y);
  const __m256d uzv = _mm256_set1_pd(u.z);
  const __m256d bv = _mm256_set1_pd(bias);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(_mm256_loadu_pd(x + i), uxv),
                      _mm256_mul_pd(_mm256_loadu_pd(y + i), uyv)),
        _mm256_mul_pd(_mm256_loadu_pd(z + i), uzv));
    _mm256_storeu_pd(out + i, _mm256_sub_pd(d, bv));
  }
  for (; i < n; ++i) {
    out[i] = ((x[i] * u.x + y[i] * u.y) + z[i] * u.z) - bias;
  }
}

void axis_projectf_avx2(const float* x, const float* y, const float* z,
                        std::size_t n, Vec3 u, float bias, float* out) {
  const float ux = static_cast<float>(u.x);
  const float uy = static_cast<float>(u.y);
  const float uz = static_cast<float>(u.z);
  const __m256 uxv = _mm256_set1_ps(ux);
  const __m256 uyv = _mm256_set1_ps(uy);
  const __m256 uzv = _mm256_set1_ps(uz);
  const __m256 bv = _mm256_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 d = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), uxv),
                      _mm256_mul_ps(_mm256_loadu_ps(y + i), uyv)),
        _mm256_mul_ps(_mm256_loadu_ps(z + i), uzv));
    _mm256_storeu_ps(out + i, _mm256_sub_ps(d, bv));
  }
  for (; i < n; ++i) {
    out[i] = ((x[i] * ux + y[i] * uy) + z[i] * uz) - bias;
  }
}

void residual_project_avx2(const double* x, const double* y, const double* z,
                           std::size_t n, Vec3 up, Vec3 dir, double* out) {
  const __m256d uxv = _mm256_set1_pd(up.x);
  const __m256d uyv = _mm256_set1_pd(up.y);
  const __m256d uzv = _mm256_set1_pd(up.z);
  const __m256d dxv = _mm256_set1_pd(dir.x);
  const __m256d dyv = _mm256_set1_pd(dir.y);
  const __m256d dzv = _mm256_set1_pd(dir.z);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xv = _mm256_loadu_pd(x + i);
    const __m256d yv = _mm256_loadu_pd(y + i);
    const __m256d zv = _mm256_loadu_pd(z + i);
    const __m256d t = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(xv, uxv), _mm256_mul_pd(yv, uyv)),
        _mm256_mul_pd(zv, uzv));
    const __m256d rx = _mm256_sub_pd(xv, _mm256_mul_pd(uxv, t));
    const __m256d ry = _mm256_sub_pd(yv, _mm256_mul_pd(uyv, t));
    const __m256d rz = _mm256_sub_pd(zv, _mm256_mul_pd(uzv, t));
    const __m256d a = _mm256_add_pd(
        _mm256_add_pd(_mm256_mul_pd(rx, dxv), _mm256_mul_pd(ry, dyv)),
        _mm256_mul_pd(rz, dzv));
    _mm256_storeu_pd(out + i, a);
  }
  for (; i < n; ++i) {
    const double t = (x[i] * up.x + y[i] * up.y) + z[i] * up.z;
    const double rx = x[i] - up.x * t;
    const double ry = y[i] - up.y * t;
    const double rz = z[i] - up.z * t;
    out[i] = (rx * dir.x + ry * dir.y) + rz * dir.z;
  }
}

void residual_projectf_avx2(const float* x, const float* y, const float* z,
                            std::size_t n, Vec3 up, Vec3 dir, float* out) {
  const float ux = static_cast<float>(up.x);
  const float uy = static_cast<float>(up.y);
  const float uz = static_cast<float>(up.z);
  const float dx = static_cast<float>(dir.x);
  const float dy = static_cast<float>(dir.y);
  const float dz = static_cast<float>(dir.z);
  const __m256 uxv = _mm256_set1_ps(ux);
  const __m256 uyv = _mm256_set1_ps(uy);
  const __m256 uzv = _mm256_set1_ps(uz);
  const __m256 dxv = _mm256_set1_ps(dx);
  const __m256 dyv = _mm256_set1_ps(dy);
  const __m256 dzv = _mm256_set1_ps(dz);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 xv = _mm256_loadu_ps(x + i);
    const __m256 yv = _mm256_loadu_ps(y + i);
    const __m256 zv = _mm256_loadu_ps(z + i);
    const __m256 t = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(xv, uxv), _mm256_mul_ps(yv, uyv)),
        _mm256_mul_ps(zv, uzv));
    const __m256 rx = _mm256_sub_ps(xv, _mm256_mul_ps(uxv, t));
    const __m256 ry = _mm256_sub_ps(yv, _mm256_mul_ps(uyv, t));
    const __m256 rz = _mm256_sub_ps(zv, _mm256_mul_ps(uzv, t));
    const __m256 a = _mm256_add_ps(
        _mm256_add_ps(_mm256_mul_ps(rx, dxv), _mm256_mul_ps(ry, dyv)),
        _mm256_mul_ps(rz, dzv));
    _mm256_storeu_ps(out + i, a);
  }
  for (; i < n; ++i) {
    const float t = (x[i] * ux + y[i] * uy) + z[i] * uz;
    const float rx = x[i] - ux * t;
    const float ry = y[i] - uy * t;
    const float rz = z[i] - uz * t;
    out[i] = (rx * dx + ry * dy) + rz * dz;
  }
}

void negate_avx2(const double* xs, std::size_t n, double* out) {
  // Sign-bit flip, not 0-x: the latter maps -0.0 to +0.0 and would diverge
  // from the scalar unary minus.
  const __m256d sign = _mm256_set1_pd(-0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_xor_pd(_mm256_loadu_pd(xs + i), sign));
  }
  for (; i < n; ++i) out[i] = -xs[i];
}

void sub_scalar_avx2(const double* xs, std::size_t n, double m, double* out) {
  const __m256d mv = _mm256_set1_pd(m);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(xs + i), mv));
  }
  for (; i < n; ++i) out[i] = xs[i] - m;
}

void diff_div_avx2(const double* hi, const double* lo, std::size_t n,
                   double div, double* out) {
  const __m256d dv = _mm256_set1_pd(div);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(
        out + i,
        _mm256_div_pd(
            _mm256_sub_pd(_mm256_loadu_pd(hi + i), _mm256_loadu_pd(lo + i)),
            dv));
  }
  for (; i < n; ++i) out[i] = (hi[i] - lo[i]) / div;
}

void widen_avx2(const float* xs, std::size_t n, double* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(out + i, _mm256_cvtps_pd(_mm_loadu_ps(xs + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(xs[i]);
}

void narrow_avx2(const double* xs, std::size_t n, float* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(out + i, _mm256_cvtpd_ps(_mm256_loadu_pd(xs + i)));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(xs[i]);
}

double min_until_greater_fwd_avx2(const double* xs, std::size_t n, double h) {
  const __m256d hv = _mm256_set1_pd(h);
  __m256d mv = hv;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d x = _mm256_loadu_pd(xs + i);
    // A breaker inside this block ends the scan mid-block; fall back to the
    // scalar walk from i so elements past the breaker stay excluded.
    if (_mm256_movemask_pd(_mm256_cmp_pd(x, hv, _CMP_GT_OQ)) != 0) break;
    mv = _mm256_min_pd(mv, x);
  }
  double m = std::min(h, hmin(mv));
  for (; i < n; ++i) {
    m = std::min(m, xs[i]);
    if (xs[i] > h) break;
  }
  return m;
}

double min_until_greater_bwd_avx2(const double* xs, std::size_t n, double h) {
  const __m256d hv = _mm256_set1_pd(h);
  __m256d mv = hv;
  std::size_t i = n;
  for (; i >= 4; i -= 4) {
    const __m256d x = _mm256_loadu_pd(xs + i - 4);
    if (_mm256_movemask_pd(_mm256_cmp_pd(x, hv, _CMP_GT_OQ)) != 0) break;
    mv = _mm256_min_pd(mv, x);
  }
  double m = std::min(h, hmin(mv));
  for (; i-- > 0;) {
    m = std::min(m, xs[i]);
    if (xs[i] > h) break;
  }
  return m;
}

void normalize_lags_avx2(const double* raw, std::size_t n, std::size_t nlags,
                         double den, double* out) {
  const __m256d nv = _mm256_set1_pd(static_cast<double>(n));
  const __m256d denv = _mm256_set1_pd(den);
  const __m256d onev = _mm256_set1_pd(1.0);
  const __m256d neg_onev = _mm256_set1_pd(-1.0);
  const __m256d fourv = _mm256_set1_pd(4.0);
  __m256d lagv = _mm256_set_pd(3.0, 2.0, 1.0, 0.0);
  std::size_t lag = 0;
  for (; lag + 4 <= nlags; lag += 4) {
    const __m256d scale = _mm256_div_pd(nv, _mm256_sub_pd(nv, lagv));
    const __m256d v = _mm256_div_pd(
        _mm256_mul_pd(_mm256_loadu_pd(raw + lag), scale), denv);
    _mm256_storeu_pd(out + lag,
                     _mm256_min_pd(_mm256_max_pd(v, neg_onev), onev));
    lagv = _mm256_add_pd(lagv, fourv);
  }
  for (; lag < nlags; ++lag) {
    const double scale =
        static_cast<double>(n) / static_cast<double>(n - lag);
    out[lag] = std::clamp(raw[lag] * scale / den, -1.0, 1.0);
  }
}

// The cascade recurrence is a serial dependency chain through the section
// state; if that state lives in a runtime-indexed array the chain gains a
// store-forward round trip per section per sample. Dispatching the section
// count to a compile-time constant lets the compiler fully unroll the
// section loop and keep every s1/s2 in a register, which is the difference
// between winning and losing against the auto-vectorized scalar loop.
template <std::size_t NSec>
void cascade_multi_avx2_n(const BiquadCoeffs* sections, double* data,
                          std::size_t n, bool backward) {
  struct SecV {
    __m256d b0, b1, b2, a1, a2;
  };
  SecV cs[NSec];
  __m256d s1[NSec];
  __m256d s2[NSec];
  for (std::size_t s = 0; s < NSec; ++s) {
    cs[s] = {_mm256_set1_pd(sections[s].b0), _mm256_set1_pd(sections[s].b1),
             _mm256_set1_pd(sections[s].b2), _mm256_set1_pd(sections[s].a1),
             _mm256_set1_pd(sections[s].a2)};
    s1[s] = _mm256_setzero_pd();
    s2[s] = _mm256_setzero_pd();
  }
  for (std::size_t k = 0; k < n; ++k) {
    double* p = data + (backward ? n - 1 - k : k) * kIirLanes;
    __m256d x = _mm256_loadu_pd(p);
    for (std::size_t s = 0; s < NSec; ++s) {
      const __m256d y = _mm256_add_pd(_mm256_mul_pd(cs[s].b0, x), s1[s]);
      s1[s] = _mm256_add_pd(_mm256_sub_pd(_mm256_mul_pd(cs[s].b1, x),
                                          _mm256_mul_pd(cs[s].a1, y)),
                            s2[s]);
      s2[s] = _mm256_sub_pd(_mm256_mul_pd(cs[s].b2, x),
                            _mm256_mul_pd(cs[s].a2, y));
      x = y;
    }
    _mm256_storeu_pd(p, x);
  }
}

void cascade_multi_avx2(const BiquadCoeffs* sections, std::size_t nsec,
                        double* data, std::size_t n, bool backward) {
  switch (nsec) {
    case 0: return;
    case 1: return cascade_multi_avx2_n<1>(sections, data, n, backward);
    case 2: return cascade_multi_avx2_n<2>(sections, data, n, backward);
    case 3: return cascade_multi_avx2_n<3>(sections, data, n, backward);
    case 4: return cascade_multi_avx2_n<4>(sections, data, n, backward);
    default: break;
  }
  // Rare deep cascades: fall back to the canonical loop (bit-identical).
  cascade_multi_canonical<double>(sections, nsec, data, n, backward);
}

template <std::size_t NSec>
void cascade_multif_avx2_n(const BiquadCoeffs* sections, float* data,
                           std::size_t n, bool backward) {
  struct SecV {
    __m128 b0, b1, b2, a1, a2;
  };
  SecV cs[NSec];
  __m128 s1[NSec];
  __m128 s2[NSec];
  for (std::size_t s = 0; s < NSec; ++s) {
    cs[s] = {_mm_set1_ps(static_cast<float>(sections[s].b0)),
             _mm_set1_ps(static_cast<float>(sections[s].b1)),
             _mm_set1_ps(static_cast<float>(sections[s].b2)),
             _mm_set1_ps(static_cast<float>(sections[s].a1)),
             _mm_set1_ps(static_cast<float>(sections[s].a2))};
    s1[s] = _mm_setzero_ps();
    s2[s] = _mm_setzero_ps();
  }
  for (std::size_t k = 0; k < n; ++k) {
    float* p = data + (backward ? n - 1 - k : k) * kIirLanes;
    __m128 x = _mm_loadu_ps(p);
    for (std::size_t s = 0; s < NSec; ++s) {
      const __m128 y = _mm_add_ps(_mm_mul_ps(cs[s].b0, x), s1[s]);
      s1[s] = _mm_add_ps(
          _mm_sub_ps(_mm_mul_ps(cs[s].b1, x), _mm_mul_ps(cs[s].a1, y)),
          s2[s]);
      s2[s] = _mm_sub_ps(_mm_mul_ps(cs[s].b2, x), _mm_mul_ps(cs[s].a2, y));
      x = y;
    }
    _mm_storeu_ps(p, x);
  }
}

void cascade_multif_avx2(const BiquadCoeffs* sections, std::size_t nsec,
                         float* data, std::size_t n, bool backward) {
  switch (nsec) {
    case 0: return;
    case 1: return cascade_multif_avx2_n<1>(sections, data, n, backward);
    case 2: return cascade_multif_avx2_n<2>(sections, data, n, backward);
    case 3: return cascade_multif_avx2_n<3>(sections, data, n, backward);
    case 4: return cascade_multif_avx2_n<4>(sections, data, n, backward);
    default: break;
  }
  cascade_multi_canonical<float>(sections, nsec, data, n, backward);
}

}  // namespace

const KernelTable& avx2_table() {
  static const KernelTable t = {
      &sum_avx2,
      &sumf_avx2,
      &dot_avx2,
      &dotf_avx2,
      &sumsq_dev_avx2,
      &sumsq_devf_avx2,
      &axis_project_avx2,
      &axis_projectf_avx2,
      &residual_project_avx2,
      &residual_projectf_avx2,
      &negate_avx2,
      &sub_scalar_avx2,
      &diff_div_avx2,
      &widen_avx2,
      &narrow_avx2,
      &min_until_greater_fwd_avx2,
      &min_until_greater_bwd_avx2,
      &normalize_lags_avx2,
      &cascade_multi_avx2,
      &cascade_multif_avx2,
  };
  return t;
}

}  // namespace ptrack::dsp::simd::detail
