#include "dsp/windows.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::dsp {

std::vector<double> hann(std::size_t n) {
  expects(n >= 1, "hann: n >= 1");
  std::vector<double> w(n);
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.5 * (1.0 - std::cos(kTwoPi * static_cast<double>(i) /
                                 static_cast<double>(n - 1)));
  }
  return w;
}

std::vector<double> hamming(std::size_t n) {
  expects(n >= 1, "hamming: n >= 1");
  std::vector<double> w(n);
  if (n == 1) {
    w[0] = 1.0;
    return w;
  }
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = 0.54 - 0.46 * std::cos(kTwoPi * static_cast<double>(i) /
                                  static_cast<double>(n - 1));
  }
  return w;
}

std::vector<double> apply_window(std::span<const double> xs,
                                 std::span<const double> window) {
  expects(xs.size() == window.size(), "apply_window: equal sizes");
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) out[i] = xs[i] * window[i];
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>> frame_indices(
    std::size_t n, std::size_t frame, std::size_t hop) {
  expects(frame >= 1 && hop >= 1, "frame_indices: frame, hop >= 1");
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t begin = 0; begin + frame <= n; begin += hop) {
    // ptrack-lint: allow(alloc) batch-only framing helper
    out.emplace_back(begin, begin + frame);
  }
  return out;
}

}  // namespace ptrack::dsp
