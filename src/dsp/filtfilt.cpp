#include "dsp/filtfilt.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/workspace.hpp"

namespace ptrack::dsp {

namespace {

// Odd (point-reflected) padding as used by scipy.signal.filtfilt: mirrors
// the signal about its end values, which keeps level and slope continuous.
// Writes into `out`, which must have size xs.size() + 2 * pad.
void pad_reflect_into(std::span<const double> xs, std::size_t pad,
                      std::span<double> out) {
  const std::size_t n = xs.size();
  // Edge-pad bounds: the reflection reads xs[pad - i] and xs[n - 1 - i] for
  // i up to pad, so the pad must leave at least one interior sample, and the
  // destination must hold signal + both pads exactly.
  PTRACK_CHECK_MSG(n >= 1 && pad < n,
                   "pad_reflect_into: pad shorter than the signal");
  PTRACK_CHECK_MSG(out.size() == n + 2 * pad,
                   "pad_reflect_into: output sized to signal + both pads");
  for (std::size_t i = 0; i < pad; ++i) {
    out[i] = 2.0 * xs.front() - xs[pad - i];
  }
  std::copy(xs.begin(), xs.end(), out.begin() + static_cast<std::ptrdiff_t>(pad));
  for (std::size_t i = 1; i <= pad; ++i) {
    out[pad + n - 1 + i] = 2.0 * xs.back() - xs[n - 1 - i];
  }
}

// Forward-backward pass over the padded buffer, in place.
void filtfilt_inplace(const BiquadCascade& cascade, std::span<double> padded) {
  BiquadCascade f = cascade;
  f.reset();
  f.process_inplace(padded);
  std::reverse(padded.begin(), padded.end());
  f.reset();
  f.process_inplace(padded);
  std::reverse(padded.begin(), padded.end());
}

}  // namespace

std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad) {
  if (xs.empty()) return {};
  pad = std::min(pad, xs.size() - 1);

  std::vector<double> padded(xs.size() + 2 * pad);
  pad_reflect_into(xs, pad, padded);
  filtfilt_inplace(cascade, padded);

  return {padded.begin() + static_cast<std::ptrdiff_t>(pad),
          padded.begin() + static_cast<std::ptrdiff_t>(pad + xs.size())};
}

void filtfilt_into(const BiquadCascade& cascade, std::span<const double> xs,
                   std::size_t pad, Workspace& ws, std::vector<double>& out) {
  if (xs.empty()) {
    out.clear();
    return;
  }
  pad = std::min(pad, xs.size() - 1);

  auto& padded = ws.real_scratch(0, xs.size() + 2 * pad);
  PTRACK_CHECK_MSG(&padded != &out, "filtfilt_into: out aliases scratch");
  pad_reflect_into(xs, pad, padded);
  filtfilt_inplace(cascade, padded);

  out.assign(padded.begin() + static_cast<std::ptrdiff_t>(pad),
             padded.begin() + static_cast<std::ptrdiff_t>(pad + xs.size()));
}

std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad,
                             Workspace& ws) {
  std::vector<double> out;
  filtfilt_into(cascade, xs, pad, ws, out);
  return out;
}

std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order) {
  return filtfilt(butterworth_lowpass(order, cutoff_hz, fs), xs);
}

std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order,
                                       Workspace& ws) {
  return filtfilt(butterworth_lowpass(order, cutoff_hz, fs), xs, 64, ws);
}

void zero_phase_lowpass_into(std::span<const double> xs, double cutoff_hz,
                             double fs, int order, Workspace& ws,
                             std::vector<double>& out) {
  filtfilt_into(butterworth_lowpass(order, cutoff_hz, fs), xs, 64, ws, out);
}

}  // namespace ptrack::dsp
