#include "dsp/filtfilt.hpp"

#include <algorithm>

#include "dsp/butterworth.hpp"

namespace ptrack::dsp {

namespace {

// Odd (point-reflected) padding as used by scipy.signal.filtfilt: mirrors
// the signal about its end values, which keeps level and slope continuous.
std::vector<double> pad_reflect(std::span<const double> xs, std::size_t pad) {
  std::vector<double> out;
  out.reserve(xs.size() + 2 * pad);
  for (std::size_t i = pad; i >= 1; --i)
    out.push_back(2.0 * xs.front() - xs[i]);
  out.insert(out.end(), xs.begin(), xs.end());
  const std::size_t n = xs.size();
  for (std::size_t i = 1; i <= pad; ++i)
    out.push_back(2.0 * xs.back() - xs[n - 1 - i]);
  return out;
}

}  // namespace

std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad) {
  if (xs.empty()) return {};
  pad = std::min(pad, xs.size() - 1);

  std::vector<double> padded = pad_reflect(xs, pad);

  BiquadCascade fwd = cascade;
  fwd.reset();
  std::vector<double> y = fwd.process(padded);

  std::reverse(y.begin(), y.end());
  BiquadCascade bwd = cascade;
  bwd.reset();
  y = bwd.process(y);
  std::reverse(y.begin(), y.end());

  return {y.begin() + static_cast<std::ptrdiff_t>(pad),
          y.begin() + static_cast<std::ptrdiff_t>(pad + xs.size())};
}

std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order) {
  return filtfilt(butterworth_lowpass(order, cutoff_hz, fs), xs);
}

}  // namespace ptrack::dsp
