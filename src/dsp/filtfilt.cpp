#include "dsp/filtfilt.hpp"

#include <algorithm>
#include <type_traits>

#include "common/check.hpp"
#include "common/error.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/simd.hpp"
#include "dsp/workspace.hpp"

namespace ptrack::dsp {

namespace {

// Odd (point-reflected) padding as used by scipy.signal.filtfilt: mirrors
// the signal about its end values, which keeps level and slope continuous.
// Writes into `out`, which must have size xs.size() + 2 * pad.
void pad_reflect_into(std::span<const double> xs, std::size_t pad,
                      std::span<double> out) {
  const std::size_t n = xs.size();
  // Edge-pad bounds: the reflection reads xs[pad - i] and xs[n - 1 - i] for
  // i up to pad, so the pad must leave at least one interior sample, and the
  // destination must hold signal + both pads exactly.
  PTRACK_CHECK_MSG(n >= 1 && pad < n,
                   "pad_reflect_into: pad shorter than the signal");
  PTRACK_CHECK_MSG(out.size() == n + 2 * pad,
                   "pad_reflect_into: output sized to signal + both pads");
  for (std::size_t i = 0; i < pad; ++i) {
    out[i] = 2.0 * xs.front() - xs[pad - i];
  }
  std::copy(xs.begin(), xs.end(), out.begin() + static_cast<std::ptrdiff_t>(pad));
  for (std::size_t i = 1; i <= pad; ++i) {
    out[pad + n - 1 + i] = 2.0 * xs.back() - xs[n - 1 - i];
  }
}

// Forward-backward pass over the padded buffer, in place.
void filtfilt_inplace(const BiquadCascade& cascade, std::span<double> padded) {
  BiquadCascade f = cascade;
  f.reset();
  f.process_inplace(padded);
  std::reverse(padded.begin(), padded.end());
  f.reset();
  f.process_inplace(padded);
  std::reverse(padded.begin(), padded.end());
}

// Odd reflection of one channel into lane `lane` of the interleaved
// (sample-major, kIirLanes-stride) buffer — the same values pad_reflect_into
// writes, just strided.
template <typename T>
void pad_reflect_lane(std::span<const T> xs, std::size_t pad, T* out,
                      std::size_t lane) {
  constexpr std::size_t kL = simd::kIirLanes;
  const std::size_t n = xs.size();
  PTRACK_CHECK_MSG(n >= 1 && pad < n,
                   "pad_reflect_lane: pad shorter than the signal");
  const T two = static_cast<T>(2);
  for (std::size_t i = 0; i < pad; ++i) {
    out[i * kL + lane] = two * xs.front() - xs[pad - i];
  }
  for (std::size_t i = 0; i < n; ++i) out[(pad + i) * kL + lane] = xs[i];
  for (std::size_t i = 1; i <= pad; ++i) {
    out[(pad + n - 1 + i) * kL + lane] = two * xs.back() - xs[n - 1 - i];
  }
}

// Pads every channel into the interleaved scratch and runs the zero-phase
// forward/backward cascade over all lanes at once. `pad` must already be
// clamped; returns the padded interleaved buffer of (n + 2*pad) samples.
// Backward pass = iterating the samples in reverse with fresh filter state,
// which is bit-identical to filtfilt_inplace's reverse/process/reverse.
template <typename T>
std::span<T> multi_filter_core(const BiquadCascade& cascade,
                               std::span<const std::span<const T>> xs,
                               std::size_t pad, Workspace& ws) {
  constexpr std::size_t kL = simd::kIirLanes;
  const std::size_t k = xs.size();
  expects(k >= 1 && k <= kL, "filtfilt_multi: 1..kIirLanes channels");
  const std::size_t n = xs[0].size();
  for (const auto& chan : xs) {
    expects(chan.size() == n, "filtfilt_multi: equal-length channels");
  }
  const std::size_t m = n + 2 * pad;

  T* buf = nullptr;
  if constexpr (std::is_same_v<T, float>) {
    buf = ws.float_scratch(0, m * kL).data();
  } else {
    buf = ws.real_scratch(0, m * kL).data();
  }
  for (std::size_t c = 0; c < k; ++c) {
    pad_reflect_lane(xs[c], pad, buf, c);
  }
  // Unused lanes never influence the occupied ones, but stale scratch there
  // could drive the recurrence through denormals/Inf and stall every lane's
  // arithmetic — zero them.
  for (std::size_t c = k; c < kL; ++c) {
    for (std::size_t i = 0; i < m; ++i) buf[i * kL + c] = static_cast<T>(0);
  }

  const auto& secs = cascade.sections();
  std::array<BiquadCoeffs, 8> coeffs{};
  expects(secs.size() <= coeffs.size(), "filtfilt_multi: section count");
  for (std::size_t s = 0; s < secs.size(); ++s) coeffs[s] = secs[s].coeffs();
  const std::span<const BiquadCoeffs> sections(coeffs.data(), secs.size());

  if constexpr (std::is_same_v<T, float>) {
    simd::cascade_multif(sections, buf, m, false);
    simd::cascade_multif(sections, buf, m, true);
  } else {
    simd::cascade_multi(sections, buf, m, false);
    simd::cascade_multi(sections, buf, m, true);
  }
  return {buf, m * kL};
}

template <typename T>
void multi_into(const BiquadCascade& cascade,
                std::span<const std::span<const T>> xs, std::size_t pad,
                Workspace& ws, std::span<const std::span<T>> outs) {
  constexpr std::size_t kL = simd::kIirLanes;
  expects(outs.size() == xs.size(),
          "filtfilt_multi_into: one output per channel");
  if (xs.empty()) return;
  const std::size_t n = xs[0].size();
  for (const auto& out : outs) {
    expects(out.size() == n, "filtfilt_multi_into: outputs sized to channel");
  }
  if (n == 0) return;
  pad = std::min(pad, n - 1);
  const auto buf = multi_filter_core<T>(cascade, xs, pad, ws);
  for (std::size_t c = 0; c < outs.size(); ++c) {
    for (std::size_t i = 0; i < n; ++i) {
      outs[c][i] = buf[(pad + i) * kL + c];
    }
  }
}

template <typename T>
std::array<T, simd::kIirLanes> multi_mean(
    const BiquadCascade& cascade, std::span<const std::span<const T>> xs,
    std::size_t pad, Workspace& ws) {
  constexpr std::size_t kL = simd::kIirLanes;
  std::array<T, kL> means{};
  if (xs.empty()) return means;
  const std::size_t n = xs[0].size();
  if (n == 0) return means;
  pad = std::min(pad, n - 1);
  const auto buf = multi_filter_core<T>(cascade, xs, pad, ws);
  for (std::size_t c = 0; c < xs.size(); ++c) {
    // Serial left-to-right sum: bit-identical to accumulating the
    // single-channel filtfilt output.
    T sum = static_cast<T>(0);
    for (std::size_t i = 0; i < n; ++i) sum += buf[(pad + i) * kL + c];
    means[c] = sum / static_cast<T>(n);
  }
  return means;
}

}  // namespace

std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad) {
  if (xs.empty()) return {};
  pad = std::min(pad, xs.size() - 1);

  std::vector<double> padded(xs.size() + 2 * pad);
  pad_reflect_into(xs, pad, padded);
  filtfilt_inplace(cascade, padded);

  return {padded.begin() + static_cast<std::ptrdiff_t>(pad),
          padded.begin() + static_cast<std::ptrdiff_t>(pad + xs.size())};
}

void filtfilt_into(const BiquadCascade& cascade, std::span<const double> xs,
                   std::size_t pad, Workspace& ws, std::vector<double>& out) {
  if (xs.empty()) {
    out.clear();
    return;
  }
  pad = std::min(pad, xs.size() - 1);

  auto& padded = ws.real_scratch(0, xs.size() + 2 * pad);
  PTRACK_CHECK_MSG(static_cast<const void*>(&padded) !=
                       static_cast<const void*>(&out),
                   "filtfilt_into: out aliases scratch");
  pad_reflect_into(xs, pad, padded);
  filtfilt_inplace(cascade, padded);

  // ptrack-lint: allow(alloc) refills caller scratch; steady capacity
  out.assign(padded.begin() + static_cast<std::ptrdiff_t>(pad),
             padded.begin() + static_cast<std::ptrdiff_t>(pad + xs.size()));
}

std::vector<double> filtfilt(const BiquadCascade& cascade,
                             std::span<const double> xs, std::size_t pad,
                             Workspace& ws) {
  std::vector<double> out;
  filtfilt_into(cascade, xs, pad, ws, out);
  return out;
}

void filtfilt_multi_into(const BiquadCascade& cascade,
                         std::span<const std::span<const double>> xs,
                         std::size_t pad, Workspace& ws,
                         std::span<const std::span<double>> outs) {
  multi_into<double>(cascade, xs, pad, ws, outs);
}

void filtfilt_multif_into(const BiquadCascade& cascade,
                          std::span<const std::span<const float>> xs,
                          std::size_t pad, Workspace& ws,
                          std::span<const std::span<float>> outs) {
  multi_into<float>(cascade, xs, pad, ws, outs);
}

std::array<double, simd::kIirLanes> filtfilt_multi_mean(
    const BiquadCascade& cascade, std::span<const std::span<const double>> xs,
    std::size_t pad, Workspace& ws) {
  return multi_mean<double>(cascade, xs, pad, ws);
}

std::array<float, simd::kIirLanes> filtfilt_multif_mean(
    const BiquadCascade& cascade, std::span<const std::span<const float>> xs,
    std::size_t pad, Workspace& ws) {
  return multi_mean<float>(cascade, xs, pad, ws);
}

std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order) {
  return filtfilt(butterworth_lowpass(order, cutoff_hz, fs), xs);
}

std::vector<double> zero_phase_lowpass(std::span<const double> xs,
                                       double cutoff_hz, double fs, int order,
                                       Workspace& ws) {
  return filtfilt(butterworth_lowpass(order, cutoff_hz, fs), xs, 64, ws);
}

void zero_phase_lowpass_into(std::span<const double> xs, double cutoff_hz,
                             double fs, int order, Workspace& ws,
                             std::vector<double>& out) {
  filtfilt_into(butterworth_lowpass(order, cutoff_hz, fs), xs, 64, ws, out);
}

}  // namespace ptrack::dsp
