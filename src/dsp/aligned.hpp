// 64-byte-aligned vector storage for DSP scratch.
//
// The SIMD kernels accept arbitrary pointers (unaligned loads), but scratch
// that starts on a cache-line boundary keeps their vector blocks from
// straddling lines — a measurable difference on the per-hop filter buffers.
// Alignment is a performance contract only; nothing is allowed to depend on
// it for correctness.

#pragma once

#include <cstddef>
#include <new>
#include <vector>

namespace ptrack::dsp {

/// Minimal allocator handing out storage aligned to `Align` bytes.
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  using value_type = T;
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "Align must be a power of two covering alignof(T)");

  /// Explicit rebind: the default allocator_traits mechanism cannot rebind
  /// through the non-type Align parameter.
  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  AlignedAllocator() = default;
  template <typename U>
  explicit(false) AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  template <typename U>
  bool operator==(const AlignedAllocator<U, Align>&) const noexcept {
    return true;
  }
};

/// std::vector with 64-byte-aligned storage.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace ptrack::dsp
