#include "dsp/detrend.hpp"

#include "common/error.hpp"

namespace ptrack::dsp {

LineFit fit_line(std::span<const double> xs) {
  expects(xs.size() >= 2, "fit_line: >= 2 samples");
  const auto n = static_cast<double>(xs.size());
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto x = static_cast<double>(i);
    sx += x;
    sy += xs[i];
    sxx += x * x;
    sxy += x * xs[i];
  }
  const double denom = n * sxx - sx * sx;
  LineFit fit;
  fit.slope = denom != 0.0 ? (n * sxy - sx * sy) / denom : 0.0;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

std::vector<double> detrend_linear(std::span<const double> xs) {
  if (xs.size() < 2) return {xs.begin(), xs.end()};
  const LineFit fit = fit_line(xs);
  std::vector<double> out(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out[i] = xs[i] - (fit.intercept + fit.slope * static_cast<double>(i));
  }
  return out;
}

}  // namespace ptrack::dsp
