#include "dsp/workspace.hpp"

#include "common/error.hpp"

namespace ptrack::dsp {

std::vector<std::complex<double>>& Workspace::complex_scratch(std::size_t slot,
                                                              std::size_t n) {
  expects(slot < kComplexSlots, "Workspace::complex_scratch: valid slot");
  auto& buf = complex_[slot];
  buf.resize(n);
  return buf;
}

std::vector<double>& Workspace::real_scratch(std::size_t slot, std::size_t n) {
  expects(slot < kRealSlots, "Workspace::real_scratch: valid slot");
  auto& buf = real_[slot];
  buf.resize(n);
  return buf;
}

const FftPlan& Workspace::fft_plan(std::size_t nfft) {
  for (const auto& p : plans_) {
    if (p->n == nfft) return *p;
  }
  plans_.push_back(std::make_unique<FftPlan>(make_fft_plan(nfft)));
  return *plans_.back();
}

}  // namespace ptrack::dsp
