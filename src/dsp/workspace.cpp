#include "dsp/workspace.hpp"

#include "common/check.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace ptrack::dsp {

namespace {

// Slot-aliasing contract: a kernel that requests two distinct slots must get
// two disjoint allocations, or composed kernels would silently clobber each
// other's scratch. Cheap pointer-disjointness sweep over the slot array.
template <typename Buffers>
void check_slots_disjoint(const Buffers& buffers, std::size_t slot) {
  for (std::size_t other = 0; other < buffers.size(); ++other) {
    if (other == slot) continue;
    PTRACK_CHECK_MSG(buffers[slot].empty() || buffers[other].empty() ||
                         buffers[slot].data() != buffers[other].data(),
                     "Workspace: scratch slots never alias");
  }
}

}  // namespace

AlignedVector<std::complex<double>>& Workspace::complex_scratch(
    std::size_t slot, std::size_t n) {
  expects(slot < kComplexSlots, "Workspace::complex_scratch: valid slot");
  auto& buf = complex_[slot];
  // ptrack-lint: allow(alloc) workspace scratch; steady capacity
  buf.resize(n);
  check_slots_disjoint(complex_, slot);
  return buf;
}

AlignedVector<double>& Workspace::real_scratch(std::size_t slot,
                                               std::size_t n) {
  expects(slot < kRealSlots, "Workspace::real_scratch: valid slot");
  auto& buf = real_[slot];
  // ptrack-lint: allow(alloc) workspace scratch; steady capacity
  buf.resize(n);
  check_slots_disjoint(real_, slot);
  return buf;
}

AlignedVector<float>& Workspace::float_scratch(std::size_t slot,
                                               std::size_t n) {
  expects(slot < kFloatSlots, "Workspace::float_scratch: valid slot");
  auto& buf = float_[slot];
  // ptrack-lint: allow(alloc) workspace scratch; steady capacity
  buf.resize(n);
  check_slots_disjoint(float_, slot);
  return buf;
}

const FftPlan& Workspace::fft_plan(std::size_t nfft) {
  expects(nfft >= 1 && (nfft & (nfft - 1)) == 0,
          "Workspace::fft_plan: size is a power of two");
  for (const auto& p : plans_) {
    if (p->n == nfft) {
      PTRACK_COUNT("ptrack.dsp.fft_plan.hits");
      return *p;
    }
  }
  PTRACK_COUNT("ptrack.dsp.fft_plan.misses");
  // ptrack-lint: allow(alloc) first-use plan construction; cached forever
  plans_.push_back(std::make_unique<FftPlan>(make_fft_plan(nfft)));
  // Plans are cached by exact size and never evicted: one entry per size.
  PTRACK_CHECK_MSG(plans_.back()->n == nfft,
                   "Workspace::fft_plan: cache entry matches requested size");
  return *plans_.back();
}

}  // namespace ptrack::dsp
