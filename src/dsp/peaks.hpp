// Peak / valley / zero-crossing detection.
//
// These are the primitives behind (a) the classic peak-detection step
// counters PTrack builds on (low-pass -> peaks) and (b) PTrack's
// critical-point extraction (turning points = extrema, crossing points =
// extremum on one axis aligned with a zero on the other).

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ptrack::dsp {

/// Options for find_peaks().
struct PeakOptions {
  /// Minimum number of samples between two accepted peaks. When two peaks
  /// are closer, the larger one wins.
  std::size_t min_distance = 1;
  /// Absolute height a sample must reach to qualify (-inf disables).
  double min_height = -1e300;
  /// Minimal prominence: height above the higher of the two bounding
  /// valleys within the search range (0 disables).
  double min_prominence = 0.0;
};

/// Indices of local maxima of xs, honoring the options; ascending order.
/// Plateaus report their center sample.
std::vector<std::size_t> find_peaks(std::span<const double> xs,
                                    const PeakOptions& opt = {});

/// Reuse-friendly form: clears and refills `out`. Once `out` (and the
/// thread-local scratch behind the distance filter) has reached its
/// high-water capacity, repeated calls stop touching the heap — this is the
/// variant the steady-state streaming stages use.
void find_peaks_into(std::span<const double> xs, const PeakOptions& opt,
                     std::vector<std::size_t>& out);

/// Indices of local minima (peaks of the negated signal).
std::vector<std::size_t> find_valleys(std::span<const double> xs,
                                      const PeakOptions& opt = {});

/// Reuse-friendly form of find_valleys(); same steady-state contract as
/// find_peaks_into().
void find_valleys_into(std::span<const double> xs, const PeakOptions& opt,
                       std::vector<std::size_t>& out);

/// Indices where the signal crosses zero (sample after the sign change).
/// `hysteresis` requires the excursion on each side to exceed the given
/// magnitude before a new crossing is reported, suppressing noise chatter.
std::vector<std::size_t> zero_crossings(std::span<const double> xs,
                                        double hysteresis = 0.0);

/// Reuse-friendly form of zero_crossings(): clears and refills `out`;
/// allocation-free once `out` has warmed up.
void zero_crossings_into(std::span<const double> xs, double hysteresis,
                         std::vector<std::size_t>& out);

/// One extremum with its kind, used by critical-point analysis.
struct Extremum {
  std::size_t index = 0;
  bool is_max = true;
  double value = 0.0;
};

/// All alternating extrema (maxima and minima interleaved) with prominence
/// and spacing filtering applied per kind.
std::vector<Extremum> find_extrema(std::span<const double> xs,
                                   const PeakOptions& opt = {});

/// Reuse-friendly form of find_extrema(); same steady-state contract as
/// find_peaks_into().
void find_extrema_into(std::span<const double> xs, const PeakOptions& opt,
                       std::vector<Extremum>& out);

/// Prominence of the local maximum at `peak` (see PeakOptions); exposed for
/// counters that post-filter peaks against locally adaptive thresholds.
double peak_prominence(std::span<const double> xs, std::size_t peak);

}  // namespace ptrack::dsp
