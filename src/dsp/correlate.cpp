#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>
#include <complex>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/fft.hpp"
#include "obs/metrics.hpp"
#include "dsp/peaks.hpp"
#include "dsp/simd.hpp"
#include "dsp/workspace.hpp"

namespace ptrack::dsp {

namespace {

/// Naive multiply-add count above which the O(n log n) FFT kernel wins over
/// the direct lag loop (measured crossover is lower; the margin keeps small
/// per-cycle gait tests on the allocation-free naive path).
constexpr std::size_t kFftWorkCutoff = 1 << 15;

bool fft_pays_off(std::size_t n, std::size_t lags) {
  return lags >= 8 && n * lags >= kFftWorkCutoff;
}

/// Dispatch helpers share one workspace per thread so the no-workspace entry
/// points are also allocation-free in steady state.
Workspace& thread_workspace() {
  thread_local Workspace ws;
  return ws;
}

/// Unbiased normalization of the raw lag sums: the lag-l sum covers n-l
/// terms, the variance n, so rescale — a perfectly periodic signal then
/// scores ~1 at its period even for large lags (PTrack evaluates C at the
/// half-cycle lag, where the biased estimator would cap at 0.5).
double normalize_lag(double raw, std::size_t n, std::size_t lag, double den) {
  const double scale =
      static_cast<double>(n) / static_cast<double>(n - lag);
  return std::clamp(raw * scale / den, -1.0, 1.0);
}

/// Demeaned copy of xs in a per-thread buffer: the naive correlators used to
/// recompute xs[i] - m inside every lag's inner loop; subtracting once turns
/// each lag into a plain dot product over the deviations.
std::span<const double> demeaned(std::span<const double> xs, double m) {
  thread_local std::vector<double> devs;
  // ptrack-lint: allow(alloc) per-thread scratch; steady capacity
  devs.resize(xs.size());
  simd::sub_scalar(xs, m, devs);
  return devs;
}

}  // namespace

double autocorr_at(std::span<const double> xs, std::size_t lag) {
  expects(lag < xs.size(), "autocorr_at: lag < size");
  const std::size_t n = xs.size();
  const double m = stats::mean(xs);
  const double den = simd::sumsq_dev(xs, m);
  if (den == 0.0) return 0.0;
  const auto devs = demeaned(xs, m);
  const double num =
      simd::dot(devs.first(n - lag), devs.subspan(lag));
  return normalize_lag(num, n, lag, den);
}

std::vector<double> autocorr_naive(std::span<const double> xs,
                                   std::size_t max_lag) {
  expects(max_lag < xs.size(), "autocorr: max_lag < size");
  const std::size_t n = xs.size();
  const double m = stats::mean(xs);
  const double den = simd::sumsq_dev(xs, m);
  std::vector<double> out(max_lag + 1, 0.0);
  if (den == 0.0) return out;
  const auto devs = demeaned(xs, m);
  for (std::size_t lag = 0; lag <= max_lag; ++lag) {
    out[lag] = simd::dot(devs.first(n - lag), devs.subspan(lag));
  }
  simd::normalize_lags(out, n, den, out);
  return out;
}

std::vector<double> autocorr_fft(std::span<const double> xs,
                                 std::size_t max_lag, Workspace& ws) {
  expects(max_lag < xs.size(), "autocorr: max_lag < size");
  const std::size_t n = xs.size();
  const double m = stats::mean(xs);

  // Linear (not circular) correlation up to max_lag needs nfft >= n + max_lag.
  const std::size_t nfft = std::max<std::size_t>(next_pow2(n + max_lag + 1), 2);
  auto& padded = ws.real_scratch(1, nfft);
  const double den = simd::sumsq_dev(xs, m);
  simd::sub_scalar(xs, m, {padded.data(), n});
  std::fill(padded.begin() + static_cast<std::ptrdiff_t>(n), padded.end(), 0.0);

  std::vector<double> out(max_lag + 1, 0.0);
  if (den == 0.0) return out;

  // Wiener-Khinchin on the real half-spectrum: the power spectrum of a real
  // signal is real and hermitian, so both transforms run at half size.
  const FftPlan& plan = ws.fft_plan(nfft);
  auto& spec = ws.complex_scratch(0, nfft / 2 + 1);
  rfft(padded, plan, spec);
  for (auto& c : spec) c = {std::norm(c), 0.0};
  irfft(spec, plan, padded);

  simd::normalize_lags({padded.data(), max_lag + 1}, n, den, out);
  return out;
}

std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag,
                             Workspace& ws) {
  if (fft_pays_off(xs.size(), max_lag)) {
    PTRACK_COUNT("ptrack.dsp.autocorr.fft");
    return autocorr_fft(xs, max_lag, ws);
  }
  PTRACK_COUNT("ptrack.dsp.autocorr.naive");
  return autocorr_naive(xs, max_lag);
}

std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag) {
  return autocorr(xs, max_lag, thread_workspace());
}

std::vector<double> xcorr_naive(std::span<const double> a,
                                std::span<const double> b,
                                std::size_t max_lag) {
  expects(a.size() == b.size(), "xcorr: equal sizes");
  expects(!a.empty(), "xcorr: non-empty");
  expects(max_lag < a.size(), "xcorr: max_lag < size");
  const std::size_t n = a.size();
  const double ma = stats::mean(a);
  const double mb = stats::mean(b);
  const double da = simd::sumsq_dev(a, ma);
  const double db = simd::sumsq_dev(b, mb);
  const double norm = std::sqrt(da * db);
  std::vector<double> out(2 * max_lag + 1, 0.0);
  if (norm == 0.0) return out;
  // Two per-thread deviation buffers (demeaned() reuses one, so the second
  // signal gets its own).
  thread_local std::vector<double> bdevs;
  // ptrack-lint: allow(alloc) per-thread scratch; steady capacity
  bdevs.resize(n);
  simd::sub_scalar(b, mb, bdevs);
  const auto adevs = demeaned(a, ma);
  for (std::size_t li = 0; li < out.size(); ++li) {
    const int lag = static_cast<int>(li) - static_cast<int>(max_lag);
    // The overlap of a[i] with b[i + lag] is a contiguous dot product of
    // the deviation buffers, offset by |lag| on one side.
    const std::size_t off = static_cast<std::size_t>(lag >= 0 ? lag : -lag);
    const std::size_t count = n - off;
    const double acc =
        lag >= 0 ? simd::dot(adevs.first(count),
                             std::span<const double>(bdevs).subspan(off))
                 : simd::dot(adevs.subspan(off),
                             std::span<const double>(bdevs).first(count));
    out[li] = acc / norm;
  }
  return out;
}

std::vector<double> xcorr_fft(std::span<const double> a,
                              std::span<const double> b, std::size_t max_lag,
                              Workspace& ws) {
  expects(a.size() == b.size(), "xcorr: equal sizes");
  expects(!a.empty(), "xcorr: non-empty");
  expects(max_lag < a.size(), "xcorr: max_lag < size");
  const std::size_t n = a.size();
  const double ma = stats::mean(a);
  const double mb = stats::mean(b);

  const std::size_t nfft = std::max<std::size_t>(next_pow2(n + max_lag + 1), 2);
  // Two-for-one: both demeaned real signals ride one complex transform.
  auto& packed = ws.complex_scratch(0, nfft);
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    da += xa * xa;
    db += xb * xb;
    packed[i] = {xa, xb};
  }
  std::fill(packed.begin() + static_cast<std::ptrdiff_t>(n), packed.end(),
            std::complex<double>{0.0, 0.0});

  const double norm = std::sqrt(da * db);
  std::vector<double> out(2 * max_lag + 1, 0.0);
  if (norm == 0.0) return out;

  const FftPlan& plan = ws.fft_plan(nfft);
  fft(packed, plan);

  // Unpack A[k], B[k] from the packed spectrum and form the cross spectrum
  // conj(A[k]) * B[k]; its inverse transform is r[k] = sum_i a[i] b[i+k]
  // (negative lags wrap to the top of the buffer). The correlation sequence
  // is real, so the cross spectrum is hermitian: only the half-spectrum is
  // materialized and the inverse runs at half size through irfft.
  auto& cross = ws.complex_scratch(1, nfft / 2 + 1);
  for (std::size_t k = 0; k <= nfft / 2; ++k) {
    const std::complex<double> pk = packed[k];
    const std::complex<double> pc =
        std::conj(packed[k == 0 ? 0 : nfft - k]);
    const std::complex<double> ak = 0.5 * (pk + pc);
    const std::complex<double> bk =
        std::complex<double>(0.0, -0.5) * (pk - pc);
    cross[k] = std::conj(ak) * bk;
  }
  auto& r = ws.real_scratch(1, nfft);
  irfft(cross, plan, r);

  for (std::size_t li = 0; li < out.size(); ++li) {
    const int lag = static_cast<int>(li) - static_cast<int>(max_lag);
    const std::size_t idx =
        lag >= 0 ? static_cast<std::size_t>(lag)
                 : nfft - static_cast<std::size_t>(-lag);
    out[li] = r[idx] / norm;
  }
  return out;
}

std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag, Workspace& ws) {
  if (fft_pays_off(a.size(), 2 * max_lag + 1)) {
    PTRACK_COUNT("ptrack.dsp.xcorr.fft");
    return xcorr_fft(a, b, max_lag, ws);
  }
  PTRACK_COUNT("ptrack.dsp.xcorr.naive");
  return xcorr_naive(a, b, max_lag);
}

std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag) {
  return xcorr(a, b, max_lag, thread_workspace());
}

int best_lag(std::span<const double> a, std::span<const double> b,
             std::size_t max_lag) {
  if (fft_pays_off(a.size(), 2 * max_lag + 1)) {
    const auto c = xcorr(a, b, max_lag);
    const auto it = std::max_element(c.begin(), c.end());
    return static_cast<int>(it - c.begin()) - static_cast<int>(max_lag);
  }
  // Small-input path (every per-cycle gait call lands here): the same lag
  // loop as xcorr_naive with a running first-max-wins maximum instead of a
  // materialized correlation vector, so the arg max comes out bit-identical
  // to max_element over xcorr_naive's output without allocating it.
  expects(a.size() == b.size(), "xcorr: equal sizes");
  expects(!a.empty(), "xcorr: non-empty");
  expects(max_lag < a.size(), "xcorr: max_lag < size");
  PTRACK_COUNT("ptrack.dsp.xcorr.naive");
  const std::size_t n = a.size();
  const double ma = stats::mean(a);
  const double mb = stats::mean(b);
  const double da = simd::sumsq_dev(a, ma);
  const double db = simd::sumsq_dev(b, mb);
  const double norm = std::sqrt(da * db);
  if (norm == 0.0) return -static_cast<int>(max_lag);  // all-zero: first wins
  thread_local std::vector<double> bdevs;
  // ptrack-lint: allow(alloc) per-thread scratch; steady capacity
  bdevs.resize(n);
  simd::sub_scalar(b, mb, bdevs);
  const auto adevs = demeaned(a, ma);
  int best = -static_cast<int>(max_lag);
  double best_val = -2.0;  // below any normalized correlation
  for (std::size_t li = 0; li < 2 * max_lag + 1; ++li) {
    const int lag = static_cast<int>(li) - static_cast<int>(max_lag);
    const std::size_t off = static_cast<std::size_t>(lag >= 0 ? lag : -lag);
    const std::size_t count = n - off;
    const double acc =
        lag >= 0 ? simd::dot(adevs.first(count),
                             std::span<const double>(bdevs).subspan(off))
                 : simd::dot(adevs.subspan(off),
                             std::span<const double>(bdevs).first(count));
    const double v = acc / norm;
    if (v > best_val) {
      best_val = v;
      best = lag;
    }
  }
  return best;
}

std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag, Workspace& ws) {
  if (xs.size() < 4 || min_lag >= xs.size()) return 0;
  max_lag = std::min(max_lag, xs.size() - 1);
  if (min_lag > max_lag) return 0;
  const auto ac = autocorr(xs, max_lag, ws);
  const auto peaks = find_peaks(ac);
  std::size_t best = 0;
  double best_val = 0.0;
  for (std::size_t p : peaks) {
    if (p < min_lag || p > max_lag) continue;
    if (ac[p] > best_val) {
      best_val = ac[p];
      best = p;
    }
  }
  return best;
}

std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag) {
  return dominant_period(xs, min_lag, max_lag, thread_workspace());
}

}  // namespace ptrack::dsp
