#include "dsp/correlate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/peaks.hpp"

namespace ptrack::dsp {

double autocorr_at(std::span<const double> xs, std::size_t lag) {
  expects(lag < xs.size(), "autocorr_at: lag < size");
  const std::size_t n = xs.size();
  const double m = stats::mean(xs);
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - m;
    den += d * d;
  }
  if (den == 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < n; ++i) {
    num += (xs[i] - m) * (xs[i + lag] - m);
  }
  // Unbiased normalization: the sum covers n-lag terms, the variance n, so
  // rescale — a perfectly periodic signal then scores ~1 at its period even
  // for large lags (PTrack evaluates C at the half-cycle lag, where the
  // biased estimator would cap at 0.5).
  const double scale = static_cast<double>(n) / static_cast<double>(n - lag);
  return std::clamp(num * scale / den, -1.0, 1.0);
}

std::vector<double> autocorr(std::span<const double> xs, std::size_t max_lag) {
  expects(max_lag < xs.size(), "autocorr: max_lag < size");
  std::vector<double> out;
  out.reserve(max_lag + 1);
  for (std::size_t lag = 0; lag <= max_lag; ++lag)
    out.push_back(autocorr_at(xs, lag));
  return out;
}

std::vector<double> xcorr(std::span<const double> a, std::span<const double> b,
                          std::size_t max_lag) {
  expects(a.size() == b.size(), "xcorr: equal sizes");
  expects(!a.empty(), "xcorr: non-empty");
  expects(max_lag < a.size(), "xcorr: max_lag < size");
  const std::size_t n = a.size();
  const double ma = stats::mean(a);
  const double mb = stats::mean(b);
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    da += (a[i] - ma) * (a[i] - ma);
    db += (b[i] - mb) * (b[i] - mb);
  }
  const double norm = std::sqrt(da * db);
  std::vector<double> out(2 * max_lag + 1, 0.0);
  if (norm == 0.0) return out;
  for (std::size_t li = 0; li < out.size(); ++li) {
    const int lag = static_cast<int>(li) - static_cast<int>(max_lag);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const int j = static_cast<int>(i) + lag;
      if (j < 0 || j >= static_cast<int>(n)) continue;
      acc += (a[i] - ma) * (b[static_cast<std::size_t>(j)] - mb);
    }
    out[li] = acc / norm;
  }
  return out;
}

int best_lag(std::span<const double> a, std::span<const double> b,
             std::size_t max_lag) {
  const auto c = xcorr(a, b, max_lag);
  const auto it = std::max_element(c.begin(), c.end());
  return static_cast<int>(it - c.begin()) - static_cast<int>(max_lag);
}

std::size_t dominant_period(std::span<const double> xs, std::size_t min_lag,
                            std::size_t max_lag) {
  if (xs.size() < 4 || min_lag >= xs.size()) return 0;
  max_lag = std::min(max_lag, xs.size() - 1);
  if (min_lag > max_lag) return 0;
  const auto ac = autocorr(xs, max_lag);
  const auto peaks = find_peaks(ac);
  std::size_t best = 0;
  double best_val = 0.0;
  for (std::size_t p : peaks) {
    if (p < min_lag || p > max_lag) continue;
    if (ac[p] > best_val) {
      best_val = ac[p];
      best = p;
    }
  }
  return best;
}

}  // namespace ptrack::dsp
