// Sliding-window smoothers: moving average and moving median.

#pragma once

#include <span>
#include <vector>

namespace ptrack::dsp {

/// Centered moving average with window `w` (forced odd; w >= 1). Edges use
/// the available shrunken window.
std::vector<double> moving_average(std::span<const double> xs, std::size_t w);

/// Centered moving median with window `w` (forced odd; w >= 1). Robust to
/// impulsive sensor glitches.
std::vector<double> moving_median(std::span<const double> xs, std::size_t w);

/// Exponential moving average with smoothing factor alpha in (0, 1].
std::vector<double> ema(std::span<const double> xs, double alpha);

}  // namespace ptrack::dsp
