// Second-order IIR (biquad) section and cascades.
//
// Coefficients follow the Audio-EQ-Cookbook (RBJ) convention, normalized so
// a0 == 1:   y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
// The section keeps Direct Form II transposed state, which is numerically
// well behaved for the low cutoff / high sample-rate ratios pedestrian
// tracking uses (e.g. 3 Hz cutoff at 100 Hz sampling).

#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace ptrack::dsp {

/// Normalized biquad coefficients (a0 == 1 implied).
struct BiquadCoeffs {
  double b0 = 1.0;
  double b1 = 0.0;
  double b2 = 0.0;
  double a1 = 0.0;
  double a2 = 0.0;
};

/// RBJ low-pass design. cutoff_hz in (0, fs/2), q > 0 (0.7071 = Butterworth).
BiquadCoeffs lowpass(double cutoff_hz, double fs, double q = 0.70710678);

/// RBJ high-pass design. Same parameter constraints as lowpass().
BiquadCoeffs highpass(double cutoff_hz, double fs, double q = 0.70710678);

/// RBJ band-pass (constant 0 dB peak gain).
BiquadCoeffs bandpass(double center_hz, double fs, double q);

/// One stateful biquad section.
class Biquad {
 public:
  Biquad() = default;
  explicit Biquad(const BiquadCoeffs& c) : c_(c) {}

  /// Processes one sample.
  double step(double x) {
    const double y = c_.b0 * x + s1_;
    s1_ = c_.b1 * x - c_.a1 * y + s2_;
    s2_ = c_.b2 * x - c_.a2 * y;
    return y;
  }

  /// Filters a whole buffer (stateful: continues from previous state).
  std::vector<double> process(std::span<const double> xs);

  /// Filters a buffer in place (stateful); allocation-free.
  void process_inplace(std::span<double> xs);

  /// Clears internal state.
  void reset() { s1_ = s2_ = 0.0; }

  [[nodiscard]] const BiquadCoeffs& coeffs() const { return c_; }

 private:
  BiquadCoeffs c_{};
  double s1_ = 0.0;
  double s2_ = 0.0;
};

/// A series cascade of biquad sections (e.g. a high-order Butterworth).
///
/// Sections live inline (no heap): pedestrian-tracking filters top out at
/// order 12 (6 sections), so kMaxSections bounds every design this library
/// can produce, and constructing/copying a cascade on the per-hop path is
/// allocation-free by construction.
class BiquadCascade {
 public:
  static constexpr std::size_t kMaxSections = 8;

  BiquadCascade() = default;
  explicit BiquadCascade(std::span<const BiquadCoeffs> sections);

  double step(double x) {
    for (std::size_t i = 0; i < count_; ++i) x = sections_[i].step(x);
    return x;
  }

  std::vector<double> process(std::span<const double> xs);

  /// Filters a buffer in place (stateful); allocation-free.
  void process_inplace(std::span<double> xs);

  void reset();

  [[nodiscard]] std::size_t order() const { return 2 * count_; }
  [[nodiscard]] std::span<const Biquad> sections() const {
    return {sections_.data(), count_};
  }

 private:
  std::array<Biquad, kMaxSections> sections_{};
  std::size_t count_ = 0;
};

}  // namespace ptrack::dsp
