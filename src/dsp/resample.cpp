#include "dsp/resample.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptrack::dsp {

double sample_at(std::span<const double> xs, double fs, double t) {
  expects(fs > 0.0, "sample_at: fs > 0");
  expects(!xs.empty(), "sample_at: non-empty");
  const double pos = t * fs;
  if (pos <= 0.0) return xs.front();
  const auto n = xs.size();
  if (pos >= static_cast<double>(n - 1)) return xs.back();
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

std::vector<double> resample_linear(std::span<const double> xs, double fs_in,
                                    double fs_out) {
  expects(fs_in > 0.0 && fs_out > 0.0, "resample_linear: positive rates");
  if (xs.empty()) return {};
  const double duration = static_cast<double>(xs.size() - 1) / fs_in;
  const auto n_out = static_cast<std::size_t>(std::floor(duration * fs_out)) + 1;
  std::vector<double> out;
  // ptrack-lint: push-allow(alloc) batch-only resampler (load-time use)
  out.reserve(n_out);
  for (std::size_t i = 0; i < n_out; ++i) {
    out.push_back(sample_at(xs, fs_in, static_cast<double>(i) / fs_out));
  }
  // ptrack-lint: pop-allow(alloc)
  return out;
}

}  // namespace ptrack::dsp
