#include "dsp/integrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/peaks.hpp"

namespace ptrack::dsp {

std::vector<double> cumtrapz(std::span<const double> xs, double dt) {
  expects(dt > 0.0, "cumtrapz: dt > 0");
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * (xs[i - 1] + xs[i]) * dt;
  }
  return out;
}

Kinematics integrate_twice(std::span<const double> accel, double dt) {
  Kinematics k;
  k.velocity = cumtrapz(accel, dt);
  k.position = cumtrapz(k.velocity, dt);
  return k;
}

Kinematics integrate_twice_mean_removal(std::span<const double> accel,
                                        double dt) {
  const std::vector<double> corrected = stats::demeaned(accel);
  return integrate_twice(corrected, dt);
}

double net_displacement(std::span<const double> accel, double dt) {
  if (accel.size() < 2) return 0.0;
  const Kinematics k = integrate_twice_mean_removal(accel, dt);
  return k.position.back();
}

double peak_to_peak_displacement(std::span<const double> accel, double dt) {
  if (accel.size() < 2) return 0.0;
  const Kinematics k = integrate_twice_mean_removal(accel, dt);
  return stats::max(k.position) - stats::min(k.position);
}

std::vector<std::pair<std::size_t, std::size_t>> zero_velocity_segments(
    std::span<const double> velocity, std::size_t min_len) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (velocity.empty()) return out;
  const auto crossings = zero_crossings(velocity);
  std::size_t begin = 0;
  for (std::size_t c : crossings) {
    if (c - begin >= std::max<std::size_t>(min_len, 2)) {
      out.emplace_back(begin, c);
      begin = c;
    }
  }
  if (velocity.size() - begin >= 2) out.emplace_back(begin, velocity.size());
  return out;
}

}  // namespace ptrack::dsp
