#include "dsp/integrate.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/peaks.hpp"

namespace ptrack::dsp {

std::vector<double> cumtrapz(std::span<const double> xs, double dt) {
  expects(dt > 0.0, "cumtrapz: dt > 0");
  std::vector<double> out(xs.size(), 0.0);
  for (std::size_t i = 1; i < xs.size(); ++i) {
    out[i] = out[i - 1] + 0.5 * (xs[i - 1] + xs[i]) * dt;
  }
  return out;
}

Kinematics integrate_twice(std::span<const double> accel, double dt) {
  Kinematics k;
  k.velocity = cumtrapz(accel, dt);
  k.position = cumtrapz(k.velocity, dt);
  return k;
}

Kinematics integrate_twice_mean_removal(std::span<const double> accel,
                                        double dt) {
  const std::vector<double> corrected = stats::demeaned(accel);
  return integrate_twice(corrected, dt);
}

namespace {

// Streaming-scalar mean-removal double integration: the recurrences
//   v[i] = v[i-1] + 0.5*((a[i-1]-m) + (a[i]-m))*dt
//   p[i] = p[i-1] + 0.5*(v[i-1] + v[i])*dt
// evaluate in the same order and with the same roundings as the
// materialized cumtrapz(demeaned(...)) chain, so the per-sample visitor
// sees bit-identical positions to the vector-based originals — without
// touching the heap (these run per candidate cycle on the streaming hot
// path). The visitor receives every position including p[0] == 0; the
// return value is the final position.
template <typename Visit>
double scan_mean_removal(std::span<const double> accel, double dt,
                         Visit&& visit) {
  const double m = stats::mean(accel);
  double c_prev = accel[0] - m;
  double v_prev = 0.0;
  double p_prev = 0.0;
  visit(p_prev);
  for (std::size_t i = 1; i < accel.size(); ++i) {
    const double c = accel[i] - m;
    const double vi = v_prev + 0.5 * (c_prev + c) * dt;
    p_prev = p_prev + 0.5 * (v_prev + vi) * dt;
    visit(p_prev);
    c_prev = c;
    v_prev = vi;
  }
  return p_prev;
}

}  // namespace

double net_displacement(std::span<const double> accel, double dt) {
  if (accel.size() < 2) return 0.0;
  expects(dt > 0.0, "net_displacement: dt > 0");
  return scan_mean_removal(accel, dt, [](double) {});
}

double peak_to_peak_displacement(std::span<const double> accel, double dt) {
  if (accel.size() < 2) return 0.0;
  expects(dt > 0.0, "peak_to_peak_displacement: dt > 0");
  double mn = 0.0;
  double mx = 0.0;
  scan_mean_removal(accel, dt, [&](double p) {
    mn = std::min(mn, p);
    mx = std::max(mx, p);
  });
  return mx - mn;
}

std::vector<std::pair<std::size_t, std::size_t>> zero_velocity_segments(
    std::span<const double> velocity, std::size_t min_len) {
  std::vector<std::pair<std::size_t, std::size_t>> out;
  if (velocity.empty()) return out;
  const auto crossings = zero_crossings(velocity);
  std::size_t begin = 0;
  for (std::size_t c : crossings) {
    if (c - begin >= std::max<std::size_t>(min_len, 2)) {
      // ptrack-lint: allow(alloc) batch-only ZUPT segmenter
      out.emplace_back(begin, c);
      begin = c;
    }
  }
  // ptrack-lint: allow(alloc) batch-only ZUPT segmenter
  if (velocity.size() - begin >= 2) out.emplace_back(begin, velocity.size());
  return out;
}

}  // namespace ptrack::dsp
