// Complementary attitude filter: fuses gyroscope rates with the
// accelerometer's gravity reference to track the device's "up" direction
// in real time.
//
// This is the streaming counterpart of dsp::estimate_up (which needs a
// whole window to low-pass): the gyro propagates the up vector between
// samples (immune to linear acceleration), and a small complementary gain
// leaks the accelerometer direction back in to cancel gyro drift. The
// same structure runs inside every commodity wearable's gravity virtual
// sensor; PTrack's streaming mode uses it for the projection frontend.

#pragma once

#include "common/vec3.hpp"

namespace ptrack::dsp {

/// Complementary filter configuration.
struct AttitudeConfig {
  /// Complementary time constant (s): how quickly the accel reference
  /// corrects gyro drift. Larger = trust the gyro longer.
  double tau = 2.0;
  /// Accel magnitudes outside [1 - gate, 1 + gate] * g are dynamic motion,
  /// not gravity, and are not used for correction.
  double accel_gate = 0.35;
};

/// Tracks the unit "up" vector in the device frame.
class AttitudeEstimator {
 public:
  explicit AttitudeEstimator(AttitudeConfig config = {});

  /// Feeds one IMU sample (device-frame gyro rad/s, specific force m/s^2,
  /// sample period s > 0) and returns the updated unit up estimate.
  Vec3 update(const Vec3& gyro, const Vec3& accel, double dt);

  /// Current estimate (unit). Before the first update: +z.
  [[nodiscard]] const Vec3& up() const { return up_; }

  /// Re-initializes from an accelerometer snapshot (e.g. at rest).
  void reset(const Vec3& accel);

 private:
  AttitudeConfig config_;
  Vec3 up_{0.0, 0.0, 1.0};
  bool initialized_ = false;
};

}  // namespace ptrack::dsp
