#include "dsp/projection.hpp"

#include <array>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/simd.hpp"
#include "dsp/workspace.hpp"

namespace ptrack::dsp {

namespace {

/// Shared estimate_up core over already-split channel spans.
Vec3 estimate_up_channels(std::span<const double> x, std::span<const double> y,
                          std::span<const double> z, double fs,
                          double cutoff_hz, Workspace* ws) {
  expects(x.size() >= 4, "estimate_up: >= 4 samples");
  expects(x.size() == y.size() && y.size() == z.size(),
          "estimate_up: equal channel lengths");
  expects(fs > 0.0, "estimate_up: fs > 0");
  // Heavy low-pass, then average: cyclic components vanish, gravity remains.
  const double fc = std::min(cutoff_hz, 0.45 * fs);
  Vec3 g{};
  if (ws) {
    // All three channels through the lane-parallel zero-phase filter in one
    // pass (padded scratch in slot 0). Per channel this is bit-identical to
    // the old one-at-a-time zero_phase_lowpass_into + serial mean.
    const std::array<std::span<const double>, 3> chans{x, y, z};
    const auto means = filtfilt_multi_mean(butterworth_lowpass(2, fc, fs),
                                           chans, 64, *ws);
    g = {means[0], means[1], means[2]};
  } else {
    const auto lx = zero_phase_lowpass(x, fc, fs, 2);
    const auto ly = zero_phase_lowpass(y, fc, fs, 2);
    const auto lz = zero_phase_lowpass(z, fc, fs, 2);
    for (std::size_t i = 0; i < lx.size(); ++i) {
      g += Vec3{lx[i], ly[i], lz[i]};
    }
    g /= static_cast<double>(lx.size());
  }
  check(g.norm() > 1e-6, "estimate_up: gravity magnitude not degenerate");
  return g.normalized();
}

/// Shared principal-direction core; `get(i)` yields the i-th force vector.
template <typename GetForce>
Vec3 principal_horizontal_impl(std::size_t n, GetForce&& get, const Vec3& up) {
  expects(n > 0, "principal_horizontal_direction: non-empty");
  // Build an orthonormal horizontal basis (e1, e2) perpendicular to up.
  Vec3 ref = std::abs(up.z) < 0.9 ? kVertical : kAnterior;
  const Vec3 e1 = up.cross(ref).normalized();
  const Vec3 e2 = up.cross(e1).normalized();

  // 2x2 covariance of the horizontal residual in (e1, e2).
  double m1 = 0.0;
  double m2 = 0.0;
  std::vector<std::pair<double, double>> h;
  // ptrack-lint: push-allow(alloc) batch axis estimation; the streaming
  // frontend estimates axes over bounded history at hop rate instead
  h.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 f = get(i);
    const Vec3 residual = f - up * f.dot(up);
    const double a = residual.dot(e1);
    const double b = residual.dot(e2);
    h.emplace_back(a, b);
    m1 += a;
    m2 += b;
  }
  // ptrack-lint: pop-allow(alloc)
  m1 /= static_cast<double>(h.size());
  m2 /= static_cast<double>(h.size());
  double s11 = 0.0;
  double s12 = 0.0;
  double s22 = 0.0;
  for (const auto& [a, b] : h) {
    s11 += (a - m1) * (a - m1);
    s12 += (a - m1) * (b - m2);
    s22 += (b - m2) * (b - m2);
  }

  // Leading eigenvector of [[s11, s12], [s12, s22]].
  const double tr = s11 + s22;
  const double det = s11 * s22 - s12 * s12;
  const double lambda = 0.5 * tr + std::sqrt(std::max(0.25 * tr * tr - det, 0.0));
  double v1;
  double v2;
  if (std::abs(s12) > 1e-12) {
    v1 = lambda - s22;
    v2 = s12;
  } else if (s11 >= s22) {
    v1 = 1.0;
    v2 = 0.0;
  } else {
    v1 = 0.0;
    v2 = 1.0;
  }
  return (e1 * v1 + e2 * v2).normalized();
}

}  // namespace

Vec3 estimate_up(std::span<const Vec3> specific_force, double fs,
                 double cutoff_hz) {
  std::vector<double> x(specific_force.size());
  std::vector<double> y(specific_force.size());
  std::vector<double> z(specific_force.size());
  for (std::size_t i = 0; i < specific_force.size(); ++i) {
    x[i] = specific_force[i].x;
    y[i] = specific_force[i].y;
    z[i] = specific_force[i].z;
  }
  return estimate_up_channels(x, y, z, fs, cutoff_hz, nullptr);
}

Vec3 estimate_up(std::span<const double> x, std::span<const double> y,
                 std::span<const double> z, double fs, double cutoff_hz,
                 Workspace* ws) {
  return estimate_up_channels(x, y, z, fs, cutoff_hz, ws);
}

Vec3 principal_horizontal_direction(std::span<const Vec3> specific_force,
                                    const Vec3& up) {
  return principal_horizontal_impl(
      specific_force.size(),
      [&](std::size_t i) { return specific_force[i]; }, up);
}

Vec3 principal_horizontal_direction(std::span<const double> x,
                                    std::span<const double> y,
                                    std::span<const double> z,
                                    const Vec3& up) {
  expects(x.size() == y.size() && y.size() == z.size(),
          "principal_horizontal_direction: equal channel lengths");
  const std::size_t n = x.size();
  expects(n > 0, "principal_horizontal_direction: non-empty");
  Vec3 ref = std::abs(up.z) < 0.9 ? kVertical : kAnterior;
  const Vec3 e1 = up.cross(ref).normalized();
  const Vec3 e2 = up.cross(e1).normalized();

  // Horizontal-residual coordinates via the SIMD projection kernel (exact
  // expression-order replica of the Vec3 arithmetic), then the same serial
  // reductions as the AoS overload — results are bit-identical to it.
  thread_local std::vector<double> ta;
  thread_local std::vector<double> tb;
  // ptrack-lint: push-allow(alloc) per-thread scratch; steady capacity
  ta.resize(n);
  tb.resize(n);
  // ptrack-lint: pop-allow(alloc)
  simd::residual_project(x, y, z, up, e1, ta);
  simd::residual_project(x, y, z, up, e2, tb);

  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m1 += ta[i];
    m2 += tb[i];
  }
  m1 /= static_cast<double>(n);
  m2 /= static_cast<double>(n);
  double s11 = 0.0;
  double s12 = 0.0;
  double s22 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    s11 += (ta[i] - m1) * (ta[i] - m1);
    s12 += (ta[i] - m1) * (tb[i] - m2);
    s22 += (tb[i] - m2) * (tb[i] - m2);
  }

  const double tr = s11 + s22;
  const double det = s11 * s22 - s12 * s12;
  const double lambda =
      0.5 * tr + std::sqrt(std::max(0.25 * tr * tr - det, 0.0));
  double v1;
  double v2;
  if (std::abs(s12) > 1e-12) {
    v1 = lambda - s22;
    v2 = s12;
  } else if (s11 >= s22) {
    v1 = 1.0;
    v2 = 0.0;
  } else {
    v1 = 0.0;
    v2 = 1.0;
  }
  return (e1 * v1 + e2 * v2).normalized();
}

ProjectedSignal project(std::span<const Vec3> specific_force, double fs) {
  const Vec3 up = estimate_up(specific_force, fs);
  const Vec3 forward = principal_horizontal_direction(specific_force, up);
  return project_with_axes(specific_force, fs, up, forward);
}

ProjectedSignal project_with_axes(std::span<const Vec3> specific_force,
                                  double fs, const Vec3& up,
                                  const Vec3& forward) {
  expects(fs > 0.0, "project_with_axes: fs > 0");
  expects(std::abs(up.norm() - 1.0) < 1e-6, "project_with_axes: unit up");
  expects(std::abs(forward.norm() - 1.0) < 1e-6,
          "project_with_axes: unit forward");
  ProjectedSignal out;
  out.fs = fs;
  out.up = up;
  out.forward = forward;
  const Vec3 side = up.cross(forward).normalized();
  // ptrack-lint: push-allow(alloc) batch-only AoS projection; the streaming
  // path projects through the SoA channel frontend
  out.vertical.reserve(specific_force.size());
  out.anterior.reserve(specific_force.size());
  out.lateral.reserve(specific_force.size());
  for (const Vec3& f : specific_force) {
    // Specific force f = a_lin - g_vec with g_vec = -g*up, so the linear
    // vertical acceleration is f.up - g.
    out.vertical.push_back(f.dot(up) - kGravity);
    out.anterior.push_back(f.dot(forward));
    out.lateral.push_back(f.dot(side));
  }
  // ptrack-lint: pop-allow(alloc)
  return out;
}

}  // namespace ptrack::dsp
