// Reusable scratch memory for the DSP kernels.
//
// The streaming tracker re-runs the full pipeline once per hop, and the
// batch runner pushes thousands of traces through it; without buffer reuse
// every window pays a fresh round of large allocations (FFT buffers,
// filtfilt padding, projection channels). A Workspace owns those buffers
// and the cached FFT twiddle tables so repeated calls run allocation-free
// once capacities have grown to the working-set size.
//
// Ownership rules:
//  * One Workspace per pipeline instance (core::PTrack owns one), never
//    shared between threads — scratch contents are clobbered by every call.
//  * Kernels identify their buffers by slot index so a caller composing two
//    kernels can hand the same Workspace to both without aliasing, as long
//    as nested calls use disjoint slots (each kernel documents its slots).
//  * Contents of a scratch buffer are unspecified on entry; kernels must
//    fully overwrite the range they request.

#pragma once

#include <array>
#include <complex>
#include <memory>
#include <vector>

#include "dsp/aligned.hpp"
#include "dsp/fft.hpp"

namespace ptrack::dsp {

class Workspace {
 public:
  static constexpr std::size_t kComplexSlots = 2;
  static constexpr std::size_t kRealSlots = 4;
  static constexpr std::size_t kFloatSlots = 2;

  Workspace() = default;
  /// Copying yields a fresh, empty workspace: scratch contents are transient
  /// by contract, and sharing buffers across copies would alias. This keeps
  /// owners (e.g. core::PTrack) copyable.
  Workspace(const Workspace&) {}
  Workspace& operator=(const Workspace&) { return *this; }
  Workspace(Workspace&&) = default;
  Workspace& operator=(Workspace&&) = default;

  /// Scratch buffer of n complex values (resized, contents unspecified).
  /// All scratch storage is 64-byte aligned (see dsp/aligned.hpp) so
  /// SIMD kernels fed from workspace slots start on a cache-line boundary.
  AlignedVector<std::complex<double>>& complex_scratch(std::size_t slot,
                                                       std::size_t n);

  /// Scratch buffer of n doubles (resized, contents unspecified).
  AlignedVector<double>& real_scratch(std::size_t slot, std::size_t n);

  /// Scratch buffer of n floats (resized, contents unspecified) — backing
  /// store for the float32 pipeline variant's kernels.
  AlignedVector<float>& float_scratch(std::size_t slot, std::size_t n);

  /// Twiddle tables for a power-of-two FFT size, built on first use and
  /// cached for the lifetime of the workspace. The returned reference stays
  /// valid until the workspace is destroyed.
  const FftPlan& fft_plan(std::size_t nfft);

 private:
  std::array<AlignedVector<std::complex<double>>, kComplexSlots> complex_;
  std::array<AlignedVector<double>, kRealSlots> real_;
  std::array<AlignedVector<float>, kFloatSlots> float_;
  /// Few distinct sizes; linear lookup. unique_ptr keeps plan addresses
  /// stable across cache growth.
  std::vector<std::unique_ptr<FftPlan>> plans_;
};

}  // namespace ptrack::dsp
