// Window functions and frame splitting for block analysis (SCAR features).

#pragma once

#include <span>
#include <vector>

namespace ptrack::dsp {

/// Hann window of length n (n >= 1).
std::vector<double> hann(std::size_t n);

/// Hamming window of length n (n >= 1).
std::vector<double> hamming(std::size_t n);

/// Multiplies xs by the window (equal sizes) and returns the result.
std::vector<double> apply_window(std::span<const double> xs,
                                 std::span<const double> window);

/// [begin, end) index pairs of consecutive frames of `frame` samples with
/// hop `hop` over a signal of length n; the last partial frame is dropped.
std::vector<std::pair<std::size_t, std::size_t>> frame_indices(
    std::size_t n, std::size_t frame, std::size_t hop);

}  // namespace ptrack::dsp
