// N-th order Butterworth filter design as a biquad cascade.
//
// Analog Butterworth prototype poles are mapped with the bilinear transform
// (with frequency prewarping). Odd orders get one first-order section,
// represented as a degenerate biquad.

#pragma once

#include "dsp/biquad.hpp"

namespace ptrack::dsp {

/// Designs an order-n Butterworth low-pass as a cascade. n in [1, 12].
BiquadCascade butterworth_lowpass(int order, double cutoff_hz, double fs);

/// Designs an order-n Butterworth high-pass as a cascade. n in [1, 12].
BiquadCascade butterworth_highpass(int order, double cutoff_hz, double fs);

}  // namespace ptrack::dsp
