#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hpp"

namespace ptrack::dsp {

namespace {

// Raw local maxima, plateau-aware: for a flat top, report the center.
std::vector<std::size_t> raw_maxima(std::span<const double> xs) {
  std::vector<std::size_t> out;
  const std::size_t n = xs.size();
  if (n < 3) return out;
  std::size_t i = 1;
  while (i + 1 < n) {
    if (xs[i] > xs[i - 1]) {
      // Scan a possible plateau [i, j].
      std::size_t j = i;
      while (j + 1 < n && xs[j + 1] == xs[i]) ++j;
      if (j + 1 < n && xs[j + 1] < xs[i]) {
        out.push_back((i + j) / 2);
      }
      i = j + 1;
    } else {
      ++i;
    }
  }
  return out;
}

double prominence_of(std::span<const double> xs, std::size_t peak) {
  const double h = xs[peak];
  // Walk left until a sample higher than the peak (or the edge); track the
  // minimum on the way. Same to the right. Prominence = h - max(minL, minR).
  // min is exact, so the blockwise SIMD scans match the scalar walks bit
  // for bit.
  const double left_min = simd::min_until_greater_bwd(xs.first(peak), h);
  const double right_min = simd::min_until_greater_fwd(
      xs.subspan(peak + 1), h);
  return h - std::max(left_min, right_min);
}

void enforce_min_distance(std::span<const double> xs,
                          std::vector<std::size_t>& peaks,
                          std::size_t min_distance) {
  if (min_distance <= 1 || peaks.size() < 2) return;
  // Greedy by height: keep taller peaks, drop any neighbor that is too close
  // to an already kept peak.
  std::vector<std::size_t> by_height(peaks);
  std::sort(by_height.begin(), by_height.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  std::vector<bool> keep(peaks.size(), true);
  const auto pos_of = [&](std::size_t idx) {
    return static_cast<std::size_t>(
        std::lower_bound(peaks.begin(), peaks.end(), idx) - peaks.begin());
  };
  for (std::size_t idx : by_height) {
    const std::size_t p = pos_of(idx);
    if (!keep[p]) continue;
    // Drop shorter neighbors within min_distance.
    for (std::size_t q = p; q-- > 0;) {
      if (peaks[p] - peaks[q] >= min_distance) break;
      keep[q] = false;
    }
    for (std::size_t q = p + 1; q < peaks.size(); ++q) {
      if (peaks[q] - peaks[p] >= min_distance) break;
      keep[q] = false;
    }
  }
  std::vector<std::size_t> filtered;
  for (std::size_t i = 0; i < peaks.size(); ++i)
    if (keep[i]) filtered.push_back(peaks[i]);
  peaks.swap(filtered);
}

}  // namespace

std::vector<std::size_t> find_peaks(std::span<const double> xs,
                                    const PeakOptions& opt) {
  std::vector<std::size_t> peaks = raw_maxima(xs);

  if (opt.min_height > -1e300) {
    std::erase_if(peaks, [&](std::size_t i) { return xs[i] < opt.min_height; });
  }
  if (opt.min_prominence > 0.0) {
    std::erase_if(peaks, [&](std::size_t i) {
      return prominence_of(xs, i) < opt.min_prominence;
    });
  }
  enforce_min_distance(xs, peaks, opt.min_distance);
  return peaks;
}

std::vector<std::size_t> find_valleys(std::span<const double> xs,
                                      const PeakOptions& opt) {
  std::vector<double> neg(xs.size());
  simd::negate(xs, neg);
  PeakOptions nopt = opt;
  if (opt.min_height > -1e300) nopt.min_height = opt.min_height;
  return find_peaks(neg, nopt);
}

std::vector<std::size_t> zero_crossings(std::span<const double> xs,
                                        double hysteresis) {
  std::vector<std::size_t> out;
  if (xs.empty()) return out;
  // State: +1 after confirmed positive excursion, -1 after negative,
  // 0 unknown. The hysteresis only *gates* a crossing; the reported index
  // is the actual sign-change sample, found by backtracking — otherwise
  // crossings would be reported systematically late by the confirmation
  // delay, which matters for critical-point matching.
  int state = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double v = xs[i];
    const int side = v > hysteresis ? 1 : v < -hysteresis ? -1 : 0;
    if (side == 0 || side == state) continue;
    if (state != 0) {
      std::size_t cross = i;
      while (cross > 0 &&
             (side > 0 ? xs[cross - 1] >= 0.0 : xs[cross - 1] <= 0.0)) {
        --cross;
      }
      out.push_back(cross);
    }
    state = side;
  }
  return out;
}

double peak_prominence(std::span<const double> xs, std::size_t peak) {
  return prominence_of(xs, peak);
}

std::vector<Extremum> find_extrema(std::span<const double> xs,
                                   const PeakOptions& opt) {
  const auto maxima = find_peaks(xs, opt);
  const auto minima = find_valleys(xs, opt);
  std::vector<Extremum> out;
  out.reserve(maxima.size() + minima.size());
  for (std::size_t i : maxima) out.push_back({i, true, xs[i]});
  for (std::size_t i : minima) out.push_back({i, false, xs[i]});
  std::sort(out.begin(), out.end(),
            [](const Extremum& a, const Extremum& b) { return a.index < b.index; });
  return out;
}

}  // namespace ptrack::dsp
