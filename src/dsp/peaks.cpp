#include "dsp/peaks.hpp"

#include <algorithm>
#include <cmath>

#include "dsp/simd.hpp"

namespace ptrack::dsp {

namespace {

// Raw local maxima appended to `out`, plateau-aware: for a flat top, report
// the center.
void raw_maxima_into(std::span<const double> xs, std::vector<std::size_t>& out) {
  out.clear();
  const std::size_t n = xs.size();
  if (n < 3) return;
  std::size_t i = 1;
  while (i + 1 < n) {
    if (xs[i] > xs[i - 1]) {
      // Scan a possible plateau [i, j].
      std::size_t j = i;
      while (j + 1 < n && xs[j + 1] == xs[i]) ++j;
      if (j + 1 < n && xs[j + 1] < xs[i]) {
        // ptrack-lint: allow(alloc) grows caller scratch; steady capacity
        out.push_back((i + j) / 2);
      }
      i = j + 1;
    } else {
      ++i;
    }
  }
}

double prominence_of(std::span<const double> xs, std::size_t peak) {
  const double h = xs[peak];
  // Walk left until a sample higher than the peak (or the edge); track the
  // minimum on the way. Same to the right. Prominence = h - max(minL, minR).
  // min is exact, so the blockwise SIMD scans match the scalar walks bit
  // for bit.
  const double left_min = simd::min_until_greater_bwd(xs.first(peak), h);
  const double right_min = simd::min_until_greater_fwd(
      xs.subspan(peak + 1), h);
  return h - std::max(left_min, right_min);
}

void enforce_min_distance(std::span<const double> xs,
                          std::vector<std::size_t>& peaks,
                          std::size_t min_distance) {
  if (min_distance <= 1 || peaks.size() < 2) return;
  // Greedy by height: keep taller peaks, drop any neighbor that is too close
  // to an already kept peak. Scratch is thread-local so steady-state callers
  // stop paying per-call allocations once the high-water capacity is reached.
  thread_local std::vector<std::size_t> by_height;
  thread_local std::vector<unsigned char> keep;
  // ptrack-lint: push-allow(alloc) per-thread scratch; steady capacity
  by_height.assign(peaks.begin(), peaks.end());
  std::sort(by_height.begin(), by_height.end(),
            [&](std::size_t a, std::size_t b) { return xs[a] > xs[b]; });
  keep.assign(peaks.size(), 1);
  // ptrack-lint: pop-allow(alloc)
  const auto pos_of = [&](std::size_t idx) {
    return static_cast<std::size_t>(
        std::lower_bound(peaks.begin(), peaks.end(), idx) - peaks.begin());
  };
  for (std::size_t idx : by_height) {
    const std::size_t p = pos_of(idx);
    if (keep[p] == 0) continue;
    // Drop shorter neighbors within min_distance.
    for (std::size_t q = p; q-- > 0;) {
      if (peaks[p] - peaks[q] >= min_distance) break;
      keep[q] = 0;
    }
    for (std::size_t q = p + 1; q < peaks.size(); ++q) {
      if (peaks[q] - peaks[p] >= min_distance) break;
      keep[q] = 0;
    }
  }
  // In-place compaction of the survivors (stable).
  std::size_t w = 0;
  for (std::size_t i = 0; i < peaks.size(); ++i)
    if (keep[i] != 0) peaks[w++] = peaks[i];
  // ptrack-lint: allow(alloc) shrinks in place; resize never grows here
  peaks.resize(w);
}

}  // namespace

void find_peaks_into(std::span<const double> xs, const PeakOptions& opt,
                     std::vector<std::size_t>& out) {
  raw_maxima_into(xs, out);

  if (opt.min_height > -1e300) {
    std::erase_if(out, [&](std::size_t i) { return xs[i] < opt.min_height; });
  }
  if (opt.min_prominence > 0.0) {
    std::erase_if(out, [&](std::size_t i) {
      return prominence_of(xs, i) < opt.min_prominence;
    });
  }
  enforce_min_distance(xs, out, opt.min_distance);
}

std::vector<std::size_t> find_peaks(std::span<const double> xs,
                                    const PeakOptions& opt) {
  std::vector<std::size_t> peaks;
  find_peaks_into(xs, opt, peaks);
  return peaks;
}

void find_valleys_into(std::span<const double> xs, const PeakOptions& opt,
                       std::vector<std::size_t>& out) {
  thread_local std::vector<double> neg;
  // ptrack-lint: allow(alloc) per-thread scratch; steady capacity
  neg.resize(xs.size());
  simd::negate(xs, neg);
  find_peaks_into(neg, opt, out);
}

std::vector<std::size_t> find_valleys(std::span<const double> xs,
                                      const PeakOptions& opt) {
  std::vector<std::size_t> valleys;
  find_valleys_into(xs, opt, valleys);
  return valleys;
}

void zero_crossings_into(std::span<const double> xs, double hysteresis,
                         std::vector<std::size_t>& out) {
  out.clear();
  if (xs.empty()) return;
  // State: +1 after confirmed positive excursion, -1 after negative,
  // 0 unknown. The hysteresis only *gates* a crossing; the reported index
  // is the actual sign-change sample, found by backtracking — otherwise
  // crossings would be reported systematically late by the confirmation
  // delay, which matters for critical-point matching.
  int state = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double v = xs[i];
    const int side = v > hysteresis ? 1 : v < -hysteresis ? -1 : 0;
    if (side == 0 || side == state) continue;
    if (state != 0) {
      std::size_t cross = i;
      while (cross > 0 &&
             (side > 0 ? xs[cross - 1] >= 0.0 : xs[cross - 1] <= 0.0)) {
        --cross;
      }
      // ptrack-lint: allow(alloc) grows caller scratch; steady capacity
      out.push_back(cross);
    }
    state = side;
  }
}

std::vector<std::size_t> zero_crossings(std::span<const double> xs,
                                        double hysteresis) {
  std::vector<std::size_t> out;
  zero_crossings_into(xs, hysteresis, out);
  return out;
}

double peak_prominence(std::span<const double> xs, std::size_t peak) {
  return prominence_of(xs, peak);
}

void find_extrema_into(std::span<const double> xs, const PeakOptions& opt,
                       std::vector<Extremum>& out) {
  thread_local std::vector<std::size_t> maxima;
  thread_local std::vector<std::size_t> minima;
  find_peaks_into(xs, opt, maxima);
  find_valleys_into(xs, opt, minima);
  out.clear();
  // ptrack-lint: push-allow(alloc) grows caller scratch; steady capacity
  out.reserve(maxima.size() + minima.size());
  for (std::size_t i : maxima) out.push_back({i, true, xs[i]});
  for (std::size_t i : minima) out.push_back({i, false, xs[i]});
  // ptrack-lint: pop-allow(alloc)
  std::sort(out.begin(), out.end(),
            [](const Extremum& a, const Extremum& b) { return a.index < b.index; });
}

std::vector<Extremum> find_extrema(std::span<const double> xs,
                                   const PeakOptions& opt) {
  std::vector<Extremum> out;
  find_extrema_into(xs, opt, out);
  return out;
}

}  // namespace ptrack::dsp
