#include "dsp/attitude.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptrack::dsp {

AttitudeEstimator::AttitudeEstimator(AttitudeConfig config)
    : config_(config) {
  expects(config_.tau > 0.0, "AttitudeEstimator: tau > 0");
  expects(config_.accel_gate > 0.0, "AttitudeEstimator: accel_gate > 0");
}

void AttitudeEstimator::reset(const Vec3& accel) {
  const double norm = accel.norm();
  if (norm > 1e-6) {
    up_ = accel / norm;
    initialized_ = true;
  }
}

Vec3 AttitudeEstimator::update(const Vec3& gyro, const Vec3& accel,
                               double dt) {
  expects(dt > 0.0, "AttitudeEstimator::update: dt > 0");
  if (!initialized_) reset(accel);

  // Gyro propagation: a device-frame vector fixed in the world evolves as
  // v' = -omega x v under device rotation omega.
  up_ += (-gyro.cross(up_)) * dt;
  const double n = up_.norm();
  if (n > 1e-9) up_ /= n;

  // Complementary correction from the accelerometer, gated on magnitude:
  // only near-1g samples carry a clean gravity reference.
  const double mag = accel.norm();
  if (std::abs(mag - kGravity) < config_.accel_gate * kGravity &&
      mag > 1e-6) {
    const double alpha = std::clamp(dt / config_.tau, 0.0, 1.0);
    up_ = (up_ * (1.0 - alpha) + (accel / mag) * alpha).normalized();
  }
  return up_;
}

}  // namespace ptrack::dsp
