// Numerical integration of acceleration, including the *mean-removal*
// double integration used by PTrack (after MoLe, MobiCom'15).
//
// Direct double integration of accelerometer data drifts quadratically with
// the sensor bias. When a segment is bounded by zero-velocity instants
// (true for the sub-step arm sweeps PTrack integrates), subtracting the
// segment-mean acceleration before integrating forces the reconstructed
// velocity back to zero at the segment end, collapsing the bias-induced
// drift; displacement accuracy then reaches the millimetre level.

#pragma once

#include <span>
#include <vector>

namespace ptrack::dsp {

/// Cumulative trapezoidal integral; out[0] == 0, out.size() == xs.size().
/// dt > 0 is the sample period.
std::vector<double> cumtrapz(std::span<const double> xs, double dt);

/// Result of integrating an acceleration segment twice.
struct Kinematics {
  std::vector<double> velocity;  ///< per-sample velocity, v[0] == 0
  std::vector<double> position;  ///< per-sample position, p[0] == 0
};

/// Plain double integration (no correction); exposed for the Fig. 1(d)
/// "Integral" baseline that shows why naive integration fails.
Kinematics integrate_twice(std::span<const double> accel, double dt);

/// Mean-removal double integration: valid on segments whose true velocity is
/// zero at both ends. Subtracts the segment-mean acceleration, then
/// integrates twice.
Kinematics integrate_twice_mean_removal(std::span<const double> accel,
                                        double dt);

/// Net displacement of a zero-velocity-bounded segment (mean-removal).
double net_displacement(std::span<const double> accel, double dt);

/// Peak-to-peak positional excursion of a zero-velocity-bounded segment
/// (mean-removal); this is how PTrack measures vertical bounce amplitudes.
double peak_to_peak_displacement(std::span<const double> accel, double dt);

/// Splits [0, n) at the interior zero crossings of `velocity`, yielding
/// consecutive [begin, end) index pairs whose boundaries are (approximately)
/// zero-velocity instants. Segments shorter than min_len are merged forward.
std::vector<std::pair<std::size_t, std::size_t>> zero_velocity_segments(
    std::span<const double> velocity, std::size_t min_len = 4);

}  // namespace ptrack::dsp
