// Polyline routes and route-following error metrics for the indoor
// navigation case study (paper Fig. 9).

#pragma once

#include <vector>

#include "common/vec3.hpp"

namespace ptrack::nav {

/// 2D point (metres, floor plane).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

/// A piecewise-linear route through ordered waypoints.
class Route {
 public:
  /// Requires at least two waypoints.
  explicit Route(std::vector<Point> waypoints);

  [[nodiscard]] const std::vector<Point>& waypoints() const {
    return waypoints_;
  }
  [[nodiscard]] std::size_t legs() const { return waypoints_.size() - 1; }

  /// Total route length (m).
  [[nodiscard]] double length() const { return cumulative_.back(); }

  /// Length of leg i.
  [[nodiscard]] double leg_length(std::size_t i) const;

  /// Heading (rad) of leg i.
  [[nodiscard]] double leg_heading(std::size_t i) const;

  /// Point at arc length s from the start (clamped to [0, length()]).
  [[nodiscard]] Point point_at(double s) const;

  /// Index of the leg containing arc length s.
  [[nodiscard]] std::size_t leg_at(double s) const;

  /// Shortest distance from p to the route (cross-track error).
  [[nodiscard]] double distance_to(const Point& p) const;

 private:
  std::vector<Point> waypoints_;
  std::vector<double> cumulative_;  ///< cumulative length at each waypoint
};

/// The Fig. 9 shopping-center route: A -> B -> C -> D -> E -> F -> G,
/// 141.5 m total, with the deliberate 4 m corridor double-crossing between
/// B and D. Coordinates reconstructed from the figure's scale bars.
Route shopping_center_route();

/// Summary statistics of a tracked trajectory against a reference route.
struct RouteErrorStats {
  double mean_cross_track = 0.0;  ///< mean distance to the route (m)
  double max_cross_track = 0.0;
  double end_error = 0.0;         ///< distance from final fix to route end
};

/// Scores a trajectory (sequence of fixes) against the route.
RouteErrorStats score_trajectory(const Route& route,
                                 const std::vector<Point>& trajectory);

}  // namespace ptrack::nav
