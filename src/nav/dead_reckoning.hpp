// Pedestrian dead-reckoning: integrates PTrack step/stride events along a
// heading source into a 2D trajectory (the upper-layer application of the
// paper's Fig. 9 case study).

#pragma once

#include <functional>
#include <vector>

#include "core/types.hpp"
#include "nav/route.hpp"

namespace ptrack::nav {

/// Heading (rad) as a function of time. In a real deployment this comes
/// from gyro/magnetometer fusion; the case study scripts it from the route
/// with configurable noise.
using HeadingSource = std::function<double(double t)>;

/// Dead-reckoning integrator.
class DeadReckoner {
 public:
  /// Starts at `origin` with the given heading source.
  DeadReckoner(Point origin, HeadingSource heading);

  /// Advances by one counted step.
  void advance(const core::StepEvent& event);

  /// Full trajectory including the origin; one fix per step.
  [[nodiscard]] const std::vector<Point>& trajectory() const {
    return trajectory_;
  }
  [[nodiscard]] const Point& position() const { return trajectory_.back(); }
  [[nodiscard]] double traveled() const { return traveled_; }

 private:
  HeadingSource heading_;
  std::vector<Point> trajectory_;
  double traveled_ = 0.0;
};

/// Convenience: runs a whole TrackResult through a DeadReckoner.
std::vector<Point> reckon_trajectory(const core::TrackResult& result,
                                     Point origin,
                                     const HeadingSource& heading);

/// Heading source that follows a route's leg headings according to the true
/// progression of the walker (distance walked at time t), with additive
/// white noise per query. Deterministic given the noise vector is seeded by
/// the caller: pass noise_stddev = 0 for the scripted ideal.
HeadingSource route_heading_source(const Route& route,
                                   std::function<double(double)> distance_at,
                                   double noise_stddev, unsigned seed);

}  // namespace ptrack::nav
