#include "nav/dead_reckoning.hpp"

#include <cmath>
#include <memory>
#include <random>

#include "common/error.hpp"

namespace ptrack::nav {

DeadReckoner::DeadReckoner(Point origin, HeadingSource heading)
    : heading_(std::move(heading)) {
  expects(static_cast<bool>(heading_), "DeadReckoner: heading source set");
  trajectory_.push_back(origin);
}

void DeadReckoner::advance(const core::StepEvent& event) {
  const double h = heading_(event.t);
  const Point& cur = trajectory_.back();
  trajectory_.push_back({cur.x + event.stride * std::cos(h),
                         cur.y + event.stride * std::sin(h)});
  traveled_ += event.stride;
}

std::vector<Point> reckon_trajectory(const core::TrackResult& result,
                                     Point origin,
                                     const HeadingSource& heading) {
  DeadReckoner dr(origin, heading);
  for (const core::StepEvent& e : result.events) dr.advance(e);
  return dr.trajectory();
}

HeadingSource route_heading_source(const Route& route,
                                   std::function<double(double)> distance_at,
                                   double noise_stddev, unsigned seed) {
  expects(static_cast<bool>(distance_at),
          "route_heading_source: distance function set");
  // The generator is shared state captured by the closure; queries must be
  // made in (any) deterministic order for reproducibility.
  auto gen = std::make_shared<std::mt19937>(seed);
  return [&route, distance_at = std::move(distance_at), noise_stddev,
          gen](double t) {
    const double s = distance_at(t);
    double h = route.leg_heading(route.leg_at(s));
    if (noise_stddev > 0.0) {
      std::normal_distribution<double> noise(0.0, noise_stddev);
      h += noise(*gen);
    }
    return h;
  };
}

}  // namespace ptrack::nav
