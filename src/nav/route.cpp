#include "nav/route.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptrack::nav {

namespace {

double dist(const Point& a, const Point& b) {
  return std::hypot(b.x - a.x, b.y - a.y);
}

double point_segment_distance(const Point& p, const Point& a, const Point& b) {
  const double vx = b.x - a.x;
  const double vy = b.y - a.y;
  const double len2 = vx * vx + vy * vy;
  if (len2 == 0.0) return dist(p, a);
  double t = ((p.x - a.x) * vx + (p.y - a.y) * vy) / len2;
  t = std::clamp(t, 0.0, 1.0);
  return dist(p, {a.x + t * vx, a.y + t * vy});
}

}  // namespace

Route::Route(std::vector<Point> waypoints) : waypoints_(std::move(waypoints)) {
  expects(waypoints_.size() >= 2, "Route: at least two waypoints");
  cumulative_.resize(waypoints_.size(), 0.0);
  for (std::size_t i = 1; i < waypoints_.size(); ++i) {
    const double leg = dist(waypoints_[i - 1], waypoints_[i]);
    expects(leg > 0.0, "Route: distinct consecutive waypoints");
    cumulative_[i] = cumulative_[i - 1] + leg;
  }
}

double Route::leg_length(std::size_t i) const {
  expects(i < legs(), "leg_length: valid leg");
  return cumulative_[i + 1] - cumulative_[i];
}

double Route::leg_heading(std::size_t i) const {
  expects(i < legs(), "leg_heading: valid leg");
  const Point& a = waypoints_[i];
  const Point& b = waypoints_[i + 1];
  return std::atan2(b.y - a.y, b.x - a.x);
}

std::size_t Route::leg_at(double s) const {
  s = std::clamp(s, 0.0, length());
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), s);
  const auto idx = static_cast<std::size_t>(it - cumulative_.begin());
  return std::min(idx == 0 ? 0 : idx - 1, legs() - 1);
}

Point Route::point_at(double s) const {
  s = std::clamp(s, 0.0, length());
  const std::size_t leg = leg_at(s);
  const double within = s - cumulative_[leg];
  const double frac = within / leg_length(leg);
  const Point& a = waypoints_[leg];
  const Point& b = waypoints_[leg + 1];
  return {a.x + frac * (b.x - a.x), a.y + frac * (b.y - a.y)};
}

double Route::distance_to(const Point& p) const {
  double best = 1e300;
  for (std::size_t i = 0; i < legs(); ++i) {
    best = std::min(best,
                    point_segment_distance(p, waypoints_[i], waypoints_[i + 1]));
  }
  return best;
}

Route shopping_center_route() {
  // Reconstructed from Fig. 9 (125 m x 85 m floor, 20 m scale bar). The
  // B->C and D->E legs cross a 4 m corridor diagonally, twice; total length
  // is the paper's 141.5 m.
  return Route({
      {0.0, 0.0},      // A: store exit
      {30.0, 0.0},     // B
      {34.0, -4.0},    // C: across the 4 m corridor
      {44.0, -4.0},    // D
      {48.0, 0.0},     // E: back across the corridor
      {88.0, 0.0},     // F
      {138.186, 0.0},  // G: elevator (length tops the total up to 141.5 m)
  });
}

RouteErrorStats score_trajectory(const Route& route,
                                 const std::vector<Point>& trajectory) {
  expects(!trajectory.empty(), "score_trajectory: non-empty trajectory");
  RouteErrorStats stats;
  double acc = 0.0;
  for (const Point& p : trajectory) {
    const double d = route.distance_to(p);
    acc += d;
    stats.max_cross_track = std::max(stats.max_cross_track, d);
  }
  stats.mean_cross_track = acc / static_cast<double>(trajectory.size());
  const Point& last = trajectory.back();
  const Point end = route.point_at(route.length());
  stats.end_error = std::hypot(last.x - end.x, last.y - end.y);
  return stats;
}

}  // namespace ptrack::nav
