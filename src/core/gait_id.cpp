#include "core/gait_id.hpp"

#include <cmath>
#include <cstdlib>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/critical_points.hpp"
#include "core/offset_metric.hpp"
#include "dsp/correlate.hpp"
#include "obs/metrics.hpp"

namespace ptrack::core {

CycleAnalysis analyze_cycle(std::span<const double> vertical,
                            std::span<const double> anterior,
                            const StepCounterConfig& cfg) {
  expects(vertical.size() == anterior.size(), "analyze_cycle: equal sizes");
  expects(vertical.size() >= 8, "analyze_cycle: >= 8 samples");
  const std::size_t n = vertical.size();

  CycleAnalysis out;

  // Anterior-energy gate: a noise-floor anterior channel has no meaningful
  // critical points; force synchrony so the cycle falls through to the
  // stepping test (which it then fails on the phase gate). stddev ==
  // rms-of-demeaned term for term (same mean, same squared deviations, same
  // summation order), without materializing the demeaned copy.
  if (stats::stddev(anterior) < cfg.min_anterior_rms) {
    out.offset = 0.0;
    out.half_cycle_corr = dsp::autocorr_at(anterior, n / 2);
    out.phase_ok = false;
    return out;
  }

  // Query points: vertical turning points. Match targets: anterior turning
  // points and zeros (the latter capture the paper's "crossing points").
  CriticalPointOptions qopt;
  qopt.prominence_fraction = cfg.query_prominence;
  qopt.min_abs_prominence = cfg.query_abs_prominence;
  CriticalPointOptions mopt;
  mopt.prominence_fraction = cfg.match_prominence;
  mopt.min_abs_prominence = cfg.match_abs_prominence;
  mopt.hysteresis_fraction = cfg.match_hysteresis;
  // Reused per-thread point buffers: analyze_cycle runs for every candidate
  // cycle of every hop, so the four point sets must not churn the heap.
  thread_local std::vector<CriticalPoint> vq;
  thread_local std::vector<CriticalPoint> am;
  critical_points_into(vertical, qopt, /*include_zeros=*/false, vq);
  critical_points_into(anterior, mopt, /*include_zeros=*/true, am);
  out.offset =
      cycle_offset(vq, am, n, cfg.use_weighting, cfg.weight_cap);
  if (cfg.symmetric_offset) {
    thread_local std::vector<CriticalPoint> aq;
    thread_local std::vector<CriticalPoint> vm;
    critical_points_into(anterior, qopt, /*include_zeros=*/false, aq);
    critical_points_into(vertical, mopt, /*include_zeros=*/true, vm);
    out.offset = 0.5 * (out.offset + cycle_offset(aq, vm, n, cfg.use_weighting,
                                                  cfg.weight_cap));
  }

  // Half-cycle autocorrelation of the anterior channel: stepping's anterior
  // pattern repeats every half cycle (once per step), arm gestures repeat
  // every full cycle and flip sign at the half-cycle lag.
  out.half_cycle_corr = dsp::autocorr_at(anterior, n / 2);

  // Quarter-period phase gate: body vertical and anterior oscillations (both
  // at the step period n/2) are offset by a quarter of that period (n/8).
  // Rigid motions are in phase (lag 0) or antiphase (lag n/4).
  if (cfg.use_phase_gate) {
    const std::size_t quarter = n / 8;
    if (quarter >= 2) {
      const int lag = dsp::best_lag(vertical, anterior, n / 4);
      const double err =
          std::abs(std::abs(static_cast<double>(lag)) -
                   static_cast<double>(quarter)) /
          static_cast<double>(quarter);
      out.phase_ok = err <= cfg.phase_tolerance;
    } else {
      out.phase_ok = false;
    }
  } else {
    out.phase_ok = true;
  }
  return out;
}

GaitIdentifier::GaitIdentifier(StepCounterConfig cfg) : cfg_(cfg) {
  expects(cfg_.streak >= 1, "GaitIdentifier: streak >= 1");
  expects(cfg_.delta > 0.0, "GaitIdentifier: delta > 0");
}

GaitIdentifier::Decision GaitIdentifier::classify(
    const CycleAnalysis& analysis) {
  PTRACK_CHECK_MSG(std::isfinite(analysis.offset) &&
                       std::isfinite(analysis.half_cycle_corr),
                   "GaitIdentifier::classify: finite cycle analysis");
  const Decision d = classify_impl(analysis);
  switch (d.type) {
    case GaitType::Walking: PTRACK_COUNT("ptrack.core.gait.walking"); break;
    case GaitType::Stepping: PTRACK_COUNT("ptrack.core.gait.stepping"); break;
    case GaitType::Interference:
      PTRACK_COUNT("ptrack.core.gait.interference");
      break;
  }
  return d;
}

GaitIdentifier::Decision GaitIdentifier::classify_impl(
    const CycleAnalysis& analysis) {
  PTRACK_CHECK_MSG(std::isfinite(analysis.offset) && analysis.offset >= 0.0,
                   "classify: cycle offset is finite and non-negative");
  // Streak bookkeeping invariants: the stepping streak counter never
  // reaches the confirmation threshold (it resets to 0 on confirmation),
  // and hysteresis credit never exceeds its configured grant.
  PTRACK_CHECK_MSG(streak_count_ < cfg_.streak,
                   "classify: stepping streak counter below threshold");
  PTRACK_CHECK_MSG(walking_credit_ <= cfg_.walking_hysteresis_credit,
                   "classify: hysteresis credit within its grant");
  Decision d;
  if (analysis.offset > cfg_.delta) {
    // Asynchronous critical points: genuine arm-swing walking.
    d.type = GaitType::Walking;
    streak_count_ = 0;
    streak_active_ = false;
    if (++walking_streak_ >= cfg_.walking_streak_open) {
      walking_credit_ = cfg_.walking_hysteresis_credit;
    }
    return d;
  }

  // Borderline cycle inside a confirmed walking run: temporal hysteresis
  // (a single gait cycle whose arm/body phases momentarily align should
  // not break an established walk).
  if (cfg_.walking_hysteresis && walking_credit_ > 0 &&
      analysis.offset > cfg_.walking_hysteresis_factor * cfg_.delta) {
    --walking_credit_;
    d.type = GaitType::Walking;
    streak_count_ = 0;
    streak_active_ = false;
    return d;
  }
  walking_streak_ = 0;
  walking_credit_ = 0;

  const bool stepping_like =
      analysis.half_cycle_corr > 0.0 && analysis.phase_ok;
  if (!stepping_like) {
    d.type = GaitType::Interference;
    streak_count_ = 0;
    streak_active_ = false;
    return d;
  }

  if (streak_active_) {
    d.type = GaitType::Stepping;
    return d;
  }

  ++streak_count_;
  if (streak_count_ >= cfg_.streak) {
    // Streak completed: this cycle plus the withheld ones are confirmed
    // (the paper's "+6" with the default streak of 3).
    d.type = GaitType::Stepping;
    d.confirmed_backlog = cfg_.streak - 1;
    streak_active_ = true;
    streak_count_ = 0;
  } else {
    d.type = GaitType::Interference;  // withheld, may be confirmed later
    d.withheld = true;
  }
  return d;
}

void GaitIdentifier::reset() {
  streak_count_ = 0;
  streak_active_ = false;
  walking_streak_ = 0;
  walking_credit_ = 0;
}

}  // namespace ptrack::core
