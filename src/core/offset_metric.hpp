// The Eq. (1) offset metric: how asynchronous the critical points of the
// vertical and anterior channels are within one candidate gait cycle.
//
//   delta(nv) = w(nv) * |nv - c(nv)| / n
//
// where c(nv) is the closest anterior critical point to the vertical
// critical point nv, n is the cycle length in samples, and w(nv) is the
// normalized distance from nv to the previous critical point on the
// vertical axis (points isolated on their own axis carry more weight; a
// cluster of nearby points carries less). The cycle's offset is the sum of
// delta(nv) over all vertical critical points. Rigid single-DOF activities
// produce tightly matched critical points (offset ~ 0); walking's
// two-oscillator superposition misaligns or deletes matches (offset large).

#pragma once

#include <span>

#include "core/critical_points.hpp"

namespace ptrack::core {

/// Computes the cycle offset. `n` is the cycle length in samples (>= 1).
/// `use_weighting` disables w(nv) for the ablation study (weight = 1 then).
/// `weight_cap` bounds w(nv): a long quiet gap before a point (e.g. the
/// dwell phases of eating) must not let a single match dominate the sum.
/// When the anterior channel has no critical points at all, the offset is
/// 1.0 (maximal: every match "disappeared").
double cycle_offset(std::span<const CriticalPoint> vertical_points,
                    std::span<const CriticalPoint> anterior_points,
                    std::size_t n, bool use_weighting = true,
                    double weight_cap = 0.35);

}  // namespace ptrack::core
