// Adaptive tuning of the offset threshold delta — the paper's stated
// future work ("we plan to adaptively tune the threshold delta").
//
// Observation: over any realistic session the per-cycle offsets are
// bimodal — a low cluster (rigid activities, stepping) and a high cluster
// (walking). The fixed delta = 0.0325 works when sensors and users match
// the paper's; a device with a different noise floor or a user with an
// unusual gait shifts both clusters. Otsu's criterion (maximal
// between-class variance) finds the valley between the clusters from the
// unlabeled offsets themselves, giving a per-session delta with no ground
// truth required.

#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Result of one adaptive-delta pass.
struct AdaptiveDelta {
  double delta = 0.0;        ///< tuned threshold
  double separation = 0.0;   ///< between-class variance at the optimum,
                             ///< normalized by total variance (0..1); low
                             ///< values mean the offsets were not bimodal
  std::size_t cycles = 0;    ///< evidence volume
};

/// Otsu threshold over a set of per-cycle offsets (values in [0, 1]).
/// Requires >= 8 samples. `bins` controls the histogram resolution.
AdaptiveDelta otsu_threshold(std::span<const double> offsets,
                             std::size_t bins = 64);

/// Collects the per-cycle offsets of a trace (using `cfg` for projection
/// and segmentation) and tunes delta from them. When the offsets are not
/// separable (separation < min_separation) or there are fewer than 8
/// cycles, the returned delta falls back to cfg.delta.
AdaptiveDelta tune_delta(const imu::Trace& trace,
                         const StepCounterConfig& cfg = {},
                         double min_separation = 0.5);

}  // namespace ptrack::core
