#include "core/summary.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ptrack::core {

ActivitySummary summarize(const TrackResult& result, double fs) {
  expects(fs > 0.0, "summarize: fs > 0");
  ActivitySummary s;
  s.steps = result.steps;
  s.distance_m = result.distance();

  for (const CycleRecord& c : result.cycles) {
    const double seconds =
        static_cast<double>(c.end - c.begin) / fs;
    switch (c.type) {
      case GaitType::Walking:
        s.walking_s += seconds;
        break;
      case GaitType::Stepping:
        s.stepping_s += seconds;
        break;
      case GaitType::Interference:
        s.excluded_s += seconds;
        break;
    }
  }
  s.active_s = s.walking_s + s.stepping_s;
  if (s.active_s > 0.0) {
    s.mean_cadence_hz = static_cast<double>(s.steps) / s.active_s;
  }

  std::size_t with_stride = 0;
  for (const StepEvent& e : result.events) {
    if (e.stride <= 0.0) continue;
    ++with_stride;
    s.mean_stride_m += e.stride;
    s.max_stride_m = std::max(s.max_stride_m, e.stride);
  }
  if (with_stride > 0) {
    s.mean_stride_m /= static_cast<double>(with_stride);
  }

  s.clean_fraction = result.quality.clean_fraction;
  s.repaired_fraction = result.quality.repaired_fraction;
  s.masked_fraction = result.quality.masked_fraction;
  s.degraded_steps = result.degraded_steps();
  if (!result.events.empty()) {
    for (const StepEvent& e : result.events) s.mean_step_quality += e.quality;
    s.mean_step_quality /= static_cast<double>(result.events.size());
  }
  return s;
}

}  // namespace ptrack::core
