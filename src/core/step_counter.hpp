// The PTrack step counter: segmentation + gait identification + counting
// (Figs. 2 and 4), producing per-cycle diagnostics for Fig. 6(b).

#pragma once

#include "core/frontend.hpp"
#include "core/types.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Batch step counter over a full trace. Stride fields of the emitted
/// events are 0; the stride estimator fills them (see PTrack facade).
class StepCounter {
 public:
  explicit StepCounter(StepCounterConfig cfg = {});

  /// Processes a raw trace (projection + low-pass + segmentation +
  /// identification). Traces shorter than 16 samples yield an empty result.
  [[nodiscard]] TrackResult process(const imu::Trace& trace) const;

  /// Processes already projected channels (used by the facade to share the
  /// projection with the stride estimator).
  [[nodiscard]] TrackResult process_projected(
      const ProjectedTrace& projected) const;

  [[nodiscard]] const StepCounterConfig& config() const { return cfg_; }

 private:
  StepCounterConfig cfg_;
};

}  // namespace ptrack::core
