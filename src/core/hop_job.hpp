// Off-thread hop execution for StreamingTracker — the core-side half of
// the mixed-load runtime (DESIGN.md §18).
//
// StreamingTracker is deliberately single-threaded ("drive it from one
// thread"). HopJob keeps that invariant while moving the hop work off the
// producer thread: the producer appends samples to a small mailbox and
// returns immediately; an executor drains the mailbox into the tracker and
// parks the confirmed events for poll_into(). At most ONE executor task
// per job is ever in flight (an atomic idle/scheduled/running/dirty state
// machine), so the tracker itself is still only ever touched by one thread
// at a time — the actor pattern, with the scheduler's affinity hint keeping
// that thread stable so the stream's SampleRing stays cache-warm.
//
// Layering: core defines the HopExecutor port below and knows nothing of
// the runtime layer; runtime/hop_executor.hpp adapts the work-stealing
// Scheduler's latency lane to it. Tests can drive a HopJob with a trivial
// inline executor.
//
// Threading contract: push()/poll_into()/flush()/wait_idle() are intended
// for ONE producer thread (matching the net-layer model of one session per
// connection); the executor may be any thread the scheduler picks. After
// wait_idle() returns, the producer thread may also read stats()/steps().

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <vector>

#include "core/streaming.hpp"

namespace ptrack::core {

class HopJob;

/// Port through which a HopJob schedules its hop onto an executor. May run
/// the job inline (a valid degenerate executor); must invoke it exactly
/// once per submit, and must not drop it.
class HopExecutor {
 public:
  virtual ~HopExecutor() = default;

  /// Schedules job.run_scheduled(executor_index) to run soon. `affinity`
  /// is a stable per-stream token; executors should prefer running jobs
  /// with the same token on the same thread (cache warmth), but
  /// correctness must not depend on it.
  virtual void submit(HopJob& job, std::uint64_t affinity) = 0;
};

/// An actor wrapping one StreamingTracker: samples in via a mailbox, hops
/// run on the executor, confirmed events out via poll_into().
class HopJob {
 public:
  /// `stream_id` doubles as the affinity token. `executor` must outlive
  /// this job.
  HopJob(HopExecutor& executor, std::uint64_t stream_id, double fs,
         StreamingConfig config = {});

  /// Blocks until the job is idle (all pushed samples processed), then
  /// tears down. Any captured hop error is swallowed here — check
  /// wait_idle() first if you care.
  ~HopJob();

  HopJob(const HopJob&) = delete;
  HopJob& operator=(const HopJob&) = delete;

  /// Enqueues one sample and ensures a hop task is scheduled. O(1) append;
  /// never blocks on the tracker.
  void push(const imu::Sample& sample);

  /// Enqueues a whole trace. Throws InvalidArgument on a sample-rate
  /// mismatch (same contract as StreamingTracker::push(Trace)).
  void push(const imu::Trace& trace);

  /// Appends events confirmed so far to `out` (chronological; each event
  /// exactly once). Does not wait: events still being computed arrive on a
  /// later poll.
  void poll_into(std::vector<StepEvent>& out);

  /// Blocks until every pushed sample has been processed and no task is
  /// scheduled or running. Rethrows the first error a hop captured (once;
  /// the job is unusable after an error).
  void wait_idle();

  /// wait_idle(), then flushes the tracker's finalization margins on the
  /// calling thread, appending the final events to `out` (after all
  /// already-confirmed events). Mirrors StreamingTracker::drain_into.
  void drain_into(std::vector<StepEvent>& out);

  [[nodiscard]] std::uint64_t stream_id() const { return stream_id_; }

  /// Hop tasks completed (monotone; readable from any thread).
  [[nodiscard]] std::uint64_t runs_completed() const {
    return runs_completed_.load(std::memory_order_relaxed);
  }

  /// Executor index of the most recent hop task (kNoExecutor before the
  /// first). Affinity diagnostics only.
  static constexpr std::size_t kNoExecutor = ~std::size_t{0};
  [[nodiscard]] std::size_t last_executor() const {
    return last_executor_.load(std::memory_order_relaxed);
  }

  /// Tracker statistics. Only meaningful when the job is idle (call after
  /// wait_idle()); the tracker is the executor's to touch otherwise.
  [[nodiscard]] StreamingStats stats() const { return tracker_.stats(); }

  /// Executor-side entry point — called exactly once per HopExecutor
  /// submit, on whatever thread the executor picked. Not part of the
  /// producer API.
  void run_scheduled(std::size_t executor);

 private:
  enum State : int {
    kIdle = 0,       ///< no task queued or running, mailbox drained
    kScheduled = 1,  ///< a task is queued with the executor
    kRunning = 2,    ///< a task is draining the mailbox
    kRunningDirty = 3,  ///< running, and new samples arrived since drain
  };

  void ensure_scheduled();

  HopExecutor& executor_;
  const std::uint64_t stream_id_;

  std::mutex in_mu_;
  std::vector<imu::Sample> inbox_;    ///< producer -> executor mailbox
  std::vector<imu::Sample> scratch_;  ///< executor-side drain buffer

  std::mutex out_mu_;
  std::vector<StepEvent> ready_;  ///< confirmed events awaiting poll

  StreamingTracker tracker_;  ///< executor-owned while not idle

  std::atomic<int> state_{kIdle};
  std::mutex idle_mu_;
  std::condition_variable idle_cv_;

  std::mutex err_mu_;
  std::exception_ptr error_;  ///< first hop error; guarded by err_mu_

  std::atomic<std::uint64_t> runs_completed_{0};
  std::atomic<std::size_t> last_executor_{kNoExecutor};
};

}  // namespace ptrack::core
