#include "core/streaming.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

StreamingTracker::StreamingTracker(double fs, StreamingConfig config)
    : fs_(fs), config_(config), pipeline_(config.pipeline) {
  expects(fs > 0.0, "StreamingTracker: fs > 0");
  expects(config_.hop_s > 0.0, "StreamingTracker: hop_s > 0");
  expects(config_.guard_s > 0.0, "StreamingTracker: guard_s > 0");
  expects(config_.window_s > 2.0 * config_.guard_s,
          "StreamingTracker: window_s > 2 * guard_s");
}

void StreamingTracker::push(const imu::Sample& sample) {
  imu::Sample s = sample;
  s.t = next_t_;
  next_t_ += 1.0 / fs_;
  window_.push_back(s);
  ++samples_pushed_;

  // Trim the sliding window.
  const double min_keep = next_t_ - config_.window_s;
  while (!window_.empty() && window_.front().t < min_keep &&
         window_.front().t < emit_frontier_ - config_.guard_s) {
    window_start_t_ = window_.front().t + 1.0 / fs_;
    window_.pop_front();
  }

  if (next_t_ - last_processed_t_ >= config_.hop_s) {
    process_window(next_t_ - config_.guard_s);
    last_processed_t_ = next_t_;
  }
}

void StreamingTracker::push(const imu::Trace& trace) {
  for (const imu::Sample& s : trace.samples()) push(s);
}

void StreamingTracker::process_window(double horizon) {
  if (window_.size() < 32) return;
  PTRACK_OBS_SPAN("streaming.window");
  ++windows_processed_;
  PTRACK_COUNT("ptrack.core.streaming.windows");

  // Materialize the window as a trace with window-relative timestamps.
  std::vector<imu::Sample> samples(window_.begin(), window_.end());
  const double t0 = samples.front().t;
  for (imu::Sample& s : samples) s.t -= t0;
  const imu::Trace trace(fs_, std::move(samples));

  const TrackResult result = pipeline_.process(trace);
  for (const StepEvent& e : result.events) {
    const double t_abs = e.t + t0;
    if (t_abs <= emit_frontier_ || t_abs > horizon) continue;
    StepEvent out = e;
    out.t = t_abs;
    ready_.push_back(out);
  }
  // Advance the frontier even when no events landed, so a re-run over the
  // same region cannot re-emit older events with slightly shifted stamps.
  if (horizon > emit_frontier_) emit_frontier_ = horizon;
  std::sort(ready_.begin(), ready_.end(),
            [](const StepEvent& a, const StepEvent& b) { return a.t < b.t; });
}

std::vector<StepEvent> StreamingTracker::poll() {
  std::vector<StepEvent> out;
  out.swap(ready_);
  emitted_steps_ += out.size();
  PTRACK_COUNT_N("ptrack.core.streaming.events", out.size());
  for (const StepEvent& e : out) {
    emitted_distance_ += e.stride;
    emitted_degraded_ += e.degraded ? 1 : 0;
  }
  return out;
}

std::vector<StepEvent> StreamingTracker::finish() {
  process_window(next_t_ + 1.0);  // flush: no guard
  last_processed_t_ = next_t_;
  return poll();
}

}  // namespace ptrack::core
