#include "core/streaming.hpp"

#include <algorithm>
#include <cmath>

#include "common/alloc_hooks.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

namespace {

// Validated before any member that consumes fs is constructed (the stage
// pipeline is built in the member-init list).
double validated_fs(double fs, const StreamingConfig& config) {
  expects(fs > 0.0, "StreamingTracker: fs > 0");
  expects(config.hop_s > 0.0, "StreamingTracker: hop_s > 0");
  expects(config.guard_s > 0.0, "StreamingTracker: guard_s > 0");
  expects(config.window_s > 2.0 * config.guard_s,
          "StreamingTracker: window_s > 2 * guard_s");
  expects(config.precision == Precision::kDouble ||
              config.mode == StreamingConfig::Mode::kIncremental,
          "StreamingTracker: float32 precision requires incremental mode");
  expects(config.precision == Precision::kDouble ||
              !config.pipeline.counter.use_attitude_filter,
          "StreamingTracker: float32 precision has no attitude-filter path");
  return fs;
}

}  // namespace

// ptrack-lint: allow(entry-check) fs validated by validated_fs() below
StreamingTracker::StreamingTracker(double fs, StreamingConfig config)
    : fs_(validated_fs(fs, config)),
      config_(config),
      pipe_(config.pipeline.counter, config.pipeline.stride, fs, &workspace_,
            config.precision),
      hop_samples_(std::max<std::size_t>(
          1, static_cast<std::size_t>(config.hop_s * fs))),
      pipeline_(config.pipeline) {
  if (config_.precision == Precision::kFloat32) ring_.enable_f32();
  if (config_.mode == StreamingConfig::Mode::kIncremental &&
      config_.pipeline.quality.enabled) {
    quality_.emplace(fs_, config_.pipeline.quality);
    repair_buf_.reserve(quality_->latency_bound() + 1);
  }
}

void StreamingTracker::push(const imu::Sample& sample) {
  PTRACK_CHECK_MSG(samples_since_hop_ < hop_samples_,
                   "StreamingTracker::push: hop cadence invariant");
  imu::Sample s = sample;
  s.t = next_t_;
  next_t_ += 1.0 / fs_;
  ++samples_pushed_;

  if (config_.mode == StreamingConfig::Mode::kRecompute) {
    push_recompute(s);
    return;
  }

  // Incremental: route through the online quality stage (which holds a
  // bounded tail back until each sample's fate is decided) into the ring.
  if (quality_) {
    repair_buf_.clear();
    quality_->push(s, repair_buf_);
    for (const imu::RepairedSample& r : repair_buf_) {
      ring_.push(r.sample, r.flags);
    }
  } else {
    ring_.push(s, 0);
  }

  if (++samples_since_hop_ >= hop_samples_) {
    samples_since_hop_ = 0;
    run_hop(/*flush=*/false);
  }
}

void StreamingTracker::push(const imu::Trace& trace) {
  expects(std::abs(trace.fs() - fs_) <= 1e-9 * fs_,
          "StreamingTracker::push: trace sample rate matches the tracker "
          "(resample first)");
  for (const imu::Sample& s : trace.samples()) push(s);
}

void StreamingTracker::run_hop(bool flush) {
  PTRACK_CHECK_MSG(ring_.base() <= pipe_.min_required_index(),
                   "StreamingTracker::run_hop: pipeline context retained");
  PTRACK_OBS_SPAN("ptrack.streaming.window");
  ++windows_processed_;
  PTRACK_COUNT("ptrack.core.streaming.windows");

  // Steady-state allocation discipline: every incremental (non-flush) hop
  // after warm-up runs under a NoAllocScope. By default the scope only
  // counts (visible via alloc::thread_stats()); with enforce_no_alloc and
  // checks enabled, a stray allocation throws at its call site.
  const auto mode = (!flush && warmed_up_ && config_.enforce_no_alloc)
                        ? alloc::NoAllocScope::Mode::kEnforce
                        : alloc::NoAllocScope::Mode::kCount;
  {
    alloc::NoAllocScope guard("StreamingTracker::run_hop", mode);
    pipe_.advance(ring_, flush);

    // The assembler finalizes events chronologically and never retracts, so
    // the drained batch appends to ready_ already sorted — no per-hop sort
    // (and no re-sort of everything already pending, as the recompute path
    // once did). Capacity-preserving drains keep the hop allocation-free
    // once ready_ has warmed up.
    pipe_.drain_events(ready_);
    pipe_.discard_cycles();  // streaming exposes events only

    // Bounded memory: drop raw samples no stage will read again.
    ring_.trim_to(std::min(pipe_.min_required_index(), ring_.end()));
  }
  if (flush) warmed_up_ = true;
}

void StreamingTracker::push_recompute(const imu::Sample& s) {
  PTRACK_CHECK_MSG(config_.mode == StreamingConfig::Mode::kRecompute,
                   "StreamingTracker::push_recompute: recompute-mode entry");
  window_.push_back(s);

  // Trim the sliding window.
  const double min_keep = next_t_ - config_.window_s;
  while (!window_.empty() && window_.front().t < min_keep &&
         window_.front().t < emit_frontier_ - config_.guard_s) {
    window_start_t_ = window_.front().t + 1.0 / fs_;
    window_.pop_front();
  }

  if (next_t_ - last_processed_t_ >= config_.hop_s) {
    process_window(next_t_ - config_.guard_s);
    last_processed_t_ = next_t_;
  }
}

void StreamingTracker::process_window(double horizon) {
  PTRACK_CHECK_MSG(std::isfinite(horizon),
                   "StreamingTracker::process_window: finite horizon");
  if (window_.size() < 32) return;
  PTRACK_OBS_SPAN("ptrack.streaming.window");
  ++windows_processed_;
  PTRACK_COUNT("ptrack.core.streaming.windows");

  // Materialize the window as a trace with window-relative timestamps.
  std::vector<imu::Sample> samples(window_.begin(), window_.end());
  const double t0 = samples.front().t;
  for (imu::Sample& s : samples) s.t -= t0;
  const imu::Trace trace(fs_, std::move(samples));

  const TrackResult result = pipeline_.process(trace);
  const std::size_t sorted_prefix = ready_.size();
  for (const StepEvent& e : result.events) {
    const double t_abs = e.t + t0;
    if (t_abs <= emit_frontier_ || t_abs > horizon) continue;
    StepEvent out = e;
    out.t = t_abs;
    ready_.push_back(out);
  }
  // Advance the frontier even when no events landed, so a re-run over the
  // same region cannot re-emit older events with slightly shifted stamps.
  if (horizon > emit_frontier_) emit_frontier_ = horizon;
  // The new events are chronological among themselves (batch order), so a
  // merge at the append boundary suffices — no full re-sort of ready_.
  std::inplace_merge(
      ready_.begin(),
      ready_.begin() + static_cast<std::ptrdiff_t>(sorted_prefix),
      ready_.end(),
      [](const StepEvent& a, const StepEvent& b) { return a.t < b.t; });
}

std::vector<StepEvent> StreamingTracker::poll() {
  std::vector<StepEvent> out;
  out.reserve(ready_.size());
  poll_into(out);
  return out;
}

// ptrack-lint: allow(entry-check) append-only drain; nothing to validate
void StreamingTracker::poll_into(std::vector<StepEvent>& out) {
  out.insert(out.end(), ready_.begin(), ready_.end());
  emitted_steps_ += ready_.size();
  PTRACK_COUNT_N("ptrack.core.streaming.events", ready_.size());
  for (const StepEvent& e : ready_) {
    emitted_distance_ += e.stride;
    emitted_degraded_ += e.degraded ? 1 : 0;
  }
  ready_.clear();
}

// ptrack-lint: allow(entry-check) terminal flush is legal in any state
std::vector<StepEvent> StreamingTracker::finish() {
  std::vector<StepEvent> out;
  out.reserve(ready_.size());
  drain_into(out);
  return out;
}

// ptrack-lint: allow(entry-check) terminal flush is legal in any state
void StreamingTracker::drain_into(std::vector<StepEvent>& out) {
  if (config_.mode == StreamingConfig::Mode::kRecompute) {
    process_window(next_t_ + 1.0);  // flush: no guard
    last_processed_t_ = next_t_;
    poll_into(out);
    return;
  }
  if (quality_) {
    repair_buf_.clear();
    quality_->flush(repair_buf_);
    for (const imu::RepairedSample& r : repair_buf_) {
      ring_.push(r.sample, r.flags);
    }
  }
  run_hop(/*flush=*/true);
  samples_since_hop_ = 0;
  poll_into(out);
}

}  // namespace ptrack::core
