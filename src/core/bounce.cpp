#include "core/bounce.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::core {

namespace {

double half_chord(double r, double m) {
  // sqrt(m^2 - (m-r)^2) for r clamped to [0, m].
  r = std::clamp(r, 0.0, m);
  const double mr = m - r;
  return std::sqrt(std::max(m * m - mr * mr, 0.0));
}

}  // namespace

double sweep_width(double b, double h1, double h2, double m) {
  return half_chord(h1 + b, m) + half_chord(h2 + b, m);
}

BounceSolution solve_bounce(double h1, double h2, double d, double m) {
  expects(m > 0.0, "solve_bounce: m > 0");
  expects(d > 0.0, "solve_bounce: d > 0");

  BounceSolution out;
  // Physical branch: r_i = h_i + b in [0, m]  =>  b in [b_lo, b_hi].
  const double b_lo = std::max({0.0, -h1, -h2});
  const double b_hi = std::min(m - h1, m - h2);
  if (b_hi <= b_lo) {
    out.bounce = std::max(b_lo, 0.0);
    return out;
  }

  const double f_lo = sweep_width(b_lo, h1, h2, m) - d;
  const double f_hi = sweep_width(b_hi, h1, h2, m) - d;
  if (f_lo > 0.0) {
    // Arm travel already exceeds d with zero bounce: no root; the best
    // physical estimate is the branch edge.
    out.bounce = b_lo;
    return out;
  }
  if (f_hi < 0.0) {
    out.bounce = b_hi;
    return out;
  }

  double lo = b_lo;
  double hi = b_hi;
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    const double f = sweep_width(mid, h1, h2, m) - d;
    if (f < 0.0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  out.bounce = 0.5 * (lo + hi);
  out.valid = true;
  // Eq. (3)-(5) solve for a physical vertical bounce: a non-negative length
  // inside the bracketing branch [b_lo, b_hi].
  PTRACK_CHECK_MSG(std::isfinite(out.bounce) && out.bounce >= 0.0,
                   "solve_bounce: bounce is a non-negative length");
  PTRACK_CHECK_MSG(out.bounce >= b_lo && out.bounce <= b_hi,
                   "solve_bounce: root stays inside the physical branch");
  return out;
}

double stride_from_bounce(double bounce, double leg_length, double k) {
  expects(leg_length > 0.0, "stride_from_bounce: l > 0");
  expects(k > 0.0, "stride_from_bounce: k > 0");
  bounce = std::clamp(bounce, 0.0, leg_length);
  const double lb = leg_length - bounce;
  const double stride =
      k * std::sqrt(std::max(leg_length * leg_length - lb * lb, 0.0));
  // Eq. (2): the stride is a chord of the leg's inverted-pendulum arc — a
  // non-negative length bounded by the full diameter k * l.
  PTRACK_CHECK_MSG(std::isfinite(stride) && stride >= 0.0 &&
                       stride <= k * leg_length + 1e-12,
                   "stride_from_bounce: stride is a bounded length");
  return stride;
}

}  // namespace ptrack::core
