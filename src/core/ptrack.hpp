// PTrack public facade: the full pipeline of Fig. 2 behind one call.
//
//   PTrack tracker(config);
//   core::TrackResult r = tracker.process(trace);
//   r.steps, r.events[i].stride, r.distance() ...
//
// The facade also adapts PTrack to the models::IStepCounter interface so
// the figure benches can treat all counters uniformly.

#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/step_counter.hpp"
#include "core/stride_estimator.hpp"
#include "core/types.hpp"
#include "dsp/workspace.hpp"
#include "imu/quality.hpp"
#include "imu/trace.hpp"
#include "models/step_counter.hpp"

namespace ptrack::core {

/// Facade configuration.
struct PTrackConfig {
  StepCounterConfig counter{};
  StrideConfig stride{};
  /// Signal-quality layer: degraded input (dropouts, saturation, spikes,
  /// garbage cells) is detected and repaired before the pipeline runs, and
  /// every emitted step carries a confidence. Set quality.enabled = false
  /// to process the raw samples verbatim (repair-off ablation).
  imu::QualityConfig quality{};
};

/// The full PTrack pipeline: projection -> segmentation -> gait
/// identification -> step counting -> per-step stride estimation.
///
/// Since the stage-graph refactor, process() is a thin batch driver over
/// the same incremental core the streaming tracker runs (core/stages.hpp):
/// the trace is loaded into an imu::SampleRing and a fresh StagePipeline is
/// advanced once with flush, which degenerates every stage to exactly the
/// batch computation. Batch results are therefore the oracle the streaming
/// mode is validated against.
///
/// Each instance owns a dsp::Workspace that process() reuses across calls,
/// so repeated invocations (streaming hops, batch traces) run without the
/// per-window scratch allocations. Consequently an instance is NOT safe for
/// concurrent process() calls — give each thread its own PTrack (see
/// runtime::BatchRunner, which does exactly that). Results are a pure
/// function of the input trace either way.
class PTrack {
 public:
  explicit PTrack(PTrackConfig cfg = {});

  /// Runs the full pipeline over a trace. Every counted step's event gets
  /// its stride filled in (0 when the geometry solve degenerates). With the
  /// quality layer enabled (default) the trace is assessed and repaired
  /// first, and the result's quality/confidence fields are populated;
  /// throws ptrack::Error when the trace is unusable (dominated by
  /// non-finite or nonphysical cells — there is no signal to track).
  [[nodiscard]] TrackResult process(const imu::Trace& trace) const;

  [[nodiscard]] const PTrackConfig& config() const { return cfg_; }
  void set_profile(const StrideProfile& profile);

 private:
  /// The pre-quality pipeline body (projection -> counting -> strides).
  [[nodiscard]] TrackResult process_repaired(const imu::Trace& trace) const;

  /// Batch driver: loads the trace (with optional per-sample quality flags)
  /// into a ring and flushes one StagePipeline over it.
  [[nodiscard]] TrackResult run_pipeline(
      const imu::Trace& trace,
      const std::vector<std::uint8_t>* flags) const;

  PTrackConfig cfg_;
  mutable dsp::Workspace workspace_;  ///< scratch reused across process()
};

/// models::IStepCounter adapter over the PTrack pipeline.
class PTrackCounterAdapter final : public models::IStepCounter {
 public:
  explicit PTrackCounterAdapter(PTrackConfig cfg = {});
  [[nodiscard]] std::string_view name() const override { return "PTrack"; }
  models::StepDetection count_steps(const imu::Trace& trace) override;

 private:
  PTrack tracker_;
};

}  // namespace ptrack::core
