// Body-bounce solver (paper Eqs. 3-5).
//
// Within one arm sweep (one step) the device's measured vertical
// displacements h1 (backmost -> vertical, downward positive) and h2
// (vertical -> foremost, upward positive) mix the arm's vertical travel
// r1/r2 with the body's bounce b:
//
//   h1 = r1 - b,   h2 = r2 - b                                  (3),(4)
//   d  = sqrt(m^2 - (m-r1)^2) + sqrt(m^2 - (m-r2)^2)            (5)
//
// with m the arm length and d the arm's anterior travel over the sweep.
// Substituting r_i = h_i + b into (5) gives one monotone equation in b,
// which we solve by bisection (the paper omits its closed form). On the
// physical branch r_i in [0, m], the left side of (5) is strictly
// increasing in b, so the root is unique when it exists.

#pragma once

namespace ptrack::core {

/// Result of a bounce solve.
struct BounceSolution {
  double bounce = 0.0;  ///< solved b (m); clamped into the valid range
  bool valid = false;   ///< root found inside the physical branch
};

/// Solves Eqs. (3)-(5) for b given measured h1, h2 (signed, metres), the
/// arm's anterior travel d (> 0) and the arm length m (> 0).
BounceSolution solve_bounce(double h1, double h2, double d, double m);

/// Eq. (5)'s left-hand side with r_i = h_i + b; exposed for tests.
double sweep_width(double b, double h1, double h2, double m);

/// Eq. (2): stride from bounce, with leg length l and calibration k.
/// The bounce is clamped into [0, l].
double stride_from_bounce(double bounce, double leg_length, double k);

}  // namespace ptrack::core
