// Gait-type identification: the Fig. 4 decision flow.
//
// Per candidate cycle:
//   1. offset > delta            -> Walking (count +2)
//   2. else, half-cycle autocorrelation C of the anterior channel must be
//      positive AND the vertical/anterior phase difference must sit at a
//      quarter of the step period; when both hold for `streak` consecutive
//      cycles the pending cycles are confirmed as Stepping (count +2 each,
//      i.e. +6 on the third confirmation with the default streak of 3).
//   3. else                      -> Interference (count +0)

#pragma once

#include <span>

#include "core/types.hpp"

namespace ptrack::core {

/// Per-cycle analysis results (before streak logic).
struct CycleAnalysis {
  double offset = 0.0;
  double half_cycle_corr = 0.0;
  bool phase_ok = false;
};

/// Computes offset, half-cycle autocorrelation and the phase gate for one
/// cycle. `vertical` and `anterior` are the cycle's projected channels
/// (equal sizes, >= 8 samples).
CycleAnalysis analyze_cycle(std::span<const double> vertical,
                            std::span<const double> anterior,
                            const StepCounterConfig& cfg);

/// Stateful classifier implementing the streak confirmation. Feed cycles in
/// order; classify() returns the decision for the current cycle and, via
/// `confirmed_backlog`, how many *previous* pending cycles were just
/// confirmed as stepping (0 except at the streak-completion cycle, where it
/// is streak-1).
class GaitIdentifier {
 public:
  explicit GaitIdentifier(StepCounterConfig cfg);

  struct Decision {
    GaitType type = GaitType::Interference;
    std::size_t confirmed_backlog = 0;  ///< earlier cycles confirmed now
    /// True when this Interference verdict is only provisional: the cycle
    /// passed the stepping tests and joined a streak that has not reached
    /// the confirmation threshold yet. A later streak-completing cycle may
    /// retro-confirm it (confirmed_backlog). Streaming uses this to defer
    /// rather than drop the cycle's events.
    bool withheld = false;
  };

  Decision classify(const CycleAnalysis& analysis);

  /// classify() without the obs counters. The streaming pipeline's bounded
  /// lookahead clones the identifier and walks not-yet-stable cycles to
  /// decide whether a withheld streak will confirm; counting those
  /// simulated cycles would double-book the real ones.
  Decision classify_speculative(const CycleAnalysis& analysis) {
    return classify_impl(analysis);
  }

  /// Resets the stepping streak (e.g. after a gap in candidates).
  void reset();

  /// Number of cycles currently withheld in an open (unconfirmed) stepping
  /// streak — the backlog a future confirmation would release.
  [[nodiscard]] std::size_t pending_streak() const { return streak_count_; }

  [[nodiscard]] const StepCounterConfig& config() const { return cfg_; }

 private:
  Decision classify_impl(const CycleAnalysis& analysis);

  StepCounterConfig cfg_;
  std::size_t streak_count_ = 0;
  bool streak_active_ = false;
  std::size_t walking_streak_ = 0;  ///< consecutive strict walking cycles
  std::size_t walking_credit_ = 0;  ///< borderline acceptances remaining
};

}  // namespace ptrack::core
