// The PTrack stride estimator (paper SIII-C).
//
// For a *walking* cycle, the arm's anterior velocity (mean-removal integral
// of the anterior acceleration) crosses zero at the arm reversals; each
// sweep between reversals spans one step and passes the three key moments
// of Fig. 5(b): (i) one extreme, (ii) arm vertical — located at the peak
// arm speed — and (iii) the other extreme. The measured vertical
// displacements h1, h2 over the two half-sweeps and the anterior travel d
// over the sweep feed the Eq. (3)-(5) bounce solver; Eq. (2) maps bounce to
// stride. All three displacement integrals are bounded by zero-velocity
// instants, so the mean-removal technique applies (paper SIII-C1).
//
// For a *stepping* cycle, the device rides the body, so the bounce is read
// off directly as the peak-to-peak vertical displacement within each step.

#pragma once

#include <array>
#include <cstddef>
#include <span>

#include "core/frontend.hpp"
#include "core/types.hpp"

namespace ptrack::core {

/// One per-step stride estimate produced from a cycle.
struct SweepEstimate {
  double t = 0.0;       ///< step completion time (s)
  double stride = 0.0;  ///< estimated stride (m)
  double bounce = 0.0;  ///< estimated bounce (m)
  bool valid = false;   ///< geometry solve succeeded
};

/// Fixed-capacity estimate set: a cycle holds at most two steps, so the
/// per-cycle results fit inline and the streaming hot path never allocates
/// for them.
struct SweepEstimateSet {
  std::array<SweepEstimate, 2> storage{};
  std::size_t count = 0;

  void push(const SweepEstimate& e) { storage[count++] = e; }
  [[nodiscard]] std::span<const SweepEstimate> span() const {
    return {storage.data(), count};
  }
  [[nodiscard]] bool empty() const { return count == 0; }
};

/// Span view over projected vertical/anterior channels: the zero-copy
/// handle used by the streaming pipeline, where the channels live in a
/// hop-local projection rather than a ProjectedTrace. Cycle indices and
/// returned times are relative to the span start.
struct ChannelSpans {
  std::span<const double> vertical;
  std::span<const double> anterior;
  double fs = 0.0;
};

/// Per-cycle stride estimation.
class StrideEstimator {
 public:
  explicit StrideEstimator(StrideConfig cfg = {});

  /// Estimates the (up to two) per-step strides of one classified cycle.
  /// Interference cycles yield an empty result.
  [[nodiscard]] std::vector<SweepEstimate> estimate_cycle(
      const ProjectedTrace& projected, const CycleRecord& cycle) const;

  /// Span variant; the ProjectedTrace overload delegates here.
  [[nodiscard]] std::vector<SweepEstimate> estimate_cycle(
      const ChannelSpans& channels, const CycleRecord& cycle) const;

  /// Allocation-free variant (same estimates, inline storage): what the
  /// streaming event assembler calls per confirmed cycle. The vector
  /// overloads wrap this.
  [[nodiscard]] SweepEstimateSet estimate_cycle_set(
      const ChannelSpans& channels, const CycleRecord& cycle) const;

  [[nodiscard]] const StrideConfig& config() const { return cfg_; }
  void set_profile(const StrideProfile& profile) { cfg_.profile = profile; }

 private:
  [[nodiscard]] SweepEstimateSet walking_cycle(
      const ChannelSpans& channels, const CycleRecord& cycle) const;
  [[nodiscard]] SweepEstimateSet stepping_cycle(
      const ChannelSpans& channels, const CycleRecord& cycle) const;

  StrideConfig cfg_;
};

}  // namespace ptrack::core
