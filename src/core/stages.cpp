#include "core/stages.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.hpp"
#include "common/error.hpp"
#include "dsp/peaks.hpp"
#include "imu/quality.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

namespace {

[[nodiscard]] std::size_t seconds_to_samples(double s, double fs) {
  return static_cast<std::size_t>(s * fs);
}

}  // namespace

// ---------------------------------------------------------------------------
// ProjectionStage

ProjectionStage::ProjectionStage(const StepCounterConfig& cfg, double fs,
                                 dsp::Workspace* ws, Precision precision)
    : cfg_(cfg),
      fs_(fs),
      ws_(ws),
      precision_(precision),
      ctx_(seconds_to_samples(kProjectionCtxS, fs)),
      margin_(seconds_to_samples(kProjectionMarginS, fs)),
      axis_window_(seconds_to_samples(kProjectionAxisWindowS, fs)) {
  expects(fs > 0.0, "ProjectionStage: fs > 0");
  expects(precision == Precision::kDouble || !cfg.use_attitude_filter,
          "ProjectionStage: float32 precision has no attitude-filter path");
  expects(precision == Precision::kDouble || ws != nullptr,
          "ProjectionStage: float32 precision requires a workspace");
}

void ProjectionStage::advance(const imu::SampleRing& ring, bool flush) {
  PTRACK_CHECK_MSG(vert_.end() <= ring.end(),
                   "ProjectionStage: projected frontier within the ring");
  const std::size_t end = ring.end();

  // Attitude mode: the complementary filter is causal, so the up track is
  // fed to the raw frontier regardless of the projection margin.
  if (cfg_.use_attitude_filter) {
    const double dt = 1.0 / fs_;
    for (std::size_t i = ups_.end(); i < end; ++i) {
      const imu::Sample s = ring.sample(i);
      ups_.push(attitude_.update(s.gyro, s.accel, dt));
    }
  }

  const std::size_t stable = vert_.end();
  const std::size_t target = flush ? end : (end > margin_ ? end - margin_ : 0);
  if (target > stable) {
    // Re-project a trailing context region so the zero-phase filters see
    // settled left state and fresh right context; keep only [stable, target).
    std::size_t begin = stable > ctx_ ? stable - ctx_ : 0;
    begin = std::max(begin, ring.base());
    if (end - begin >= 16) {
      // Pin the projection axes to a longer trailing history than the
      // re-projected span whenever one is retained (incremental hops); in
      // a batch flush begin == ring.base() and the history degenerates to
      // the projected span itself, i.e. exactly the batch axis estimate.
      // Windowed anterior mode re-fits the direction per window by design,
      // so it keeps the span-local fit.
      std::size_t axis_begin = end > axis_window_ ? end - axis_window_ : 0;
      axis_begin = std::max(axis_begin, ring.base());
      const bool pin_axes =
          cfg_.anterior_window_s <= 0.0 && axis_begin < begin;
      if (precision_ == Precision::kFloat32) {
        // f32 fast path: project the ring's float mirrors, widen the
        // finalized tail back into the double rings. Downstream stages are
        // precision-blind.
        AxisHistoryF axes{};
        if (pin_axes) {
          axes = AxisHistoryF{ring.axf(axis_begin, end),
                              ring.ayf(axis_begin, end),
                              ring.azf(axis_begin, end)};
        }
        project_channels_f32_into(
            ring.axf(begin, end), ring.ayf(begin, end), ring.azf(begin, end),
            fs_, cfg_.lowpass_hz, cfg_.anterior_window_s, *ws_, &seam_, axes,
            projf_);
        for (std::size_t i = stable; i < target; ++i) {
          vert_.push(static_cast<double>(projf_.vertical[i - begin]));
          ant_.push(static_cast<double>(projf_.anterior[i - begin]));
        }
      } else {
        AxisHistory axes{};
        if (pin_axes) {
          axes = AxisHistory{ring.ax(axis_begin, end), ring.ay(axis_begin, end),
                             ring.az(axis_begin, end)};
        }
        project_channels_into(
            ring.ax(begin, end), ring.ay(begin, end), ring.az(begin, end), fs_,
            cfg_.lowpass_hz, cfg_.anterior_window_s,
            cfg_.use_attitude_filter ? ups_.span(begin, end)
                                     : std::span<const Vec3>{},
            ws_, &seam_, axes, proj_);
        for (std::size_t i = stable; i < target; ++i) {
          vert_.push(proj_.vertical[i - begin]);
          ant_.push(proj_.anterior[i - begin]);
        }
      }
    }
  }
  if (cfg_.use_attitude_filter) ups_.trim_to(min_required());
}

std::size_t ProjectionStage::min_required() const {
  // Keep both the re-projection context and the axis-estimation history
  // behind the finalized frontier (axis_window_ > ctx_, but spell out both
  // retention reasons).
  const std::size_t stable = vert_.end();
  const std::size_t ctx_floor = stable > ctx_ ? stable - ctx_ : 0;
  const std::size_t axis_floor = stable > axis_window_ ? stable - axis_window_ : 0;
  return std::min(ctx_floor, axis_floor);
}

void ProjectionStage::trim_projected(std::size_t new_base) {
  vert_.trim_to(new_base);
  ant_.trim_to(new_base);
}

// ---------------------------------------------------------------------------
// SegmentationStage

SegmentationStage::SegmentationStage(const StepCounterConfig& cfg, double fs)
    : cfg_(cfg),
      fs_(fs),
      lookback_(seconds_to_samples(kSegmentationLookbackS, fs)),
      margin_(seconds_to_samples(kSegmentationMarginS, fs)) {
  expects(fs > 0.0, "SegmentationStage: fs > 0");
  // The finalization margin must cover the min-distance suppression window:
  // once a peak is final, no later (taller) peak may appear within
  // min_distance of it, or the greedy suppression would have picked
  // differently than batch.
  PTRACK_CHECK_MSG(
      margin_ >= static_cast<std::size_t>(cfg.min_step_interval_s * fs),
      "SegmentationStage: margin covers the min-distance window");
  // The consumed-prefix erase below keeps the pending peak list at most
  // ~64 entries plus one hop's worth of fresh peaks; 256 clears that bound
  // with headroom so steady-state hops never reallocate (DESIGN.md §15) —
  // without it the list oscillates right at a power-of-two capacity edge.
  peaks_.reserve(256);
}

void SegmentationStage::advance(const Ring<double>& vertical, bool flush,
                                std::vector<CycleCandidate>& out) {
  PTRACK_OBS_SPAN("ptrack.core.segment");
  PTRACK_CHECK_MSG(scan_floor_ == 0 || vertical.base() <= scan_floor_,
                   "SegmentationStage: ring retains the unscanned region");
  const std::size_t end = vertical.end();
  const std::size_t accept_to =
      flush ? end : (end > margin_ ? end - margin_ : 0);

  std::size_t scan_begin = std::max(vertical.base(), scan_floor_);
  if (end > scan_begin && end - scan_begin >= 3) {
    dsp::PeakOptions opt;
    opt.min_distance = std::max<std::size_t>(
        1, static_cast<std::size_t>(cfg_.min_step_interval_s * fs_));
    opt.min_prominence = cfg_.min_cycle_prominence;
    dsp::find_peaks_into(vertical.span(scan_begin, end), opt, scan_scratch_);
    for (const std::size_t r : scan_scratch_) {
      const std::size_t p = scan_begin + r;
      // Peaks at or before the last finalized one were decided in an
      // earlier scan over identical data (projection output is final);
      // peaks inside the margin wait for more right context.
      if (have_last_final_ && p <= last_final_peak_) continue;
      if (p >= accept_to) break;
      // ptrack-lint: allow(alloc) bounded by the ctor's reserve(256)
      peaks_.push_back(p);
      last_final_peak_ = p;
      have_last_final_ = true;
    }
  }
  // Advance the retention floor: future peaks land at >= accept_to, and
  // their prominence walks and suppression interactions reach back at most
  // `lookback_` samples.
  scan_floor_ = std::max(
      scan_floor_, accept_to > lookback_ ? accept_to - lookback_ : 0);

  // The batch pairing loop (segment_cycles) with a persistent index: it
  // resumes exactly where it stopped when new peaks arrive, so the emitted
  // candidate sequence equals one batch run over the full peak list.
  const auto max_gap =
      static_cast<std::size_t>(cfg_.max_step_interval_s * fs_);
  while (pair_index_ + 2 < peaks_.size()) {
    const std::size_t p0 = peaks_[pair_index_];
    const std::size_t p1 = peaks_[pair_index_ + 1];
    const std::size_t p2 = peaks_[pair_index_ + 2];
    const bool gaps_ok = (p1 - p0) <= max_gap && (p2 - p1) <= max_gap;
    if (gaps_ok) {
      // ptrack-lint: allow(alloc) caller-owned hop buffer, steady capacity
      out.push_back({p0, p1, p2});
      pair_index_ += 2;  // non-overlapping cycles
    } else {
      ++pair_index_;  // skip the stale peak and retry
    }
  }
  // Drop the consumed peak prefix (indices only; amortized O(1)).
  if (pair_index_ > 64) {
    peaks_.erase(peaks_.begin(),
                 peaks_.begin() + static_cast<std::ptrdiff_t>(pair_index_));
    pair_index_ = 0;
  }
}

std::size_t SegmentationStage::min_required() const { return scan_floor_; }

// ---------------------------------------------------------------------------
// EventAssembler

EventAssembler::EventAssembler(const StepCounterConfig& counter_cfg,
                               const StrideConfig& stride_cfg, double fs)
    : ccfg_(counter_cfg),
      scfg_(stride_cfg),
      fs_(fs),
      identifier_(counter_cfg),
      estimator_(stride_cfg) {
  expects(fs > 0.0, "EventAssembler: fs > 0");
  // Mirror dsp::moving_median's window normalization (even -> next odd).
  eff_window_ = scfg_.smooth_window;
  if (eff_window_ > 1 && eff_window_ % 2 == 0) ++eff_window_;
  half_ = eff_window_ / 2;
  // Setup-time reservations: both buffers have config-bounded occupancy,
  // so sizing them here keeps the steady-state hop allocation-free.
  withheld_.reserve(static_cast<std::size_t>(ccfg_.streak));
  median_scratch_.reserve(eff_window_);
}

void EventAssembler::set_profile(const StrideProfile& profile) {
  scfg_.profile = profile;
  estimator_.set_profile(profile);
}

void EventAssembler::advance(std::span<const CycleCandidate> fresh,
                             const Ring<double>& vertical,
                             const Ring<double>& anterior,
                             const imu::SampleRing& raw, bool flush,
                             StageStats* stats) {
  PTRACK_OBS_SPAN("ptrack.core.count");
  for (const CycleCandidate& c : fresh) {
    obs::StageTimer timer;
    // A gap between candidates breaks any stepping streak; cycles withheld
    // in the open streak stay Interference (batch: identifier.reset()).
    if (have_prev_ && c.begin != prev_end_) {
      resolve_withheld_interference();
      identifier_.reset();
    }
    prev_end_ = c.end;
    have_prev_ = true;

    const std::size_t n = c.end - c.begin;
    if (n < 8) continue;

    const CycleAnalysis analysis = analyze_cycle(
        vertical.span(c.begin, c.end), anterior.span(c.begin, c.end), ccfg_);
    const GaitIdentifier::Decision decision = identifier_.classify(analysis);

    CycleRecord record;
    record.begin = c.begin;
    record.mid = c.mid;
    record.end = c.end;
    record.type = decision.type;
    record.offset = analysis.offset;
    record.half_cycle_corr = analysis.half_cycle_corr;
    record.phase_ok = analysis.phase_ok;
    record.quality = 1.0 - raw.fraction_flagged(c.begin, c.end, 0xFF);
    if (stats) stats->count_us += timer.lap_us();

    if (decision.type == GaitType::Interference) {
      if (decision.withheld) {
        // Provisional: a later streak completion may retro-confirm it.
        // ptrack-lint: allow(alloc) bounded by the ctor's reserve(streak)
        withheld_.push_back(record);
      } else {
        // Streak broken: earlier withheld cycles are Interference for good.
        resolve_withheld_interference();
        // ptrack-lint: allow(alloc) steady capacity via per-hop drain
        cycles_out_.push_back(record);
      }
      continue;
    }

    if (decision.type == GaitType::Walking) {
      resolve_withheld_interference();
    } else if (decision.confirmed_backlog > 0) {
      // Streak completed: the withheld cycles are confirmed as Stepping, in
      // order, before the completing cycle (batch retro-confirmation).
      PTRACK_CHECK_MSG(decision.confirmed_backlog == withheld_.size(),
                       "EventAssembler: backlog matches withheld cycles");
      for (CycleRecord& w : withheld_) {
        w.type = GaitType::Stepping;
        confirm(w, vertical, anterior, raw);
      }
      withheld_.clear();
    } else {
      PTRACK_CHECK_MSG(withheld_.empty(),
                       "EventAssembler: active streak holds no withheld cycles");
    }
    confirm(record, vertical, anterior, raw);
    if (stats) stats->stride_us += timer.lap_us();
  }

  if (flush) {
    // Stream end: an open streak can no longer complete. Reset the
    // identifier so a continued stream starts a fresh streak (matching the
    // cleared withheld list).
    resolve_withheld_interference();
    identifier_.reset();
  }
  obs::StageTimer timer;
  finalize_events(flush);
  if (stats) stats->stride_us += timer.lap_us();
}

void EventAssembler::resolve_withheld_interference() {
  // ptrack-lint: allow(alloc) steady capacity via per-hop drain
  for (const CycleRecord& w : withheld_) cycles_out_.push_back(w);
  withheld_.clear();
}

void EventAssembler::confirm(CycleRecord record, const Ring<double>& vertical,
                             const Ring<double>& anterior,
                             const imu::SampleRing& raw) {
  PTRACK_CHECK_MSG(record.begin < record.mid && record.mid < record.end &&
                       record.end <= vertical.end(),
                   "EventAssembler::confirm: ordered cycle bounds");
  // Confirmed-cycle log: steady capacity after the per-hop drain.
  // ptrack-lint: allow(alloc) steady capacity via per-hop discard_cycles
  cycles_out_.push_back(record);

  // Stride estimation reads only the cycle's own span, so estimating at
  // confirmation time (batch: a later lockstep pass) yields identical
  // values.
  CycleRecord local = record;
  local.begin = 0;
  local.mid = record.mid - record.begin;
  local.end = record.end - record.begin;
  const ChannelSpans spans{vertical.span(record.begin, record.end),
                           anterior.span(record.begin, record.end), fs_};
  const SweepEstimateSet estimate_set =
      estimator_.estimate_cycle_set(spans, local);
  const std::span<const SweepEstimate> estimates = estimate_set.span();
  PTRACK_COUNT_N("ptrack.core.stride.estimates", estimates.size());

  const std::size_t bounds[3] = {record.begin, record.mid, record.end};
  for (std::size_t j = 0; j < 2; ++j) {
    StepEvent ev;
    ev.t = static_cast<double>(bounds[j + 1]) / fs_;
    ev.type = record.type;
    ev.quality = 1.0 - raw.fraction_flagged(bounds[j], bounds[j + 1], 0xFF);
    ev.degraded =
        raw.fraction_flagged(bounds[j], bounds[j + 1], imu::kFlagMasked) > 0.5;

    double stride = 0.0;
    if (j < estimates.size() && estimates[j].valid) {
      stride = estimates[j].stride;
    } else if (j < estimates.size()) {
      PTRACK_COUNT("ptrack.core.stride.invalid");
    }

    // The batch fill pass, applied causally in event order: carry the most
    // recent positive stride forward; backfill the leading zeros once the
    // first positive stride appears.
    double fill = 0.0;
    if (stride > 0.0) {
      fill = stride;
      last_positive_ = stride;
      if (!seen_positive_) {
        seen_positive_ = true;
        for (std::size_t k = fills_.base(); k < fills_.end(); ++k) {
          fills_.at(k) = stride;
        }
      }
    } else if (seen_positive_) {
      fill = last_positive_;
    }
    ev.stride = fill;
    pending_events_.push(ev);
    fills_.push(fill);
    ++events_created_;
  }
}

double EventAssembler::smoothed_stride(std::size_t i,
                                       std::size_t n_total) const {
  // Exactly dsp::moving_median's per-index computation over the filled
  // stride sequence (window clipped to [0, n_total - 1]; even-sized edge
  // windows average the two middle order statistics).
  const std::size_t lo = i >= half_ ? i - half_ : 0;
  const std::size_t hi = std::min(i + half_, n_total - 1);
  median_scratch_.clear();
  // ptrack-lint: allow(alloc) bounded by the ctor's reserve(eff_window_)
  for (std::size_t k = lo; k <= hi; ++k) median_scratch_.push_back(fills_[k]);
  const auto mid = median_scratch_.begin() +
                   static_cast<std::ptrdiff_t>(median_scratch_.size() / 2);
  std::nth_element(median_scratch_.begin(), mid, median_scratch_.end());
  if (median_scratch_.size() % 2 == 1) return *mid;
  const double hi_mid = *mid;
  const double lo_mid = *std::max_element(median_scratch_.begin(), mid);
  return 0.5 * (lo_mid + hi_mid);
}

void EventAssembler::finalize_events(bool flush) {
  PTRACK_OBS_SPAN("ptrack.core.stride");
  PTRACK_CHECK_MSG(events_final_ <= events_created_,
                   "EventAssembler: finalized frontier within created events");
  const std::size_t n = events_created_;
  while (events_final_ < n) {
    const std::size_t i = events_final_;
    double value = 0.0;
    if (eff_window_ <= 1) {
      // No smoothing: final once the fill can no longer change (any filled
      // value is positive after the first positive stride; before that, a
      // future backfill could still rewrite it).
      if (!flush && !seen_positive_) break;
      value = fills_[i];
    } else if (!flush) {
      if (!seen_positive_) break;
      // Event i's median window is [i - half, i + half]; once those fills
      // exist (and the batch n >= 3 smoothing gate is already met), the
      // value equals the batch median for any longer stream.
      if (n < std::max<std::size_t>(3, i + half_ + 1)) break;
      value = smoothed_stride(i, n);
    } else {
      // Flush: right-clipped windows, exactly like the batch tail. Batch
      // skips smoothing entirely below 3 events.
      value = n >= 3 ? smoothed_stride(i, n) : fills_[i];
    }
    StepEvent ev = pending_events_[i];
    ev.stride = value;
    // ptrack-lint: allow(alloc) steady capacity via per-hop drain_events
    events_out_.push_back(ev);
    ++events_final_;
    pending_events_.trim_to(events_final_);
    fills_.trim_to(events_final_ > half_ ? events_final_ - half_ : 0);
  }
}

std::vector<StepEvent> EventAssembler::take_events() {
  return std::exchange(events_out_, {});
}

std::vector<CycleRecord> EventAssembler::take_cycles() {
  return std::exchange(cycles_out_, {});
}

void EventAssembler::drain_events(std::vector<StepEvent>& out) {
  // ptrack-lint: allow(alloc) append into the caller's reserved sink
  out.insert(out.end(), events_out_.begin(), events_out_.end());
  events_out_.clear();
}

std::size_t EventAssembler::min_required() const {
  return withheld_.empty() ? std::numeric_limits<std::size_t>::max()
                           : withheld_.front().begin;
}

// ---------------------------------------------------------------------------
// StagePipeline

StagePipeline::StagePipeline(const StepCounterConfig& counter_cfg,
                             const StrideConfig& stride_cfg, double fs,
                             dsp::Workspace* ws, Precision precision)
    : projection_(counter_cfg, fs, ws, precision),
      segmentation_(counter_cfg, fs),
      assembler_(counter_cfg, stride_cfg, fs) {}

void StagePipeline::set_profile(const StrideProfile& profile) {
  assembler_.set_profile(profile);
}

void StagePipeline::advance(const imu::SampleRing& ring, bool flush) {
  PTRACK_CHECK_MSG(ring.base() <= min_required_index(),
                   "StagePipeline: ring retains every stage's context");
  ++stats_.advances;
  obs::StageTimer timer;
  projection_.advance(ring, flush);
  stats_.project_us += timer.lap_us();

  fresh_.clear();
  segmentation_.advance(projection_.vertical(), flush, fresh_);
  PTRACK_COUNT_N("ptrack.core.cycles", fresh_.size());
  stats_.count_us += timer.lap_us();

  assembler_.advance(fresh_, projection_.vertical(), projection_.anterior(),
                     ring, flush, &stats_);

  // Trim the projected rings to what downstream stages still need.
  const std::size_t needed = std::min(
      {segmentation_.min_required(), assembler_.min_required(),
       projection_.frontier()});
  projection_.trim_projected(needed);
}

std::size_t StagePipeline::min_required_index() const {
  return std::min({projection_.min_required(), segmentation_.min_required(),
                   assembler_.min_required()});
}

}  // namespace ptrack::core
