#include "core/self_training.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/step_counter.hpp"
#include "core/ptrack.hpp"
#include "core/stride_estimator.hpp"

namespace ptrack::core {

namespace {

struct CycleBank {
  ProjectedTrace projected;
  std::vector<CycleRecord> walking;
  std::vector<CycleRecord> stepping;
};

CycleBank classify_cycles(const imu::Trace& trace,
                          const SelfTrainingConfig& cfg) {
  CycleBank bank;
  bank.projected = project_trace(trace, cfg.counter.lowpass_hz);
  const StepCounter counter(cfg.counter);
  const TrackResult result = counter.process_projected(bank.projected);
  for (const CycleRecord& c : result.cycles) {
    if (c.type == GaitType::Walking) bank.walking.push_back(c);
    if (c.type == GaitType::Stepping) bank.stepping.push_back(c);
  }
  return bank;
}

/// Objective for one candidate arm length: bounce dispersion + invalid
/// fraction (+ optional stepping anchor).
double arm_objective(const CycleBank& bank, double arm, double k,
                     const SelfTrainingConfig& cfg) {
  StrideConfig scfg;
  scfg.profile.arm_length = arm;
  scfg.profile.leg_length = 0.9;  // irrelevant for bounce
  scfg.profile.k = k;
  const StrideEstimator estimator(scfg);

  std::vector<double> bounces;
  std::size_t invalid = 0;
  std::size_t total = 0;
  for (const CycleRecord& c : bank.walking) {
    for (const SweepEstimate& e : estimator.estimate_cycle(bank.projected, c)) {
      ++total;
      if (!e.valid) {
        ++invalid;
        continue;
      }
      bounces.push_back(e.bounce);
    }
  }
  if (bounces.size() < 4) return 1e9;

  const double mean = stats::mean(bounces);
  if (mean <= 1e-4) return 1e9;
  const double cv = stats::stddev(bounces) / mean;
  double objective = cv * cv;
  objective += cfg.invalid_penalty * static_cast<double>(invalid) /
               static_cast<double>(std::max<std::size_t>(total, 1));

  // Stepping cycles observe the bounce *directly* (the device rides the
  // body), which identifies the arm length: the walking-derived bounce
  // must agree with it. This anchor is the primary signal — the bounce
  // dispersion alone cannot identify m when the geometry is separable.
  if (!bank.stepping.empty()) {
    std::vector<double> direct;
    for (const CycleRecord& c : bank.stepping) {
      for (const SweepEstimate& e :
           estimator.estimate_cycle(bank.projected, c)) {
        if (e.valid) direct.push_back(e.bounce);
      }
    }
    if (direct.size() >= 2) {
      const double anchor = stats::median(direct);
      const double rel = (mean - anchor) / anchor;
      objective += cfg.stepping_anchor_weight * rel * rel;
    }
  }
  return objective;
}

}  // namespace

double train_arm_length(const imu::Trace& trace,
                        const SelfTrainingConfig& cfg) {
  expects(cfg.arm_min > 0.0 && cfg.arm_max > cfg.arm_min && cfg.arm_step > 0.0,
          "train_arm_length: valid search range");
  const CycleBank bank = classify_cycles(trace, cfg);
  if (bank.walking.size() < 8) {
    throw Error("train_arm_length: not enough walking cycles (" +
                std::to_string(bank.walking.size()) + " < 8)");
  }

  double best_arm = cfg.arm_min;
  double best_obj = 1e300;
  for (double arm = cfg.arm_min; arm <= cfg.arm_max + 1e-9;
       arm += cfg.arm_step) {
    const double obj = arm_objective(bank, arm, cfg.k, cfg);
    if (obj < best_obj) {
      best_obj = obj;
      best_arm = arm;
    }
  }
  return best_arm;
}

namespace {

/// Distance the *full* pipeline (with gap filling and smoothing) reports
/// for a candidate profile — the quantity the distance anchor constrains.
double pipeline_distance(const imu::Trace& trace, double arm, double leg,
                         const SelfTrainingConfig& cfg) {
  PTrackConfig pcfg;
  pcfg.counter = cfg.counter;
  pcfg.stride.profile = {arm, leg, cfg.k};
  const PTrack tracker(pcfg);
  return tracker.process(trace).distance();
}

}  // namespace

double train_leg_length(const imu::Trace& trace, double arm_length,
                        double known_distance,
                        const SelfTrainingConfig& cfg) {
  expects(arm_length > 0.0, "train_leg_length: arm_length > 0");
  expects(known_distance > 0.0, "train_leg_length: known_distance > 0");

  // The modeled distance is monotone in l (Eq. (2) is increasing in l for
  // fixed b), so a coarse-to-fine scan suffices.
  double best_leg = cfg.leg_min;
  double best_obj = 1e300;
  const double coarse = 8.0 * cfg.leg_step;
  for (double leg = cfg.leg_min; leg <= cfg.leg_max + 1e-9; leg += coarse) {
    const double d = pipeline_distance(trace, arm_length, leg, cfg);
    const double rel = (d - known_distance) / known_distance;
    if (rel * rel < best_obj) {
      best_obj = rel * rel;
      best_leg = leg;
    }
  }
  const double lo = std::max(cfg.leg_min, best_leg - coarse);
  const double hi = std::min(cfg.leg_max, best_leg + coarse);
  for (double leg = lo; leg <= hi + 1e-9; leg += cfg.leg_step) {
    const double d = pipeline_distance(trace, arm_length, leg, cfg);
    const double rel = (d - known_distance) / known_distance;
    if (rel * rel < best_obj) {
      best_obj = rel * rel;
      best_leg = leg;
    }
  }
  return best_leg;
}

SelfTrainingResult self_train(const imu::Trace& trace, double known_distance,
                              const SelfTrainingConfig& cfg) {
  expects(known_distance > 0.0, "self_train: known_distance > 0");
  SelfTrainingResult out;
  out.arm_length = train_arm_length(trace, cfg);
  const CycleBank bank = classify_cycles(trace, cfg);
  out.walking_cycles = bank.walking.size();
  out.arm_objective = arm_objective(bank, out.arm_length, cfg.k, cfg);
  out.leg_length = train_leg_length(trace, out.arm_length, known_distance, cfg);
  {
    // Record the achieved distance error at l̂.
    const double d =
        pipeline_distance(trace, out.arm_length, out.leg_length, cfg);
    out.leg_objective = std::abs(d - known_distance) / known_distance;
  }
  return out;
}

}  // namespace ptrack::core
