#include "core/adaptive_delta.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/frontend.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"

namespace ptrack::core {

AdaptiveDelta otsu_threshold(std::span<const double> offsets,
                             std::size_t bins) {
  expects(offsets.size() >= 8, "otsu_threshold: >= 8 offsets");
  expects(bins >= 8, "otsu_threshold: >= 8 bins");

  const double lo = stats::min(offsets);
  const double hi = stats::max(offsets);
  AdaptiveDelta out;
  out.cycles = offsets.size();
  if (hi - lo < 1e-9) {
    out.delta = lo;
    return out;
  }

  // Histogram.
  std::vector<double> hist(bins, 0.0);
  const double scale = static_cast<double>(bins) / (hi - lo);
  for (double v : offsets) {
    auto b = static_cast<std::size_t>((v - lo) * scale);
    hist[std::min(b, bins - 1)] += 1.0;
  }
  const double total = static_cast<double>(offsets.size());

  // Otsu: maximize the between-class variance over split points.
  double sum_all = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    sum_all += (static_cast<double>(b) + 0.5) * hist[b];
  }
  double w0 = 0.0;
  double sum0 = 0.0;
  double best_var = -1.0;
  std::size_t best_bin = 0;
  for (std::size_t b = 0; b + 1 < bins; ++b) {
    w0 += hist[b];
    if (w0 == 0.0) continue;
    const double w1 = total - w0;
    if (w1 == 0.0) break;
    sum0 += (static_cast<double>(b) + 0.5) * hist[b];
    const double mu0 = sum0 / w0;
    const double mu1 = (sum_all - sum0) / w1;
    // Between-class variance (bin units): (w0/N)(w1/N)(mu0-mu1)^2.
    const double var = (w0 / total) * (w1 / total) * (mu0 - mu1) * (mu0 - mu1);
    if (var > best_var) {
      best_var = var;
      best_bin = b;
    }
  }

  out.delta = lo + (static_cast<double>(best_bin) + 1.0) / scale;

  // Normalized separation: between-class variance over total variance
  // (both in offset units; convert best_var from bin^2).
  const double total_var = stats::variance(offsets);
  const double between_var = best_var / (scale * scale);
  out.separation =
      total_var > 0.0 ? std::min(1.0, between_var / total_var) : 0.0;
  return out;
}

AdaptiveDelta tune_delta(const imu::Trace& trace,
                         const StepCounterConfig& cfg,
                         double min_separation) {
  expects(min_separation >= 0.0, "tune_delta: min_separation >= 0");
  AdaptiveDelta fallback;
  fallback.delta = cfg.delta;
  if (trace.size() < 16) return fallback;

  const ProjectedTrace proj = project_trace(trace, cfg.lowpass_hz,
                                            cfg.anterior_window_s);
  std::vector<double> offsets;
  for (const CycleCandidate& c : segment_cycles(proj.vertical, proj.fs, cfg)) {
    const std::size_t n = c.end - c.begin;
    if (n < 8) continue;
    const std::span<const double> vert(proj.vertical.data() + c.begin, n);
    const std::span<const double> ant(proj.anterior.data() + c.begin, n);
    offsets.push_back(analyze_cycle(vert, ant, cfg).offset);
  }
  if (offsets.size() < 8) {
    fallback.cycles = offsets.size();
    return fallback;
  }

  AdaptiveDelta tuned = otsu_threshold(offsets);
  if (tuned.separation < min_separation) {
    // Not bimodal (e.g. a walking-only or interference-only session):
    // keep the configured threshold.
    tuned.delta = cfg.delta;
  }
  return tuned;
}

}  // namespace ptrack::core
