#include "core/critical_points.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "dsp/peaks.hpp"
#include "obs/metrics.hpp"

namespace ptrack::core {

void critical_points_into(std::span<const double> cycle,
                          const CriticalPointOptions& opt, bool include_zeros,
                          std::vector<CriticalPoint>& out) {
  out.clear();
  if (cycle.size() < 5) return;

  // Per-thread scratch: the demeaned copy and the extrema/crossing index
  // buffers stop allocating once their high-water capacity is reached (this
  // runs 2-4 times per candidate cycle on the streaming hot path).
  thread_local std::vector<double> centered;
  thread_local std::vector<dsp::Extremum> extrema;
  thread_local std::vector<std::size_t> zeros;
  centered.assign(cycle.begin(), cycle.end());
  stats::demean(centered);
  const double span = stats::max(centered) - stats::min(centered);
  const double rms = stats::rms(centered);

  dsp::PeakOptions popt;
  popt.min_prominence =
      std::max(opt.prominence_fraction * span, opt.min_abs_prominence);
  dsp::find_extrema_into(centered, popt, extrema);
  for (const dsp::Extremum& e : extrema) {
    out.push_back({e.index,
                   e.is_max ? CriticalKind::Maximum : CriticalKind::Minimum});
  }
  if (include_zeros) {
    dsp::zero_crossings_into(centered, opt.hysteresis_fraction * rms, zeros);
    for (std::size_t z : zeros) {
      out.push_back({z, CriticalKind::Zero});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CriticalPoint& a, const CriticalPoint& b) {
              return a.index < b.index;
            });
  // Downstream matching (offset metric, cycle pairing) relies on the points
  // being time-ordered extrema/crossings inside the cycle.
  PTRACK_CHECK_MSG(
      std::is_sorted(out.begin(), out.end(),
                     [](const CriticalPoint& a, const CriticalPoint& b) {
                       return a.index < b.index;
                     }),
      "critical_points: output is time-ordered");
  PTRACK_CHECK_MSG(out.empty() || out.back().index < cycle.size(),
                   "critical_points: indices lie inside the cycle");
  PTRACK_COUNT("ptrack.core.critical_points.calls");
  PTRACK_COUNT_N("ptrack.core.critical_points.points", out.size());
}

std::vector<CriticalPoint> critical_points(std::span<const double> cycle,
                                           const CriticalPointOptions& opt,
                                           bool include_zeros) {
  std::vector<CriticalPoint> out;
  critical_points_into(cycle, opt, include_zeros, out);
  return out;
}

}  // namespace ptrack::core
