#include "core/critical_points.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/stats.hpp"
#include "dsp/peaks.hpp"
#include "obs/metrics.hpp"

namespace ptrack::core {

std::vector<CriticalPoint> critical_points(std::span<const double> cycle,
                                           const CriticalPointOptions& opt,
                                           bool include_zeros) {
  std::vector<CriticalPoint> out;
  if (cycle.size() < 5) return out;

  const std::vector<double> centered = stats::demeaned(cycle);
  const double span = stats::max(centered) - stats::min(centered);
  const double rms = stats::rms(centered);

  dsp::PeakOptions popt;
  popt.min_prominence =
      std::max(opt.prominence_fraction * span, opt.min_abs_prominence);
  for (const dsp::Extremum& e : dsp::find_extrema(centered, popt)) {
    out.push_back({e.index,
                   e.is_max ? CriticalKind::Maximum : CriticalKind::Minimum});
  }
  if (include_zeros) {
    for (std::size_t z :
         dsp::zero_crossings(centered, opt.hysteresis_fraction * rms)) {
      out.push_back({z, CriticalKind::Zero});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CriticalPoint& a, const CriticalPoint& b) {
              return a.index < b.index;
            });
  // Downstream matching (offset metric, cycle pairing) relies on the points
  // being time-ordered extrema/crossings inside the cycle.
  PTRACK_CHECK_MSG(
      std::is_sorted(out.begin(), out.end(),
                     [](const CriticalPoint& a, const CriticalPoint& b) {
                       return a.index < b.index;
                     }),
      "critical_points: output is time-ordered");
  PTRACK_CHECK_MSG(out.empty() || out.back().index < cycle.size(),
                   "critical_points: indices lie inside the cycle");
  PTRACK_COUNT("ptrack.core.critical_points.calls");
  PTRACK_COUNT_N("ptrack.core.critical_points.points", out.size());
  return out;
}

}  // namespace ptrack::core
