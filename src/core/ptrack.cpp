#include "core/ptrack.hpp"

#include "common/error.hpp"
#include "dsp/moving.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

PTrack::PTrack(PTrackConfig cfg)
    : cfg_(cfg), counter_(cfg.counter), estimator_(cfg.stride) {}

void PTrack::set_profile(const StrideProfile& profile) {
  cfg_.stride.profile = profile;
  estimator_.set_profile(profile);
}

TrackResult PTrack::process(const imu::Trace& trace) const {
  if (trace.size() < 16) return {};
  PTRACK_OBS_SPAN("core.process");
  PTRACK_COUNT("ptrack.core.traces");
  obs::StageTimer timer;
  if (!cfg_.quality.enabled) return process_repaired(trace);

  const imu::QualityResult repaired =
      imu::assess_and_repair(trace, cfg_.quality);
  const double quality_us = timer.lap_us();
  if (!repaired.report.usable) {
    PTRACK_COUNT("ptrack.core.unusable_traces");
    throw Error("PTrack::process: trace unusable (" +
                std::to_string(repaired.report.nonfinite_samples) + " of " +
                std::to_string(trace.size()) +
                " samples non-finite or nonphysical)");
  }
  TrackResult result = process_repaired(repaired.trace);

  const imu::QualityReport& report = repaired.report;
  result.quality.clean_fraction = report.clean_fraction;
  result.quality.repaired_fraction = report.repaired_fraction;
  result.quality.masked_fraction = report.masked_fraction;
  result.quality.dropout_samples = report.dropout_samples;
  result.quality.saturated_samples = report.saturated_samples;
  result.quality.spike_samples = report.spike_samples;
  result.quality.nonfinite_samples = report.nonfinite_samples;

  // Per-cycle confidence, and per-step confidence over each step's
  // half-cycle — events were emitted two per counted cycle ([begin, mid)
  // then [mid, end)), in cycle order, the same lockstep the stride fill
  // below relies on.
  std::size_t event_idx = 0;
  for (CycleRecord& cycle : result.cycles) {
    cycle.quality = 1.0 - report.fraction_flagged(cycle.begin, cycle.end);
    if (cycle.type == GaitType::Interference) continue;
    check(event_idx + 2 <= result.events.size(),
          "PTrack::process: events align with counted cycles");
    const std::size_t bounds[3] = {cycle.begin, cycle.mid, cycle.end};
    for (std::size_t j = 0; j < 2; ++j) {
      StepEvent& e = result.events[event_idx + j];
      e.quality = 1.0 - report.fraction_flagged(bounds[j], bounds[j + 1]);
      e.degraded = report.fraction_masked(bounds[j], bounds[j + 1]) > 0.5;
    }
    event_idx += 2;
  }
  result.timing.quality_us = quality_us;
  result.timing.total_us = quality_us + timer.lap_us();
  return result;
}

TrackResult PTrack::process_repaired(const imu::Trace& trace) const {
  if (trace.size() < 16) return {};
  obs::StageTimer timer;
  const ProjectedTrace projected =
      cfg_.counter.use_attitude_filter
          ? project_trace_with_attitude(trace, cfg_.counter.lowpass_hz,
                                        cfg_.counter.anterior_window_s,
                                        &workspace_)
          : project_trace(trace, cfg_.counter.lowpass_hz,
                          cfg_.counter.anterior_window_s, &workspace_);
  const double project_us = timer.lap_us();
  TrackResult result = counter_.process_projected(projected);
  result.timing.project_us = project_us;
  result.timing.count_us = timer.lap_us();

  PTRACK_OBS_SPAN("core.stride");
  // Events were emitted two per counted cycle, chronologically, and
  // result.cycles is ordered by cycle start — walk both in lockstep and
  // fill the stride fields.
  std::size_t event_idx = 0;
  for (const CycleRecord& cycle : result.cycles) {
    if (cycle.type == GaitType::Interference) continue;
    check(event_idx + 2 <= result.events.size(),
          "PTrack::process: events align with counted cycles");
    const auto estimates = estimator_.estimate_cycle(projected, cycle);
    PTRACK_COUNT_N("ptrack.core.stride.estimates", estimates.size());
    for (std::size_t j = 0; j < 2; ++j) {
      if (j < estimates.size() && estimates[j].valid) {
        result.events[event_idx + j].stride = estimates[j].stride;
      } else if (j < estimates.size()) {
        PTRACK_COUNT("ptrack.core.stride.invalid");
      }
    }
    event_idx += 2;
  }

  // Failed or invalid geometry solves leave stride 0; carry the most recent
  // estimate across them — a walker's stride is strongly autocorrelated
  // step to step — then backfill leading zeros from the first good one.
  double last_stride = 0.0;
  for (StepEvent& e : result.events) {
    if (e.stride > 0.0) {
      last_stride = e.stride;
    } else if (last_stride > 0.0) {
      e.stride = last_stride;
    }
  }
  double first_stride = 0.0;
  for (const StepEvent& e : result.events) {
    if (e.stride > 0.0) {
      first_stride = e.stride;
      break;
    }
  }
  for (StepEvent& e : result.events) {
    if (e.stride > 0.0) break;
    e.stride = first_stride;
  }

  // Median-smooth the filled stride sequence: strides evolve slowly step to
  // step, so a short median removes per-cycle geometry outliers.
  if (cfg_.stride.smooth_window > 1 && result.events.size() >= 3) {
    std::vector<double> strides;
    strides.reserve(result.events.size());
    for (const StepEvent& e : result.events) strides.push_back(e.stride);
    const std::vector<double> smoothed =
        dsp::moving_median(strides, cfg_.stride.smooth_window);
    for (std::size_t i = 0; i < result.events.size(); ++i) {
      result.events[i].stride = smoothed[i];
    }
  }
  result.timing.stride_us = timer.lap_us();
  result.timing.total_us = result.timing.project_us +
                           result.timing.count_us + result.timing.stride_us;
  return result;
}

PTrackCounterAdapter::PTrackCounterAdapter(PTrackConfig cfg)
    : tracker_(cfg) {}

models::StepDetection PTrackCounterAdapter::count_steps(
    const imu::Trace& trace) {
  const TrackResult result = tracker_.process(trace);
  models::StepDetection out;
  out.count = result.steps;
  out.step_times.reserve(result.events.size());
  for (const StepEvent& e : result.events) out.step_times.push_back(e.t);
  return out;
}

}  // namespace ptrack::core
