#include "core/ptrack.hpp"

#include "common/error.hpp"
#include "core/stages.hpp"
#include "imu/sample_ring.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

PTrack::PTrack(PTrackConfig cfg) : cfg_(cfg) {
  // Construct-and-discard to validate the configuration eagerly (streak,
  // delta, profile bounds), matching the pre-stage-graph behaviour where
  // the counter and estimator members were built here.
  (void)GaitIdentifier(cfg_.counter);
  (void)StrideEstimator(cfg_.stride);
}

void PTrack::set_profile(const StrideProfile& profile) {
  cfg_.stride.profile = profile;
}

TrackResult PTrack::process(const imu::Trace& trace) const {
  if (trace.size() < 16) return {};
  PTRACK_OBS_SPAN("ptrack.core.process");
  PTRACK_COUNT("ptrack.core.traces");
  obs::StageTimer timer;
  if (!cfg_.quality.enabled) return run_pipeline(trace, nullptr);

  const imu::QualityResult repaired =
      imu::assess_and_repair(trace, cfg_.quality);
  const double quality_us = timer.lap_us();
  if (!repaired.report.usable) {
    PTRACK_COUNT("ptrack.core.unusable_traces");
    throw Error("PTrack::process: trace unusable (" +
                std::to_string(repaired.report.nonfinite_samples) + " of " +
                std::to_string(trace.size()) +
                " samples non-finite or nonphysical)");
  }
  // The pipeline's assembler reads per-sample flags off the ring, so cycle
  // and event confidences come out already annotated (identical arithmetic
  // to QualityReport::fraction_flagged / fraction_masked).
  TrackResult result = run_pipeline(repaired.trace, &repaired.report.flags);

  const imu::QualityReport& report = repaired.report;
  result.quality.clean_fraction = report.clean_fraction;
  result.quality.repaired_fraction = report.repaired_fraction;
  result.quality.masked_fraction = report.masked_fraction;
  result.quality.dropout_samples = report.dropout_samples;
  result.quality.saturated_samples = report.saturated_samples;
  result.quality.spike_samples = report.spike_samples;
  result.quality.nonfinite_samples = report.nonfinite_samples;
  result.timing.quality_us = quality_us;
  result.timing.total_us = quality_us + timer.lap_us();
  return result;
}

TrackResult PTrack::process_repaired(const imu::Trace& trace) const {
  return run_pipeline(trace, nullptr);
}

TrackResult PTrack::run_pipeline(
    const imu::Trace& trace, const std::vector<std::uint8_t>* flags) const {
  if (trace.size() < 16) return {};
  check(flags == nullptr || flags->size() == trace.size(),
        "PTrack: one quality flag per sample");
  imu::SampleRing ring;
  const std::vector<imu::Sample>& samples = trace.samples();
  for (std::size_t i = 0; i < samples.size(); ++i) {
    ring.push(samples[i], flags ? (*flags)[i] : 0);
  }
  // One push + one flush over a fresh pipeline = the batch computation
  // (see core/stages.hpp for the equivalence contract).
  StagePipeline pipeline(cfg_.counter, cfg_.stride, trace.fs(), &workspace_);
  pipeline.advance(ring, /*flush=*/true);

  TrackResult result;
  result.events = pipeline.take_events();
  result.cycles = pipeline.take_cycles();
  result.steps = result.events.size();
  const StageStats& stats = pipeline.stats();
  result.timing.project_us = stats.project_us;
  result.timing.count_us = stats.count_us;
  result.timing.stride_us = stats.stride_us;
  result.timing.total_us =
      stats.project_us + stats.count_us + stats.stride_us;
  return result;
}

PTrackCounterAdapter::PTrackCounterAdapter(PTrackConfig cfg)
    : tracker_(cfg) {}

models::StepDetection PTrackCounterAdapter::count_steps(
    const imu::Trace& trace) {
  expects(trace.fs() > 0.0, "count_steps: trace has a sample rate");
  const TrackResult result = tracker_.process(trace);
  models::StepDetection out;
  out.count = result.steps;
  out.step_times.reserve(result.events.size());
  for (const StepEvent& e : result.events) out.step_times.push_back(e.t);
  return out;
}

}  // namespace ptrack::core
