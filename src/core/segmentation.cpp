#include "core/segmentation.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/stats.hpp"

#include "dsp/peaks.hpp"

namespace ptrack::core {

std::vector<std::size_t> step_peaks(std::span<const double> vertical,
                                    double fs, const StepCounterConfig& cfg) {
  expects(fs > 0.0, "step_peaks: fs > 0");
  dsp::PeakOptions opt;
  opt.min_distance = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.min_step_interval_s * fs));
  opt.min_prominence = cfg.min_cycle_prominence;

  return dsp::find_peaks(vertical, opt);
}

std::vector<CycleCandidate> segment_cycles(std::span<const double> vertical,
                                           double fs,
                                           const StepCounterConfig& cfg) {
  expects(fs > 0.0, "segment_cycles: fs > 0");
  const auto peaks = step_peaks(vertical, fs, cfg);
  std::vector<CycleCandidate> out;
  if (peaks.size() < 3) return out;

  const auto max_gap =
      static_cast<std::size_t>(cfg.max_step_interval_s * fs);

  std::size_t i = 0;
  while (i + 2 < peaks.size()) {
    const std::size_t p0 = peaks[i];
    const std::size_t p1 = peaks[i + 1];
    const std::size_t p2 = peaks[i + 2];
    const bool gaps_ok = (p1 - p0) <= max_gap && (p2 - p1) <= max_gap;
    if (gaps_ok) {
      out.push_back({p0, p1, p2});
      i += 2;  // non-overlapping cycles
    } else {
      ++i;  // skip the stale peak and retry
    }
  }
  return out;
}

}  // namespace ptrack::core
