#include "core/stride_estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "common/check.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "core/bounce.hpp"
#include "dsp/integrate.hpp"
#include "dsp/peaks.hpp"

namespace ptrack::core {

StrideEstimator::StrideEstimator(StrideConfig cfg) : cfg_(cfg) {
  expects(cfg_.profile.arm_length > 0.0, "StrideEstimator: arm_length > 0");
  expects(cfg_.profile.leg_length > 0.0, "StrideEstimator: leg_length > 0");
  expects(cfg_.profile.k > 0.0, "StrideEstimator: k > 0");
}

namespace {

// Fused demean + cumtrapz into a reusable buffer: same mean, same
// deviation rounding and same summation order as
// cumtrapz(stats::demeaned(xs), dt), so the result is bit-identical without
// the intermediate demeaned copy.
void demeaned_cumtrapz(std::span<const double> xs, double dt,
                       std::vector<double>& out) {
  out.resize(xs.size());
  if (xs.empty()) return;
  const double m = stats::mean(xs);
  out[0] = 0.0;
  double c_prev = xs[0] - m;
  for (std::size_t i = 1; i < xs.size(); ++i) {
    const double c = xs[i] - m;
    out[i] = out[i - 1] + 0.5 * (c_prev + c) * dt;
    c_prev = c;
  }
}

std::vector<SweepEstimate> materialize(const SweepEstimateSet& set) {
  return {set.span().begin(), set.span().end()};
}

}  // namespace

std::vector<SweepEstimate> StrideEstimator::estimate_cycle(
    const ProjectedTrace& projected, const CycleRecord& cycle) const {
  return estimate_cycle(
      ChannelSpans{projected.vertical, projected.anterior, projected.fs},
      cycle);
}

std::vector<SweepEstimate> StrideEstimator::estimate_cycle(
    const ChannelSpans& channels, const CycleRecord& cycle) const {
  return materialize(estimate_cycle_set(channels, cycle));
}

SweepEstimateSet StrideEstimator::estimate_cycle_set(
    const ChannelSpans& channels, const CycleRecord& cycle) const {
  expects(channels.vertical.size() == channels.anterior.size(),
          "estimate_cycle: equal channel lengths");
  expects(cycle.end <= channels.vertical.size() && cycle.begin < cycle.end,
          "estimate_cycle: cycle within trace");
  if (cycle.type == GaitType::Interference) return {};
  const std::size_t n = cycle.end - cycle.begin;
  if (n < 16) return {};

  // Route by measured swing energy (threshold <= 0 disables the check and
  // trusts the counter's label): the stepping direct-bounce readout assumes
  // a rigid arm, and a rigid arm cannot swing the wrist at walking arm
  // speeds. This protects stride quality against occasional
  // walking<->stepping label confusion.
  if (cfg_.swing_velocity_threshold <= 0.0) {
    return cycle.type == GaitType::Walking ? walking_cycle(channels, cycle)
                                           : stepping_cycle(channels, cycle);
  }
  // Streaming-scalar |velocity| maximum: identical recurrence to the
  // materialized cumtrapz-of-demeaned chain, so the gate decides exactly as
  // before without building the velocity vector.
  const std::span<const double> ant = channels.anterior.subspan(cycle.begin, n);
  const double dt = 1.0 / channels.fs;
  const double m = stats::mean(ant);
  double vmax = 0.0;
  double c_prev = ant[0] - m;
  double v_prev = 0.0;
  for (std::size_t i = 1; i < n; ++i) {
    const double c = ant[i] - m;
    v_prev = v_prev + 0.5 * (c_prev + c) * dt;
    vmax = std::max(vmax, std::abs(v_prev));
    c_prev = c;
  }

  if (vmax > cfg_.swing_velocity_threshold) {
    return walking_cycle(channels, cycle);
  }
  if (cycle.type == GaitType::Stepping) {
    return stepping_cycle(channels, cycle);
  }
  // Labeled walking but no swing energy: the geometry solve would divide
  // by a near-zero arm travel; fall back to the direct bounce.
  return stepping_cycle(channels, cycle);
}

SweepEstimateSet StrideEstimator::walking_cycle(
    const ChannelSpans& channels, const CycleRecord& cycle) const {
  const double fs = channels.fs;
  const double dt = 1.0 / fs;
  const std::size_t n = cycle.end - cycle.begin;

  const std::size_t w0 = cycle.begin;
  const std::span<const double> vert = channels.vertical.subspan(w0, n);
  const std::span<const double> ant = channels.anterior.subspan(w0, n);

  // Arm anterior velocity (mean removal: the cycle bounds sit close to arm
  // reversals, so the reconstructed velocity is near zero at both ends).
  // Per-thread buffers: one velocity vector and one crossing list per cycle
  // would otherwise churn the heap on every hop.
  thread_local std::vector<double> vel;
  thread_local std::vector<std::size_t> crossings;
  demeaned_cumtrapz(ant, dt, vel);

  // Sweep boundaries are the arm reversals = zero crossings of the arm's
  // anterior velocity; anchor each boundary on a crossing when one exists
  // nearby, otherwise fall back to the cycle bound.
  double vmax = 0.0;
  for (double v : vel) vmax = std::max(vmax, std::abs(v));
  if (vmax <= 0.0) return {};
  dsp::zero_crossings_into(vel, 0.05 * vmax, crossings);

  std::size_t begin_b = 0;
  std::size_t split = 0;
  std::size_t end_b = n - 1;
  double best_dist = static_cast<double>(n);
  for (std::size_t c : crossings) {
    if (c <= n / 6) {
      begin_b = c;  // crossings are ordered; the last one in range wins
      continue;
    }
    if (c >= n - n / 6) {
      if (end_b == n - 1) end_b = c;  // first one in range wins
      continue;
    }
    const double dist = std::abs(static_cast<double>(c) -
                                 static_cast<double>(n) / 2.0);
    if (dist < best_dist) {
      best_dist = dist;
      split = c;
    }
  }
  // No clean interior reversal: fall back to the geometric midpoint (the
  // cycle's mid step peak is the best prior for the reversal).
  if (split == 0) split = n / 2;

  // First pass: per-sweep measurements. The anterior travel is averaged
  // across the cycle's two sweeps before solving: the body's within-step
  // speed oscillation adds +s*A to the forward sweep's measured travel and
  // -s*A to the backward sweep's (the arm's true travel is the same both
  // ways), so the cycle mean cancels the body term.
  struct SweepMeasure {
    std::size_t end_index = 0;
    double h1 = 0.0;
    double h2 = 0.0;
    double d = 0.0;
  };
  std::array<SweepMeasure, 2> measures{};
  std::size_t n_measures = 0;
  const std::array<std::pair<std::size_t, std::size_t>, 2> sweeps{
      {{begin_b, split}, {split, end_b + 1}}};
  for (const auto& [a, b] : sweeps) {
    if (b - a < 8) continue;

    // Moment (ii): peak arm speed within the sweep = arm vertical.
    std::size_t t2 = a;
    double peak_speed = -1.0;
    for (std::size_t i = a; i < b; ++i) {
      if (std::abs(vel[i]) > peak_speed) {
        peak_speed = std::abs(vel[i]);
        t2 = i;
      }
    }
    // A degenerate peak position means the velocity is monotone across the
    // sweep (split fell on a non-reversal); the sweep midpoint is the best
    // remaining prior for the arm-vertical moment.
    if (t2 <= a + 2 || t2 + 2 >= b) t2 = a + (b - a) / 2;

    // Vertical displacements over the two half-sweeps (downward positive
    // for h1, upward positive for h2 — the Eq. (3)/(4) conventions).
    const std::span<const double> piece1(vert.data() + a, t2 - a + 1);
    const std::span<const double> piece2(vert.data() + t2, b - t2);
    SweepMeasure m;
    m.end_index = b;
    m.h1 = -dsp::net_displacement(piece1, dt);
    m.h2 = dsp::net_displacement(piece2, dt);
    const std::span<const double> sweep_ant(ant.data() + a, b - a);
    m.d = std::abs(dsp::net_displacement(sweep_ant, dt));
    if (m.d <= 1e-4) continue;
    measures[n_measures++] = m;
  }

  if (n_measures == 0) return {};

  // Aggregate the cycle's sweeps into one geometry solve: the two sweeps
  // observe the same arm geometry and the same bounce, so averaging h1, h2
  // and d across them cancels the body's speed-oscillation contamination
  // of d exactly (+s*A forward, -s*A backward) and halves measurement
  // noise. Both steps of the cycle get the cycle bounce.
  double h1 = 0.0;
  double h2 = 0.0;
  double d_cycle = 0.0;
  for (std::size_t i = 0; i < n_measures; ++i) {
    h1 += measures[i].h1;
    h2 += measures[i].h2;
    d_cycle += measures[i].d;
  }
  const double count = static_cast<double>(n_measures);
  h1 /= count;
  h2 /= count;
  d_cycle /= count;

  BounceSolution sol = solve_bounce(h1, h2, d_cycle,
                                    cfg_.profile.arm_length);
  // Plausibility band: geometry solves that pass numerically but land on a
  // physically implausible human bounce are measurement failures (cycle
  // boundaries drifted off the arm reversals); reject so the facade falls
  // back to the carried stride.
  if (sol.bounce < 0.015 || sol.bounce > 0.18) sol.valid = false;
  const double stride = stride_from_bounce(
      sol.bounce, cfg_.profile.leg_length, cfg_.profile.k);

  // Eq. (3)-(5) outputs are lengths: the bounce and stride handed to the
  // facade must be non-negative even when the solve is flagged invalid.
  PTRACK_CHECK_MSG(sol.bounce >= 0.0 && stride >= 0.0,
                   "walking_cycle: bounce and stride are non-negative");
  SweepEstimateSet out;
  for (std::size_t i = 0; i < n_measures; ++i) {
    SweepEstimate est;
    est.t = static_cast<double>(w0 + measures[i].end_index) / fs;
    est.bounce = sol.bounce;
    est.valid = sol.valid;
    est.stride = stride;
    out.push(est);
  }
  return out;
}

SweepEstimateSet StrideEstimator::stepping_cycle(
    const ChannelSpans& channels, const CycleRecord& cycle) const {
  const double fs = channels.fs;
  const double dt = 1.0 / fs;
  SweepEstimateSet out;

  const std::array<std::pair<std::size_t, std::size_t>, 2> steps{
      {{cycle.begin, cycle.mid}, {cycle.mid, cycle.end}}};
  for (const auto& [a, b] : steps) {
    if (b - a < 8) continue;
    SweepEstimate est;
    est.t = static_cast<double>(b) / fs;
    const std::span<const double> seg = channels.vertical.subspan(a, b - a);
    // Device rides the body: the bounce is the vertical peak-to-peak
    // excursion within the step.
    est.bounce = dsp::peak_to_peak_displacement(seg, dt);
    est.valid = est.bounce > 0.0 && est.bounce < cfg_.profile.leg_length;
    est.stride = stride_from_bounce(est.bounce, cfg_.profile.leg_length,
                                    cfg_.profile.k);
    PTRACK_CHECK_MSG(!est.valid || (est.bounce > 0.0 && est.stride > 0.0),
                     "stepping_cycle: valid estimates carry positive lengths");
    out.push(est);
  }
  return out;
}

}  // namespace ptrack::core
