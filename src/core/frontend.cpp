#include "core/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/attitude.hpp"
#include "dsp/filtfilt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

namespace {

/// Per-sample up-direction field: either one constant direction (batch
/// gravity estimate) or a per-sample track (attitude filter). Avoids
/// materializing a vector of identical copies for the constant case.
class UpField {
 public:
  explicit UpField(const Vec3& constant) : constant_(constant) {}
  explicit UpField(const std::vector<Vec3>& per_sample)
      : per_sample_(&per_sample) {}

  const Vec3& operator[](std::size_t i) const {
    return per_sample_ ? (*per_sample_)[i] : constant_;
  }

  /// Normalized mean direction over [begin, end) — the representative up
  /// for a projection window (per-sample ups vary slowly).
  [[nodiscard]] Vec3 window_mean(std::size_t begin, std::size_t end) const {
    Vec3 up{};
    for (std::size_t i = begin; i < end; ++i) up += (*this)[i];
    return up.normalized();
  }

 private:
  Vec3 constant_{};
  const std::vector<Vec3>* per_sample_ = nullptr;
};

/// Decomposes pre-computed vertical/anterior raw channels into the final
/// band-limited ProjectedTrace.
ProjectedTrace finish(std::vector<double> vertical,
                      std::vector<double> anterior, double fs,
                      double lowpass_hz, dsp::Workspace* ws) {
  ProjectedTrace out;
  out.fs = fs;
  const double fc = std::min(lowpass_hz, 0.45 * fs);
  if (ws) {
    out.vertical = dsp::zero_phase_lowpass(vertical, fc, fs, 4, *ws);
    out.anterior = dsp::zero_phase_lowpass(anterior, fc, fs, 4, *ws);
  } else {
    out.vertical = dsp::zero_phase_lowpass(vertical, fc, fs, 4);
    out.anterior = dsp::zero_phase_lowpass(anterior, fc, fs, 4);
  }
  return out;
}

/// Anterior projection of gravity-removed residuals, either with one global
/// principal direction or re-fit per window with sign continuity.
std::vector<double> anterior_channel(const std::vector<Vec3>& forces,
                                     const UpField& ups, double fs,
                                     double anterior_window_s) {
  const std::size_t n = forces.size();
  std::vector<double> anterior(n, 0.0);

  const auto project_range = [&](std::size_t begin, std::size_t end,
                                 Vec3& prev_dir) {
    const std::span<const Vec3> window(forces.data() + begin, end - begin);
    const Vec3 up = ups.window_mean(begin, end);
    Vec3 dir = dsp::principal_horizontal_direction(window, up);
    // Sign continuity: PCA is sign-ambiguous; align with the previous
    // window so the channel doesn't flip mid-trace.
    if (prev_dir.norm2() > 0.0 && dir.dot(prev_dir) < 0.0) dir = -dir;
    prev_dir = dir;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 residual = forces[i] - ups[i] * forces[i].dot(ups[i]);
      anterior[i] = residual.dot(dir);
    }
  };

  Vec3 prev_dir{};
  if (anterior_window_s <= 0.0) {
    project_range(0, n, prev_dir);
    return anterior;
  }
  const auto window =
      std::max<std::size_t>(32, static_cast<std::size_t>(anterior_window_s * fs));
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = std::min(begin + window, n);
    // Avoid a tiny tail window: merge it into the previous one.
    if (n - end < window / 2) end = n;
    project_range(begin, end, prev_dir);
    begin = end;
  }
  return anterior;
}

ProjectedTrace project_common(const imu::Trace& trace, double lowpass_hz,
                              double anterior_window_s, const UpField& ups,
                              dsp::Workspace* ws) {
  const double fs = trace.fs();
  const auto forces = trace.accel_vectors();

  std::vector<double> vertical(forces.size());
  for (std::size_t i = 0; i < forces.size(); ++i) {
    vertical[i] = forces[i].dot(ups[i]) - kGravity;
  }
  std::vector<double> anterior =
      anterior_channel(forces, ups, fs, anterior_window_s);
  return finish(std::move(vertical), std::move(anterior), fs, lowpass_hz, ws);
}

}  // namespace

ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s, dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace: lowpass_hz > 0");
  PTRACK_OBS_SPAN("core.project");
  PTRACK_COUNT("ptrack.core.projections");
  const Vec3 up = dsp::estimate_up(trace.accel_vectors(), trace.fs());
  return project_common(trace, lowpass_hz, anterior_window_s, UpField(up), ws);
}

ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s,
                                           dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace_with_attitude: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace_with_attitude: lowpass_hz > 0");
  PTRACK_OBS_SPAN("core.project");
  PTRACK_COUNT("ptrack.core.projections");
  dsp::AttitudeEstimator estimator;
  const double dt = trace.dt();
  std::vector<Vec3> ups;
  ups.reserve(trace.size());
  for (const imu::Sample& s : trace.samples()) {
    ups.push_back(estimator.update(s.gyro, s.accel, dt));
  }
  return project_common(trace, lowpass_hz, anterior_window_s, UpField(ups), ws);
}

}  // namespace ptrack::core
