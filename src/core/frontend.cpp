#include "core/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/attitude.hpp"
#include "dsp/filtfilt.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

namespace {

/// Per-sample up-direction field: either one constant direction (batch
/// gravity estimate) or a per-sample track (attitude filter). Avoids
/// materializing a vector of identical copies for the constant case.
class UpField {
 public:
  explicit UpField(const Vec3& constant) : constant_(constant) {}
  explicit UpField(std::span<const Vec3> per_sample)
      : per_sample_(per_sample) {}

  const Vec3& operator[](std::size_t i) const {
    return per_sample_.empty() ? constant_ : per_sample_[i];
  }

  /// Normalized mean direction over [begin, end) — the representative up
  /// for a projection window (per-sample ups vary slowly).
  [[nodiscard]] Vec3 window_mean(std::size_t begin, std::size_t end) const {
    Vec3 up{};
    for (std::size_t i = begin; i < end; ++i) up += (*this)[i];
    return up.normalized();
  }

 private:
  Vec3 constant_{};
  std::span<const Vec3> per_sample_{};
};

/// Force accessors: the projection math is written once against this shape
/// and instantiated for array-of-structs (Trace) and structure-of-arrays
/// (channel spans / SampleRing) storage. Both produce identical Vec3 values
/// sample by sample, so the two instantiations are bit-equivalent.
struct AosForces {
  std::span<const Vec3> forces;
  [[nodiscard]] std::size_t size() const { return forces.size(); }
  Vec3 operator[](std::size_t i) const { return forces[i]; }
  [[nodiscard]] Vec3 principal_dir(std::size_t begin, std::size_t end,
                                   const Vec3& up) const {
    return dsp::principal_horizontal_direction(
        forces.subspan(begin, end - begin), up);
  }
};

struct SoaForces {
  std::span<const double> x;
  std::span<const double> y;
  std::span<const double> z;
  [[nodiscard]] std::size_t size() const { return x.size(); }
  Vec3 operator[](std::size_t i) const { return Vec3{x[i], y[i], z[i]}; }
  [[nodiscard]] Vec3 principal_dir(std::size_t begin, std::size_t end,
                                   const Vec3& up) const {
    const std::size_t n = end - begin;
    return dsp::principal_horizontal_direction(
        x.subspan(begin, n), y.subspan(begin, n), z.subspan(begin, n), up);
  }
};

/// Decomposes pre-computed vertical/anterior raw channels into the final
/// band-limited ProjectedTrace.
ProjectedTrace finish(std::vector<double> vertical,
                      std::vector<double> anterior, double fs,
                      double lowpass_hz, dsp::Workspace* ws) {
  ProjectedTrace out;
  out.fs = fs;
  const double fc = std::min(lowpass_hz, 0.45 * fs);
  if (ws) {
    out.vertical = dsp::zero_phase_lowpass(vertical, fc, fs, 4, *ws);
    out.anterior = dsp::zero_phase_lowpass(anterior, fc, fs, 4, *ws);
  } else {
    out.vertical = dsp::zero_phase_lowpass(vertical, fc, fs, 4);
    out.anterior = dsp::zero_phase_lowpass(anterior, fc, fs, 4);
  }
  return out;
}

/// Anterior projection of gravity-removed residuals, either with one global
/// principal direction or re-fit per window with sign continuity. `seam_dir`
/// carries the previous window's direction in and the last window's out;
/// batch callers pass a zero-initialized local (no previous direction).
template <typename Forces>
std::vector<double> anterior_channel(const Forces& forces, const UpField& ups,
                                     double fs, double anterior_window_s,
                                     Vec3& seam_dir,
                                     const Vec3* fixed_dir = nullptr) {
  const std::size_t n = forces.size();
  std::vector<double> anterior(n, 0.0);

  const auto project_range = [&](std::size_t begin, std::size_t end) {
    const Vec3 up = ups.window_mean(begin, end);
    Vec3 dir = fixed_dir ? *fixed_dir
                         : forces.principal_dir(begin, end, up);
    // Sign continuity: PCA is sign-ambiguous; align with the previous
    // window so the channel doesn't flip mid-trace (or mid-stream).
    if (seam_dir.norm2() > 0.0 && dir.dot(seam_dir) < 0.0) dir = -dir;
    seam_dir = dir;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 f = forces[i];
      const Vec3 residual = f - ups[i] * f.dot(ups[i]);
      anterior[i] = residual.dot(dir);
    }
  };

  if (anterior_window_s <= 0.0) {
    project_range(0, n);
    return anterior;
  }
  const auto window =
      std::max<std::size_t>(32, static_cast<std::size_t>(anterior_window_s * fs));
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = std::min(begin + window, n);
    // Avoid a tiny tail window: merge it into the previous one.
    if (n - end < window / 2) end = n;
    project_range(begin, end);
    begin = end;
  }
  return anterior;
}

template <typename Forces>
ProjectedTrace project_common(const Forces& forces, double fs,
                              double lowpass_hz, double anterior_window_s,
                              const UpField& ups, dsp::Workspace* ws,
                              Vec3& seam_dir,
                              const Vec3* fixed_dir = nullptr) {
  std::vector<double> vertical(forces.size());
  for (std::size_t i = 0; i < forces.size(); ++i) {
    vertical[i] = forces[i].dot(ups[i]) - kGravity;
  }
  std::vector<double> anterior = anterior_channel(
      forces, ups, fs, anterior_window_s, seam_dir, fixed_dir);
  return finish(std::move(vertical), std::move(anterior), fs, lowpass_hz, ws);
}

}  // namespace

ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s, dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace: lowpass_hz > 0");
  PTRACK_OBS_SPAN("core.project");
  PTRACK_COUNT("ptrack.core.projections");
  const auto forces = trace.accel_vectors();
  const Vec3 up = dsp::estimate_up(forces, trace.fs());
  Vec3 seam_dir{};
  return project_common(AosForces{forces}, trace.fs(), lowpass_hz,
                        anterior_window_s, UpField(up), ws, seam_dir);
}

ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s,
                                           dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace_with_attitude: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace_with_attitude: lowpass_hz > 0");
  PTRACK_OBS_SPAN("core.project");
  PTRACK_COUNT("ptrack.core.projections");
  dsp::AttitudeEstimator estimator;
  const double dt = trace.dt();
  std::vector<Vec3> ups;
  ups.reserve(trace.size());
  for (const imu::Sample& s : trace.samples()) {
    ups.push_back(estimator.update(s.gyro, s.accel, dt));
  }
  const auto forces = trace.accel_vectors();
  Vec3 seam_dir{};
  return project_common(AosForces{forces}, trace.fs(), lowpass_hz,
                        anterior_window_s, UpField(std::span<const Vec3>(ups)),
                        ws, seam_dir);
}

ProjectedTrace project_channels(std::span<const double> ax,
                                std::span<const double> ay,
                                std::span<const double> az, double fs,
                                double lowpass_hz, double anterior_window_s,
                                std::span<const Vec3> ups, dsp::Workspace* ws,
                                ProjectionSeam* seam, const AxisHistory& axes) {
  expects(ax.size() >= 16, "project_channels: >= 16 samples");
  expects(ax.size() == ay.size() && ay.size() == az.size(),
          "project_channels: equal channel lengths");
  expects(ups.empty() || ups.size() == ax.size(),
          "project_channels: ups empty or one per sample");
  expects(axes.empty() ||
              (axes.ax.size() == axes.ay.size() &&
               axes.ay.size() == axes.az.size() && axes.ax.size() >= 16),
          "project_channels: axis spans equal-length and >= 16 samples");
  expects(fs > 0.0, "project_channels: fs > 0");
  expects(lowpass_hz > 0.0, "project_channels: lowpass_hz > 0");
  PTRACK_OBS_SPAN("core.project");
  PTRACK_COUNT("ptrack.core.projections");
  const SoaForces forces{ax, ay, az};
  Vec3 local_seam{};
  Vec3& seam_dir = seam ? seam->prev_anterior_dir : local_seam;
  if (!axes.empty()) {
    // Axes pinned to the wider history: up from the history's gravity
    // estimate (unless a per-sample track is supplied), anterior principal
    // direction from the history's horizontal residual.
    const Vec3 up = ups.empty() ? dsp::estimate_up(axes.ax, axes.ay, axes.az,
                                                   fs, 0.3, ws)
                                : UpField(ups).window_mean(0, ups.size());
    const Vec3 dir =
        dsp::principal_horizontal_direction(axes.ax, axes.ay, axes.az, up);
    if (ups.empty()) {
      return project_common(forces, fs, lowpass_hz, anterior_window_s,
                            UpField(up), ws, seam_dir, &dir);
    }
    return project_common(forces, fs, lowpass_hz, anterior_window_s,
                          UpField(ups), ws, seam_dir, &dir);
  }
  if (ups.empty()) {
    const Vec3 up = dsp::estimate_up(ax, ay, az, fs, 0.3, ws);
    return project_common(forces, fs, lowpass_hz, anterior_window_s,
                          UpField(up), ws, seam_dir);
  }
  return project_common(forces, fs, lowpass_hz, anterior_window_s,
                        UpField(ups), ws, seam_dir);
}

}  // namespace ptrack::core
