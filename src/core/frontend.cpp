#include "core/frontend.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <type_traits>

#include "common/error.hpp"
#include "dsp/attitude.hpp"
#include "dsp/butterworth.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

namespace {

/// Per-sample up-direction field: either one constant direction (batch
/// gravity estimate) or a per-sample track (attitude filter). Avoids
/// materializing a vector of identical copies for the constant case.
class UpField {
 public:
  explicit UpField(const Vec3& constant) : constant_(constant) {}
  explicit UpField(std::span<const Vec3> per_sample)
      : per_sample_(per_sample) {}

  const Vec3& operator[](std::size_t i) const {
    return per_sample_.empty() ? constant_ : per_sample_[i];
  }

  /// Normalized mean direction over [begin, end) — the representative up
  /// for a projection window (per-sample ups vary slowly).
  [[nodiscard]] Vec3 window_mean(std::size_t begin, std::size_t end) const {
    Vec3 up{};
    for (std::size_t i = begin; i < end; ++i) up += (*this)[i];
    return up.normalized();
  }

  /// True when every sample sees the same up (the batch gravity estimate) —
  /// the precondition for the SIMD whole-span projection fast paths.
  [[nodiscard]] bool is_constant() const { return per_sample_.empty(); }
  [[nodiscard]] const Vec3& constant() const { return constant_; }

 private:
  Vec3 constant_{};
  std::span<const Vec3> per_sample_{};
};

/// Force accessors: the projection math is written once against this shape
/// and instantiated for array-of-structs (Trace) and structure-of-arrays
/// (channel spans / SampleRing) storage. Both produce identical Vec3 values
/// sample by sample, so the two instantiations are bit-equivalent.
struct AosForces {
  std::span<const Vec3> forces;
  [[nodiscard]] std::size_t size() const { return forces.size(); }
  Vec3 operator[](std::size_t i) const { return forces[i]; }
  [[nodiscard]] Vec3 principal_dir(std::size_t begin, std::size_t end,
                                   const Vec3& up) const {
    return dsp::principal_horizontal_direction(
        forces.subspan(begin, end - begin), up);
  }
};

struct SoaForces {
  std::span<const double> x;
  std::span<const double> y;
  std::span<const double> z;
  [[nodiscard]] std::size_t size() const { return x.size(); }
  Vec3 operator[](std::size_t i) const { return Vec3{x[i], y[i], z[i]}; }
  [[nodiscard]] Vec3 principal_dir(std::size_t begin, std::size_t end,
                                   const Vec3& up) const {
    const std::size_t n = end - begin;
    return dsp::principal_horizontal_direction(
        x.subspan(begin, n), y.subspan(begin, n), z.subspan(begin, n), up);
  }
};

/// Decomposes pre-computed vertical/anterior raw channels into the final
/// band-limited ProjectedTrace. `out` is resized in place: a caller that
/// reuses one ProjectedTrace across hops stops allocating once its channel
/// capacity has warmed up.
void finish_into(std::span<const double> vertical,
                 std::span<const double> anterior, double fs,
                 double lowpass_hz, dsp::Workspace* ws, ProjectedTrace& out) {
  out.fs = fs;
  const double fc = std::min(lowpass_hz, 0.45 * fs);
  const std::size_t n = vertical.size();
  out.vertical.resize(n);
  out.anterior.resize(n);
  if (ws) {
    // Both channels through the lane-parallel zero-phase filter in one
    // pass; per channel bit-identical to zero_phase_lowpass.
    const std::array<std::span<const double>, 2> ins{vertical, anterior};
    const std::array<std::span<double>, 2> outs{out.vertical, out.anterior};
    dsp::filtfilt_multi_into(dsp::butterworth_lowpass(4, fc, fs), ins, 64,
                             *ws, outs);
  } else {
    const std::vector<double> v = dsp::zero_phase_lowpass(vertical, fc, fs, 4);
    const std::vector<double> a = dsp::zero_phase_lowpass(anterior, fc, fs, 4);
    std::copy(v.begin(), v.end(), out.vertical.begin());
    std::copy(a.begin(), a.end(), out.anterior.begin());
  }
}

/// Anterior projection of gravity-removed residuals, either with one global
/// principal direction or re-fit per window with sign continuity. `seam_dir`
/// carries the previous window's direction in and the last window's out;
/// batch callers pass a zero-initialized local (no previous direction).
template <typename Forces>
void anterior_channel_into(const Forces& forces, const UpField& ups,
                           double fs, double anterior_window_s, Vec3& seam_dir,
                           const Vec3* fixed_dir,
                           std::vector<double>& anterior) {
  const std::size_t n = forces.size();
  anterior.assign(n, 0.0);

  const auto project_range = [&](std::size_t begin, std::size_t end) {
    const Vec3 up = ups.window_mean(begin, end);
    Vec3 dir = fixed_dir ? *fixed_dir
                         : forces.principal_dir(begin, end, up);
    // Sign continuity: PCA is sign-ambiguous; align with the previous
    // window so the channel doesn't flip mid-trace (or mid-stream).
    if (seam_dir.norm2() > 0.0 && dir.dot(seam_dir) < 0.0) dir = -dir;
    seam_dir = dir;
    if constexpr (std::is_same_v<Forces, SoaForces>) {
      if (ups.is_constant()) {
        // Exact expression-order replica of the Vec3 loop below.
        const std::size_t count = end - begin;
        dsp::simd::residual_project(
            forces.x.subspan(begin, count), forces.y.subspan(begin, count),
            forces.z.subspan(begin, count), ups.constant(), dir,
            std::span<double>(anterior).subspan(begin, count));
        return;
      }
    }
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 f = forces[i];
      const Vec3 residual = f - ups[i] * f.dot(ups[i]);
      anterior[i] = residual.dot(dir);
    }
  };

  if (anterior_window_s <= 0.0) {
    project_range(0, n);
    return;
  }
  const auto window =
      std::max<std::size_t>(32, static_cast<std::size_t>(anterior_window_s * fs));
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = std::min(begin + window, n);
    // Avoid a tiny tail window: merge it into the previous one.
    if (n - end < window / 2) end = n;
    project_range(begin, end);
    begin = end;
  }
}

template <typename Forces>
void project_common_into(const Forces& forces, double fs, double lowpass_hz,
                         double anterior_window_s, const UpField& ups,
                         dsp::Workspace* ws, Vec3& seam_dir,
                         const Vec3* fixed_dir, ProjectedTrace& out) {
  // Raw (pre-filter) channels in per-thread scratch: both are transient
  // inputs to the zero-phase filter, so reusing them across calls removes
  // the two per-hop vector constructions the streaming path used to pay.
  thread_local std::vector<double> vertical;
  thread_local std::vector<double> anterior;
  vertical.resize(forces.size());
  bool vertical_done = false;
  if constexpr (std::is_same_v<Forces, SoaForces>) {
    if (ups.is_constant()) {
      dsp::simd::axis_project(forces.x, forces.y, forces.z, ups.constant(),
                              kGravity, vertical);
      vertical_done = true;
    }
  }
  if (!vertical_done) {
    for (std::size_t i = 0; i < forces.size(); ++i) {
      vertical[i] = forces[i].dot(ups[i]) - kGravity;
    }
  }
  anterior_channel_into(forces, ups, fs, anterior_window_s, seam_dir,
                        fixed_dir, anterior);
  finish_into(vertical, anterior, fs, lowpass_hz, ws, out);
}

template <typename Forces>
ProjectedTrace project_common(const Forces& forces, double fs,
                              double lowpass_hz, double anterior_window_s,
                              const UpField& ups, dsp::Workspace* ws,
                              Vec3& seam_dir,
                              const Vec3* fixed_dir = nullptr) {
  ProjectedTrace out;
  project_common_into(forces, fs, lowpass_hz, anterior_window_s, ups, ws,
                      seam_dir, fixed_dir, out);
  return out;
}

/// Float32 gravity estimate: lane-parallel float filtfilt + per-channel
/// means, widened to a double direction (the three axis components carry
/// their error into every projected sample, so they are kept in double).
Vec3 estimate_up_f32(std::span<const float> x, std::span<const float> y,
                     std::span<const float> z, double fs, double cutoff_hz,
                     dsp::Workspace& ws) {
  expects(x.size() >= 4, "estimate_up_f32: >= 4 samples");
  const double fc = std::min(cutoff_hz, 0.45 * fs);
  const std::array<std::span<const float>, 3> chans{x, y, z};
  const auto means =
      dsp::filtfilt_multif_mean(dsp::butterworth_lowpass(2, fc, fs), chans,
                                64, ws);
  const Vec3 g{static_cast<double>(means[0]), static_cast<double>(means[1]),
               static_cast<double>(means[2])};
  check(g.norm() > 1e-6, "estimate_up_f32: gravity magnitude not degenerate");
  return g.normalized();
}

/// Float32 principal horizontal direction: the per-sample residual
/// projections run in float through the SIMD kernel; the 2x2 covariance is
/// accumulated in double over those float coordinates.
Vec3 principal_horizontal_f32(std::span<const float> x,
                              std::span<const float> y,
                              std::span<const float> z, const Vec3& up,
                              dsp::Workspace& ws) {
  const std::size_t n = x.size();
  expects(n > 0, "principal_horizontal_f32: non-empty");
  const Vec3 ref = std::abs(up.z) < 0.9 ? kVertical : kAnterior;
  const Vec3 e1 = up.cross(ref).normalized();
  const Vec3 e2 = up.cross(e1).normalized();

  auto& scratch = ws.float_scratch(1, 2 * n);
  const std::span<float> ta(scratch.data(), n);
  const std::span<float> tb(scratch.data() + n, n);
  dsp::simd::residual_projectf(x, y, z, up, e1, ta);
  dsp::simd::residual_projectf(x, y, z, up, e2, tb);

  double m1 = 0.0;
  double m2 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    m1 += static_cast<double>(ta[i]);
    m2 += static_cast<double>(tb[i]);
  }
  m1 /= static_cast<double>(n);
  m2 /= static_cast<double>(n);
  double s11 = 0.0;
  double s12 = 0.0;
  double s22 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double a = static_cast<double>(ta[i]) - m1;
    const double b = static_cast<double>(tb[i]) - m2;
    s11 += a * a;
    s12 += a * b;
    s22 += b * b;
  }

  const double tr = s11 + s22;
  const double det = s11 * s22 - s12 * s12;
  const double lambda =
      0.5 * tr + std::sqrt(std::max(0.25 * tr * tr - det, 0.0));
  double v1;
  double v2;
  if (std::abs(s12) > 1e-12) {
    v1 = lambda - s22;
    v2 = s12;
  } else if (s11 >= s22) {
    v1 = 1.0;
    v2 = 0.0;
  } else {
    v1 = 0.0;
    v2 = 1.0;
  }
  return (e1 * v1 + e2 * v2).normalized();
}

}  // namespace

ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s, dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace: lowpass_hz > 0");
  PTRACK_OBS_SPAN("ptrack.core.project");
  PTRACK_COUNT("ptrack.core.projections");
  const auto forces = trace.accel_vectors();
  const Vec3 up = dsp::estimate_up(forces, trace.fs());
  Vec3 seam_dir{};
  return project_common(AosForces{forces}, trace.fs(), lowpass_hz,
                        anterior_window_s, UpField(up), ws, seam_dir);
}

ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s,
                                           dsp::Workspace* ws) {
  expects(trace.size() >= 16, "project_trace_with_attitude: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace_with_attitude: lowpass_hz > 0");
  PTRACK_OBS_SPAN("ptrack.core.project");
  PTRACK_COUNT("ptrack.core.projections");
  dsp::AttitudeEstimator estimator;
  const double dt = trace.dt();
  std::vector<Vec3> ups;
  ups.reserve(trace.size());
  for (const imu::Sample& s : trace.samples()) {
    ups.push_back(estimator.update(s.gyro, s.accel, dt));
  }
  const auto forces = trace.accel_vectors();
  Vec3 seam_dir{};
  return project_common(AosForces{forces}, trace.fs(), lowpass_hz,
                        anterior_window_s, UpField(std::span<const Vec3>(ups)),
                        ws, seam_dir);
}

void project_channels_into(std::span<const double> ax,
                           std::span<const double> ay,
                           std::span<const double> az, double fs,
                           double lowpass_hz, double anterior_window_s,
                           std::span<const Vec3> ups, dsp::Workspace* ws,
                           ProjectionSeam* seam, const AxisHistory& axes,
                           ProjectedTrace& out) {
  expects(ax.size() >= 16, "project_channels: >= 16 samples");
  expects(ax.size() == ay.size() && ay.size() == az.size(),
          "project_channels: equal channel lengths");
  expects(ups.empty() || ups.size() == ax.size(),
          "project_channels: ups empty or one per sample");
  expects(axes.empty() ||
              (axes.ax.size() == axes.ay.size() &&
               axes.ay.size() == axes.az.size() && axes.ax.size() >= 16),
          "project_channels: axis spans equal-length and >= 16 samples");
  expects(fs > 0.0, "project_channels: fs > 0");
  expects(lowpass_hz > 0.0, "project_channels: lowpass_hz > 0");
  PTRACK_OBS_SPAN("ptrack.core.project");
  PTRACK_COUNT("ptrack.core.projections");
  const SoaForces forces{ax, ay, az};
  Vec3 local_seam{};
  Vec3& seam_dir = seam ? seam->prev_anterior_dir : local_seam;
  if (!axes.empty()) {
    // Axes pinned to the wider history: up from the history's gravity
    // estimate (unless a per-sample track is supplied), anterior principal
    // direction from the history's horizontal residual.
    const Vec3 up = ups.empty() ? dsp::estimate_up(axes.ax, axes.ay, axes.az,
                                                   fs, 0.3, ws)
                                : UpField(ups).window_mean(0, ups.size());
    const Vec3 dir =
        dsp::principal_horizontal_direction(axes.ax, axes.ay, axes.az, up);
    if (ups.empty()) {
      project_common_into(forces, fs, lowpass_hz, anterior_window_s,
                          UpField(up), ws, seam_dir, &dir, out);
      return;
    }
    project_common_into(forces, fs, lowpass_hz, anterior_window_s,
                        UpField(ups), ws, seam_dir, &dir, out);
    return;
  }
  if (ups.empty()) {
    const Vec3 up = dsp::estimate_up(ax, ay, az, fs, 0.3, ws);
    project_common_into(forces, fs, lowpass_hz, anterior_window_s, UpField(up),
                        ws, seam_dir, nullptr, out);
    return;
  }
  project_common_into(forces, fs, lowpass_hz, anterior_window_s, UpField(ups),
                      ws, seam_dir, nullptr, out);
}

ProjectedTrace project_channels(std::span<const double> ax,
                                std::span<const double> ay,
                                std::span<const double> az, double fs,
                                double lowpass_hz, double anterior_window_s,
                                std::span<const Vec3> ups, dsp::Workspace* ws,
                                ProjectionSeam* seam, const AxisHistory& axes) {
  ProjectedTrace out;
  project_channels_into(ax, ay, az, fs, lowpass_hz, anterior_window_s, ups, ws,
                        seam, axes, out);
  return out;
}

void project_channels_f32_into(std::span<const float> ax,
                               std::span<const float> ay,
                               std::span<const float> az, double fs,
                               double lowpass_hz, double anterior_window_s,
                               dsp::Workspace& ws, ProjectionSeam* seam,
                               const AxisHistoryF& axes, ProjectedTraceF& out) {
  expects(ax.size() >= 16, "project_channels_f32: >= 16 samples");
  expects(ax.size() == ay.size() && ay.size() == az.size(),
          "project_channels_f32: equal channel lengths");
  expects(axes.empty() ||
              (axes.ax.size() == axes.ay.size() &&
               axes.ay.size() == axes.az.size() && axes.ax.size() >= 16),
          "project_channels_f32: axis spans equal-length and >= 16 samples");
  expects(fs > 0.0, "project_channels_f32: fs > 0");
  expects(lowpass_hz > 0.0, "project_channels_f32: lowpass_hz > 0");
  PTRACK_OBS_SPAN("ptrack.core.project");
  PTRACK_COUNT("ptrack.core.projections");

  const std::span<const float> hx = axes.empty() ? ax : axes.ax;
  const std::span<const float> hy = axes.empty() ? ay : axes.ay;
  const std::span<const float> hz = axes.empty() ? az : axes.az;
  const Vec3 up = estimate_up_f32(hx, hy, hz, fs, 0.3, ws);

  Vec3 local_seam{};
  Vec3& seam_dir = seam ? seam->prev_anterior_dir : local_seam;
  const std::size_t n = ax.size();
  // Raw channels in per-thread scratch (see project_common_into).
  thread_local std::vector<float> vertical;
  thread_local std::vector<float> anterior;
  vertical.resize(n);
  anterior.resize(n);
  dsp::simd::axis_projectf(ax, ay, az, up, static_cast<float>(kGravity),
                           vertical);

  const auto project_range = [&](std::size_t begin, std::size_t end,
                                 const Vec3* pinned_dir) {
    const std::size_t count = end - begin;
    Vec3 dir = pinned_dir
                   ? *pinned_dir
                   : principal_horizontal_f32(ax.subspan(begin, count),
                                              ay.subspan(begin, count),
                                              az.subspan(begin, count), up,
                                              ws);
    if (seam_dir.norm2() > 0.0 && dir.dot(seam_dir) < 0.0) dir = -dir;
    seam_dir = dir;
    dsp::simd::residual_projectf(
        ax.subspan(begin, count), ay.subspan(begin, count),
        az.subspan(begin, count), up, dir,
        std::span<float>(anterior).subspan(begin, count));
  };

  if (!axes.empty()) {
    // Axes pinned to the wider history: one fixed anterior direction.
    const Vec3 dir = principal_horizontal_f32(hx, hy, hz, up, ws);
    project_range(0, n, &dir);
  } else if (anterior_window_s <= 0.0) {
    project_range(0, n, nullptr);
  } else {
    const auto window = std::max<std::size_t>(
        32, static_cast<std::size_t>(anterior_window_s * fs));
    std::size_t begin = 0;
    while (begin < n) {
      std::size_t end = std::min(begin + window, n);
      if (n - end < window / 2) end = n;
      project_range(begin, end, nullptr);
      begin = end;
    }
  }

  out.fs = fs;
  out.vertical.resize(n);
  out.anterior.resize(n);
  const double fc = std::min(lowpass_hz, 0.45 * fs);
  const std::array<std::span<const float>, 2> ins{std::span<const float>(
                                                      vertical.data(), n),
                                                  std::span<const float>(
                                                      anterior.data(), n)};
  const std::array<std::span<float>, 2> outs{out.vertical, out.anterior};
  dsp::filtfilt_multif_into(dsp::butterworth_lowpass(4, fc, fs), ins, 64, ws,
                            outs);
}

ProjectedTraceF project_channels_f32(std::span<const float> ax,
                                     std::span<const float> ay,
                                     std::span<const float> az, double fs,
                                     double lowpass_hz,
                                     double anterior_window_s,
                                     dsp::Workspace& ws,
                                     ProjectionSeam* seam,
                                     const AxisHistoryF& axes) {
  ProjectedTraceF out;
  project_channels_f32_into(ax, ay, az, fs, lowpass_hz, anterior_window_s, ws,
                            seam, axes, out);
  return out;
}

}  // namespace ptrack::core
