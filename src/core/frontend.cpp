#include "core/frontend.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/attitude.hpp"
#include "dsp/filtfilt.hpp"

namespace ptrack::core {

namespace {

/// Decomposes pre-computed vertical/anterior raw channels into the final
/// band-limited ProjectedTrace.
ProjectedTrace finish(std::vector<double> vertical,
                      std::vector<double> anterior, double fs,
                      double lowpass_hz) {
  ProjectedTrace out;
  out.fs = fs;
  const double fc = std::min(lowpass_hz, 0.45 * fs);
  out.vertical = dsp::zero_phase_lowpass(vertical, fc, fs, 4);
  out.anterior = dsp::zero_phase_lowpass(anterior, fc, fs, 4);
  return out;
}

/// Anterior projection of gravity-removed residuals, either with one global
/// principal direction or re-fit per window with sign continuity.
std::vector<double> anterior_channel(const std::vector<Vec3>& forces,
                                     const std::vector<Vec3>& ups, double fs,
                                     double anterior_window_s) {
  const std::size_t n = forces.size();
  std::vector<double> anterior(n, 0.0);

  const auto project_range = [&](std::size_t begin, std::size_t end,
                                 Vec3& prev_dir) {
    const std::span<const Vec3> window(forces.data() + begin, end - begin);
    // Representative up for the window (they vary slowly).
    Vec3 up{};
    for (std::size_t i = begin; i < end; ++i) up += ups[i];
    up = up.normalized();
    Vec3 dir = dsp::principal_horizontal_direction(window, up);
    // Sign continuity: PCA is sign-ambiguous; align with the previous
    // window so the channel doesn't flip mid-trace.
    if (prev_dir.norm2() > 0.0 && dir.dot(prev_dir) < 0.0) dir = -dir;
    prev_dir = dir;
    for (std::size_t i = begin; i < end; ++i) {
      const Vec3 residual = forces[i] - ups[i] * forces[i].dot(ups[i]);
      anterior[i] = residual.dot(dir);
    }
  };

  Vec3 prev_dir{};
  if (anterior_window_s <= 0.0) {
    project_range(0, n, prev_dir);
    return anterior;
  }
  const auto window =
      std::max<std::size_t>(32, static_cast<std::size_t>(anterior_window_s * fs));
  std::size_t begin = 0;
  while (begin < n) {
    std::size_t end = std::min(begin + window, n);
    // Avoid a tiny tail window: merge it into the previous one.
    if (n - end < window / 2) end = n;
    project_range(begin, end, prev_dir);
    begin = end;
  }
  return anterior;
}

ProjectedTrace project_common(const imu::Trace& trace, double lowpass_hz,
                              double anterior_window_s,
                              const std::vector<Vec3>& ups) {
  const double fs = trace.fs();
  const auto forces = trace.accel_vectors();

  std::vector<double> vertical(forces.size());
  for (std::size_t i = 0; i < forces.size(); ++i) {
    vertical[i] = forces[i].dot(ups[i]) - kGravity;
  }
  std::vector<double> anterior =
      anterior_channel(forces, ups, fs, anterior_window_s);
  return finish(std::move(vertical), std::move(anterior), fs, lowpass_hz);
}

}  // namespace

ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s) {
  expects(trace.size() >= 16, "project_trace: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace: lowpass_hz > 0");
  const Vec3 up = dsp::estimate_up(trace.accel_vectors(), trace.fs());
  const std::vector<Vec3> ups(trace.size(), up);
  return project_common(trace, lowpass_hz, anterior_window_s, ups);
}

ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s) {
  expects(trace.size() >= 16, "project_trace_with_attitude: >= 16 samples");
  expects(lowpass_hz > 0.0, "project_trace_with_attitude: lowpass_hz > 0");
  dsp::AttitudeEstimator estimator;
  const double dt = trace.dt();
  std::vector<Vec3> ups;
  ups.reserve(trace.size());
  for (const imu::Sample& s : trace.samples()) {
    ups.push_back(estimator.update(s.gyro, s.accel, dt));
  }
  return project_common(trace, lowpass_hz, anterior_window_s, ups);
}

}  // namespace ptrack::core
