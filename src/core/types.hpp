// Public result and configuration types of the PTrack core.

#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace ptrack::core {

/// Gait classification of one candidate cycle (Fig. 4 outcome).
enum class GaitType {
  Walking,       ///< offset test passed: arm-swing walking
  Stepping,      ///< stepping test passed: rigid-arm walking
  Interference,  ///< neither: excluded from counting ("Others")
};

inline std::string_view to_string(GaitType t) {
  switch (t) {
    case GaitType::Walking: return "walking";
    case GaitType::Stepping: return "stepping";
    case GaitType::Interference: return "others";
  }
  return "?";
}

/// One counted step with its estimated stride.
struct StepEvent {
  double t = 0.0;        ///< completion time (s)
  double stride = 0.0;   ///< estimated stride (m); 0 when unavailable
  GaitType type = GaitType::Walking;
  /// Fraction of the step's half-cycle covered by untouched (neither
  /// repaired nor masked) samples; 1 on a clean trace.
  double quality = 1.0;
  /// True when the majority of the step's half-cycle was hard-masked: the
  /// step is still reported, but it stands on reconstructed ground.
  bool degraded = false;
};

/// One analyzed candidate gait cycle (diagnostics; Fig. 6(b) breakdown).
struct CycleRecord {
  std::size_t begin = 0;  ///< first sample index of the cycle
  std::size_t mid = 0;    ///< half-cycle boundary (middle step peak)
  std::size_t end = 0;    ///< one past the last sample index
  GaitType type = GaitType::Interference;
  double offset = 0.0;    ///< Eq. (1) offset of the cycle
  double half_cycle_corr = 0.0;  ///< C at the half-cycle lag
  bool phase_ok = false;  ///< quarter-period phase gate result
  double quality = 1.0;   ///< fraction of the cycle's samples left untouched
};

/// Condensed per-trace signal-quality record (mirrors imu::QualityReport
/// without the per-sample flag vector; fractions are over the trace).
struct SignalQuality {
  double clean_fraction = 1.0;     ///< samples passed through untouched
  double repaired_fraction = 0.0;  ///< samples gap-filled by interpolation
  double masked_fraction = 0.0;    ///< samples replaced by the neutral value
  std::size_t dropout_samples = 0;
  std::size_t saturated_samples = 0;
  std::size_t spike_samples = 0;
  std::size_t nonfinite_samples = 0;

  [[nodiscard]] bool degraded() const { return clean_fraction < 1.0; }
};

/// Step-counter configuration. Defaults follow the paper where it gives
/// values (delta = 0.0325) and sensible engineering choices elsewhere; the
/// ablation benches sweep the interesting ones.
struct StepCounterConfig {
  double lowpass_hz = 5.0;       ///< analysis band for projected signals
  /// Forward-axis estimation window (s): 0 = one global fit; > 0 refits
  /// per window (keeps the anterior channel faithful on turning routes).
  double anterior_window_s = 0.0;
  /// Track the up direction with the gyro/accel complementary filter
  /// instead of the batch gravity low-pass (for raw device-frame traces).
  bool use_attitude_filter = false;
  double delta = 0.0325;         ///< offset threshold (paper SIII-B1)
  std::size_t streak = 3;        ///< consecutive confirmations for stepping
  double phase_tolerance = 0.35; ///< relative error allowed vs quarter period
  double min_step_interval_s = 0.35;  ///< segmentation peak spacing
  double max_step_interval_s = 1.20;  ///< reject slower candidates
  double min_cycle_prominence = 0.5;  ///< m/s^2, segmentation peaks
  /// Adaptive part of the segmentation prominence: fraction of the vertical
  /// channel's standard deviation. Suppresses arm-harmonic ghost peaks for
  /// vigorous swingers while leaving weak-signal activities untouched.
  double adaptive_prominence = 0.35;
  bool use_weighting = true;     ///< w(nv) term of Eq. (1) (ablation)
  bool use_phase_gate = true;    ///< phase-difference test (ablation)

  // Critical-point extraction: the query channel (vertical) keeps only
  // well-formed turning points; the match channel (anterior) exposes its
  // turning points and zeros. Fractions are relative to the cycle's
  // peak-to-peak span (prominence) or RMS (hysteresis).
  double query_prominence = 0.12;
  double query_abs_prominence = 0.35;  ///< m/s^2 noise/sway floor
  double match_prominence = 0.20;
  double match_abs_prominence = 0.15;  ///< m/s^2
  double match_hysteresis = 0.50;
  double weight_cap = 0.35;      ///< bound on w(nv) (quiet-gap guard)
  /// Anterior-energy gate (m/s^2 RMS): genuine walking always drives the
  /// anterior channel hard (arm swing + body speed oscillation). When the
  /// cycle's anterior RMS falls below this floor the channel is noise, its
  /// critical points are meaningless, and the offset is forced to 0 so the
  /// cycle cannot pass as walking (e.g. photo-taking with the arm
  /// horizontal, where the tangential motion is almost purely vertical).
  double min_anterior_rms = 0.30;
  /// Also query anterior turning points against the vertical critical set
  /// and add both sums (symmetric form of Eq. (1)); strengthens the signal
  /// when one channel's critical set is sparse.
  bool symmetric_offset = false;

  /// Walking hysteresis: once >= `walking_streak_open` consecutive cycles
  /// pass the strict offset test, up to `walking_hysteresis_credit`
  /// borderline cycles (offset > walking_hysteresis_factor * delta) in a
  /// row are still accepted as walking. Interference never opens the gate
  /// because it never produces the strict streak. (ablation)
  bool walking_hysteresis = true;
  double walking_hysteresis_factor = 0.5;
  std::size_t walking_streak_open = 2;
  std::size_t walking_hysteresis_credit = 2;
};

/// User profile for stride estimation (the paper's m and l plus the Eq. (2)
/// calibration factor k).
struct StrideProfile {
  double arm_length = 0.70;  ///< m
  double leg_length = 0.90;  ///< l
  double k = 2.0;            ///< calibration factor of Eq. (2)
};

/// Stride-estimator configuration.
struct StrideConfig {
  StrideProfile profile{};
  double velocity_smooth_hz = 4.0;  ///< smoothing of the arm velocity signal
  /// Median filter over the per-step stride sequence (odd window; <= 1
  /// disables). A walker's stride changes slowly, so a short median knocks
  /// out per-cycle geometry outliers. (ablation)
  std::size_t smooth_window = 5;
  /// Swing-energy routing threshold (m/s): the stepping direct-bounce
  /// readout is only valid for a rigid arm, and a rigid arm cannot produce
  /// a large anterior velocity. Cycles whose anterior-velocity amplitude
  /// exceeds this use the walking geometry regardless of the counter's
  /// gait label. (ablation)
  double swing_velocity_threshold = 0.7;
};

/// Wall-clock cost of each pipeline stage for one trace (µs). Filled by
/// PTrack::process when the observability layer is compiled in and enabled
/// at runtime; all zeros otherwise. Surfaced as the "timing" block of the
/// CLI's per-trace JSON.
struct StageTiming {
  double quality_us = 0.0;  ///< signal-quality detection + repair
  double project_us = 0.0;  ///< gravity/anterior projection + filtering
  double count_us = 0.0;    ///< cycle segmentation + gait classification
  double stride_us = 0.0;   ///< stride estimation, fill and smoothing
  double total_us = 0.0;    ///< whole process() call (>= sum of stages)
};

/// Full result of processing a trace.
struct TrackResult {
  std::size_t steps = 0;
  std::vector<StepEvent> events;
  std::vector<CycleRecord> cycles;
  SignalQuality quality{};  ///< trace-level signal quality (1.0/clean default)
  StageTiming timing{};     ///< per-stage wall-clock cost (zeros when obs off)

  /// Total walked distance (sum of per-step strides).
  [[nodiscard]] double distance() const {
    double d = 0.0;
    for (const StepEvent& e : events) d += e.stride;
    return d;
  }

  /// Steps whose half-cycle was majority-masked (reported but untrusted).
  [[nodiscard]] std::size_t degraded_steps() const {
    std::size_t n = 0;
    for (const StepEvent& e : events) n += e.degraded ? 1 : 0;
    return n;
  }
};

}  // namespace ptrack::core
