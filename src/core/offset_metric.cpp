#include "core/offset_metric.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace ptrack::core {

double cycle_offset(std::span<const CriticalPoint> vertical_points,
                    std::span<const CriticalPoint> anterior_points,
                    std::size_t n, bool use_weighting, double weight_cap) {
  expects(n >= 1, "cycle_offset: n >= 1");
  if (vertical_points.empty()) return 0.0;
  if (anterior_points.empty()) return 1.0;

  const double nd = static_cast<double>(n);
  double offset = 0.0;
  std::size_t prev_index = 0;  // cycle start anchors the first weight
  for (const CriticalPoint& nv : vertical_points) {
    // Closest anterior critical point (anterior_points sorted by index).
    double best = nd;
    for (const CriticalPoint& na : anterior_points) {
      const double dist = std::abs(static_cast<double>(na.index) -
                                   static_cast<double>(nv.index));
      best = std::min(best, dist);
    }
    const double w =
        use_weighting
            ? std::min(static_cast<double>(nv.index - prev_index) / nd,
                       weight_cap)
            : 1.0;
    offset += w * best / nd;
    prev_index = nv.index;
  }
  return offset;
}

}  // namespace ptrack::core
