#include "core/offset_metric.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::core {

double cycle_offset(std::span<const CriticalPoint> vertical_points,
                    std::span<const CriticalPoint> anterior_points,
                    std::size_t n, bool use_weighting, double weight_cap) {
  expects(n >= 1, "cycle_offset: n >= 1");
  // Both point sets come out of critical_points(), which sorts by index;
  // the weighting below reads consecutive index gaps and would underflow
  // on unsorted input.
  PTRACK_CHECK_MSG(
      std::is_sorted(vertical_points.begin(), vertical_points.end(),
                     [](const CriticalPoint& a, const CriticalPoint& b) {
                       return a.index < b.index;
                     }),
      "cycle_offset: vertical critical points are time-ordered");
  PTRACK_CHECK_MSG(
      std::is_sorted(anterior_points.begin(), anterior_points.end(),
                     [](const CriticalPoint& a, const CriticalPoint& b) {
                       return a.index < b.index;
                     }),
      "cycle_offset: anterior critical points are time-ordered");
  if (vertical_points.empty()) return 0.0;
  if (anterior_points.empty()) return 1.0;

  const double nd = static_cast<double>(n);
  double offset = 0.0;
  std::size_t prev_index = 0;  // cycle start anchors the first weight
  for (const CriticalPoint& nv : vertical_points) {
    // Closest anterior critical point (anterior_points sorted by index).
    double best = nd;
    for (const CriticalPoint& na : anterior_points) {
      const double dist = std::abs(static_cast<double>(na.index) -
                                   static_cast<double>(nv.index));
      best = std::min(best, dist);
    }
    const double w =
        use_weighting
            ? std::min(static_cast<double>(nv.index - prev_index) / nd,
                       weight_cap)
            : 1.0;
    offset += w * best / nd;
    prev_index = nv.index;
  }
  // Eq. (1) is a normalized weighted score: every term is >= 0, and with
  // the weighting active the weights sum to at most max_index/n <= 1 while
  // each distance term is <= 1, so the total stays inside [0, 1].
  PTRACK_CHECK_MSG(std::isfinite(offset) && offset >= 0.0,
                   "cycle_offset is non-negative and finite");
  if (use_weighting && weight_cap <= 1.0) {
    PTRACK_CHECK_MSG(offset <= 1.0 + 1e-9,
                     "weighted cycle_offset is normalized to [0, 1]");
  }
  return offset;
}

}  // namespace ptrack::core
