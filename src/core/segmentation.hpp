// Gait-cycle candidate segmentation (the "existing modules" stage of
// Fig. 2: low-pass filter -> peak detection -> acceleration segmentation).
//
// Vertical-acceleration peaks are step candidates; a candidate gait cycle
// spans two consecutive step intervals (one full left+right cycle). Cycles
// are non-overlapping: [p0,p2), [p2,p4), ...

#pragma once

#include <span>
#include <vector>

#include "core/types.hpp"

namespace ptrack::core {

/// One candidate gait cycle.
struct CycleCandidate {
  std::size_t begin = 0;  ///< sample index of the opening step peak
  std::size_t mid = 0;    ///< middle step peak (half-cycle boundary)
  std::size_t end = 0;    ///< closing step peak (exclusive bound)
};

/// Step-candidate peak indices of the vertical channel.
std::vector<std::size_t> step_peaks(std::span<const double> vertical,
                                    double fs, const StepCounterConfig& cfg);

/// Pairs step peaks into non-overlapping candidate cycles, dropping pairs
/// whose step intervals fall outside [min_step_interval_s,
/// max_step_interval_s].
std::vector<CycleCandidate> segment_cycles(std::span<const double> vertical,
                                           double fs,
                                           const StepCounterConfig& cfg);

}  // namespace ptrack::core
