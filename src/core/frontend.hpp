// Projection frontend: raw wrist trace -> band-limited vertical + anterior
// acceleration channels (paper SIII-B2).

#pragma once

#include "dsp/projection.hpp"
#include "dsp/workspace.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Projected and band-limited signals ready for cycle analysis.
struct ProjectedTrace {
  std::vector<double> vertical;  ///< low-passed linear vertical accel
  std::vector<double> anterior;  ///< low-passed anterior accel
  double fs = 0.0;
};

/// Projects a trace onto vertical/anterior axes and low-passes both channels
/// with a zero-phase Butterworth at `lowpass_hz` (zero-phase so critical
/// point *positions* are preserved). Requires >= 16 samples.
///
/// `anterior_window_s` selects how the forward axis is estimated: 0 fits
/// one principal horizontal direction over the whole trace (fine for
/// straight walks); > 0 re-fits it per window of that many seconds with
/// sign continuity across windows, which keeps the anterior channel
/// faithful on routes with turns.
///
/// `ws` (optional) provides reusable scratch for the zero-phase filters so
/// repeated calls (streaming windows, batch traces) avoid the per-call
/// padding allocations.
ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s = 0.0,
                             dsp::Workspace* ws = nullptr);

/// Projection for *raw device-frame* streams: tracks the up direction per
/// sample with a gyro/accel complementary filter (dsp::AttitudeEstimator)
/// instead of the batch gravity low-pass, then projects as project_trace
/// does. Use when the trace carries raw sensor data rather than a
/// platform's gravity-referenced output.
ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s = 0.0,
                                           dsp::Workspace* ws = nullptr);

/// Sign-continuity state for the anterior principal direction, carried
/// across successive projection calls. PCA is sign-ambiguous; a streaming
/// pipeline that re-projects overlapping tails each hop must keep the
/// anterior channel's sign stable across hops, so it threads one seam
/// through every call. A zero-initialized seam (or none) reproduces batch
/// behaviour exactly.
struct ProjectionSeam {
  Vec3 prev_anterior_dir{};
};

/// Optional wider raw-history spans for projection-axis estimation. The
/// batch projection estimates the up direction and the anterior principal
/// direction from the span it projects; an incremental pipeline projects
/// only a short tail per hop, and axes fit to that tail wander with local
/// gestures. Passing the last N seconds of raw history here pins the axes
/// to that longer window instead (the projected span itself is unchanged).
/// Empty means "estimate from the projected span" — the batch behaviour.
struct AxisHistory {
  std::span<const double> ax;
  std::span<const double> ay;
  std::span<const double> az;
  [[nodiscard]] bool empty() const { return ax.empty(); }
};

/// Structure-of-arrays projection over raw channel spans (e.g. views into
/// an imu::SampleRing) — no Trace or AoS materialization. Semantics match
/// project_trace bit-for-bit when `ups` is empty and `seam` is null.
///
/// `ups` (optional) supplies a per-sample up track (attitude-filter path);
/// it must be empty or exactly ax.size() long. When empty, the up
/// direction is the batch gravity estimate over the spans.
///
/// `axes` (optional) supplies wider history spans for axis estimation;
/// see AxisHistory. With per-sample `ups` the up track is used as given
/// and `axes` only pins the anterior principal direction.
ProjectedTrace project_channels(std::span<const double> ax,
                                std::span<const double> ay,
                                std::span<const double> az, double fs,
                                double lowpass_hz,
                                double anterior_window_s = 0.0,
                                std::span<const Vec3> ups = {},
                                dsp::Workspace* ws = nullptr,
                                ProjectionSeam* seam = nullptr,
                                const AxisHistory& axes = {});

/// Reuse-friendly form of project_channels: fills `out` in place (resizing
/// its channels), so a caller that keeps one ProjectedTrace across hops
/// stops allocating once the channel capacity has warmed up. This is the
/// variant the streaming projection stage calls at steady state.
void project_channels_into(std::span<const double> ax,
                           std::span<const double> ay,
                           std::span<const double> az, double fs,
                           double lowpass_hz, double anterior_window_s,
                           std::span<const Vec3> ups, dsp::Workspace* ws,
                           ProjectionSeam* seam, const AxisHistory& axes,
                           ProjectedTrace& out);

/// Float32 projection results (see project_channels_f32).
struct ProjectedTraceF {
  std::vector<float> vertical;
  std::vector<float> anterior;
  double fs = 0.0;
};

/// Float32 mirror of AxisHistory.
struct AxisHistoryF {
  std::span<const float> ax;
  std::span<const float> ay;
  std::span<const float> az;
  [[nodiscard]] bool empty() const { return ax.empty(); }
};

/// Float32 fast-path projection over float channel spans (e.g. the
/// SampleRing's float mirrors). Same structure as project_channels — batch
/// gravity estimate, principal horizontal direction, vertical + anterior
/// projection, zero-phase low-pass — but every per-sample pass runs in
/// float32 through the SIMD kernels (twice the lane width and half the
/// memory traffic). Axis *directions* are still reduced in double: they are
/// three numbers whose error multiplies every sample. No attitude-filter
/// (per-sample ups) variant: callers needing it stay on the double path.
/// Divergence from the double pipeline is bounded by float rounding in the
/// projections and filters; tests/test_streaming_f32.cpp gates it against
/// the batch-double oracle.
ProjectedTraceF project_channels_f32(std::span<const float> ax,
                                     std::span<const float> ay,
                                     std::span<const float> az, double fs,
                                     double lowpass_hz,
                                     double anterior_window_s,
                                     dsp::Workspace& ws,
                                     ProjectionSeam* seam = nullptr,
                                     const AxisHistoryF& axes = {});

/// Reuse-friendly float32 form: fills `out` in place (see
/// project_channels_into).
void project_channels_f32_into(std::span<const float> ax,
                               std::span<const float> ay,
                               std::span<const float> az, double fs,
                               double lowpass_hz, double anterior_window_s,
                               dsp::Workspace& ws, ProjectionSeam* seam,
                               const AxisHistoryF& axes, ProjectedTraceF& out);

}  // namespace ptrack::core
