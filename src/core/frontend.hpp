// Projection frontend: raw wrist trace -> band-limited vertical + anterior
// acceleration channels (paper SIII-B2).

#pragma once

#include "dsp/projection.hpp"
#include "dsp/workspace.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Projected and band-limited signals ready for cycle analysis.
struct ProjectedTrace {
  std::vector<double> vertical;  ///< low-passed linear vertical accel
  std::vector<double> anterior;  ///< low-passed anterior accel
  double fs = 0.0;
};

/// Projects a trace onto vertical/anterior axes and low-passes both channels
/// with a zero-phase Butterworth at `lowpass_hz` (zero-phase so critical
/// point *positions* are preserved). Requires >= 16 samples.
///
/// `anterior_window_s` selects how the forward axis is estimated: 0 fits
/// one principal horizontal direction over the whole trace (fine for
/// straight walks); > 0 re-fits it per window of that many seconds with
/// sign continuity across windows, which keeps the anterior channel
/// faithful on routes with turns.
///
/// `ws` (optional) provides reusable scratch for the zero-phase filters so
/// repeated calls (streaming windows, batch traces) avoid the per-call
/// padding allocations.
ProjectedTrace project_trace(const imu::Trace& trace, double lowpass_hz,
                             double anterior_window_s = 0.0,
                             dsp::Workspace* ws = nullptr);

/// Projection for *raw device-frame* streams: tracks the up direction per
/// sample with a gyro/accel complementary filter (dsp::AttitudeEstimator)
/// instead of the batch gravity low-pass, then projects as project_trace
/// does. Use when the trace carries raw sensor data rather than a
/// platform's gravity-referenced output.
ProjectedTrace project_trace_with_attitude(const imu::Trace& trace,
                                           double lowpass_hz,
                                           double anterior_window_s = 0.0,
                                           dsp::Workspace* ws = nullptr);

}  // namespace ptrack::core
