#include "core/hop_job.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::core {

HopJob::HopJob(HopExecutor& executor, std::uint64_t stream_id, double fs,
               StreamingConfig config)
    : executor_(executor),
      stream_id_(stream_id),
      tracker_(fs, config) {
  // Mailbox capacity for ~several hops of samples at wearable rates; the
  // ping-pong swap in run_hops() preserves whatever it grows to.
  inbox_.reserve(1024);
  scratch_.reserve(1024);
}

HopJob::~HopJob() {
  // Quiesce without throwing: a captured hop error is dropped here — the
  // documented contract is to wait_idle() first if errors matter.
  std::unique_lock<std::mutex> lk(idle_mu_);
  idle_cv_.wait(lk, [&] {
    return state_.load(std::memory_order_acquire) == kIdle;
  });
}

void HopJob::push(const imu::Sample& sample) {
  {
    std::lock_guard<std::mutex> lk(in_mu_);
    inbox_.push_back(sample);
  }
  ensure_scheduled();
}

void HopJob::push(const imu::Trace& trace) {
  expects(trace.fs() == tracker_.fs(),
          "HopJob::push: trace sample rate must match the job's fs");
  if (trace.empty()) return;
  {
    std::lock_guard<std::mutex> lk(in_mu_);
    inbox_.insert(inbox_.end(), trace.samples().begin(),
                  trace.samples().end());
  }
  ensure_scheduled();
}

void HopJob::ensure_scheduled() {
  int s = state_.load(std::memory_order_acquire);
  for (;;) {
    switch (s) {
      case kIdle:
        if (state_.compare_exchange_weak(s, kScheduled,
                                         std::memory_order_acq_rel)) {
          executor_.submit(*this, stream_id_);
          return;
        }
        break;  // s reloaded; reclassify
      case kRunning:
        // The running task already swapped the mailbox out; mark it dirty
        // so it loops for the samples we just appended instead of going
        // idle past them.
        if (state_.compare_exchange_weak(s, kRunningDirty,
                                         std::memory_order_acq_rel)) {
          return;
        }
        break;
      default:
        // kScheduled or kRunningDirty: the pending drain will see us.
        PTRACK_CHECK_MSG(s == kScheduled || s == kRunningDirty,
                         "HopJob: state machine has exactly four states");
        return;
    }
  }
}

void HopJob::run_scheduled(std::size_t executor) {
  // Exactly one scheduled execution exists at a time (ensure_scheduled's
  // kIdle -> kScheduled transition is the only submit), so entry always
  // observes its own kScheduled.
  PTRACK_CHECK_MSG(state_.load(std::memory_order_acquire) == kScheduled,
                   "HopJob::run_scheduled: one execution in flight");
  last_executor_.store(executor, std::memory_order_relaxed);
  state_.store(kRunning, std::memory_order_release);
  for (;;) {
    scratch_.clear();
    {
      std::lock_guard<std::mutex> lk(in_mu_);
      scratch_.swap(inbox_);  // capacity ping-pong: both sides stay warm
    }
    try {
      for (const imu::Sample& s : scratch_) tracker_.push(s);
      std::lock_guard<std::mutex> lk(out_mu_);
      tracker_.poll_into(ready_);
    } catch (...) {
      std::lock_guard<std::mutex> lk(err_mu_);
      if (!error_) error_ = std::current_exception();
    }
    int expected = kRunning;
    if (state_.compare_exchange_strong(expected, kIdle,
                                       std::memory_order_acq_rel)) {
      break;
    }
    // kRunningDirty: samples landed after our swap; drain again within the
    // same task rather than paying another submit round trip.
    state_.store(kRunning, std::memory_order_release);
  }
  runs_completed_.fetch_add(1, std::memory_order_relaxed);
  {
    // Notify under the lock so a waiter cannot observe kIdle, destroy the
    // job, and leave us notifying a dead condition variable.
    std::lock_guard<std::mutex> lk(idle_mu_);
    idle_cv_.notify_all();
  }
}

void HopJob::poll_into(std::vector<StepEvent>& out) {
  std::lock_guard<std::mutex> lk(out_mu_);
  out.insert(out.end(), ready_.begin(), ready_.end());
  ready_.clear();
}

void HopJob::wait_idle() {
  {
    std::unique_lock<std::mutex> lk(idle_mu_);
    idle_cv_.wait(lk, [&] {
      return state_.load(std::memory_order_acquire) == kIdle;
    });
  }
  // Single-producer contract: the waiter is the pusher, so nothing can
  // have re-scheduled the job between the wait and this read.
  PTRACK_CHECK_MSG(state_.load(std::memory_order_acquire) == kIdle,
                   "HopJob::wait_idle: idle on return");
  std::exception_ptr err;
  {
    std::lock_guard<std::mutex> lk(err_mu_);
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void HopJob::drain_into(std::vector<StepEvent>& out) {
  wait_idle();
  // Idle + single-producer contract: no task is queued or running and no
  // concurrent push can start one, so the tracker is ours to flush here.
  poll_into(out);
  tracker_.drain_into(out);
}

}  // namespace ptrack::core
