// Incremental stage graph: the shared zero-copy core behind batch and
// streaming PTrack.
//
// The pipeline of Fig. 2 is decomposed into three stateful stages that
// carry their state across push/advance hops instead of recomputing the
// whole window:
//
//   imu::SampleRing --(spans)--> ProjectionStage --> SegmentationStage
//                                      |                   |
//                                  projected rings     CycleCandidates
//                                      |                   v
//                                      +----------> EventAssembler --> events
//
// Every stage reads its input through `std::span` views over rings
// addressed by *absolute* sample indices (imu::SampleRing, Ring<double>),
// so a hop touches only the new tail plus a bounded context region — no
// per-hop window materialization, no O(window) recompute.
//
// Batch-oracle contract: driving a fresh StagePipeline with one push of
// the whole trace and a single advance(flush = true) degenerates every
// stage to exactly the batch computation (one projection region starting
// at 0, one peak scan, the same pairing / classification / stride / fill /
// median sequence over complete data). The batch facade (PTrack::process)
// runs this way, so batch results are bit-stable by construction and the
// streaming mode's hop-wise results are validated against them
// (tests/test_streaming_equivalence.cpp).
//
// Incremental finalization: zero-phase filtering and prominence-based peak
// detection are non-causal, so each stage keeps a margin between the data
// frontier and what it finalizes:
//   - ProjectionStage re-projects a trailing context region each hop and
//     finalizes output only `kProjectionMarginS` behind the newest sample
//     (covers the filtfilt reflect pad and IIR settling);
//   - SegmentationStage re-scans from `kSegmentationLookbackS` before the
//     last finalized peak and accepts new peaks only
//     `kSegmentationMarginS` behind the projected frontier (covers the
//     min-distance suppression window and prominence walks);
//   - EventAssembler withholds cycles in an open stepping streak
//     (<= streak-1) and events whose median-smoothing window is still
//     open (<= smooth_window/2 future events).
// Finalized output is never retracted.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/ring.hpp"
#include "core/frontend.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"
#include "core/stride_estimator.hpp"
#include "core/types.hpp"
#include "dsp/attitude.hpp"
#include "dsp/workspace.hpp"
#include "imu/sample_ring.hpp"

namespace ptrack::core {

/// Finalization margins (s). See the header comment for what each covers.
inline constexpr double kProjectionCtxS = 3.0;
inline constexpr double kProjectionMarginS = 2.5;
/// Trailing raw-history window (s) the projection estimates its up /
/// anterior axes over when advancing incrementally. Axes fit only to the
/// short per-hop re-projection span wander with local gestures (and flip
/// borderline offset tests); 20 s matches the legacy recompute window, so
/// the incremental mode's axis stability is no worse than the sliding
/// window it replaced. A batch flush spans the whole trace in one region,
/// where the history and the projected span coincide and the axes reduce
/// to the batch estimate exactly.
inline constexpr double kProjectionAxisWindowS = 20.0;
inline constexpr double kSegmentationLookbackS = 5.0;
inline constexpr double kSegmentationMarginS = 1.8;

/// Numeric precision of the projection frontend. kDouble is the batch
/// pipeline's arithmetic, bit-stable against the batch oracle. kFloat32
/// routes the per-sample projection and filtering passes through the f32
/// SIMD kernels (project_channels_f32: twice the lane width, half the
/// memory traffic) and widens the finalized channels back to the double
/// rings, so every stage downstream of projection is unchanged. Requires a
/// SampleRing with enable_f32() and a workspace; incompatible with the
/// attitude-filter path (which stays double-only). Divergence from kDouble
/// is bounded by float rounding (tests/test_streaming_f32.cpp).
enum class Precision { kDouble, kFloat32 };

/// Cumulative per-stage wall-clock cost (µs); zeros when obs is disabled.
struct StageStats {
  double project_us = 0.0;  ///< projection + filtering
  double count_us = 0.0;    ///< segmentation + gait classification
  double stride_us = 0.0;   ///< stride estimation, fill and smoothing
  std::size_t advances = 0; ///< pipeline hops driven
};

/// Projects the raw stream into band-limited vertical/anterior channels,
/// finalizing samples `kProjectionMarginS` behind the raw frontier. The
/// finalized channels accumulate in absolute-indexed rings aligned with the
/// raw ring's index space.
class ProjectionStage {
 public:
  ProjectionStage(const StepCounterConfig& cfg, double fs, dsp::Workspace* ws,
                  Precision precision = Precision::kDouble);

  /// Advances the projected frontier over `ring`; flush finalizes up to the
  /// raw frontier. Appends only — previously finalized samples never change.
  void advance(const imu::SampleRing& ring, bool flush);

  [[nodiscard]] const Ring<double>& vertical() const { return vert_; }
  [[nodiscard]] const Ring<double>& anterior() const { return ant_; }
  /// One past the newest finalized projected sample (absolute).
  [[nodiscard]] std::size_t frontier() const { return vert_.end(); }
  /// Earliest *raw* absolute index the next advance will read.
  [[nodiscard]] std::size_t min_required() const;
  /// Drops projected samples below `new_base` (downstream consumers done).
  void trim_projected(std::size_t new_base);

  [[nodiscard]] double fs() const { return fs_; }

 private:
  StepCounterConfig cfg_;
  double fs_;
  dsp::Workspace* ws_;
  Precision precision_;
  std::size_t ctx_;          ///< re-projection context (samples)
  std::size_t margin_;       ///< finalization margin (samples)
  std::size_t axis_window_;  ///< axis-estimation history (samples)

  Ring<double> vert_;
  Ring<double> ant_;
  ProjectionSeam seam_{};

  // Reused per-hop projection outputs: project_channels_into refills them
  // in place, so re-projection stops allocating once the region capacity
  // has warmed up.
  ProjectedTrace proj_{};
  ProjectedTraceF projf_{};

  // Attitude-filter mode: per-sample up track, fed causally.
  Ring<Vec3> ups_;
  dsp::AttitudeEstimator attitude_{};
};

/// Finds step peaks over the finalized projected vertical channel and pairs
/// them into candidate cycles, carrying the peak list and the pairing index
/// across hops. Candidates are emitted exactly once, in order.
class SegmentationStage {
 public:
  SegmentationStage(const StepCounterConfig& cfg, double fs);

  /// Scans newly finalized projected samples; appends newly finalized
  /// candidate cycles to `out` (absolute indices).
  void advance(const Ring<double>& vertical, bool flush,
               std::vector<CycleCandidate>& out);

  /// Earliest projected absolute index the next advance will read.
  [[nodiscard]] std::size_t min_required() const;

 private:
  StepCounterConfig cfg_;
  double fs_;
  std::size_t lookback_;  ///< re-scan context behind the last final peak
  std::size_t margin_;    ///< peak finalization margin (samples)

  std::vector<std::size_t> peaks_;  ///< finalized peaks awaiting pairing
  std::vector<std::size_t> scan_scratch_;  ///< per-hop peak-scan results
  std::size_t pair_index_ = 0;      ///< batch pairing loop index into peaks_
  std::size_t last_final_peak_ = 0;
  bool have_last_final_ = false;
  std::size_t scan_floor_ = 0;  ///< monotone lower bound of the scan region
};

/// Classifies candidate cycles, confirms withheld stepping streaks,
/// estimates per-step strides and finalizes events once their median
/// smoothing window closes. Mirrors the batch StepCounter + PTrack stride
/// fill exactly (same classification state machine, same fill and
/// moving-median arithmetic).
class EventAssembler {
 public:
  EventAssembler(const StepCounterConfig& counter_cfg,
                 const StrideConfig& stride_cfg, double fs);

  void set_profile(const StrideProfile& profile);

  /// Consumes newly finalized candidates; `vertical`/`anterior` are the
  /// projection stage's rings, `raw` supplies per-sample quality flags.
  /// Per-stage costs are accumulated into `stats` (count vs stride).
  void advance(std::span<const CycleCandidate> fresh,
               const Ring<double>& vertical, const Ring<double>& anterior,
               const imu::SampleRing& raw, bool flush, StageStats* stats);

  /// Drains finalized events (chronological; each exactly once).
  std::vector<StepEvent> take_events();
  /// Drains finalized cycle records (candidate order; each exactly once).
  std::vector<CycleRecord> take_cycles();

  /// Appends finalized events to `out` and clears the internal buffer
  /// *keeping its capacity* — the steady-state form (take_events hands the
  /// buffer away, so the next hop re-grows it from nothing).
  void drain_events(std::vector<StepEvent>& out);
  /// Discards finalized cycle records, keeping the buffer capacity (for
  /// consumers that only want events).
  void discard_cycles() { cycles_out_.clear(); }

  /// Earliest absolute index still needed (withheld cycles' channel spans
  /// and quality flags); SIZE_MAX when nothing is pending.
  [[nodiscard]] std::size_t min_required() const;

 private:
  void resolve_withheld_interference();
  void confirm(CycleRecord record, const Ring<double>& vertical,
               const Ring<double>& anterior, const imu::SampleRing& raw);
  void finalize_events(bool flush);
  [[nodiscard]] double smoothed_stride(std::size_t i,
                                       std::size_t n_total) const;

  StepCounterConfig ccfg_;
  StrideConfig scfg_;
  double fs_;
  GaitIdentifier identifier_;
  StrideEstimator estimator_;

  // Candidate bookkeeping (mirrors StepCounter::process_projected).
  std::size_t prev_end_ = 0;
  bool have_prev_ = false;
  std::vector<CycleRecord> withheld_;  ///< open streak, <= streak-1 entries

  // Pending events: created at confirmation, finalized when their stride
  // fill and smoothing window are stable. Both rings are indexed by
  // absolute event number (one stride per event, = the batch post-fill
  // sequence); pending_events_ retains [events_final_, events_created_).
  Ring<StepEvent> pending_events_;
  Ring<double> fills_;
  std::size_t events_created_ = 0;
  std::size_t events_final_ = 0;
  bool seen_positive_ = false;
  double last_positive_ = 0.0;
  std::size_t eff_window_;  ///< effective (odd) median window, 1 = off
  std::size_t half_;

  std::vector<StepEvent> events_out_;
  std::vector<CycleRecord> cycles_out_;
  mutable std::vector<double> median_scratch_;  ///< smoothing window reuse
};

/// The three stages wired together over one raw ring. One instance serves
/// either a whole batch trace (single flush advance) or a live stream
/// (hop-wise advances); see the header comment for the equivalence
/// contract.
class StagePipeline {
 public:
  StagePipeline(const StepCounterConfig& counter_cfg,
                const StrideConfig& stride_cfg, double fs, dsp::Workspace* ws,
                Precision precision = Precision::kDouble);

  void set_profile(const StrideProfile& profile);

  /// Runs every stage over the ring's new tail. With flush, finalizes all
  /// margins (stream end or batch completion; streaming may continue
  /// afterwards).
  void advance(const imu::SampleRing& ring, bool flush);

  std::vector<StepEvent> take_events() { return assembler_.take_events(); }
  std::vector<CycleRecord> take_cycles() { return assembler_.take_cycles(); }

  /// Capacity-preserving drains (see EventAssembler): the streaming hot
  /// path uses these so a hop never hands buffer capacity away.
  void drain_events(std::vector<StepEvent>& out) {
    assembler_.drain_events(out);
  }
  void discard_cycles() { assembler_.discard_cycles(); }

  /// Earliest raw absolute index any stage will still read: the caller may
  /// trim_to() its SampleRing to this after draining.
  [[nodiscard]] std::size_t min_required_index() const;

  [[nodiscard]] const StageStats& stats() const { return stats_; }
  [[nodiscard]] double fs() const { return projection_.fs(); }

 private:
  ProjectionStage projection_;
  SegmentationStage segmentation_;
  EventAssembler assembler_;
  StageStats stats_;
  std::vector<CycleCandidate> fresh_;  ///< per-advance scratch
};

}  // namespace ptrack::core
