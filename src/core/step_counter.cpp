#include "core/step_counter.hpp"

#include "common/error.hpp"
#include "core/gait_id.hpp"
#include "core/segmentation.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::core {

StepCounter::StepCounter(StepCounterConfig cfg) : cfg_(cfg) {}

TrackResult StepCounter::process(const imu::Trace& trace) const {
  if (trace.size() < 16) return {};
  const ProjectedTrace projected =
      cfg_.use_attitude_filter
          ? project_trace_with_attitude(trace, cfg_.lowpass_hz,
                                        cfg_.anterior_window_s)
          : project_trace(trace, cfg_.lowpass_hz, cfg_.anterior_window_s);
  return process_projected(projected);
}

TrackResult StepCounter::process_projected(
    const ProjectedTrace& projected) const {
  TrackResult result;
  const double fs = projected.fs;
  expects(fs > 0.0, "process_projected: fs > 0");

  PTRACK_OBS_SPAN("ptrack.core.count");
  const auto candidates = [&] {
    PTRACK_OBS_SPAN("ptrack.core.segment");
    return segment_cycles(projected.vertical, fs, cfg_);
  }();
  PTRACK_COUNT_N("ptrack.core.cycles", candidates.size());
  GaitIdentifier identifier(cfg_);

  std::size_t prev_end = 0;
  bool have_prev = false;
  for (const CycleCandidate& c : candidates) {
    // A gap between candidates breaks any stepping streak.
    if (have_prev && c.begin != prev_end) identifier.reset();
    prev_end = c.end;
    have_prev = true;

    const std::size_t n = c.end - c.begin;
    if (n < 8) continue;
    const std::span<const double> vert(projected.vertical.data() + c.begin, n);
    const std::span<const double> ant(projected.anterior.data() + c.begin, n);

    const CycleAnalysis analysis = analyze_cycle(vert, ant, cfg_);
    const GaitIdentifier::Decision decision = identifier.classify(analysis);

    CycleRecord record;
    record.begin = c.begin;
    record.mid = c.mid;
    record.end = c.end;
    record.type = decision.type;
    record.offset = analysis.offset;
    record.half_cycle_corr = analysis.half_cycle_corr;
    record.phase_ok = analysis.phase_ok;
    result.cycles.push_back(record);

    const auto emit_steps = [&](const CycleRecord& cycle) {
      // The two steps of the cycle complete at its mid and end peaks; the
      // cycle's begin/mid/end indices are step-peak positions.
      StepEvent mid_event;
      mid_event.t = static_cast<double>(cycle.mid) / fs;
      mid_event.type = cycle.type;
      result.events.push_back(mid_event);
      StepEvent end_event;
      end_event.t = static_cast<double>(cycle.end) / fs;
      end_event.type = cycle.type;
      result.events.push_back(end_event);
      result.steps += 2;
    };

    if (decision.type != GaitType::Interference) {
      // Retro-confirm withheld cycles first so event times stay ordered.
      if (decision.confirmed_backlog > 0) {
        const std::size_t first =
            result.cycles.size() - 1 - decision.confirmed_backlog;
        for (std::size_t i = first; i + 1 < result.cycles.size(); ++i) {
          result.cycles[i].type = GaitType::Stepping;
          emit_steps(result.cycles[i]);
        }
      }
      emit_steps(record);
    }
  }
  return result;
}

}  // namespace ptrack::core
