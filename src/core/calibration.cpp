#include "core/calibration.hpp"

#include "common/error.hpp"
#include "core/ptrack.hpp"

namespace ptrack::core {

CalibrationResult calibrate_k(const imu::Trace& calibration_walk,
                              double known_distance,
                              const StrideProfile& profile,
                              const StepCounterConfig& counter) {
  expects(known_distance > 0.0, "calibrate_k: known_distance > 0");

  PTrackConfig config;
  config.counter = counter;
  config.stride.profile = profile;
  PTrack tracker(config);
  const TrackResult result = tracker.process(calibration_walk);
  if (result.steps == 0 || result.distance() <= 0.0) {
    throw Error("calibrate_k: the calibration walk produced no counted steps");
  }

  CalibrationResult out;
  out.steps = result.steps;
  out.distance_ratio = known_distance / result.distance();
  // Stride is linear in k, so the modeled distance rescales directly.
  out.k = profile.k * out.distance_ratio;
  return out;
}

}  // namespace ptrack::core
