// Activity summary: turns a TrackResult into the aggregate report a
// fitness application shows (the paper's healthcare motivation — truthful
// activity levels, not raw counts).

#pragma once

#include "core/types.hpp"

namespace ptrack::core {

/// Aggregate statistics over one tracked trace.
struct ActivitySummary {
  std::size_t steps = 0;          ///< counted steps
  double distance_m = 0.0;        ///< walked distance
  double active_s = 0.0;          ///< time spent in counted gait cycles
  double walking_s = 0.0;         ///< ... of which arm-swing walking
  double stepping_s = 0.0;        ///< ... of which rigid-arm stepping
  double excluded_s = 0.0;        ///< candidate time excluded as interference
  double mean_cadence_hz = 0.0;   ///< steps per active second (0 if none)
  double mean_stride_m = 0.0;     ///< mean per-step stride (0 if none)
  double max_stride_m = 0.0;

  // Signal-quality rollup (see core::SignalQuality / imu::QualityReport):
  // a truthful activity report must say how much of it stands on repaired
  // or reconstructed data.
  double clean_fraction = 1.0;    ///< trace samples left untouched
  double repaired_fraction = 0.0; ///< trace samples gap-filled
  double masked_fraction = 0.0;   ///< trace samples hard-masked
  double mean_step_quality = 0.0; ///< mean StepEvent::quality (0 if no steps)
  std::size_t degraded_steps = 0; ///< steps flagged StepEvent::degraded
};

/// Builds the summary. `fs` is the trace's sample rate (used to convert the
/// cycle sample indices to seconds; must be > 0).
ActivitySummary summarize(const TrackResult& result, double fs);

}  // namespace ptrack::core
