// Critical-point extraction (paper SIII-B1).
//
// Within a candidate gait cycle, the critical points of each projected
// channel are its *turning points* (local extrema) and its *zero crossings*
// (a turning point on one axis coinciding with a zero on the other is the
// paper's "crossing point"; representing zeros as first-class points on
// each axis lets one nearest-neighbor match capture both coincidence
// types).

#pragma once

#include <span>
#include <vector>

namespace ptrack::core {

/// Kind of a critical point.
enum class CriticalKind {
  Maximum,
  Minimum,
  Zero,
};

/// One critical point of one channel.
struct CriticalPoint {
  std::size_t index = 0;  ///< sample index within the cycle
  CriticalKind kind = CriticalKind::Maximum;
};

/// Extraction options.
struct CriticalPointOptions {
  /// Extremum prominence as a fraction of the cycle's peak-to-peak span.
  double prominence_fraction = 0.12;
  /// Zero-crossing hysteresis as a fraction of the cycle RMS.
  double hysteresis_fraction = 0.20;
  /// Absolute prominence floor (m/s^2): extrema weaker than this are sensor
  /// noise or postural sway, not activity, regardless of the cycle span.
  double min_abs_prominence = 0.0;
};

/// Extracts critical points of one channel within a cycle, sorted by index.
/// The signal is demeaned internally before zero crossings are computed (a
/// cycle-long DC offset is posture, not motion).
///
/// `include_zeros` selects the role of the channel in the Eq. (1) match:
/// the *query* channel (vertical) uses turning points only; the *match*
/// channel (anterior) additionally exposes its zeros, so that a vertical
/// turning point aligned with an anterior zero — the paper's "crossing
/// point" — scores as a perfect match.
std::vector<CriticalPoint> critical_points(
    std::span<const double> cycle, const CriticalPointOptions& opt = {},
    bool include_zeros = true);

/// Reuse-friendly form: clears and refills `out`; allocation-free once the
/// caller's buffer and the per-thread scratch have warmed up. This is the
/// variant the per-cycle gait identification uses at steady state.
void critical_points_into(std::span<const double> cycle,
                          const CriticalPointOptions& opt, bool include_zeros,
                          std::vector<CriticalPoint>& out);

}  // namespace ptrack::core
