// Streaming (online) PTrack: push IMU samples as they arrive, poll step
// events as they are confirmed — the operating mode of the paper's
// smartwatch prototype, with bounded memory.
//
// Default mode (kIncremental): the pushed stream flows through the online
// quality stage (imu::IncrementalQuality) into a contiguous SoA ring
// (imu::SampleRing), and every hop advances the same incremental stage
// graph the batch facade runs (core/stages.hpp). Each hop touches only the
// new samples plus bounded finalization margins, so per-hop cost is
// independent of how long the stream has been running — and of any
// analysis-window length. Events come out finalized, chronological and
// never retracted.
//
// Baseline mode (kRecompute): the original sliding-window wrapper — keep a
// window of recent samples, re-run the batch pipeline over it each hop and
// emit events beyond the already-emitted frontier, withholding a trailing
// guard region. O(window) per hop; retained for benchmarking
// (bench/micro_streaming.cpp) and as a behavioural reference.
//
// Consistency: over the same stream, the incremental event sequence is
// validated hop-for-hop against the batch result on the same samples
// (tests/test_streaming_equivalence.cpp); divergences are confined to the
// documented seam effects (per-hop gravity estimate, filter margins,
// running quality statistics — see DESIGN.md §13).
//
// Short streams: the pipeline needs >= 16 samples to project and three
// step peaks (>= ~0.7 s apart) to form a cycle, so finish() on a stream of
// fewer than 32 samples emits nothing in either mode (the recompute mode
// additionally skips windows below 32 samples outright).

#pragma once

#include <cmath>
#include <deque>
#include <optional>
#include <vector>

#include "core/ptrack.hpp"
#include "core/stages.hpp"
#include "imu/quality.hpp"
#include "imu/sample.hpp"
#include "imu/sample_ring.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Streaming configuration on top of the batch PTrackConfig.
struct StreamingConfig {
  PTrackConfig pipeline{};
  /// Execution mode: incremental stage graph (default) or the legacy
  /// full-window recompute baseline.
  enum class Mode { kIncremental, kRecompute };
  Mode mode = Mode::kIncremental;
  /// Advance the pipeline after this many seconds of new samples.
  double hop_s = 2.0;
  /// Recompute mode: sliding analysis window (s). Must comfortably exceed
  /// the guard. (The incremental mode needs no window — its state carries
  /// across hops.)
  double window_s = 20.0;
  /// Recompute mode: events younger than this are withheld as unconfirmed
  /// (s), covering the stepping streak plus a segmentation margin. (The
  /// incremental mode derives its finalization margins per stage; see
  /// core/stages.hpp.)
  double guard_s = 5.0;
  /// Numeric precision of the per-hop projection frontend (incremental
  /// mode only — the recompute baseline re-runs the double batch pipeline
  /// by definition). kFloat32 is the opt-in fast path: the ring keeps f32
  /// accel mirrors and the projection stage runs project_channels_f32;
  /// everything downstream of projection stays double. Incompatible with
  /// Mode::kRecompute and with use_attitude_filter (construction throws).
  /// See core::Precision for the accuracy contract.
  Precision precision = Precision::kDouble;
  /// Arm an alloc::NoAllocScope around every steady-state incremental hop
  /// (each non-flush advance after the first flush). With PTrack checks
  /// enabled, any heap allocation inside such a hop then throws
  /// InvariantViolation at the offending allocation site — the enforcement
  /// mode of the zero-allocation steady-state contract (DESIGN.md §15).
  /// Off by default: production streams should count, not throw.
  bool enforce_no_alloc = false;
};

/// Lifetime statistics of a StreamingTracker (see stats()). All values are
/// cumulative since construction and cover confirmed (polled or ready)
/// events only.
struct StreamingStats {
  std::size_t samples_pushed = 0;     ///< samples accepted by push()
  std::size_t windows_processed = 0;  ///< pipeline hops (advances/re-runs)
  std::size_t events_emitted = 0;     ///< events handed out via poll()
  std::size_t degraded_events = 0;    ///< emitted events flagged degraded
  double distance_m = 0.0;            ///< sum of emitted strides

  /// Fraction of emitted events that were degraded (0 when none emitted).
  [[nodiscard]] double degraded_fraction() const {
    return events_emitted == 0
               ? 0.0
               : static_cast<double>(degraded_events) /
                     static_cast<double>(events_emitted);
  }
};

/// Online tracker. Not thread-safe; drive it from one thread.
class StreamingTracker {
 public:
  /// `fs` is the sample rate of the pushed stream (Hz, > 0).
  explicit StreamingTracker(double fs, StreamingConfig config = {});

  /// Pushes one sample (timestamps are assigned internally from the sample
  /// count, so the caller may pass raw sensor readings).
  void push(const imu::Sample& sample);

  /// Pushes a whole batch. Throws InvalidArgument when the trace's sample
  /// rate does not match the tracker's `fs` — silently mixing rates would
  /// corrupt every time-based stage (resample the trace first).
  void push(const imu::Trace& trace);

  /// Events confirmed since the last poll (chronological). Each event is
  /// emitted exactly once.
  std::vector<StepEvent> poll();

  /// Appends the confirmed events to `out` instead of returning a fresh
  /// vector: with a reused `out`, polling is allocation-free at steady
  /// state (poll() wraps this).
  void poll_into(std::vector<StepEvent>& out);

  /// Flushes all finalization margins at end of stream and returns the
  /// final events. The tracker can keep streaming afterwards (the flush
  /// seam behaves like a stream pause: open stepping streaks are dropped).
  /// Emits nothing when fewer than 32 samples were ever pushed.
  std::vector<StepEvent> finish();

  /// The allocation-shaped dual of finish(): flushes all finalization
  /// margins and appends the final events to `out` (poll_into discipline —
  /// with a reused `out`, draining is allocation-free once warm). This is
  /// the finalize API for hosts that must flush many live trackers on
  /// shutdown — e.g. ptrack_serve's SIGTERM drain path, which walks the
  /// session table calling drain_into on every open stream. Equivalent to
  /// the batch pipeline over the same samples (the PR-5 oracle tie:
  /// tests/test_core_streaming.cpp DrainMatchesBatchOracle).
  void drain_into(std::vector<StepEvent>& out);

  /// Steps emitted so far (confirmed only).
  [[nodiscard]] std::size_t steps() const { return emitted_steps_; }

  /// Emitted steps flagged degraded (their half-cycle was majority-masked
  /// by the quality layer; see StepEvent::degraded). Each polled event also
  /// carries its own quality/degraded fields.
  [[nodiscard]] std::size_t degraded_steps() const {
    return emitted_degraded_;
  }

  /// Distance walked so far (sum of emitted strides, m).
  [[nodiscard]] double distance() const { return emitted_distance_; }

  [[nodiscard]] double fs() const { return fs_; }

  /// Toggles StreamingConfig::enforce_no_alloc at runtime. A typical
  /// harness streams a warm-up prefix with enforcement off (buffers and
  /// scratch still growing to steady size), then arms it for the measured
  /// region.
  void set_enforce_no_alloc(bool on) { config_.enforce_no_alloc = on; }

  /// Snapshot of the tracker's lifetime statistics (hops run, events
  /// emitted, degraded fraction).
  [[nodiscard]] StreamingStats stats() const {
    StreamingStats s;
    s.samples_pushed = samples_pushed_;
    s.windows_processed = windows_processed_;
    s.events_emitted = emitted_steps_;
    s.degraded_events = emitted_degraded_;
    s.distance_m = emitted_distance_;
    return s;
  }

 private:
  // Incremental mode: one stage-graph advance over the ring's new tail.
  void run_hop(bool flush);

  // Recompute mode: legacy full-window re-run.
  void push_recompute(const imu::Sample& sample);
  void process_window(double horizon);

  double fs_;
  StreamingConfig config_;

  // --- Incremental mode state -------------------------------------------
  dsp::Workspace workspace_;             ///< must outlive pipe_
  imu::SampleRing ring_;
  StagePipeline pipe_;
  std::optional<imu::IncrementalQuality> quality_;
  std::vector<imu::RepairedSample> repair_buf_;  ///< per-push scratch
  std::size_t hop_samples_;
  std::size_t samples_since_hop_ = 0;
  bool warmed_up_ = false;  ///< a flush hop has run (buffers are sized)

  // --- Recompute mode state ---------------------------------------------
  PTrack pipeline_;
  std::deque<imu::Sample> window_;   ///< sliding sample window
  double window_start_t_ = 0.0;      ///< absolute time of window_.front()
  double next_t_ = 0.0;              ///< absolute time of the next sample
  double last_processed_t_ = 0.0;    ///< stream time at last pipeline run
  double emit_frontier_ = 0.0;       ///< events up to here were emitted

  // --- Shared accounting -------------------------------------------------
  std::vector<StepEvent> ready_;     ///< confirmed, not yet polled
  std::size_t emitted_steps_ = 0;
  std::size_t emitted_degraded_ = 0;
  double emitted_distance_ = 0.0;
  std::size_t samples_pushed_ = 0;
  std::size_t windows_processed_ = 0;
};

}  // namespace ptrack::core
