// Streaming (online) PTrack: push IMU samples as they arrive, poll step
// events as they are confirmed — the operating mode of the paper's
// smartwatch prototype, with bounded memory.
//
// Design: the batch pipeline is already causal at cycle granularity (a
// cycle is classified when its closing peak lands; the stepping streak
// defers confirmation by at most `streak` cycles). The streaming wrapper
// therefore keeps a sliding window of recent samples, re-runs the batch
// pipeline on it when enough new data has accumulated, and emits exactly
// the events whose timestamps lie beyond the already-emitted frontier.
// A trailing guard region (the unconfirmed tail: up to `streak` cycles
// plus one segmentation margin) is withheld until more data arrives, so
// emitted events never have to be retracted.
//
// Consistency: over the same trace, the streaming event stream matches the
// batch result up to (a) events inside the final guard region, which are
// flushed by finish(), and (b) small stride differences near chunk seams
// where the median smoother sees a truncated neighborhood.

#pragma once

#include <deque>
#include <vector>

#include "core/ptrack.hpp"
#include "imu/sample.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Streaming configuration on top of the batch PTrackConfig.
struct StreamingConfig {
  PTrackConfig pipeline{};
  /// Re-run the pipeline after this many seconds of new samples.
  double hop_s = 2.0;
  /// Sliding analysis window (s). Must comfortably exceed the guard.
  double window_s = 20.0;
  /// Events younger than this are withheld as unconfirmed (s): covers the
  /// stepping streak (3 cycles ~ 3.6 s) plus a segmentation margin.
  double guard_s = 5.0;
};

/// Lifetime statistics of a StreamingTracker (see stats()). All values are
/// cumulative since construction and cover confirmed (polled or ready)
/// events only.
struct StreamingStats {
  std::size_t samples_pushed = 0;     ///< samples accepted by push()
  std::size_t windows_processed = 0;  ///< pipeline re-runs over the window
  std::size_t events_emitted = 0;     ///< events handed out via poll()
  std::size_t degraded_events = 0;    ///< emitted events flagged degraded
  double distance_m = 0.0;            ///< sum of emitted strides

  /// Fraction of emitted events that were degraded (0 when none emitted).
  [[nodiscard]] double degraded_fraction() const {
    return events_emitted == 0
               ? 0.0
               : static_cast<double>(degraded_events) /
                     static_cast<double>(events_emitted);
  }
};

/// Online tracker. Not thread-safe; drive it from one thread.
class StreamingTracker {
 public:
  /// `fs` is the sample rate of the pushed stream (Hz, > 0).
  explicit StreamingTracker(double fs, StreamingConfig config = {});

  /// Pushes one sample (timestamps are assigned internally from the sample
  /// count, so the caller may pass raw sensor readings).
  void push(const imu::Sample& sample);

  /// Pushes a whole batch.
  void push(const imu::Trace& trace);

  /// Events confirmed since the last poll (chronological). Each event is
  /// emitted exactly once.
  std::vector<StepEvent> poll();

  /// Flushes the guard region at end of stream and returns the final
  /// events. The tracker can keep streaming afterwards.
  std::vector<StepEvent> finish();

  /// Steps emitted so far (confirmed only).
  [[nodiscard]] std::size_t steps() const { return emitted_steps_; }

  /// Emitted steps flagged degraded (their half-cycle was majority-masked
  /// by the quality layer; see StepEvent::degraded). Each polled event also
  /// carries its own quality/degraded fields.
  [[nodiscard]] std::size_t degraded_steps() const {
    return emitted_degraded_;
  }

  /// Distance walked so far (sum of emitted strides, m).
  [[nodiscard]] double distance() const { return emitted_distance_; }

  [[nodiscard]] double fs() const { return fs_; }

  /// Snapshot of the tracker's lifetime statistics (chunks seen, events
  /// emitted, degraded fraction).
  [[nodiscard]] StreamingStats stats() const {
    StreamingStats s;
    s.samples_pushed = samples_pushed_;
    s.windows_processed = windows_processed_;
    s.events_emitted = emitted_steps_;
    s.degraded_events = emitted_degraded_;
    s.distance_m = emitted_distance_;
    return s;
  }

 private:
  /// Runs the batch pipeline over the window and moves newly confirmed
  /// events (t <= horizon) into the pending queue.
  void process_window(double horizon);

  double fs_;
  StreamingConfig config_;
  PTrack pipeline_;

  std::deque<imu::Sample> window_;   ///< sliding sample window
  double window_start_t_ = 0.0;      ///< absolute time of window_.front()
  double next_t_ = 0.0;              ///< absolute time of the next sample
  double last_processed_t_ = 0.0;    ///< stream time at last pipeline run
  double emit_frontier_ = 0.0;       ///< events up to here were emitted
  std::vector<StepEvent> ready_;     ///< confirmed, not yet polled
  std::size_t emitted_steps_ = 0;
  std::size_t emitted_degraded_ = 0;
  double emitted_distance_ = 0.0;
  std::size_t samples_pushed_ = 0;
  std::size_t windows_processed_ = 0;
};

}  // namespace ptrack::core
