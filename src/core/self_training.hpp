// User-profile self-training (paper SIII-C2).
//
// The paper's two-step design with the technical details it omits
// reconstructed as follows (documented in DESIGN.md §3):
//
//  Step 1 — arm length m̂. The primary signal is the *stepping anchor*:
//  during stepping (pocketed hand, carried bag — which daily traces
//  naturally contain) the device rides the body and observes the bounce
//  directly; m̂ is the arm length whose walking-geometry bounce agrees
//  with that direct observation. The dispersion of the walking-derived
//  bounce and an invalid-solve penalty regularize the search; with a
//  walking-only calibration trace m̂ is only weakly identified, but the
//  Step-2 distance anchor then absorbs the residual scale error.
//
//  Step 2 — leg length l̂: anchored on a known calibration distance, reusing
//  the initialization walk the paper already requires for training the
//  Eq. (2) factor k (in deployment: any GPS-available outdoor segment).
//  l̂ minimizes the squared difference between the modeled total distance
//  and the known distance.

#pragma once

#include "core/types.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Search configuration.
struct SelfTrainingConfig {
  StepCounterConfig counter{};
  double k = 2.0;              ///< Eq. (2) factor used during the search
  double arm_min = 0.50;       ///< m̂ search range (m)
  double arm_max = 0.95;
  double arm_step = 0.005;
  double leg_min = 0.65;       ///< l̂ search range (m)
  double leg_max = 1.15;
  double leg_step = 0.005;
  double invalid_penalty = 4.0;  ///< weight of invalid-solve fraction
  double stepping_anchor_weight = 25.0; ///< weight of stepping-bounce term
};

/// Result of one self-training pass.
struct SelfTrainingResult {
  double arm_length = 0.0;
  double leg_length = 0.0;
  double arm_objective = 0.0;  ///< objective at the chosen m̂
  double leg_objective = 0.0;  ///< objective at the chosen l̂
  std::size_t walking_cycles = 0;  ///< evidence volume for m̂
};

/// Step 1: trains m̂ from an unlabeled trace containing walking.
/// Requires enough walking cycles (>= 8) or throws ptrack::Error.
double train_arm_length(const imu::Trace& trace,
                        const SelfTrainingConfig& cfg = {});

/// Step 2: trains l̂ given m̂ and the true length of the walked trajectory.
double train_leg_length(const imu::Trace& trace, double arm_length,
                        double known_distance,
                        const SelfTrainingConfig& cfg = {});

/// Both steps over a calibration walk of known length.
SelfTrainingResult self_train(const imu::Trace& trace, double known_distance,
                              const SelfTrainingConfig& cfg = {});

}  // namespace ptrack::core
