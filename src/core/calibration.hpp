// Per-user calibration of the Eq. (2) factor k (the paper's
// "initialization phase": k is trained for each user against a walk of
// known length). Complements self_training: self_train() learns m and l,
// calibrate_k() refines the multiplicative scale for users whose gait
// deviates from the default inverted-pendulum factor of 2.

#pragma once

#include "core/types.hpp"
#include "imu/trace.hpp"

namespace ptrack::core {

/// Result of a k calibration pass.
struct CalibrationResult {
  double k = 2.0;                ///< calibrated Eq. (2) factor
  double distance_ratio = 1.0;   ///< known / modeled distance at k = base_k
  std::size_t steps = 0;         ///< steps counted in the calibration walk
};

/// Calibrates k so the modeled distance of the calibration walk matches
/// `known_distance` (> 0). The profile's arm and leg lengths are taken
/// from `profile`; its k field is the starting value. Eq. (2) is linear in
/// k, so the calibration is a single closed-form rescale. Throws
/// ptrack::Error when the walk yields no counted steps.
CalibrationResult calibrate_k(const imu::Trace& calibration_walk,
                              double known_distance,
                              const StrideProfile& profile,
                              const StepCounterConfig& counter = {});

}  // namespace ptrack::core
