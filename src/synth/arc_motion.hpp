// Generic rigid 1-DOF arc-motion generator.
//
// Every interfering activity the paper tests (eating, poker, photo, gaming)
// and the spoofing rig share one physical structure: a *rigid* object (the
// forearm/hand, or the rocker) rotating about a pivot along a single
// degree of freedom. PTrack's key observation rests exactly on this
// rigidity — both projected acceleration components are functions of the
// same scalar angle, so their critical points synchronize. This generator
// realizes that structure once; activities differ only in waveform, rate,
// amplitude, plane, tremor and residual body sway.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"

namespace ptrack::synth {

/// Angle waveform shapes.
enum class Waveform {
  Sine,   ///< smooth harmonic swing (spoofer, gaming)
  Dwell,  ///< flattened extremes — dwell at plate/mouth (eating, photo)
  Flick,  ///< asymmetric fast-out/slow-back (poker dealing)
  Pulse,  ///< out-and-back burst occupying `duty` of the cycle, rest flat
          ///< (discrete gestures: a bite, dealing one card)
};

/// Parameters of one arc motion.
struct ArcMotionParams {
  double base_freq = 1.0;        ///< arc cycles per second
  double freq_jitter = 0.05;     ///< relative per-cycle period jitter
  double amplitude = 0.3;        ///< half-angle (rad)
  double amplitude_jitter = 0.1; ///< relative per-cycle amplitude jitter
  double radius = 0.35;          ///< pivot-to-device distance (m)
  double center_angle = 0.0;     ///< arc midpoint angle (rad)
  Waveform waveform = Waveform::Sine;
  double dwell_sharpness = 2.5;  ///< tanh steepness for Waveform::Dwell
  double duty = 0.4;             ///< active fraction for Waveform::Pulse
  Vec3 plane_a{0, 0, -1};        ///< unit vector at angle 0 (from pivot)
  Vec3 plane_b{1, 0, 0};         ///< unit vector at angle +pi/2
  double tremor_freq = 0.0;      ///< superimposed small arc (Hz); 0 = none
  double tremor_amp = 0.0;       ///< tremor half-angle (rad)
  double tremor_burst_freq = 0.0;  ///< tremor on/off modulation (Hz); 0 = continuous
  double sway_amp = 0.0;         ///< residual body sway translation (m)
  double sway_freq = 0.25;       ///< body sway rate (Hz)
};

/// Output of the arc generator: positions plus the arc angle stream (used
/// by the synthesizer's attitude-residual model — a hand-held/worn device
/// physically tilts with the arc, and imperfect sensor fusion leaks a
/// fraction of that tilt into the projected accelerations).
struct ArcPath {
  std::vector<Vec3> pos;      ///< device positions relative to the pivot
  std::vector<double> theta;  ///< arc angle minus center_angle (rad)
  Vec3 tilt_axis{0, 1, 0};    ///< world axis the device tilts about
};

/// Device positions (relative to the pivot at the origin) sampled at `fs`
/// for `duration` seconds. Deterministic given `rng`.
ArcPath generate_arc(const ArcMotionParams& params, double duration,
                     double fs, Rng& rng);

/// Evaluates the waveform shape at phase phi (radians); output in [-1, 1].
double waveform_value(Waveform w, double phi, double dwell_sharpness,
                      double duty = 0.4);

}  // namespace ptrack::synth
