// User profile: the per-user anthropometrics and gait parameters that drive
// both the synthesizer (ground truth) and the stride model (estimation).

#pragma once

#include "common/rng.hpp"

namespace ptrack::synth {

/// Per-user parameters. Lengths in metres, frequencies in Hz.
///
/// Ground-truth strides and bounces are coupled through the paper's Eq. (2)
/// (s = k * sqrt(l^2 - (l-b)^2)): the synthesizer picks stride from
/// speed/cadence and derives the consistent bounce by inverting the model
/// with `model_k`. That makes the biomechanical model exact in the simulated
/// world — deliberately, because this reproduction tests PTrack's *signal
/// processing* (recovering b from mixed wrist signals), not the validity of
/// the literature's biomechanical model.
struct UserProfile {
  double arm_length = 0.70;    ///< shoulder-to-wrist length m (paper's "m")
  double leg_length = 0.90;    ///< hip-to-ground length (paper's "l")
  double height = 1.72;        ///< used only for shoulder height
  double speed = 1.30;         ///< preferred walking speed (m/s)
  double cadence = 1.85;       ///< steps per second
  double swing_amplitude = 0.38;  ///< arm swing half-angle (rad)
  double swing_cushion = 0.06;    ///< elbow-cushioning distortion fraction
  double model_k = 2.0;        ///< true Eq.(2) calibration factor
  double step_time_jitter = 0.02;   ///< per-step relative period jitter
  double stride_jitter = 0.03;      ///< per-step relative stride jitter
  double arm_phase_jitter = 0.05;   ///< arm-oscillator rate jitter (SIII)

  /// Stride implied by speed and cadence (m).
  [[nodiscard]] double mean_stride() const { return speed / cadence; }

  /// Ground-truth bounce for a given stride via inversion of Eq. (2).
  /// Requires stride < model_k * leg_length.
  [[nodiscard]] double bounce_for_stride(double stride) const;

  /// Eq. (2) forward model: stride from bounce.
  [[nodiscard]] double stride_for_bounce(double bounce) const;
};

/// Draws a plausible random user (heights 1.55-1.90 m, correlated limb
/// lengths, speeds 1.0-1.6 m/s). Deterministic given `rng`.
UserProfile random_user(Rng& rng);

}  // namespace ptrack::synth
