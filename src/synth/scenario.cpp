#include "synth/scenario.hpp"

#include "common/error.hpp"

namespace ptrack::synth {

Scenario& Scenario::add(ScenarioSegment seg) {
  expects(seg.duration > 0.0, "Scenario::add: positive duration");
  segments_.push_back(seg);
  return *this;
}

Scenario& Scenario::walk(double seconds, double speed, double heading) {
  return add({ActivityKind::Walking, seconds, Posture::Standing, speed,
              heading});
}

Scenario& Scenario::run(double seconds, double speed, double heading) {
  return add({ActivityKind::Running, seconds, Posture::Standing, speed,
              heading});
}

Scenario& Scenario::step(double seconds, double speed, double heading) {
  return add({ActivityKind::Stepping, seconds, Posture::Standing, speed,
              heading});
}

Scenario& Scenario::activity(ActivityKind kind, double seconds,
                             Posture posture) {
  return add({kind, seconds, posture, 0.0, 0.0});
}

double Scenario::total_duration() const {
  double d = 0.0;
  for (const auto& s : segments_) d += s.duration;
  return d;
}

Scenario Scenario::pure_walking(double seconds) {
  return Scenario{}.walk(seconds);
}

Scenario Scenario::pure_stepping(double seconds) {
  return Scenario{}.step(seconds);
}

Scenario Scenario::mixed_gait(double seconds) {
  Scenario s;
  // Alternate walking and stepping in ~15 s blocks, walking first.
  double remaining = seconds;
  bool walking = true;
  while (remaining > 0.0) {
    const double block = remaining < 22.0 ? remaining : 15.0;
    if (walking) {
      s.walk(block);
    } else {
      s.step(block);
    }
    walking = !walking;
    remaining -= block;
  }
  return s;
}

Scenario Scenario::interference(ActivityKind kind, double seconds,
                                Posture posture) {
  return Scenario{}.activity(kind, seconds, posture);
}

}  // namespace ptrack::synth
