#include "synth/truth.hpp"

namespace ptrack::synth {

bool is_gait(ActivityKind k) {
  return k == ActivityKind::Walking || k == ActivityKind::Running ||
         k == ActivityKind::Stepping;
}

std::string_view to_string(ActivityKind k) {
  switch (k) {
    case ActivityKind::Walking: return "walking";
    case ActivityKind::Running: return "running";
    case ActivityKind::Stepping: return "stepping";
    case ActivityKind::SwingOnly: return "swing-only";
    case ActivityKind::Eating: return "eating";
    case ActivityKind::Poker: return "poker";
    case ActivityKind::Photo: return "photo";
    case ActivityKind::Gaming: return "gaming";
    case ActivityKind::Spoofer: return "spoofer";
    case ActivityKind::Idle: return "idle";
  }
  return "?";
}

double GroundTruth::total_distance() const {
  double d = 0.0;
  for (const StepTruth& s : steps) d += s.stride;
  return d;
}

std::size_t GroundTruth::steps_in(double t0, double t1) const {
  std::size_t n = 0;
  for (const StepTruth& s : steps) {
    if (s.t >= t0 && s.t < t1) ++n;
  }
  return n;
}

}  // namespace ptrack::synth
