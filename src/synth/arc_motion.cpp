#include "synth/arc_motion.hpp"

#include <algorithm>
#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::synth {

double waveform_value(Waveform w, double phi, double dwell_sharpness,
                      double duty) {
  switch (w) {
    case Waveform::Sine:
      return std::sin(phi);
    case Waveform::Dwell:
      // tanh-shaped sine: flattens the extremes so the hand lingers at the
      // plate and the mouth; stays C^inf so accelerations remain physical.
      return std::tanh(dwell_sharpness * std::sin(phi)) /
             std::tanh(dwell_sharpness);
    case Waveform::Flick: {
      // Asymmetric: fast outward flick, slower return. Sum of first two
      // harmonics, normalized to peak ~1.
      const double v = std::sin(phi) + 0.35 * std::sin(2.0 * phi);
      return v / 1.27;
    }
    case Waveform::Pulse: {
      // One out-and-back gesture per cycle, then rest: sin^2 bump over the
      // duty fraction (C^1 at the boundaries), flat elsewhere.
      double u = phi / kTwoPi;
      u -= std::floor(u);
      if (u >= duty) return 0.0;
      const double s = std::sin(kPi * u / duty);
      return s * s;
    }
  }
  return 0.0;
}

ArcPath generate_arc(const ArcMotionParams& p, double duration,
                     double fs, Rng& rng) {
  expects(duration > 0.0 && fs > 0.0, "generate_arc: positive duration, fs");
  expects(p.base_freq > 0.0, "generate_arc: base_freq > 0");
  expects(p.radius > 0.0, "generate_arc: radius > 0");

  const auto n = static_cast<std::size_t>(duration * fs);
  ArcPath out;
  out.pos.reserve(n);
  out.theta.reserve(n);

  const Vec3 a = p.plane_a.normalized();
  const Vec3 b = p.plane_b.normalized();
  out.tilt_axis = a.cross(b).normalized();  // normal of the motion plane

  // Per-cycle randomized period and amplitude; phase advances continuously.
  double phi = rng.uniform(0.0, kTwoPi);
  double cycle_freq = p.base_freq * (1.0 + rng.normal(0.0, p.freq_jitter));
  double cycle_amp = p.amplitude * (1.0 + rng.normal(0.0, p.amplitude_jitter));
  double next_cycle_phase = std::ceil(phi / kTwoPi) * kTwoPi;

  const double tremor_phase0 = rng.uniform(0.0, kTwoPi);
  const double sway_phase0 = rng.uniform(0.0, kTwoPi);
  const double sway_phase1 = rng.uniform(0.0, kTwoPi);
  // Sway direction: a random horizontal unit vector.
  const double sway_dir = rng.uniform(0.0, kTwoPi);
  const Vec3 sway_h{std::cos(sway_dir), std::sin(sway_dir), 0.0};

  const double dt = 1.0 / fs;
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) * dt;
    phi += kTwoPi * cycle_freq * dt;
    if (phi >= next_cycle_phase) {
      next_cycle_phase += kTwoPi;
      cycle_freq = p.base_freq * (1.0 + rng.normal(0.0, p.freq_jitter));
      if (cycle_freq < 0.1 * p.base_freq) cycle_freq = 0.1 * p.base_freq;
      cycle_amp = p.amplitude * (1.0 + rng.normal(0.0, p.amplitude_jitter));
    }

    double theta =
        p.center_angle +
        cycle_amp * waveform_value(p.waveform, phi, p.dwell_sharpness, p.duty);
    if (p.tremor_amp > 0.0 && p.tremor_freq > 0.0) {
      double envelope = 1.0;
      if (p.tremor_burst_freq > 0.0) {
        // Tremor arrives in bursts (shaking while framing a shot, then
        // holding still): a smooth on/off envelope active ~40% of the time.
        const double m = std::sin(kTwoPi * p.tremor_burst_freq * t + sway_phase1);
        envelope = std::clamp((m - 0.2) / 0.8, 0.0, 1.0);
        envelope *= envelope;
      }
      theta += envelope * p.tremor_amp *
               std::sin(kTwoPi * p.tremor_freq * t + tremor_phase0);
    }

    Vec3 pos = (a * std::cos(theta) + b * std::sin(theta)) * p.radius;

    if (p.sway_amp > 0.0) {
      const double s0 = std::sin(kTwoPi * p.sway_freq * t + sway_phase0);
      const double s1 =
          std::sin(kTwoPi * p.sway_freq * 1.7 * t + sway_phase1);
      pos += sway_h * (p.sway_amp * s0) + kVertical * (0.3 * p.sway_amp * s1);
    }

    out.pos.push_back(pos);
    out.theta.push_back(theta - p.center_angle);
  }
  return out;
}

}  // namespace ptrack::synth
