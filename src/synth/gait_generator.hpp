// Biomechanical gait kinematics: walking, stepping (rigid arm) and the
// swing-only decomposition of Fig. 3.
//
// Model (world frame, x-y horizontal, z up):
//  * Body (pelvis/shoulder) bounces once per step:
//      z_b(tau) = (b_k/2) (1 - cos(2*pi*tau/T_k)),  tau in [0, T_k)
//    so the vertical excursion within step k is exactly the ground-truth
//    bounce b_k, and b_k is coupled to the stride s_k via Eq. (2).
//  * Forward progression advances exactly s_k per step with a speed
//    oscillation that leads the bounce by a quarter period
//    (Kim et al. 2004 — the fixed phase difference PTrack's stepping test
//    checks):  xdot = (s_k/T_k) (1 - A_v cos(2*pi*tau/T_k)).
//  * The arm is a rigid pendulum of length m about the shoulder, swinging
//    once per gait cycle (= 2 steps): theta = theta_amp sin(Phi) plus an
//    elbow-cushioning second harmonic with a random per-cycle phase — the
//    small critical-point offsets the paper attributes to elbow/knee
//    cushioning (Fig. 3's points 5 and 9).
//  * Walking: wrist = body + pendulum. Stepping: the arm is rigid w.r.t.
//    the body (pocket/handbag), so the wrist sees body motion only.
//    SwingOnly: pendulum only, body static.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "synth/profile.hpp"
#include "synth/truth.hpp"

namespace ptrack::synth {

/// Kinematic output of one gait segment at the internal sample rate.
struct GaitPath {
  std::vector<Vec3> wrist;      ///< wrist world positions
  std::vector<Vec3> body;       ///< body (shoulder) world positions
  std::vector<double> tilt;     ///< device tilt angle (= swing angle; rad)
  Vec3 tilt_axis{0, 1, 0};      ///< world axis of the tilt (lateral)
  std::vector<StepTruth> steps; ///< times relative to segment start
};

/// Parameters of one gait segment.
struct GaitParams {
  ActivityKind kind = ActivityKind::Walking;  ///< Walking|Stepping|SwingOnly
  double duration = 60.0;  ///< seconds
  double speed = 0.0;      ///< m/s; 0 = profile preferred speed
  double heading = 0.0;    ///< world yaw of travel (rad)
  double fs = 400.0;       ///< internal sample rate
};

/// Generates gait kinematics. Deterministic given `rng`.
GaitPath generate_gait(const GaitParams& params, const UserProfile& user,
                       Rng& rng);

}  // namespace ptrack::synth
