// Wrist-IMU synthesizer: turns a Scenario + UserProfile into a device trace
// plus ground truth.
//
// Pipeline: per-segment kinematics (gait generator / arc motions) at a high
// internal rate -> positional stitching across segments -> short smoothing
// to soften segment-boundary jerk -> numerical second derivative -> specific
// force (linear acceleration minus gravity) -> constant device mounting
// rotation -> resampling to the device rate -> sensor error model.
//
// This module is the substitution for the paper's LG Urbane + human
// subjects; see DESIGN.md §3 for the argument that it preserves the signal
// structure PTrack's algorithms depend on.

#pragma once

#include "common/rng.hpp"
#include "imu/noise.hpp"
#include "imu/trace.hpp"
#include "synth/profile.hpp"
#include "synth/scenario.hpp"
#include "synth/truth.hpp"

namespace ptrack::synth {

/// Synthesis options.
struct SynthOptions {
  double device_fs = 100.0;    ///< output sample rate (Hz)
  double internal_fs = 400.0;  ///< kinematics rate (Hz), >= device_fs
  imu::SensorErrorModel noise{};  ///< sensor error model (default consumer)
  bool random_mount = true;    ///< draw a constant random device orientation
  double max_mount_tilt = 0.45;  ///< max roll/pitch of the mount (rad)

  /// Attitude-residual (gravity-leak) fraction: the device physically tilts
  /// with the arm/arc angle; platform sensor fusion removes most of that
  /// tilt when projecting to world axes, but a residual fraction of the
  /// angle leaks gravity between the projected channels. 0 disables
  /// (idealized fusion); ~0.10-0.20 matches commodity wearables.
  double attitude_leak = 0.20;
};

/// A synthesized experiment.
///
/// Frame semantics: `trace` accelerations model the *platform-corrected*
/// specific force a commodity wearable exposes (gravity virtual sensor),
/// with `attitude_leak` as the residual fusion error; `trace` gyro rates
/// are the *raw* physical angular rates of the wrist (the full tilt, not
/// the residual).
struct SynthResult {
  imu::Trace trace;          ///< what the wearable records
  GroundTruth truth;         ///< what actually happened
  std::vector<Vec3> body_path;  ///< body world positions at device_fs
};

/// Synthesizes the scenario for the given user. Deterministic given `rng`.
SynthResult synthesize(const Scenario& scenario, const UserProfile& user,
                       const SynthOptions& options, Rng& rng);

/// Convenience overload with default options.
SynthResult synthesize(const Scenario& scenario, const UserProfile& user,
                       Rng& rng);

}  // namespace ptrack::synth
