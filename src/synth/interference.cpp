#include "synth/interference.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/mat3.hpp"

namespace ptrack::synth {

namespace {

// Gram-Schmidt: unit b orthogonal to unit a, from a seed direction.
Vec3 orthogonalize(const Vec3& a, const Vec3& seed) {
  const Vec3 v = seed - a * seed.dot(a);
  return v.normalized();
}

double posture_sway(Posture posture) {
  // A seated torso is supported; a standing one sways more. Kept an order
  // of magnitude below gait bounce so rigidity dominates.
  return posture == Posture::Seated ? 0.0015 : 0.004;
}

}  // namespace

ArcMotionParams interference_params(ActivityKind kind, Posture posture,
                                    const UserProfile& user, Rng& rng) {
  ArcMotionParams p;
  p.sway_amp = posture_sway(posture);

  // Session-level randomization: where the user faces.
  const double yaw = rng.uniform(0.0, kTwoPi);
  const Mat3 r = Mat3::rot_z(yaw);

  switch (kind) {
    case ActivityKind::Eating: {
      // Discrete plate-to-mouth transfers: one bite every ~3 s, the hand
      // resting at the plate in between.
      p.base_freq = rng.uniform(0.26, 0.38);
      p.amplitude = rng.uniform(0.42, 0.55);
      p.radius = 0.45 * user.arm_length + 0.03;  // forearm + utensil
      p.center_angle = 0.15;
      p.waveform = Waveform::Pulse;
      p.duty = rng.uniform(0.38, 0.50);
      p.freq_jitter = 0.18;
      p.amplitude_jitter = 0.12;
      p.plane_a = r.apply(Vec3{0, 0, -1});
      p.plane_b = r.apply(orthogonalize({0, 0, -1}, {0.92, 0.15, 0.37}));
      break;
    }
    case ActivityKind::Poker: {
      // Dealing one card at a time: a quick out-and-back flick roughly
      // every second, the hand pausing over the deck in between.
      p.base_freq = rng.uniform(0.28, 0.42);
      p.amplitude = rng.uniform(0.28, 0.40);
      p.radius = 0.42 * user.arm_length;
      p.center_angle = 0.1;
      p.waveform = Waveform::Pulse;
      p.duty = rng.uniform(0.30, 0.42);
      p.freq_jitter = 0.14;
      p.amplitude_jitter = 0.18;
      p.plane_a = r.apply(Vec3{0, 0, -1});
      p.plane_b = r.apply(orthogonalize({0, 0, -1}, {0.6, 0.75, 0.28}));
      break;
    }
    case ActivityKind::Photo: {
      // Arm raised roughly horizontal, held with slow repositioning plus
      // hold unsteadiness around 2 Hz (mostly vertical at that posture).
      p.base_freq = rng.uniform(0.28, 0.40);
      p.amplitude = rng.uniform(0.06, 0.10);
      p.radius = 0.75 * user.arm_length;
      p.center_angle = 1.35;
      p.waveform = Waveform::Pulse;
      p.duty = rng.uniform(0.35, 0.5);
      p.freq_jitter = 0.25;
      p.amplitude_jitter = 0.25;
      p.tremor_freq = rng.uniform(1.8, 2.2);
      p.tremor_amp = rng.uniform(0.025, 0.040);
      p.tremor_burst_freq = rng.uniform(0.08, 0.14);
      p.plane_a = r.apply(Vec3{0, 0, -1});
      p.plane_b = r.apply(orthogonalize({0, 0, -1}, {1.0, 0.1, 0.0}));
      break;
    }
    case ActivityKind::Gaming: {
      // Small fast wrist rocking while holding the phone; plane tilted so a
      // clear vertical component reaches the accelerometer.
      p.base_freq = rng.uniform(0.35, 0.55);
      p.amplitude = rng.uniform(0.06, 0.10);
      p.radius = 0.35 * user.arm_length;
      p.center_angle = 0.9;
      p.waveform = Waveform::Pulse;
      p.duty = rng.uniform(0.35, 0.50);
      p.freq_jitter = 0.20;
      p.amplitude_jitter = 0.25;
      p.plane_a = r.apply(Vec3{0.3, 0.1, -0.95}.normalized());
      p.plane_b = r.apply(orthogonalize(Vec3{0.3, 0.1, -0.95}.normalized(),
                                        {0.8, 0.2, 0.4}));
      break;
    }
    case ActivityKind::Spoofer: {
      // Motorized rocker: clean, perfectly rigid alternation tuned to look
      // like brisk steps to a peak counter.
      p.base_freq = 1.25;
      p.amplitude = 0.22;
      p.radius = 0.18;
      p.center_angle = 0.0;
      p.waveform = Waveform::Sine;
      p.freq_jitter = 0.004;
      p.amplitude_jitter = 0.004;
      p.sway_amp = 0.0;
      p.plane_a = Vec3{0.25, 0.0, -0.97}.normalized();
      p.plane_b = orthogonalize(Vec3{0.25, 0.0, -0.97}.normalized(),
                                {0.97, 0.0, 0.25});
      break;
    }
    case ActivityKind::Idle: {
      p.base_freq = 0.2;
      p.amplitude = 0.0;
      p.radius = 0.3;
      p.waveform = Waveform::Sine;
      break;
    }
    default:
      throw InvalidArgument("interference_params: not an interference kind");
  }
  return p;
}

ArcPath generate_interference(ActivityKind kind, Posture posture,
                              const UserProfile& user, double duration,
                              double fs, Rng& rng) {
  const ArcMotionParams p = interference_params(kind, posture, user, rng);
  return generate_arc(p, duration, fs, rng);
}

}  // namespace ptrack::synth
