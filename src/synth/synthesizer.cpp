#include "synth/synthesizer.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"
#include "common/mat3.hpp"
#include "dsp/moving.hpp"
#include "dsp/resample.hpp"
#include "synth/gait_generator.hpp"
#include "synth/interference.hpp"

namespace ptrack::synth {

namespace {

/// Central-difference second derivative of a position path.
std::vector<Vec3> second_derivative(const std::vector<Vec3>& pos, double fs) {
  const std::size_t n = pos.size();
  std::vector<Vec3> acc(n);
  if (n < 3) return acc;
  const double f2 = fs * fs;
  for (std::size_t i = 1; i + 1 < n; ++i) {
    acc[i] = (pos[i + 1] - 2.0 * pos[i] + pos[i - 1]) * f2;
  }
  acc[0] = acc[1];
  acc[n - 1] = acc[n - 2];
  return acc;
}

std::vector<double> axis_of(const std::vector<Vec3>& v, int axis) {
  std::vector<double> out(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) {
    out[i] = axis == 0 ? v[i].x : axis == 1 ? v[i].y : v[i].z;
  }
  return out;
}

std::vector<Vec3> from_axes(const std::vector<double>& x,
                            const std::vector<double>& y,
                            const std::vector<double>& z) {
  std::vector<Vec3> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = {x[i], y[i], z[i]};
  return out;
}

/// Moving average with linear-extrapolation padding: the plain filter's
/// shrinking edge windows put a slope discontinuity at both ends of a
/// moving path, which differentiates into a large phantom acceleration.
std::vector<double> padded_average(const std::vector<double>& xs,
                                   std::size_t w) {
  if (xs.size() < 2 * w + 2) return dsp::moving_average(xs, w);
  std::vector<double> padded;
  padded.reserve(xs.size() + 2 * w);
  const double slope_front = xs[1] - xs[0];
  for (std::size_t i = w; i >= 1; --i) {
    padded.push_back(xs[0] - slope_front * static_cast<double>(i));
  }
  padded.insert(padded.end(), xs.begin(), xs.end());
  const double slope_back = xs[xs.size() - 1] - xs[xs.size() - 2];
  for (std::size_t i = 1; i <= w; ++i) {
    padded.push_back(xs.back() + slope_back * static_cast<double>(i));
  }
  const auto smoothed = dsp::moving_average(padded, w);
  return {smoothed.begin() + static_cast<std::ptrdiff_t>(w),
          smoothed.begin() + static_cast<std::ptrdiff_t>(w + xs.size())};
}

/// Smooths each axis with a short moving average (~35 ms) to soften the
/// jerk at segment boundaries without materially attenuating gait bands.
std::vector<Vec3> smooth_path(const std::vector<Vec3>& pos, double fs) {
  const auto w = static_cast<std::size_t>(std::max(3.0, 0.035 * fs));
  return from_axes(padded_average(axis_of(pos, 0), w),
                   padded_average(axis_of(pos, 1), w),
                   padded_average(axis_of(pos, 2), w));
}

/// Heavier local smoothing around segment seams: the scripted activity
/// switch is a velocity discontinuity, which a human transition never is.
/// A double moving-average (triangular kernel) over ~0.5 s around each seam
/// bounds the seam acceleration to physical levels.
void smooth_seams(std::vector<Vec3>& pos, double fs,
                  const std::vector<std::size_t>& seams) {
  const auto w = static_cast<std::size_t>(std::max(5.0, 0.13 * fs));
  const std::size_t margin = 3 * w;
  for (std::size_t seam : seams) {
    if (seam < margin || seam + margin >= pos.size()) continue;
    const std::size_t lo = seam - margin;
    const std::size_t hi = seam + margin;
    for (int axis = 0; axis < 3; ++axis) {
      std::vector<double> window(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) {
        window[i - lo] = axis == 0 ? pos[i].x : axis == 1 ? pos[i].y : pos[i].z;
      }
      window = dsp::moving_average(dsp::moving_average(window, w), w);
      // Crossfade between the original and the smoothed center so the
      // write-back introduces no discontinuity of its own.
      for (std::size_t i = lo + w; i + w < hi; ++i) {
        const std::size_t from_edge = std::min(i - (lo + w), (hi - w - 1) - i);
        const double alpha =
            std::min(1.0, static_cast<double>(from_edge) / static_cast<double>(w));
        double& target = axis == 0 ? pos[i].x : axis == 1 ? pos[i].y : pos[i].z;
        target = (1.0 - alpha) * target + alpha * window[i - lo];
      }
    }
  }
}

std::vector<Vec3> resample_path(const std::vector<Vec3>& pos, double fs_in,
                                double fs_out) {
  return from_axes(dsp::resample_linear(axis_of(pos, 0), fs_in, fs_out),
                   dsp::resample_linear(axis_of(pos, 1), fs_in, fs_out),
                   dsp::resample_linear(axis_of(pos, 2), fs_in, fs_out));
}

}  // namespace

SynthResult synthesize(const Scenario& scenario, const UserProfile& user,
                       const SynthOptions& options, Rng& rng) {
  expects(!scenario.segments().empty(), "synthesize: non-empty scenario");
  expects(options.device_fs > 0.0 &&
              options.internal_fs >= options.device_fs,
          "synthesize: internal_fs >= device_fs > 0");

  const double fs = options.internal_fs;
  std::vector<Vec3> wrist;
  std::vector<Vec3> body;
  std::vector<double> tilt;
  std::vector<Vec3> tilt_axis;  // per sample (axis changes across segments)
  GroundTruth truth;

  double t_offset = 0.0;
  Vec3 wrist_shift{};
  Vec3 body_shift{};
  std::vector<std::size_t> seams;

  for (const ScenarioSegment& seg : scenario.segments()) {
    std::vector<Vec3> seg_wrist;
    std::vector<Vec3> seg_body;
    std::vector<double> seg_tilt;
    Vec3 seg_axis{0, 1, 0};
    std::vector<StepTruth> seg_steps;

    if (seg.kind == ActivityKind::Walking ||
        seg.kind == ActivityKind::Running ||
        seg.kind == ActivityKind::Stepping ||
        seg.kind == ActivityKind::SwingOnly) {
      GaitParams gp;
      gp.kind = seg.kind;
      gp.duration = seg.duration;
      gp.speed = seg.speed;
      gp.heading = seg.heading;
      gp.fs = fs;
      GaitPath path = generate_gait(gp, user, rng);
      seg_wrist = std::move(path.wrist);
      seg_body = std::move(path.body);
      seg_tilt = std::move(path.tilt);
      seg_axis = path.tilt_axis;
      seg_steps = std::move(path.steps);
    } else {
      ArcPath path = generate_interference(seg.kind, seg.posture, user,
                                           seg.duration, fs, rng);
      seg_wrist = std::move(path.pos);
      seg_tilt = std::move(path.theta);
      seg_axis = path.tilt_axis;
      seg_body.assign(seg_wrist.size(), Vec3{});
    }
    check(!seg_wrist.empty(), "synthesize: segment produced samples");
    check(seg_tilt.size() == seg_wrist.size(),
          "synthesize: tilt stream matches positions");

    // Stitch positions so the path is continuous across segments.
    if (!wrist.empty()) seams.push_back(wrist.size());
    const Vec3 dw = wrist.empty() ? Vec3{} : wrist_shift - seg_wrist.front();
    const Vec3 db = body.empty() ? Vec3{} : body_shift - seg_body.front();
    for (const Vec3& w : seg_wrist) wrist.push_back(w + dw);
    for (const Vec3& b : seg_body) body.push_back(b + db);
    for (double a : seg_tilt) tilt.push_back(a);
    tilt_axis.insert(tilt_axis.end(), seg_tilt.size(), seg_axis);
    wrist_shift = wrist.back();
    body_shift = body.back();

    SegmentTruth st;
    st.kind = seg.kind;
    st.t_begin = t_offset;
    st.t_end = t_offset + seg.duration;
    truth.segments.push_back(st);

    for (StepTruth step : seg_steps) {
      step.t += t_offset;
      step.segment = truth.segments.size() - 1;
      truth.steps.push_back(step);
    }
    t_offset += seg.duration;
  }

  // Kinematics -> specific force in the world frame.
  smooth_seams(wrist, fs, seams);
  const std::vector<Vec3> smoothed = smooth_path(wrist, fs);
  std::vector<Vec3> accel = second_derivative(smoothed, fs);
  for (Vec3& a : accel) a += Vec3{0, 0, kGravity};  // f = a - g_vec

  // Attitude residual: the device tilts with the arm/arc angle; imperfect
  // sensor fusion leaves a fraction of that tilt uncorrected, leaking
  // gravity between the projected channels. Rigid activities leak in
  // lock-step with their single DOF (synchrony preserved); walking's leak
  // carries the arm's phase into channels that also hold body-phase
  // content, deepening the asynchrony the offset metric measures.
  if (options.attitude_leak > 0.0) {
    const std::vector<double> tilt_smooth =
        dsp::moving_average(tilt, static_cast<std::size_t>(0.035 * fs));
    for (std::size_t i = 0; i < accel.size(); ++i) {
      const Mat3 residual = Mat3::axis_angle(
          tilt_axis[i], options.attitude_leak * tilt_smooth[i]);
      accel[i] = residual.transposed().apply(accel[i]);
    }
  }

  // Constant mounting rotation (device frame = R^T * world frame).
  Mat3 mount = Mat3::identity();
  if (options.random_mount) {
    mount = Mat3::from_euler(rng.uniform(-options.max_mount_tilt,
                                         options.max_mount_tilt),
                             rng.uniform(-options.max_mount_tilt,
                                         options.max_mount_tilt),
                             rng.uniform(0.0, kTwoPi));
  }
  const Mat3 world_to_device = mount.transposed();
  for (Vec3& a : accel) a = world_to_device.apply(a);

  // Gyroscope: the wrist physically rotates with the full tilt angle (the
  // attitude_leak above models only the *residual* after platform fusion;
  // the raw gyro sees the whole rotation). Rate = d(tilt)/dt about the
  // segment's tilt axis, expressed in the device frame.
  const std::vector<double> tilt_for_gyro =
      dsp::moving_average(tilt, static_cast<std::size_t>(0.035 * fs));
  std::vector<Vec3> gyro(accel.size());
  for (std::size_t i = 0; i + 1 < gyro.size(); ++i) {
    const double rate = (tilt_for_gyro[i + 1] - tilt_for_gyro[i]) * fs;
    gyro[i] = world_to_device.apply(tilt_axis[i] * rate);
  }
  if (gyro.size() >= 2) gyro[gyro.size() - 1] = gyro[gyro.size() - 2];

  // Resample to the device rate and assemble the trace.
  const std::vector<Vec3> dev_accel =
      resample_path(accel, fs, options.device_fs);
  const std::vector<Vec3> dev_gyro =
      resample_path(gyro, fs, options.device_fs);
  std::vector<imu::Sample> samples;
  samples.reserve(dev_accel.size());
  for (std::size_t i = 0; i < dev_accel.size(); ++i) {
    imu::Sample s;
    s.t = static_cast<double>(i) / options.device_fs;
    s.accel = dev_accel[i];
    s.gyro = i < dev_gyro.size() ? dev_gyro[i] : Vec3{};
    samples.push_back(s);
  }
  imu::Trace clean(options.device_fs, std::move(samples));

  SynthResult result;
  result.trace = imu::corrupt(clean, options.noise, rng);
  result.truth = std::move(truth);
  result.body_path = resample_path(body, fs, options.device_fs);
  return result;
}

SynthResult synthesize(const Scenario& scenario, const UserProfile& user,
                       Rng& rng) {
  return synthesize(scenario, user, SynthOptions{}, rng);
}

}  // namespace ptrack::synth
