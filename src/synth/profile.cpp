#include "synth/profile.hpp"

#include <cmath>

#include "common/error.hpp"

namespace ptrack::synth {

double UserProfile::bounce_for_stride(double stride) const {
  expects(stride > 0.0, "bounce_for_stride: stride > 0");
  const double ratio = stride / model_k;
  expects(ratio < leg_length, "bounce_for_stride: stride < k*l");
  // s = k*sqrt(l^2 - (l-b)^2)  =>  b = l - sqrt(l^2 - (s/k)^2)
  return leg_length - std::sqrt(leg_length * leg_length - ratio * ratio);
}

double UserProfile::stride_for_bounce(double bounce) const {
  expects(bounce >= 0.0 && bounce < leg_length,
          "stride_for_bounce: 0 <= b < l");
  const double lb = leg_length - bounce;
  return model_k * std::sqrt(leg_length * leg_length - lb * lb);
}

UserProfile random_user(Rng& rng) {
  UserProfile p;
  p.height = rng.uniform(1.55, 1.90);
  // Limb lengths loosely scale with height plus individual variation.
  p.arm_length = 0.41 * p.height + rng.normal(0.0, 0.015);
  p.leg_length = 0.53 * p.height + rng.normal(0.0, 0.02);
  p.speed = rng.uniform(1.0, 1.6);
  p.cadence = rng.uniform(1.6, 2.1);
  p.swing_amplitude = rng.uniform(0.28, 0.48);
  p.swing_cushion = rng.uniform(0.03, 0.08);
  p.model_k = rng.normal(2.0, 0.05);
  return p;
}

}  // namespace ptrack::synth
