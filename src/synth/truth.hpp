// Ground-truth records emitted by the synthesizer alongside each trace.
// Every experiment in bench/ scores an algorithm against these.

#pragma once

#include <cstddef>
#include <string_view>
#include <vector>

namespace ptrack::synth {

/// Activity classes the synthesizer can generate. Walking/Stepping (and
/// their mixture via scenarios) are gait; everything else is interference
/// or rest from the step counter's point of view.
enum class ActivityKind {
  Walking,   ///< normal walk, arm swinging freely
  Running,   ///< jogging/running — a walking variant (paper SIII-B1)
  Stepping,  ///< walking with the instrumented arm rigid (pocket/bag/phone)
  SwingOnly, ///< arm swings, body static (Fig. 3(b) decomposition)
  Eating,    ///< knife-and-fork arcs with dwell at plate/mouth
  Poker,     ///< fast card-dealing flicks
  Photo,     ///< raise-and-hold with physiological tremor
  Gaming,    ///< small high-rate wrist jiggle
  Spoofer,   ///< motorized rocker generating clean alternating motion
  Idle,      ///< no intentional motion
};

/// True if steps should be counted while performing this activity.
bool is_gait(ActivityKind k);

/// Human-readable name (stable, used in bench output).
std::string_view to_string(ActivityKind k);

/// Body posture during non-gait activities; affects residual body sway.
enum class Posture { Standing, Seated };

/// One true step.
struct StepTruth {
  double t = 0.0;        ///< completion time (s)
  double stride = 0.0;   ///< true stride length (m)
  double bounce = 0.0;   ///< true body bounce within the step (m)
  std::size_t segment = 0;  ///< index into GroundTruth::segments
};

/// One scenario segment as realized.
struct SegmentTruth {
  ActivityKind kind = ActivityKind::Idle;
  double t_begin = 0.0;
  double t_end = 0.0;
};

/// Full ground truth for one synthesized trace.
struct GroundTruth {
  std::vector<StepTruth> steps;
  std::vector<SegmentTruth> segments;

  [[nodiscard]] std::size_t step_count() const { return steps.size(); }
  [[nodiscard]] double total_distance() const;

  /// Number of true steps whose completion time lies in [t0, t1).
  [[nodiscard]] std::size_t steps_in(double t0, double t1) const;
};

}  // namespace ptrack::synth
