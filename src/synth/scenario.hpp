// Scenario scripting: a scenario is an ordered list of activity segments
// the simulated user performs, mirroring the paper's test protocols
// ("walk 60 s", "eat for 2 min while seated", "walk, then pocket the hand,
// then walk again", ...).

#pragma once

#include <vector>

#include "synth/truth.hpp"

namespace ptrack::synth {

/// One scripted segment of a scenario.
struct ScenarioSegment {
  ActivityKind kind = ActivityKind::Walking;
  double duration = 60.0;              ///< seconds, > 0
  Posture posture = Posture::Standing; ///< used by interference activities
  double speed = 0.0;                  ///< m/s; 0 = user's preferred speed
  double heading = 0.0;                ///< walking heading (rad, world yaw)
};

/// Ordered activity script with a fluent builder.
class Scenario {
 public:
  Scenario() = default;

  /// Appends a segment (duration must be positive).
  Scenario& add(ScenarioSegment seg);

  /// Shorthand appenders.
  Scenario& walk(double seconds, double speed = 0.0, double heading = 0.0);
  Scenario& run(double seconds, double speed = 0.0, double heading = 0.0);
  Scenario& step(double seconds, double speed = 0.0, double heading = 0.0);
  Scenario& activity(ActivityKind kind, double seconds,
                     Posture posture = Posture::Standing);

  [[nodiscard]] const std::vector<ScenarioSegment>& segments() const {
    return segments_;
  }
  [[nodiscard]] double total_duration() const;

  /// Canned scenarios used across tests and benches.
  static Scenario pure_walking(double seconds);
  static Scenario pure_stepping(double seconds);
  static Scenario mixed_gait(double seconds);  ///< alternating walk/step
  static Scenario interference(ActivityKind kind, double seconds,
                               Posture posture);

 private:
  std::vector<ScenarioSegment> segments_;
};

}  // namespace ptrack::synth
