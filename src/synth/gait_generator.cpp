#include "synth/gait_generator.hpp"

#include <cmath>

#include "common/angles.hpp"
#include "common/error.hpp"

namespace ptrack::synth {

namespace {

/// Fraction by which the forward speed oscillates around its mean within a
/// step (literature: ~30-50% at the pelvis).
constexpr double kSpeedOscillation = 0.25;

}  // namespace

GaitPath generate_gait(const GaitParams& p, const UserProfile& user,
                       Rng& rng) {
  expects(p.duration > 0.0 && p.fs > 0.0, "generate_gait: duration, fs > 0");
  expects(p.kind == ActivityKind::Walking || p.kind == ActivityKind::Running ||
              p.kind == ActivityKind::Stepping ||
              p.kind == ActivityKind::SwingOnly,
          "generate_gait: gait kind");

  const bool moving = p.kind != ActivityKind::SwingOnly;
  const bool swinging = p.kind != ActivityKind::Stepping;
  const bool running = p.kind == ActivityKind::Running;

  // Running: higher cadence and longer strides than the user's walk, with a
  // proportionally larger arm swing. The same two-oscillator structure
  // applies (the paper treats jogging/running as walking variants), so the
  // generator reuses the walking kinematics with scaled parameters.
  const double default_speed = running ? 2.2 * user.speed : user.speed;
  const double speed = p.speed > 0.0 ? p.speed : default_speed;
  const double cadence = running ? 1.35 * user.cadence : user.cadence;
  const double base_stride = speed / cadence;
  const double base_period = 1.0 / cadence;

  const Vec3 fwd{std::cos(p.heading), std::sin(p.heading), 0.0};
  const double shoulder_z = 0.82 * user.height;

  // Stepping keeps the arm rigid at a slight forward hang (hand in pocket).
  const double rigid_angle = 0.12;

  GaitPath out;
  const auto n_total = static_cast<std::size_t>(p.duration * p.fs);
  out.wrist.reserve(n_total);
  out.body.reserve(n_total);
  out.tilt.reserve(n_total);
  // The forearm (and the watch on it) pitches about the lateral axis.
  out.tilt_axis = kVertical.cross(fwd).normalized();

  const double dt = 1.0 / p.fs;

  // Per-step state, re-drawn at each heel strike.
  double step_period = base_period * (1.0 + rng.normal(0.0, user.step_time_jitter));
  double stride = base_stride * (1.0 + rng.normal(0.0, user.stride_jitter));
  double bounce = moving ? user.bounce_for_stride(stride) : 0.0;
  // The elbow-cushioning distortion is an anatomical trait: its phase is
  // stable for a user, so it biases the geometry consistently (absorbed by
  // the per-user Eq. (2) calibration) instead of scattering per cycle.
  const double cushion_phase = rng.uniform(0.0, kTwoPi);

  double tau = 0.0;          // time within the current step
  double distance = 0.0;     // forward distance at the current step start
  double gait_phase = rng.chance(0.5) ? 0.0 : kPi;  // arm phase at step start
  std::size_t n = 0;

  // Arm-swing phase: a weakly coupled oscillator, not hard-locked to the
  // gait — the two motion sources are "concurrent but relatively
  // independent" (paper SII). The arm advances at its own jittered rate and
  // a mild pull (kArmCoupling) keeps it entrained to the gait on average,
  // so the arm-to-body phase wanders within a bounded band as in real
  // walking.
  constexpr double kArmCoupling = 1.2;  // rad/s of corrective pull
  double arm_phi = gait_phase;
  double arm_rate_jitter = rng.normal(0.0, user.arm_phase_jitter);

  const double swing_period_scale = 1.0;  // arm locked to gait cycle

  while (n < n_total) {
    const double t = static_cast<double>(n) * dt;
    const double omega = kTwoPi / step_period;

    // Body kinematics within the step.
    double body_forward = distance;
    double body_z = shoulder_z;
    if (moving) {
      body_forward +=
          stride * (tau / step_period -
                    (kSpeedOscillation / kTwoPi) * std::sin(omega * tau));
      body_z += 0.5 * bounce * (1.0 - std::cos(omega * tau));
    }
    const Vec3 body = fwd * body_forward + Vec3{0, 0, body_z};

    // Arm kinematics.
    Vec3 wrist_rel;
    if (swinging) {
      // cos: the arm is at an extreme (foremost/backmost) near heel strike
      // and vertical near mid-step, when the body tops its bounce (paper
      // Fig. 5) — up to the wandering phase offset.
      const double gait_phi_cont =
          gait_phase + kPi * (tau / step_period) * swing_period_scale;
      arm_phi += dt * ((kPi / step_period) * (1.0 + arm_rate_jitter) +
                       kArmCoupling * std::sin(gait_phi_cont - arm_phi));
      const double phi = arm_phi;
      const double swing_amp =
          running ? 1.25 * user.swing_amplitude : user.swing_amplitude;
      const double theta = swing_amp *
                           (std::cos(phi) +
                            user.swing_cushion * std::sin(2.0 * phi + cushion_phase));
      wrist_rel = fwd * (user.arm_length * std::sin(theta)) +
                  Vec3{0, 0, -user.arm_length * std::cos(theta)};
      out.tilt.push_back(theta);
    } else {
      wrist_rel = fwd * (user.arm_length * std::sin(rigid_angle)) +
                  Vec3{0, 0, -user.arm_length * std::cos(rigid_angle)};
      out.tilt.push_back(0.0);  // pocketed hand: orientation steady
    }

    out.body.push_back(body);
    out.wrist.push_back(body + wrist_rel);

    ++n;
    tau += dt;
    if (tau >= step_period) {
      // Heel strike: record the completed step and re-draw step parameters.
      if (moving) {
        StepTruth st;
        st.t = t;
        st.stride = stride;
        st.bounce = bounce;
        out.steps.push_back(st);
        distance += stride;
      }
      gait_phase = wrap_2pi(gait_phase + kPi);
      arm_phi = wrap_2pi(arm_phi);
      arm_rate_jitter = rng.normal(0.0, user.arm_phase_jitter);
      tau -= step_period;
      step_period =
          base_period * (1.0 + rng.normal(0.0, user.step_time_jitter));
      stride = base_stride * (1.0 + rng.normal(0.0, user.stride_jitter));
      if (moving) bounce = user.bounce_for_stride(stride);
    }
  }
  return out;
}

}  // namespace ptrack::synth
