// Interfering-activity instantiations of the rigid arc-motion generator,
// matching the activities the paper evaluates: eating with knife and fork,
// playing poker cards, taking photos, playing phone games, plus the
// unfitbits-style spoofing rig and idle rest.

#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/vec3.hpp"
#include "synth/arc_motion.hpp"
#include "synth/profile.hpp"
#include "synth/truth.hpp"

namespace ptrack::synth {

/// Arc parameters for an interfering activity, given the user (forearm
/// radius) and posture (sway amplitude). Deterministic given `rng` (some
/// parameters are drawn per session, e.g. the arc plane tilt).
ArcMotionParams interference_params(ActivityKind kind, Posture posture,
                                    const UserProfile& user, Rng& rng);

/// Device path (positions + tilt-angle stream) for an interference segment
/// at rate `fs`. Supported kinds: Eating, Poker, Photo, Gaming, Spoofer,
/// Idle.
ArcPath generate_interference(ActivityKind kind, Posture posture,
                              const UserProfile& user, double duration,
                              double fs, Rng& rng);

}  // namespace ptrack::synth
