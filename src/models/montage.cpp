#include "models/montage.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/integrate.hpp"
#include "dsp/peaks.hpp"
#include "dsp/projection.hpp"

namespace ptrack::models {

namespace {

/// Low-passed vertical acceleration of a trace (up positive, gravity
/// removed).
std::vector<double> vertical_accel(const imu::Trace& trace,
                                   double lowpass_hz) {
  const auto vectors = trace.accel_vectors();
  const dsp::ProjectedSignal proj = dsp::project(vectors, trace.fs());
  return dsp::zero_phase_lowpass(
      proj.vertical, std::min(lowpass_hz, 0.45 * trace.fs()), trace.fs(), 4);
}

/// Step peaks with valley confirmation: a peak counts when a valley at
/// least `min_amp` below it occurs before the next peak.
std::vector<std::size_t> confirmed_step_peaks(std::span<const double> vert,
                                              double fs,
                                              const MontageConfig& cfg) {
  dsp::PeakOptions opt;
  opt.min_distance = std::max<std::size_t>(
      1, static_cast<std::size_t>(cfg.min_step_interval_s * fs));
  opt.min_prominence = 0.25 * cfg.min_peak_valley_amplitude;
  if (!vert.empty()) {
    // Montage adapts its detection threshold to the signal level (the
    // paper's "realtime" design); a fixed threshold would double-count
    // vigorous arm swingers.
    opt.min_prominence =
        std::max(opt.min_prominence, 0.45 * stats::stddev(vert));
  }
  const auto peaks = dsp::find_peaks(vert, opt);

  std::vector<std::size_t> confirmed;
  for (std::size_t i = 0; i < peaks.size(); ++i) {
    const std::size_t begin = peaks[i];
    const std::size_t end = i + 1 < peaks.size() ? peaks[i + 1] : vert.size();
    double valley = vert[begin];
    for (std::size_t j = begin; j < end; ++j) valley = std::min(valley, vert[j]);
    if (vert[begin] - valley >= cfg.min_peak_valley_amplitude) {
      confirmed.push_back(begin);
    }
  }
  return confirmed;
}

}  // namespace

MontageCounter::MontageCounter(MontageConfig config) : config_(config) {
  expects(config_.lowpass_hz > 0.0, "MontageCounter: lowpass_hz > 0");
}

StepDetection MontageCounter::count_steps(const imu::Trace& trace) {
  StepDetection out;
  if (trace.size() < 16) return out;
  const auto vert = vertical_accel(trace, config_.lowpass_hz);
  for (std::size_t p : confirmed_step_peaks(vert, trace.fs(), config_)) {
    out.step_times.push_back(trace[p].t);
  }
  out.count = out.step_times.size();
  return out;
}

MontageStride::MontageStride(double leg_length, double k, MontageConfig config)
    : leg_length_(leg_length), k_(k), config_(config) {
  expects(leg_length > 0.0, "MontageStride: leg_length > 0");
  expects(k > 0.0, "MontageStride: k > 0");
}

std::vector<StrideEstimate> MontageStride::estimate(const imu::Trace& trace) {
  std::vector<StrideEstimate> out;
  if (trace.size() < 16) return out;
  const double fs = trace.fs();
  const auto vert = vertical_accel(trace, config_.lowpass_hz);
  const auto peaks = confirmed_step_peaks(vert, fs, config_);

  // One step spans successive vertical-acceleration peaks. The bounce is the
  // peak-to-peak vertical excursion within the step (valid when the sensor
  // rides on the body; biased on a wrist).
  for (std::size_t i = 0; i + 1 < peaks.size(); ++i) {
    const std::span<const double> seg(vert.data() + peaks[i],
                                      peaks[i + 1] - peaks[i]);
    double bounce = dsp::peak_to_peak_displacement(seg, 1.0 / fs);
    bounce = std::min(bounce, 0.95 * leg_length_);
    const double lb = leg_length_ - bounce;
    const double stride =
        k_ * std::sqrt(std::max(leg_length_ * leg_length_ - lb * lb, 0.0));
    out.push_back({trace[peaks[i + 1]].t, stride});
  }
  return out;
}

}  // namespace ptrack::models
