// Commercial-style threshold peak-detection pedometer.
//
// This models the built-in counters the paper measures in Fig. 1: Google
// Fit on the LG Urbane ("Watch"), the Mi Band ("Band") and the two iPhone
// pedometer apps ("Coprocessor"/"Software"). All follow the same recipe —
// low-pass the acceleration magnitude, find peaks above an adaptive
// threshold with a refractory interval — and differ only in tuning. They
// have no interference rejection at all, which is exactly the vulnerability
// Figs. 1 and 7 demonstrate.

#pragma once

#include <string>

#include "models/step_counter.hpp"

namespace ptrack::models {

/// Tuning of a threshold peak counter.
struct PeakCounterConfig {
  std::string name = "GFit";
  double lowpass_hz = 3.0;        ///< magnitude low-pass cutoff
  double min_peak_interval_s = 0.28;  ///< refractory period between steps
  double threshold_factor = 0.6;  ///< peak prominence as a fraction of the
                                  ///< window's acceleration std-dev
  double min_abs_prominence = 0.35;  ///< absolute floor (m/s^2)
  double window_s = 4.0;          ///< adaptive-threshold window
};

/// The counter itself.
class PeakCounter final : public IStepCounter {
 public:
  explicit PeakCounter(PeakCounterConfig config = {});

  [[nodiscard]] std::string_view name() const override { return config_.name; }
  StepDetection count_steps(const imu::Trace& trace) override;

  [[nodiscard]] const PeakCounterConfig& config() const { return config_; }

 private:
  PeakCounterConfig config_;
};

/// Preset tunings used by the figure benches.
PeakCounterConfig gfit_watch_config();   ///< Google Fit on the smartwatch
PeakCounterConfig miband_config();       ///< Mi Band wrist band
PeakCounterConfig phone_coprocessor_config();  ///< iPhone with M-coprocessor
PeakCounterConfig phone_software_config();     ///< software-only phone app

}  // namespace ptrack::models
