// Common interface of every per-step stride estimator.

#pragma once

#include <string_view>
#include <vector>

#include "imu/trace.hpp"

namespace ptrack::models {

/// One per-step stride estimate.
struct StrideEstimate {
  double t = 0.0;       ///< step completion time (s)
  double stride = 0.0;  ///< estimated stride length (m)
};

/// Batch stride-estimator interface.
class IStrideEstimator {
 public:
  virtual ~IStrideEstimator() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Per-step stride estimates over a full trace (assumed to be gait).
  virtual std::vector<StrideEstimate> estimate(const imu::Trace& trace) = 0;
};

}  // namespace ptrack::models
