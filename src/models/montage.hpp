// Montage baseline (Zhang et al., INFOCOM'14) — the state-of-the-art
// design PTrack integrates with and compares against.
//
// Step counting: peaks of the low-passed vertical (gravity-projected)
// acceleration with valley confirmation — a peak only counts when a valley
// of sufficient depth follows within a step interval.
//
// Stride estimation: Montage assumes the device is rigidly attached to the
// body, measures the body's vertical bounce directly by mean-removal double
// integration of the vertical acceleration within each step, and maps it
// through the biomechanical model s = k*sqrt(l^2 - (l-b)^2). On a wrist
// wearable the measured vertical excursion mixes arm and body motion, which
// is precisely the failure Fig. 8(a) quantifies.

#pragma once

#include "models/step_counter.hpp"
#include "models/stride_estimator.hpp"

namespace ptrack::models {

/// Montage step-counter tuning.
struct MontageConfig {
  double lowpass_hz = 3.0;
  double min_step_interval_s = 0.30;
  double min_peak_valley_amplitude = 0.8;  ///< m/s^2, peak-to-valley
};

/// Montage step counter.
class MontageCounter final : public IStepCounter {
 public:
  explicit MontageCounter(MontageConfig config = {});
  [[nodiscard]] std::string_view name() const override { return "Mtage"; }
  StepDetection count_steps(const imu::Trace& trace) override;

 private:
  MontageConfig config_;
};

/// Montage stride estimator (body-attachment assumption).
class MontageStride final : public IStrideEstimator {
 public:
  /// leg_length: the paper's l; k: Eq. (2) calibration factor.
  MontageStride(double leg_length, double k, MontageConfig config = {});
  [[nodiscard]] std::string_view name() const override { return "Mtage"; }
  std::vector<StrideEstimate> estimate(const imu::Trace& trace) override;

 private:
  double leg_length_;
  double k_;
  MontageConfig config_;
};

}  // namespace ptrack::models
