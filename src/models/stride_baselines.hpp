// Naive stride baselines applied directly to wrist data — the three curves
// of Fig. 1(d): the empirical (Weinberg) model, the biomechanical model fed
// with the raw wrist bounce, and direct double integration. All inherit the
// body-attachment assumption that a wrist-worn device violates, which is
// the paper's motivation for the PTrack stride estimator.

#pragma once

#include "models/stride_estimator.hpp"

namespace ptrack::models {

/// Weinberg empirical model: s = K * (a_max - a_min)^(1/4) per step, with
/// a_max/a_min the vertical-acceleration extremes within the step.
class EmpiricalStride final : public IStrideEstimator {
 public:
  /// K is the per-user empirical constant. The default is a typical
  /// torso-mounted calibration from the literature; applying it to wrist
  /// data inherits the arm-inflated acceleration range, which is the point
  /// of the Fig. 1(d) comparison.
  explicit EmpiricalStride(double K = 0.62);
  [[nodiscard]] std::string_view name() const override { return "Empirical"; }
  std::vector<StrideEstimate> estimate(const imu::Trace& trace) override;

 private:
  double k_;
};

/// Biomechanical model with the bounce measured directly from the wrist
/// vertical acceleration (identical to MontageStride; exposed under the
/// figure's label).
class BiomechanicalStride final : public IStrideEstimator {
 public:
  BiomechanicalStride(double leg_length, double k);
  [[nodiscard]] std::string_view name() const override {
    return "Biomechanical";
  }
  std::vector<StrideEstimate> estimate(const imu::Trace& trace) override;

 private:
  double leg_length_;
  double k_;
};

/// Direct double integration of the anterior acceleration within each step
/// (no mean removal): recovers only the time-varying velocity component and
/// drifts with the sensor bias, so per-step estimates are wildly off — the
/// "Integral" curve of Fig. 1(d).
class IntegralStride final : public IStrideEstimator {
 public:
  IntegralStride() = default;
  [[nodiscard]] std::string_view name() const override { return "Integral"; }
  std::vector<StrideEstimate> estimate(const imu::Trace& trace) override;
};

}  // namespace ptrack::models
