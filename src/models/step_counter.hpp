// Common interface of every step counter (baselines and PTrack's wrapper).

#pragma once

#include <string_view>
#include <vector>

#include "imu/trace.hpp"

namespace ptrack::models {

/// Output of a step counter over one trace.
struct StepDetection {
  std::size_t count = 0;           ///< total detected steps
  std::vector<double> step_times;  ///< per-step timestamps (seconds)
};

/// Batch step-counter interface.
class IStepCounter {
 public:
  virtual ~IStepCounter() = default;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Counts steps over a full trace.
  virtual StepDetection count_steps(const imu::Trace& trace) = 0;
};

}  // namespace ptrack::models
