// SCAR baseline (Dernbach et al., IEEE IE'12): supervised activity
// recognition used as a step-counting guard.
//
// Windows of the trace are featurized (time + frequency domain) and
// classified by a Gaussian naive-Bayes model trained on *labeled* activity
// recordings. Steps are only counted inside windows classified as a gait
// class. The design works well on activities present in the training set
// and degrades on unseen ones — reproduced in Fig. 7(a) by withholding the
// "photo" class from training.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "models/step_counter.hpp"

namespace ptrack::models {

/// Feature vector of one analysis window.
using FeatureVector = std::vector<double>;

/// Extracts the SCAR feature vector from a trace window. Features cover the
/// acceleration magnitude, vertical and horizontal channels: mean, std,
/// energy, dominant frequency, spectral entropy, autocorrelation peak, and
/// the vertical-horizontal correlation. Fixed length for a given build.
FeatureVector scar_features(const imu::Trace& window);

/// Number of features produced by scar_features().
std::size_t scar_feature_count();

/// One labeled training example.
struct LabeledTrace {
  imu::Trace trace;
  std::string label;
};

/// Gaussian naive-Bayes over SCAR features.
class ScarClassifier {
 public:
  /// Trains from labeled traces; each is split into windows of `window_s`
  /// seconds. Requires at least one example per class and at least two
  /// windows overall.
  void fit(const std::vector<LabeledTrace>& examples, double window_s = 2.0);

  /// Classifies one window; requires fit() first.
  [[nodiscard]] std::string classify(const imu::Trace& window) const;

  [[nodiscard]] bool trained() const { return !classes_.empty(); }
  [[nodiscard]] std::vector<std::string> classes() const;

 private:
  struct ClassModel {
    std::vector<double> mean;
    std::vector<double> var;
    double log_prior = 0.0;
  };
  std::map<std::string, ClassModel> classes_;
};

/// SCAR-guarded step counter: classify each window, count peaks only inside
/// windows whose label is in `gait_labels`.
class ScarCounter final : public IStepCounter {
 public:
  ScarCounter(ScarClassifier classifier, std::vector<std::string> gait_labels,
              double window_s = 2.0);

  [[nodiscard]] std::string_view name() const override { return "SCAR"; }
  StepDetection count_steps(const imu::Trace& trace) override;

 private:
  ScarClassifier classifier_;
  std::vector<std::string> gait_labels_;
  double window_s_;
};

}  // namespace ptrack::models
