#include "models/scar.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/correlate.hpp"
#include "dsp/fft.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/peaks.hpp"
#include "dsp/projection.hpp"

namespace ptrack::models {

namespace {

constexpr std::size_t kFeaturesPerChannel = 6;
constexpr std::size_t kChannels = 3;  // magnitude, vertical, horizontal
constexpr std::size_t kCrossFeatures = 1;

void channel_features(std::span<const double> xs, double fs,
                      FeatureVector& out) {
  out.push_back(stats::mean(xs));
  out.push_back(stats::stddev(xs));
  out.push_back(stats::rms(xs));
  out.push_back(dsp::dominant_frequency(xs, fs));
  out.push_back(dsp::spectral_entropy(xs));
  const std::size_t max_lag = xs.size() / 2;
  const std::size_t min_lag = std::max<std::size_t>(2, xs.size() / 16);
  const std::size_t period = dsp::dominant_period(xs, min_lag, max_lag);
  out.push_back(period > 0 ? dsp::autocorr_at(xs, period) : 0.0);
}

}  // namespace

std::size_t scar_feature_count() {
  return kFeaturesPerChannel * kChannels + kCrossFeatures;
}

FeatureVector scar_features(const imu::Trace& window) {
  expects(window.size() >= 16, "scar_features: window >= 16 samples");
  const double fs = window.fs();
  const auto vectors = window.accel_vectors();
  const dsp::ProjectedSignal proj = dsp::project(vectors, fs);

  std::vector<double> horizontal(proj.anterior.size());
  for (std::size_t i = 0; i < horizontal.size(); ++i) {
    horizontal[i] = std::hypot(proj.anterior[i], proj.lateral[i]);
  }

  FeatureVector f;
  f.reserve(scar_feature_count());
  channel_features(window.accel_magnitude(), fs, f);
  channel_features(proj.vertical, fs, f);
  channel_features(horizontal, fs, f);
  f.push_back(stats::pearson(proj.vertical, proj.anterior));
  check(f.size() == scar_feature_count(), "scar_features: feature count");
  return f;
}

void ScarClassifier::fit(const std::vector<LabeledTrace>& examples,
                         double window_s) {
  expects(!examples.empty(), "ScarClassifier::fit: non-empty examples");
  expects(window_s > 0.0, "ScarClassifier::fit: window_s > 0");
  classes_.clear();

  std::map<std::string, std::vector<FeatureVector>> by_class;
  std::size_t total_windows = 0;
  for (const LabeledTrace& ex : examples) {
    const auto win =
        static_cast<std::size_t>(window_s * ex.trace.fs());
    if (win < 16) continue;
    for (std::size_t begin = 0; begin + win <= ex.trace.size(); begin += win) {
      by_class[ex.label].push_back(
          scar_features(ex.trace.slice(begin, begin + win)));
      ++total_windows;
    }
  }
  expects(total_windows >= 2, "ScarClassifier::fit: at least two windows");

  const std::size_t dim = scar_feature_count();
  for (const auto& [label, feats] : by_class) {
    ClassModel model;
    model.mean.assign(dim, 0.0);
    model.var.assign(dim, 0.0);
    for (const FeatureVector& f : feats) {
      for (std::size_t d = 0; d < dim; ++d) model.mean[d] += f[d];
    }
    for (std::size_t d = 0; d < dim; ++d) {
      model.mean[d] /= static_cast<double>(feats.size());
    }
    for (const FeatureVector& f : feats) {
      for (std::size_t d = 0; d < dim; ++d) {
        const double delta = f[d] - model.mean[d];
        model.var[d] += delta * delta;
      }
    }
    for (std::size_t d = 0; d < dim; ++d) {
      model.var[d] = model.var[d] / static_cast<double>(feats.size()) + 1e-6;
    }
    model.log_prior = std::log(static_cast<double>(feats.size()) /
                               static_cast<double>(total_windows));
    classes_[label] = std::move(model);
  }
}

std::string ScarClassifier::classify(const imu::Trace& window) const {
  expects(trained(), "ScarClassifier::classify: call fit() first");
  const FeatureVector f = scar_features(window);
  std::string best;
  double best_ll = -1e300;
  for (const auto& [label, model] : classes_) {
    double ll = model.log_prior;
    for (std::size_t d = 0; d < f.size(); ++d) {
      const double delta = f[d] - model.mean[d];
      ll += -0.5 * std::log(2.0 * 3.14159265358979 * model.var[d]) -
            0.5 * delta * delta / model.var[d];
    }
    if (ll > best_ll) {
      best_ll = ll;
      best = label;
    }
  }
  return best;
}

std::vector<std::string> ScarClassifier::classes() const {
  std::vector<std::string> out;
  out.reserve(classes_.size());
  for (const auto& [label, _] : classes_) out.push_back(label);
  return out;
}

ScarCounter::ScarCounter(ScarClassifier classifier,
                         std::vector<std::string> gait_labels, double window_s)
    : classifier_(std::move(classifier)),
      gait_labels_(std::move(gait_labels)),
      window_s_(window_s) {
  expects(classifier_.trained(), "ScarCounter: trained classifier");
  expects(!gait_labels_.empty(), "ScarCounter: at least one gait label");
  expects(window_s_ > 0.0, "ScarCounter: window_s > 0");
}

StepDetection ScarCounter::count_steps(const imu::Trace& trace) {
  StepDetection out;
  const auto win = static_cast<std::size_t>(window_s_ * trace.fs());
  if (win < 16 || trace.size() < win) return out;

  // Classify windows first, then count peaks over maximal *runs* of gait
  // windows — per-window counting would lose the peaks that fall on window
  // boundaries (up to one per boundary at normal cadence).
  std::vector<bool> is_gait;
  for (std::size_t begin = 0; begin + win <= trace.size(); begin += win) {
    const std::string label = classifier_.classify(trace.slice(begin, begin + win));
    is_gait.push_back(std::find(gait_labels_.begin(), gait_labels_.end(),
                                label) != gait_labels_.end());
  }

  std::size_t w = 0;
  while (w < is_gait.size()) {
    if (!is_gait[w]) {
      ++w;
      continue;
    }
    std::size_t run_end = w;
    while (run_end < is_gait.size() && is_gait[run_end]) ++run_end;
    const imu::Trace run = trace.slice(w * win, run_end * win);
    const auto vectors = run.accel_vectors();
    const dsp::ProjectedSignal proj = dsp::project(vectors, run.fs());
    const auto vert = dsp::zero_phase_lowpass(proj.vertical, 3.0, run.fs(), 4);
    dsp::PeakOptions opt;
    opt.min_distance =
        std::max<std::size_t>(1, static_cast<std::size_t>(0.3 * run.fs()));
    opt.min_prominence = 0.5;
    for (std::size_t p : dsp::find_peaks(vert, opt)) {
      out.step_times.push_back(run[p].t);
    }
    w = run_end;
  }
  out.count = out.step_times.size();
  return out;
}

}  // namespace ptrack::models
