#include "models/gfit.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/stats.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/peaks.hpp"

namespace ptrack::models {

PeakCounter::PeakCounter(PeakCounterConfig config)
    : config_(std::move(config)) {
  expects(config_.lowpass_hz > 0.0, "PeakCounter: lowpass_hz > 0");
  expects(config_.min_peak_interval_s > 0.0,
          "PeakCounter: min_peak_interval_s > 0");
}

StepDetection PeakCounter::count_steps(const imu::Trace& trace) {
  StepDetection out;
  if (trace.size() < 8) return out;
  const double fs = trace.fs();

  // Magnitude removes the need for orientation handling; the DC (gravity)
  // component is discarded by demeaning per adaptive window.
  std::vector<double> mag = trace.accel_magnitude();
  mag = dsp::zero_phase_lowpass(mag, std::min(config_.lowpass_hz, 0.45 * fs),
                                fs, 4);

  const auto window =
      std::max<std::size_t>(16, static_cast<std::size_t>(config_.window_s * fs));
  const auto min_dist = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.min_peak_interval_s * fs));

  // Peaks are found globally (block-local detection loses peaks at block
  // edges) and then filtered against a per-block adaptive threshold.
  dsp::PeakOptions opt;
  opt.min_distance = min_dist;
  opt.min_prominence = config_.min_abs_prominence;
  for (std::size_t p : dsp::find_peaks(mag, opt)) {
    const std::size_t begin = (p / window) * window;
    const std::size_t end = std::min(begin + window, mag.size());
    const std::span<const double> block(mag.data() + begin, end - begin);
    const double sd = block.size() >= 8 ? stats::stddev(block) : 0.0;
    const double threshold =
        std::max(config_.min_abs_prominence, config_.threshold_factor * sd);
    if (dsp::peak_prominence(mag, p) >= threshold) {
      out.step_times.push_back(trace[p].t);
    }
  }
  out.count = out.step_times.size();
  return out;
}

PeakCounterConfig gfit_watch_config() {
  PeakCounterConfig c;
  c.name = "GFit";
  return c;
}

PeakCounterConfig miband_config() {
  PeakCounterConfig c;
  c.name = "Band";
  c.lowpass_hz = 3.5;
  c.threshold_factor = 0.55;
  c.min_abs_prominence = 0.30;
  c.min_peak_interval_s = 0.25;
  return c;
}

PeakCounterConfig phone_coprocessor_config() {
  PeakCounterConfig c;
  c.name = "Coprocessor";
  c.lowpass_hz = 2.8;
  c.threshold_factor = 0.7;
  c.min_abs_prominence = 0.45;
  c.min_peak_interval_s = 0.30;
  return c;
}

PeakCounterConfig phone_software_config() {
  PeakCounterConfig c;
  c.name = "Software";
  c.lowpass_hz = 3.2;
  c.threshold_factor = 0.5;
  c.min_abs_prominence = 0.30;
  c.min_peak_interval_s = 0.26;
  return c;
}

}  // namespace ptrack::models
