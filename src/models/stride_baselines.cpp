#include "models/stride_baselines.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "dsp/filtfilt.hpp"
#include "dsp/integrate.hpp"
#include "dsp/peaks.hpp"
#include "dsp/projection.hpp"

namespace ptrack::models {

namespace {

struct SteppedSignal {
  dsp::ProjectedSignal proj;
  std::vector<double> vert_lp;
  std::vector<std::size_t> peaks;  ///< step boundaries
};

SteppedSignal split_into_steps(const imu::Trace& trace) {
  SteppedSignal out;
  const auto vectors = trace.accel_vectors();
  out.proj = dsp::project(vectors, trace.fs());
  out.vert_lp = dsp::zero_phase_lowpass(out.proj.vertical, 3.0, trace.fs(), 4);
  dsp::PeakOptions opt;
  opt.min_distance =
      std::max<std::size_t>(1, static_cast<std::size_t>(0.3 * trace.fs()));
  opt.min_prominence = 0.5;
  out.peaks = dsp::find_peaks(out.vert_lp, opt);
  return out;
}

}  // namespace

EmpiricalStride::EmpiricalStride(double K) : k_(K) {
  expects(K > 0.0, "EmpiricalStride: K > 0");
}

std::vector<StrideEstimate> EmpiricalStride::estimate(const imu::Trace& trace) {
  std::vector<StrideEstimate> out;
  if (trace.size() < 16) return out;
  const SteppedSignal s = split_into_steps(trace);
  for (std::size_t i = 0; i + 1 < s.peaks.size(); ++i) {
    double amax = -1e300;
    double amin = 1e300;
    for (std::size_t j = s.peaks[i]; j < s.peaks[i + 1]; ++j) {
      amax = std::max(amax, s.vert_lp[j]);
      amin = std::min(amin, s.vert_lp[j]);
    }
    const double stride = k_ * std::pow(std::max(amax - amin, 0.0), 0.25);
    out.push_back({trace[s.peaks[i + 1]].t, stride});
  }
  return out;
}

BiomechanicalStride::BiomechanicalStride(double leg_length, double k)
    : leg_length_(leg_length), k_(k) {
  expects(leg_length > 0.0 && k > 0.0, "BiomechanicalStride: positive params");
}

std::vector<StrideEstimate> BiomechanicalStride::estimate(
    const imu::Trace& trace) {
  std::vector<StrideEstimate> out;
  if (trace.size() < 16) return out;
  const double dt = trace.dt();
  const SteppedSignal s = split_into_steps(trace);
  for (std::size_t i = 0; i + 1 < s.peaks.size(); ++i) {
    const std::span<const double> seg(s.vert_lp.data() + s.peaks[i],
                                      s.peaks[i + 1] - s.peaks[i]);
    double bounce = dsp::peak_to_peak_displacement(seg, dt);
    bounce = std::min(bounce, 0.95 * leg_length_);
    const double lb = leg_length_ - bounce;
    const double stride =
        k_ * std::sqrt(std::max(leg_length_ * leg_length_ - lb * lb, 0.0));
    out.push_back({trace[s.peaks[i + 1]].t, stride});
  }
  return out;
}

std::vector<StrideEstimate> IntegralStride::estimate(const imu::Trace& trace) {
  std::vector<StrideEstimate> out;
  if (trace.size() < 16) return out;
  const double dt = trace.dt();
  const SteppedSignal s = split_into_steps(trace);
  for (std::size_t i = 0; i + 1 < s.peaks.size(); ++i) {
    const std::span<const double> seg(s.proj.anterior.data() + s.peaks[i],
                                      s.peaks[i + 1] - s.peaks[i]);
    // Deliberately no mean removal: this is the naive approach.
    const dsp::Kinematics kin = dsp::integrate_twice(seg, dt);
    out.push_back({trace[s.peaks[i + 1]].t, std::abs(kin.position.back())});
  }
  return out;
}

}  // namespace ptrack::models
