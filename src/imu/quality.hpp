// Signal-quality assessment and repair: the detector duals of the fault
// injectors in imu/faults.hpp.
//
// A deployed wearable degrades in mundane ways long before anything is
// adversarial: BLE dropouts arrive as sample-and-hold runs, cheap MEMS
// ranges saturate, transport glitches land as isolated spikes, and
// malformed records carry non-finite or nonphysical values. This module
// detects those shapes in a raw trace, repairs what is recoverable (short
// gaps are interpolated; long gaps are hard-masked to a neutral stationary
// value so they cannot fabricate steps), and reports per-sample and
// per-window flags so the pipeline can attach a confidence to every step
// it emits instead of silently counting through garbage.
//
// Duality contract (kept in sync with imu/faults.hpp and exercised by
// tests/test_imu_quality.cpp): every injector's output is detected by the
// corresponding detector at default thresholds, and the detectors stay
// silent on clean synthesized traces.

#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "imu/trace.hpp"

namespace ptrack::imu {

/// Per-sample quality flags (bitmask). Detector bits record *what* was
/// wrong; Repaired/Masked record what the repair pass did about it.
enum SampleFlag : std::uint8_t {
  kFlagClean = 0,
  kFlagDropout = 1u << 0,    ///< inside a sample-and-hold run
  kFlagSaturated = 1u << 1,  ///< at the range-clipping plateau
  kFlagSpike = 1u << 2,      ///< isolated one-sample excursion
  kFlagNonFinite = 1u << 3,  ///< NaN/Inf or nonphysical magnitude
  kFlagRepaired = 1u << 4,   ///< value replaced by gap interpolation
  kFlagMasked = 1u << 5,     ///< value replaced by the neutral hold value
};

/// Detector and repair thresholds. Defaults are deliberately conservative:
/// consecutive samples of a noisy real sensor never repeat exactly, never
/// jump by multiple g within 10 ms, and never dwell at their exact maximum
/// — so a clean trace produces zero flags.
struct QualityConfig {
  /// Master switch: disabled means assess_and_repair is the identity and
  /// reports a fully clean trace (for ablation and repair-off benching).
  bool enabled = true;

  /// A run of >= this many *held* samples (identical accel AND gyro to the
  /// preceding sample) is a dropout.
  std::size_t min_dropout_run = 3;

  /// Known accelerometer full-scale range (m/s^2); samples at the rail are
  /// saturated. 0 = auto-detect a clipping plateau (several samples sitting
  /// exactly at the trace's absolute maximum).
  double saturation_limit = 0.0;
  /// Known gyro full-scale range (rad/s); 0 disables gyro saturation
  /// detection (no auto-detect: wrist rates legitimately dwell near peaks).
  double gyro_saturation_limit = 0.0;
  /// Auto-detect needs at least this many samples at the exact rail.
  std::size_t min_saturation_plateau = 4;

  /// One-sample excursion-and-return beyond this is a spike (m/s^2).
  double spike_delta = 3.0 * kGravity;
  /// Gyro spike threshold (rad/s); a wrist peaks around 10 rad/s.
  double gyro_spike_delta = 25.0;

  /// Accel components beyond this magnitude are transport garbage, not
  /// motion (m/s^2; ~1000 g — no wearable survives that).
  double nonphysical_accel = 1.0e4;
  /// Gyro components beyond this magnitude are garbage (rad/s).
  double nonphysical_gyro = 1.0e4;

  /// Flagged runs up to this long (s) are gap-filled by interpolation;
  /// longer runs are hard-masked: no interpolation can invent half a gait
  /// cycle, and a fabricated bridge would be counted as steps.
  double max_fill_s = 0.25;

  /// Below this fraction of clean-or-repaired samples the trace carries no
  /// usable signal; PTrack::process refuses it (QualityReport::usable).
  double min_usable_fraction = 0.25;

  /// Granularity of QualityReport::window_flags (s).
  double window_s = 1.0;
};

/// Per-trace quality assessment. Fractions are over the trace's samples.
struct QualityReport {
  std::vector<std::uint8_t> flags;         ///< per-sample SampleFlag bits
  std::vector<std::uint8_t> window_flags;  ///< OR of flags per window
  double window_s = 1.0;                   ///< realized window length (s)

  std::size_t dropout_samples = 0;
  std::size_t saturated_samples = 0;
  std::size_t spike_samples = 0;
  std::size_t nonfinite_samples = 0;
  std::size_t repaired_samples = 0;
  std::size_t masked_samples = 0;

  double clean_fraction = 1.0;     ///< untouched samples / total
  double repaired_fraction = 0.0;  ///< interpolated samples / total
  double masked_fraction = 0.0;    ///< neutralized samples / total

  /// False when fewer than QualityConfig::min_usable_fraction of the
  /// samples are clean or repaired — the trace is noise, not signal.
  bool usable = true;

  [[nodiscard]] bool any_fault() const {
    return dropout_samples + saturated_samples + spike_samples +
               nonfinite_samples >
           0;
  }

  /// Fraction of samples in [begin, end) carrying any flag (clamped to the
  /// trace; empty or out-of-range intervals yield 0).
  [[nodiscard]] double fraction_flagged(std::size_t begin,
                                        std::size_t end) const;

  /// Fraction of samples in [begin, end) that were hard-masked.
  [[nodiscard]] double fraction_masked(std::size_t begin,
                                       std::size_t end) const;
};

/// A repaired trace with its assessment.
struct QualityResult {
  Trace trace;
  QualityReport report;
};

/// Runs the detectors only (flags and counts; Repaired/Masked bits show
/// what a repair pass *would* do, but no trace is materialized).
QualityReport assess(const Trace& trace, const QualityConfig& cfg = {});

/// Runs the detectors and the repair pass: short flagged runs are
/// interpolated (cubic Hermite through the clean neighbors, falling back
/// to linear/hold at the trace edges), long runs are replaced by the
/// trace's neutral stationary value (mean clean accel ~ gravity, mean
/// clean gyro). Clean samples pass through bit-identical.
QualityResult assess_and_repair(const Trace& trace,
                                const QualityConfig& cfg = {});

/// One finalized sample of the incremental quality stage: repaired values
/// plus the final SampleFlag bits.
struct RepairedSample {
  Sample sample;
  std::uint8_t flags = kFlagClean;
};

/// Cumulative per-flag sample counts emitted by an IncrementalQuality
/// instance (the streaming dual of the QualityReport totals).
struct IncrementalQualityCounts {
  std::size_t emitted = 0;
  std::size_t dropout = 0;
  std::size_t saturated = 0;
  std::size_t spike = 0;
  std::size_t nonfinite = 0;
  std::size_t repaired = 0;
  std::size_t masked = 0;
};

/// Online detect-and-repair stage: the bounded-latency dual of
/// assess_and_repair for sample streams. push() ingests one raw sample and
/// appends every sample whose fate is decided (detected, and repaired or
/// masked where flagged) to the caller's output, in stream order; flush()
/// finalizes the held tail at a stream pause or end (the stream may
/// continue afterwards).
///
/// Parity with the batch pass (tests/test_imu_quality_incremental.cpp):
/// clean samples, dropout runs, explicit-rail saturation, spikes,
/// non-finite cells, Hermite gap fills and neutral masking all match
/// assess_and_repair sample-for-sample. Documented divergences, inherent
/// to not seeing the future:
///  - the masking neutral and the auto-detected saturation rail are
///    *running* statistics (batch uses whole-trace values); samples at the
///    rail emitted before the plateau confirms keep their flags;
///  - retroactive flagging reaches only into the pending tail, so a
///    detector bit can differ right at a decision boundary (the repair
///    action itself still matches);
///  - Hermite tangent selection next to a gap can fall back to the secant
///    when the outer neighbor's flags were not yet final.
///
/// Latency: a sample is held back at most latency_bound() samples
/// (~ max_fill_s plus the dropout-run and spike lookaheads; ~0.3 s at
/// 100 Hz with defaults).
class IncrementalQuality {
 public:
  explicit IncrementalQuality(double fs, QualityConfig cfg = {});

  /// Ingests one raw sample; appends finalized samples (possibly none, or
  /// several when a held run resolves) to `out`.
  void push(const Sample& s, std::vector<RepairedSample>& out);

  /// Finalizes every pending sample (end-of-run gaps are masked, exactly
  /// like batch runs that touch the trace edge).
  void flush(std::vector<RepairedSample>& out);

  /// Samples currently held back.
  [[nodiscard]] std::size_t pending() const { return pending_.size(); }
  /// Upper bound on pending() between calls.
  [[nodiscard]] std::size_t latency_bound() const {
    return max_fill_ + cfg_.min_dropout_run + 4;
  }
  [[nodiscard]] const IncrementalQualityCounts& counts() const {
    return counts_;
  }
  [[nodiscard]] const QualityConfig& config() const { return cfg_; }

 private:
  struct Pending {
    Sample s;               ///< raw values as pushed
    std::uint8_t flags = kFlagClean;
  };
  struct Emitted {
    Sample raw;             ///< pre-repair values (spike/tangent context)
    std::uint8_t flags = kFlagClean;
  };

  void detect_on_push(const Sample& s, std::uint8_t& flags);
  void evaluate_spike_before_last();
  void finalize_ready(std::vector<RepairedSample>& out, bool flushing);
  void emit(const Sample& repaired, const Sample& raw, std::uint8_t flags,
            std::vector<RepairedSample>& out);
  void fill_and_emit(std::size_t run, std::vector<RepairedSample>& out);
  void mask_and_emit(std::size_t run, std::vector<RepairedSample>& out);
  [[nodiscard]] Sample neutral_sample() const;

  QualityConfig cfg_;
  double fs_;
  std::size_t max_fill_;

  // Bounded hold-back buffer (<= latency_bound() entries, reserved at
  // construction): a vector keeps the steady-state push path allocation-free;
  // the head erase is O(latency_bound), i.e. a handful of moves.
  std::vector<Pending> pending_;

  // Held-run (dropout) tracking over the raw stream.
  Sample prev_raw_{};
  bool have_prev_ = false;
  bool prev_nonfinite_ = false;
  std::size_t held_run_ = 0;

  // Auto saturation: running rail + plateau confirmation.
  double rail_ = 0.0;
  std::size_t rail_count_ = 0;
  double confirmed_rail_ = 0.0;

  // Running clean mean (masking neutral).
  Vec3 accel_sum_{};
  Vec3 gyro_sum_{};
  std::size_t clean_count_ = 0;

  // Last two finalized samples: left context for spikes and gap tangents.
  std::optional<Emitted> out1_;  ///< most recent
  std::optional<Emitted> out2_;

  IncrementalQualityCounts counts_;
};

}  // namespace ptrack::imu
