#include "imu/trace.hpp"

#include "common/error.hpp"

namespace ptrack::imu {

Trace::Trace(double fs, std::vector<Sample> samples)
    : fs_(fs), samples_(std::move(samples)) {
  expects(fs > 0.0, "Trace: fs > 0");
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    expects(samples_[i].t >= samples_[i - 1].t, "Trace: non-decreasing time");
  }
}

void Trace::append(const Trace& tail) {
  expects(fs_ == tail.fs_, "Trace::append: equal sample rates");
  const double t0 = empty() ? 0.0 : samples_.back().t + dt();
  const double tail_t0 = tail.empty() ? 0.0 : tail.samples_.front().t;
  samples_.reserve(samples_.size() + tail.size());
  for (Sample s : tail.samples_) {
    s.t = t0 + (s.t - tail_t0);
    samples_.push_back(s);
  }
}

Trace Trace::slice(std::size_t begin, std::size_t end) const {
  expects(begin <= end && end <= samples_.size(), "Trace::slice: valid range");
  return Trace(fs_, {samples_.begin() + static_cast<std::ptrdiff_t>(begin),
                     samples_.begin() + static_cast<std::ptrdiff_t>(end)});
}

std::vector<Vec3> Trace::accel_vectors() const {
  std::vector<Vec3> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.accel);
  return out;
}

std::vector<double> Trace::accel_axis(int axis) const {
  expects(axis >= 0 && axis <= 2, "accel_axis: axis in {0,1,2}");
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) {
    out.push_back(axis == 0 ? s.accel.x : axis == 1 ? s.accel.y : s.accel.z);
  }
  return out;
}

std::vector<double> Trace::accel_magnitude() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const Sample& s : samples_) out.push_back(s.accel.norm());
  return out;
}

}  // namespace ptrack::imu
