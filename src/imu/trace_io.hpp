// CSV persistence for IMU traces so experiments can be exported, inspected
// offline, and re-imported (including real device recordings with the same
// column layout: t,ax,ay,az,gx,gy,gz).

#pragma once

#include <string>

#include "common/csv.hpp"
#include "imu/trace.hpp"

namespace ptrack::imu {

/// Upper bound on accepted trace length (samples). Two days of 1 kHz data;
/// anything larger is a corrupted or hostile file, not a recording.
inline constexpr std::size_t kMaxTraceSamples = 200'000'000;

/// Writes the trace as CSV with header t,ax,ay,az,gx,gy,gz plus a leading
/// pseudo-row carrying fs. Throws ptrack::Error on I/O failure.
void save_csv(const Trace& trace, const std::string& path);

/// Validates and converts an already-parsed CSV document into a Trace.
/// `name` labels the source in error messages. Throws ptrack::Error on a
/// wrong header, missing metadata row, non-finite / non-positive / absurd
/// fs, non-monotonic timestamps, or absurd sample counts — hostile input
/// must fail here, at the boundary, not deep inside the pipeline.
Trace trace_from_document(const csv::Document& doc, const std::string& name);

/// Reads a trace written by save_csv(). Throws ptrack::Error on I/O or
/// format errors (see trace_from_document).
Trace load_csv(const std::string& path);

}  // namespace ptrack::imu
