// CSV persistence for IMU traces so experiments can be exported, inspected
// offline, and re-imported (including real device recordings with the same
// column layout: t,ax,ay,az,gx,gy,gz).

#pragma once

#include <string>

#include "imu/trace.hpp"

namespace ptrack::imu {

/// Writes the trace as CSV with header t,ax,ay,az,gx,gy,gz plus a leading
/// pseudo-row carrying fs. Throws ptrack::Error on I/O failure.
void save_csv(const Trace& trace, const std::string& path);

/// Reads a trace written by save_csv(). Throws ptrack::Error on I/O or
/// format errors.
Trace load_csv(const std::string& path);

}  // namespace ptrack::imu
