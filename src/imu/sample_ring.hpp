// Contiguous structure-of-arrays ring buffer over an IMU stream: the
// zero-copy backbone of the incremental pipeline.
//
// Samples live in six parallel `std::vector<double>` channels (ax..gz)
// plus one quality-flag byte per sample, addressed by an *absolute* sample
// index that never resets over the stream's lifetime. Consumers ask for
// `std::span` views over [begin, end) absolute ranges and hand them
// straight to the dsp kernels — no per-hop materialization of
// `imu::Sample` vectors, no AoS->SoA shuffling in the hot path.
//
// "Ring" here means bounded retention, not a wrap-around index scheme:
// trim_to(b) logically drops everything below absolute index b by moving
// the live head forward; when the dead prefix grows past the live size the
// vectors are compacted with one memmove. Push is amortized O(1), spans
// stay contiguous (which wrap-around storage cannot offer), and memory is
// bounded by the retention window the caller maintains.
//
// Invalidation: any push() or trim_to() may reallocate or slide the
// channel storage — treat spans as borrowed for the current hop only.

#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "imu/sample.hpp"

namespace ptrack::imu {

class SampleRing {
 public:
  /// Appends one sample with its quality flags (SampleFlag bits).
  void push(const Sample& s, std::uint8_t flags);

  /// Absolute index of the oldest retained sample.
  [[nodiscard]] std::size_t base() const { return base_; }
  /// One past the absolute index of the newest sample (== samples pushed
  /// since construction; unaffected by trimming).
  [[nodiscard]] std::size_t end() const { return base_ + size(); }
  /// Retained sample count.
  [[nodiscard]] std::size_t size() const { return ax_.size() - head_; }
  [[nodiscard]] bool empty() const { return size() == 0; }

  /// Drops samples below absolute index `new_base` (clamped to
  /// [base(), end()]). Amortized O(1): compaction runs only when the dead
  /// prefix exceeds the live region.
  void trim_to(std::size_t new_base);

  /// Span views over the absolute range [begin, end); requires
  /// base() <= begin <= end <= this->end(). Borrowed until the next
  /// push/trim.
  [[nodiscard]] std::span<const double> ax(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const double> ay(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const double> az(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const double> gx(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const double> gy(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const double> gz(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const std::uint8_t> flags(std::size_t b,
                                                    std::size_t e) const;

  /// Enables the float32 accel mirrors (axf/ayf/azf): parallel
  /// `std::vector<float>` channels kept in lockstep with ax/ay/az by push
  /// and trim. Backfills mirrors for already-retained samples. The cast
  /// happens once at ingest, so the f32 projection path reads contiguous
  /// float spans with no per-hop conversion pass. Gyro channels have no
  /// mirrors — the f32 pipeline covers accel projection only.
  void enable_f32();
  [[nodiscard]] bool f32_enabled() const { return f32_; }

  /// Float mirror spans; require enable_f32() first. Same [b, e) absolute
  /// addressing and borrowed-until-next-push/trim lifetime as ax/ay/az.
  [[nodiscard]] std::span<const float> axf(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const float> ayf(std::size_t b, std::size_t e) const;
  [[nodiscard]] std::span<const float> azf(std::size_t b, std::size_t e) const;

  /// Rebuilds one sample from the channels (t is NOT stored; the caller
  /// owns the time base — absolute index / fs).
  [[nodiscard]] Sample sample(std::size_t abs_index) const;

  /// Samples in [begin, end) whose flags intersect `mask`.
  [[nodiscard]] std::size_t count_flagged(std::size_t b, std::size_t e,
                                          std::uint8_t mask) const;
  /// Fraction of samples in [begin, end) whose flags intersect `mask`
  /// (0 for empty ranges), mirroring QualityReport::fraction_flagged.
  [[nodiscard]] double fraction_flagged(std::size_t b, std::size_t e,
                                        std::uint8_t mask) const;

  /// Times the dead prefix was compacted away (telemetry).
  [[nodiscard]] std::size_t compactions() const { return compactions_; }

 private:
  [[nodiscard]] std::size_t offset(std::size_t abs_index) const;
  /// Validates [b, e) against the retained range; returns b's storage
  /// offset.
  [[nodiscard]] std::size_t span_offset(std::size_t b, std::size_t e) const;
  void maybe_compact();

  std::vector<double> ax_, ay_, az_, gx_, gy_, gz_;
  std::vector<float> axf_, ayf_, azf_;  ///< accel mirrors (enable_f32)
  std::vector<std::uint8_t> flags_;
  bool f32_ = false;
  std::size_t base_ = 0;  ///< absolute index of the sample at head_
  std::size_t head_ = 0;  ///< dead-prefix length inside the vectors
  std::size_t compactions_ = 0;
};

}  // namespace ptrack::imu
