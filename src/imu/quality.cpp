#include "imu/quality.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::imu {

namespace {

void set_flag(std::uint8_t& f, std::uint8_t bit) {
  f = static_cast<std::uint8_t>(f | bit);
}

bool finite_and_bounded(double v, double limit) {
  return std::isfinite(v) && std::abs(v) <= limit;
}

bool sample_physical(const Sample& s, const QualityConfig& cfg) {
  return finite_and_bounded(s.accel.x, cfg.nonphysical_accel) &&
         finite_and_bounded(s.accel.y, cfg.nonphysical_accel) &&
         finite_and_bounded(s.accel.z, cfg.nonphysical_accel) &&
         finite_and_bounded(s.gyro.x, cfg.nonphysical_gyro) &&
         finite_and_bounded(s.gyro.y, cfg.nonphysical_gyro) &&
         finite_and_bounded(s.gyro.z, cfg.nonphysical_gyro);
}

double max_abs_accel(const Sample& s) {
  return std::max({std::abs(s.accel.x), std::abs(s.accel.y),
                   std::abs(s.accel.z)});
}

double max_abs_gyro(const Sample& s) {
  return std::max({std::abs(s.gyro.x), std::abs(s.gyro.y),
                   std::abs(s.gyro.z)});
}

void detect_nonfinite(const std::vector<Sample>& samples,
                      const QualityConfig& cfg,
                      std::vector<std::uint8_t>& flags) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!sample_physical(samples[i], cfg)) set_flag(flags[i], kFlagNonFinite);
  }
}

void detect_dropouts(const std::vector<Sample>& samples,
                     const QualityConfig& cfg,
                     std::vector<std::uint8_t>& flags) {
  // A held run repeats the *whole* sample (accel and gyro): a dropped
  // transport packet loses both, and requiring both makes the detector
  // immune to one quantized channel idling while the other still moves.
  std::size_t i = 1;
  while (i < samples.size()) {
    const bool held = (flags[i] & kFlagNonFinite) == 0 &&
                      (flags[i - 1] & kFlagNonFinite) == 0 &&
                      samples[i].accel == samples[i - 1].accel &&
                      samples[i].gyro == samples[i - 1].gyro;
    if (!held) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < samples.size() && (flags[j] & kFlagNonFinite) == 0 &&
           samples[j].accel == samples[j - 1].accel &&
           samples[j].gyro == samples[j - 1].gyro) {
      ++j;
    }
    if (j - i >= cfg.min_dropout_run) {
      for (std::size_t k = i; k < j; ++k) set_flag(flags[k], kFlagDropout);
    }
    i = j;
  }
}

void detect_saturation(const std::vector<Sample>& samples,
                       const QualityConfig& cfg,
                       std::vector<std::uint8_t>& flags) {
  double accel_limit = cfg.saturation_limit;
  if (accel_limit <= 0.0) {
    // Auto-detect: clipping pins several samples to the exact same rail
    // value — a continuous noisy signal never repeats its maximum exactly.
    double rail = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0) {
        rail = std::max(rail, max_abs_accel(samples[i]));
      }
    }
    std::size_t at_rail = 0;
    if (rail > 1.2 * kGravity) {  // below that it is just gravity at rest
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if ((flags[i] & kFlagNonFinite) == 0 &&
            max_abs_accel(samples[i]) >= rail * (1.0 - 1e-12)) {
          ++at_rail;
        }
      }
    }
    if (at_rail >= cfg.min_saturation_plateau) accel_limit = rail;
  }
  if (accel_limit > 0.0) {
    const double thr = accel_limit * (1.0 - 1e-9);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0 &&
          max_abs_accel(samples[i]) >= thr) {
        set_flag(flags[i], kFlagSaturated);
      }
    }
  }
  if (cfg.gyro_saturation_limit > 0.0) {
    const double thr = cfg.gyro_saturation_limit * (1.0 - 1e-9);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0 &&
          max_abs_gyro(samples[i]) >= thr) {
        set_flag(flags[i], kFlagSaturated);
      }
    }
  }
}

void detect_component_spikes(const std::vector<Sample>& samples,
                             double delta, double Vec3::*comp,
                             Vec3 Sample::*channel,
                             std::vector<std::uint8_t>& flags) {
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    if (flags[i] != kFlagClean) continue;
    if ((flags[i - 1] | flags[i + 1]) & kFlagNonFinite) continue;
    const double prev = samples[i - 1].*channel.*comp;
    const double cur = samples[i].*channel.*comp;
    const double next = samples[i + 1].*channel.*comp;
    const double d_prev = cur - prev;
    const double d_next = cur - next;
    // Excursion-and-return: the sample departs from BOTH neighbors in the
    // same direction. A genuine fast motion moves the neighbors with it.
    if (std::abs(d_prev) > delta && std::abs(d_next) > delta &&
        d_prev * d_next > 0.0) {
      set_flag(flags[i], kFlagSpike);
    }
  }
}

void detect_spikes(const std::vector<Sample>& samples,
                   const QualityConfig& cfg,
                   std::vector<std::uint8_t>& flags) {
  for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
    detect_component_spikes(samples, cfg.spike_delta, comp, &Sample::accel,
                            flags);
    detect_component_spikes(samples, cfg.gyro_spike_delta, comp,
                            &Sample::gyro, flags);
  }
}

/// Cubic Hermite fill of one component over the gap [a, b) using the clean
/// endpoint samples a-1 and b, with one-sided tangents when the outer
/// neighbors are clean too. For a clipped peak the endpoint slopes point
/// "into" the gap, so the curve bulges beyond the endpoints — a first-order
/// reconstruction of the cut-off extremum.
void hermite_fill(std::vector<Sample>& samples,
                  const std::vector<std::uint8_t>& flags, std::size_t a,
                  std::size_t b, double Vec3::*comp, Vec3 Sample::*channel) {
  const std::size_t n = samples.size();
  const double p0 = samples[a - 1].*channel.*comp;
  const double p1 = samples[b].*channel.*comp;
  const auto span = static_cast<double>(b - a + 1);
  const double secant = (p1 - p0) / span;
  const double m0 = (a >= 2 && flags[a - 2] == kFlagClean)
                        ? samples[a - 1].*channel.*comp -
                              samples[a - 2].*channel.*comp
                        : secant;
  const double m1 = (b + 1 < n && flags[b + 1] == kFlagClean)
                        ? samples[b + 1].*channel.*comp -
                              samples[b].*channel.*comp
                        : secant;
  for (std::size_t i = a; i < b; ++i) {
    const double u = static_cast<double>(i - a + 1) / span;
    const double u2 = u * u;
    const double u3 = u2 * u;
    const double h00 = 2.0 * u3 - 3.0 * u2 + 1.0;
    const double h10 = u3 - 2.0 * u2 + u;
    const double h01 = -2.0 * u3 + 3.0 * u2;
    const double h11 = u3 - u2;
    samples[i].*channel.*comp = h00 * p0 + h10 * (m0 * span) + h01 * p1 +
                                h11 * (m1 * span);
  }
}

void validate(const QualityConfig& cfg) {
  expects(cfg.min_dropout_run >= 1, "quality: min_dropout_run >= 1");
  expects(cfg.spike_delta > 0.0 && cfg.gyro_spike_delta > 0.0,
          "quality: spike thresholds > 0");
  expects(cfg.nonphysical_accel > 0.0 && cfg.nonphysical_gyro > 0.0,
          "quality: nonphysical limits > 0");
  expects(cfg.max_fill_s >= 0.0, "quality: max_fill_s >= 0");
  expects(cfg.min_usable_fraction >= 0.0 && cfg.min_usable_fraction <= 1.0,
          "quality: min_usable_fraction in [0,1]");
  expects(cfg.window_s > 0.0, "quality: window_s > 0");
}

/// Shared worker: detection, repair planning and (when `repaired` is
/// non-null) the actual value rewrite.
QualityReport analyze(const Trace& trace, const QualityConfig& cfg,
                      std::vector<Sample>* repaired) {
  validate(cfg);
  QualityReport report;
  const std::size_t n = trace.size();
  report.flags.assign(n, kFlagClean);
  report.window_s = cfg.window_s;
  if (!cfg.enabled || n == 0) {
    if (n > 0) {
      const auto window_len = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(cfg.window_s * trace.fs())));
      report.window_flags.assign((n + window_len - 1) / window_len,
                                 kFlagClean);
      report.window_s = static_cast<double>(window_len) / trace.fs();
    }
    return report;
  }

  const std::vector<Sample>& samples = trace.samples();
  std::vector<std::uint8_t>& flags = report.flags;
  detect_nonfinite(samples, cfg, flags);
  detect_dropouts(samples, cfg, flags);
  detect_saturation(samples, cfg, flags);
  detect_spikes(samples, cfg, flags);

  // Neutral hold value for masked regions: the mean clean sample. With any
  // gravity-bearing trace that is approximately the gravity vector, i.e. a
  // stationary device — masked stretches cannot fabricate steps.
  Vec3 neutral_accel{0.0, 0.0, kGravity};
  Vec3 neutral_gyro{};
  std::size_t clean_count = 0;
  Vec3 accel_sum{};
  Vec3 gyro_sum{};
  for (std::size_t i = 0; i < n; ++i) {
    if (flags[i] == kFlagClean) {
      accel_sum += samples[i].accel;
      gyro_sum += samples[i].gyro;
      ++clean_count;
    }
  }
  if (clean_count > 0) {
    neutral_accel = accel_sum / static_cast<double>(clean_count);
    neutral_gyro = gyro_sum / static_cast<double>(clean_count);
  }

  const auto max_fill = static_cast<std::size_t>(
      std::llround(cfg.max_fill_s * trace.fs()));

  // Repair plan over maximal flagged runs. Interpolation needs a clean
  // sample on both sides; runs that are too long, touch a trace edge, or
  // carry no usable endpoints are hard-masked instead.
  std::size_t i = 0;
  while (i < n) {
    if (flags[i] == kFlagClean) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && flags[j] != kFlagClean) ++j;
    const bool fillable = (j - i) <= max_fill && i > 0 && j < n;
    for (std::size_t k = i; k < j; ++k) {
      set_flag(flags[k], fillable ? kFlagRepaired : kFlagMasked);
    }
    if (repaired != nullptr) {
      if (fillable) {
        for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
          hermite_fill(*repaired, flags, i, j, comp, &Sample::accel);
          hermite_fill(*repaired, flags, i, j, comp, &Sample::gyro);
        }
      } else {
        for (std::size_t k = i; k < j; ++k) {
          (*repaired)[k].accel = neutral_accel;
          (*repaired)[k].gyro = neutral_gyro;
        }
      }
    }
    i = j;
  }

  for (std::size_t k = 0; k < n; ++k) {
    if (flags[k] & kFlagDropout) ++report.dropout_samples;
    if (flags[k] & kFlagSaturated) ++report.saturated_samples;
    if (flags[k] & kFlagSpike) ++report.spike_samples;
    if (flags[k] & kFlagNonFinite) ++report.nonfinite_samples;
    if (flags[k] & kFlagRepaired) ++report.repaired_samples;
    if (flags[k] & kFlagMasked) ++report.masked_samples;
  }
  PTRACK_CHECK_MSG(report.repaired_samples + report.masked_samples <= n,
                   "quality: repair plan covers each sample at most once");
  const auto dn = static_cast<double>(n);
  report.repaired_fraction = static_cast<double>(report.repaired_samples) / dn;
  report.masked_fraction = static_cast<double>(report.masked_samples) / dn;
  report.clean_fraction =
      1.0 - report.repaired_fraction - report.masked_fraction;
  // Usability gates on *information content*: held or clipped stretches are
  // still a (degraded) record of real motion and repair recovers them, but
  // non-finite/nonphysical cells are pure garbage. A trace dominated by
  // garbage has nothing to track.
  report.usable = (dn - static_cast<double>(report.nonfinite_samples)) / dn >=
                  cfg.min_usable_fraction;

  const auto window_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(cfg.window_s * trace.fs())));
  report.window_s = static_cast<double>(window_len) / trace.fs();
  report.window_flags.assign((n + window_len - 1) / window_len, kFlagClean);
  for (std::size_t k = 0; k < n; ++k) {
    set_flag(report.window_flags[k / window_len], flags[k]);
  }
  return report;
}

double fraction_with(const std::vector<std::uint8_t>& flags,
                     std::size_t begin, std::size_t end,
                     std::uint8_t mask) {
  end = std::min(end, flags.size());
  if (begin >= end) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (flags[i] & mask) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

}  // namespace

double QualityReport::fraction_flagged(std::size_t begin,
                                       std::size_t end) const {
  return fraction_with(flags, begin, end, 0xFF);
}

double QualityReport::fraction_masked(std::size_t begin,
                                      std::size_t end) const {
  return fraction_with(flags, begin, end, kFlagMasked);
}

namespace {

void count_quality(const QualityReport& report) {
  PTRACK_COUNT("ptrack.imu.quality.traces");
  PTRACK_COUNT_N("ptrack.imu.quality.samples_repaired", report.repaired_samples);
  PTRACK_COUNT_N("ptrack.imu.quality.samples_masked", report.masked_samples);
  if (report.repaired_samples + report.masked_samples > 0) {
    PTRACK_COUNT("ptrack.imu.quality.traces_degraded");
  }
}

}  // namespace

QualityReport assess(const Trace& trace, const QualityConfig& cfg) {
  PTRACK_OBS_SPAN("imu.quality");
  QualityReport report = analyze(trace, cfg, nullptr);
  count_quality(report);
  return report;
}

QualityResult assess_and_repair(const Trace& trace, const QualityConfig& cfg) {
  PTRACK_OBS_SPAN("imu.quality");
  std::vector<Sample> samples = trace.samples();
  QualityReport report = analyze(trace, cfg, &samples);
  count_quality(report);
  return {Trace(trace.fs(), std::move(samples)), std::move(report)};
}

}  // namespace ptrack::imu
