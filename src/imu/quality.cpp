#include "imu/quality.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::imu {

namespace {

void set_flag(std::uint8_t& f, std::uint8_t bit) {
  f = static_cast<std::uint8_t>(f | bit);
}

bool finite_and_bounded(double v, double limit) {
  return std::isfinite(v) && std::abs(v) <= limit;
}

bool sample_physical(const Sample& s, const QualityConfig& cfg) {
  return finite_and_bounded(s.accel.x, cfg.nonphysical_accel) &&
         finite_and_bounded(s.accel.y, cfg.nonphysical_accel) &&
         finite_and_bounded(s.accel.z, cfg.nonphysical_accel) &&
         finite_and_bounded(s.gyro.x, cfg.nonphysical_gyro) &&
         finite_and_bounded(s.gyro.y, cfg.nonphysical_gyro) &&
         finite_and_bounded(s.gyro.z, cfg.nonphysical_gyro);
}

double max_abs_accel(const Sample& s) {
  return std::max({std::abs(s.accel.x), std::abs(s.accel.y),
                   std::abs(s.accel.z)});
}

double max_abs_gyro(const Sample& s) {
  return std::max({std::abs(s.gyro.x), std::abs(s.gyro.y),
                   std::abs(s.gyro.z)});
}

void detect_nonfinite(const std::vector<Sample>& samples,
                      const QualityConfig& cfg,
                      std::vector<std::uint8_t>& flags) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!sample_physical(samples[i], cfg)) set_flag(flags[i], kFlagNonFinite);
  }
}

void detect_dropouts(const std::vector<Sample>& samples,
                     const QualityConfig& cfg,
                     std::vector<std::uint8_t>& flags) {
  // A held run repeats the *whole* sample (accel and gyro): a dropped
  // transport packet loses both, and requiring both makes the detector
  // immune to one quantized channel idling while the other still moves.
  std::size_t i = 1;
  while (i < samples.size()) {
    const bool held = (flags[i] & kFlagNonFinite) == 0 &&
                      (flags[i - 1] & kFlagNonFinite) == 0 &&
                      samples[i].accel == samples[i - 1].accel &&
                      samples[i].gyro == samples[i - 1].gyro;
    if (!held) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < samples.size() && (flags[j] & kFlagNonFinite) == 0 &&
           samples[j].accel == samples[j - 1].accel &&
           samples[j].gyro == samples[j - 1].gyro) {
      ++j;
    }
    if (j - i >= cfg.min_dropout_run) {
      for (std::size_t k = i; k < j; ++k) set_flag(flags[k], kFlagDropout);
    }
    i = j;
  }
}

void detect_saturation(const std::vector<Sample>& samples,
                       const QualityConfig& cfg,
                       std::vector<std::uint8_t>& flags) {
  double accel_limit = cfg.saturation_limit;
  if (accel_limit <= 0.0) {
    // Auto-detect: clipping pins several samples to the exact same rail
    // value — a continuous noisy signal never repeats its maximum exactly.
    double rail = 0.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0) {
        rail = std::max(rail, max_abs_accel(samples[i]));
      }
    }
    std::size_t at_rail = 0;
    if (rail > 1.2 * kGravity) {  // below that it is just gravity at rest
      for (std::size_t i = 0; i < samples.size(); ++i) {
        if ((flags[i] & kFlagNonFinite) == 0 &&
            max_abs_accel(samples[i]) >= rail * (1.0 - 1e-12)) {
          ++at_rail;
        }
      }
    }
    if (at_rail >= cfg.min_saturation_plateau) accel_limit = rail;
  }
  if (accel_limit > 0.0) {
    const double thr = accel_limit * (1.0 - 1e-9);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0 &&
          max_abs_accel(samples[i]) >= thr) {
        set_flag(flags[i], kFlagSaturated);
      }
    }
  }
  if (cfg.gyro_saturation_limit > 0.0) {
    const double thr = cfg.gyro_saturation_limit * (1.0 - 1e-9);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if ((flags[i] & kFlagNonFinite) == 0 &&
          max_abs_gyro(samples[i]) >= thr) {
        set_flag(flags[i], kFlagSaturated);
      }
    }
  }
}

void detect_component_spikes(const std::vector<Sample>& samples,
                             double delta, double Vec3::*comp,
                             Vec3 Sample::*channel,
                             std::vector<std::uint8_t>& flags) {
  for (std::size_t i = 1; i + 1 < samples.size(); ++i) {
    if (flags[i] != kFlagClean) continue;
    if ((flags[i - 1] | flags[i + 1]) & kFlagNonFinite) continue;
    const double prev = samples[i - 1].*channel.*comp;
    const double cur = samples[i].*channel.*comp;
    const double next = samples[i + 1].*channel.*comp;
    const double d_prev = cur - prev;
    const double d_next = cur - next;
    // Excursion-and-return: the sample departs from BOTH neighbors in the
    // same direction. A genuine fast motion moves the neighbors with it.
    if (std::abs(d_prev) > delta && std::abs(d_next) > delta &&
        d_prev * d_next > 0.0) {
      set_flag(flags[i], kFlagSpike);
    }
  }
}

void detect_spikes(const std::vector<Sample>& samples,
                   const QualityConfig& cfg,
                   std::vector<std::uint8_t>& flags) {
  for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
    detect_component_spikes(samples, cfg.spike_delta, comp, &Sample::accel,
                            flags);
    detect_component_spikes(samples, cfg.gyro_spike_delta, comp,
                            &Sample::gyro, flags);
  }
}

/// One point of the cubic Hermite gap bridge: endpoint values p0/p1,
/// endpoint tangents m0/m1 (per-sample slopes), gap span in samples and
/// the normalized position u in (0, 1). Shared by the batch fill and the
/// incremental stage so the two paths are arithmetic-identical.
double hermite_point(double p0, double m0, double p1, double m1, double span,
                     double u) {
  const double u2 = u * u;
  const double u3 = u2 * u;
  const double h00 = 2.0 * u3 - 3.0 * u2 + 1.0;
  const double h10 = u3 - 2.0 * u2 + u;
  const double h01 = -2.0 * u3 + 3.0 * u2;
  const double h11 = u3 - u2;
  return h00 * p0 + h10 * (m0 * span) + h01 * p1 + h11 * (m1 * span);
}

/// Cubic Hermite fill of one component over the gap [a, b) using the clean
/// endpoint samples a-1 and b, with one-sided tangents when the outer
/// neighbors are clean too. For a clipped peak the endpoint slopes point
/// "into" the gap, so the curve bulges beyond the endpoints — a first-order
/// reconstruction of the cut-off extremum.
void hermite_fill(std::vector<Sample>& samples,
                  const std::vector<std::uint8_t>& flags, std::size_t a,
                  std::size_t b, double Vec3::*comp, Vec3 Sample::*channel) {
  const std::size_t n = samples.size();
  const double p0 = samples[a - 1].*channel.*comp;
  const double p1 = samples[b].*channel.*comp;
  const auto span = static_cast<double>(b - a + 1);
  const double secant = (p1 - p0) / span;
  const double m0 = (a >= 2 && flags[a - 2] == kFlagClean)
                        ? samples[a - 1].*channel.*comp -
                              samples[a - 2].*channel.*comp
                        : secant;
  const double m1 = (b + 1 < n && flags[b + 1] == kFlagClean)
                        ? samples[b + 1].*channel.*comp -
                              samples[b].*channel.*comp
                        : secant;
  for (std::size_t i = a; i < b; ++i) {
    const double u = static_cast<double>(i - a + 1) / span;
    samples[i].*channel.*comp = hermite_point(p0, m0, p1, m1, span, u);
  }
}

void validate(const QualityConfig& cfg) {
  expects(cfg.min_dropout_run >= 1, "quality: min_dropout_run >= 1");
  expects(cfg.spike_delta > 0.0 && cfg.gyro_spike_delta > 0.0,
          "quality: spike thresholds > 0");
  expects(cfg.nonphysical_accel > 0.0 && cfg.nonphysical_gyro > 0.0,
          "quality: nonphysical limits > 0");
  expects(cfg.max_fill_s >= 0.0, "quality: max_fill_s >= 0");
  expects(cfg.min_usable_fraction >= 0.0 && cfg.min_usable_fraction <= 1.0,
          "quality: min_usable_fraction in [0,1]");
  expects(cfg.window_s > 0.0, "quality: window_s > 0");
}

/// Shared worker: detection, repair planning and (when `repaired` is
/// non-null) the actual value rewrite.
QualityReport analyze(const Trace& trace, const QualityConfig& cfg,
                      std::vector<Sample>* repaired) {
  validate(cfg);
  QualityReport report;
  const std::size_t n = trace.size();
  report.flags.assign(n, kFlagClean);
  report.window_s = cfg.window_s;
  if (!cfg.enabled || n == 0) {
    if (n > 0) {
      const auto window_len = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::llround(cfg.window_s * trace.fs())));
      report.window_flags.assign((n + window_len - 1) / window_len,
                                 kFlagClean);
      report.window_s = static_cast<double>(window_len) / trace.fs();
    }
    return report;
  }

  const std::vector<Sample>& samples = trace.samples();
  std::vector<std::uint8_t>& flags = report.flags;
  detect_nonfinite(samples, cfg, flags);
  detect_dropouts(samples, cfg, flags);
  detect_saturation(samples, cfg, flags);
  detect_spikes(samples, cfg, flags);

  // Neutral hold value for masked regions: the mean clean sample. With any
  // gravity-bearing trace that is approximately the gravity vector, i.e. a
  // stationary device — masked stretches cannot fabricate steps.
  Vec3 neutral_accel{0.0, 0.0, kGravity};
  Vec3 neutral_gyro{};
  std::size_t clean_count = 0;
  Vec3 accel_sum{};
  Vec3 gyro_sum{};
  for (std::size_t i = 0; i < n; ++i) {
    if (flags[i] == kFlagClean) {
      accel_sum += samples[i].accel;
      gyro_sum += samples[i].gyro;
      ++clean_count;
    }
  }
  if (clean_count > 0) {
    neutral_accel = accel_sum / static_cast<double>(clean_count);
    neutral_gyro = gyro_sum / static_cast<double>(clean_count);
  }

  const auto max_fill = static_cast<std::size_t>(
      std::llround(cfg.max_fill_s * trace.fs()));

  // Repair plan over maximal flagged runs. Interpolation needs a clean
  // sample on both sides; runs that are too long, touch a trace edge, or
  // carry no usable endpoints are hard-masked instead.
  std::size_t i = 0;
  while (i < n) {
    if (flags[i] == kFlagClean) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && flags[j] != kFlagClean) ++j;
    const bool fillable = (j - i) <= max_fill && i > 0 && j < n;
    for (std::size_t k = i; k < j; ++k) {
      set_flag(flags[k], fillable ? kFlagRepaired : kFlagMasked);
    }
    if (repaired != nullptr) {
      if (fillable) {
        for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
          hermite_fill(*repaired, flags, i, j, comp, &Sample::accel);
          hermite_fill(*repaired, flags, i, j, comp, &Sample::gyro);
        }
      } else {
        for (std::size_t k = i; k < j; ++k) {
          (*repaired)[k].accel = neutral_accel;
          (*repaired)[k].gyro = neutral_gyro;
        }
      }
    }
    i = j;
  }

  for (std::size_t k = 0; k < n; ++k) {
    if (flags[k] & kFlagDropout) ++report.dropout_samples;
    if (flags[k] & kFlagSaturated) ++report.saturated_samples;
    if (flags[k] & kFlagSpike) ++report.spike_samples;
    if (flags[k] & kFlagNonFinite) ++report.nonfinite_samples;
    if (flags[k] & kFlagRepaired) ++report.repaired_samples;
    if (flags[k] & kFlagMasked) ++report.masked_samples;
  }
  PTRACK_CHECK_MSG(report.repaired_samples + report.masked_samples <= n,
                   "quality: repair plan covers each sample at most once");
  const auto dn = static_cast<double>(n);
  report.repaired_fraction = static_cast<double>(report.repaired_samples) / dn;
  report.masked_fraction = static_cast<double>(report.masked_samples) / dn;
  report.clean_fraction =
      1.0 - report.repaired_fraction - report.masked_fraction;
  // Usability gates on *information content*: held or clipped stretches are
  // still a (degraded) record of real motion and repair recovers them, but
  // non-finite/nonphysical cells are pure garbage. A trace dominated by
  // garbage has nothing to track.
  report.usable = (dn - static_cast<double>(report.nonfinite_samples)) / dn >=
                  cfg.min_usable_fraction;

  const auto window_len = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(cfg.window_s * trace.fs())));
  report.window_s = static_cast<double>(window_len) / trace.fs();
  report.window_flags.assign((n + window_len - 1) / window_len, kFlagClean);
  for (std::size_t k = 0; k < n; ++k) {
    set_flag(report.window_flags[k / window_len], flags[k]);
  }
  return report;
}

double fraction_with(const std::vector<std::uint8_t>& flags,
                     std::size_t begin, std::size_t end,
                     std::uint8_t mask) {
  end = std::min(end, flags.size());
  if (begin >= end) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = begin; i < end; ++i) {
    if (flags[i] & mask) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(end - begin);
}

}  // namespace

double QualityReport::fraction_flagged(std::size_t begin,
                                       std::size_t end) const {
  return fraction_with(flags, begin, end, 0xFF);
}

double QualityReport::fraction_masked(std::size_t begin,
                                      std::size_t end) const {
  return fraction_with(flags, begin, end, kFlagMasked);
}

namespace {

void count_quality(const QualityReport& report) {
  PTRACK_COUNT("ptrack.imu.quality.traces");
  PTRACK_COUNT_N("ptrack.imu.quality.samples_repaired", report.repaired_samples);
  PTRACK_COUNT_N("ptrack.imu.quality.samples_masked", report.masked_samples);
  if (report.repaired_samples + report.masked_samples > 0) {
    PTRACK_COUNT("ptrack.imu.quality.traces_degraded");
  }
}

}  // namespace

QualityReport assess(const Trace& trace, const QualityConfig& cfg) {
  PTRACK_OBS_SPAN("ptrack.imu.quality");
  QualityReport report = analyze(trace, cfg, nullptr);
  count_quality(report);
  return report;
}

QualityResult assess_and_repair(const Trace& trace, const QualityConfig& cfg) {
  PTRACK_OBS_SPAN("ptrack.imu.quality");
  std::vector<Sample> samples = trace.samples();
  QualityReport report = analyze(trace, cfg, &samples);
  count_quality(report);
  return {Trace(trace.fs(), std::move(samples)), std::move(report)};
}

// ---------------------------------------------------------------------------
// IncrementalQuality
// ---------------------------------------------------------------------------

IncrementalQuality::IncrementalQuality(double fs, QualityConfig cfg)
    : cfg_(cfg), fs_(fs) {
  expects(fs > 0.0, "IncrementalQuality: fs > 0");
  validate(cfg_);
  max_fill_ =
      static_cast<std::size_t>(std::llround(cfg_.max_fill_s * fs_));
  pending_.reserve(latency_bound() + 1);
}

void IncrementalQuality::detect_on_push(const Sample& s, std::uint8_t& flags) {
  if (!sample_physical(s, cfg_)) set_flag(flags, kFlagNonFinite);
  const bool cur_nonfinite = (flags & kFlagNonFinite) != 0;

  // Dropout: extend or reset the current held run; retro-flag the run's
  // earlier members (still pending by the finalization rules) the moment
  // it reaches the minimum length.
  const bool held = have_prev_ && !cur_nonfinite && !prev_nonfinite_ &&
                    s.accel == prev_raw_.accel && s.gyro == prev_raw_.gyro;
  if (held) {
    ++held_run_;
    if (held_run_ >= cfg_.min_dropout_run) {
      set_flag(flags, kFlagDropout);
      if (held_run_ == cfg_.min_dropout_run) {
        const std::size_t retro = cfg_.min_dropout_run - 1;
        PTRACK_CHECK_MSG(pending_.size() >= retro,
                         "IncrementalQuality: open held run still pending");
        for (std::size_t k = pending_.size() - retro; k < pending_.size();
             ++k) {
          set_flag(pending_[k].flags, kFlagDropout);
        }
      }
    }
  } else {
    held_run_ = 0;
  }
  prev_raw_ = s;
  prev_nonfinite_ = cur_nonfinite;
  have_prev_ = true;

  // Saturation. Explicit rails flag immediately; the auto rail is a running
  // maximum that confirms once enough samples have dwelled at it, then
  // retro-flags whatever part of the plateau is still pending.
  if (!cur_nonfinite) {
    const double m = max_abs_accel(s);
    if (cfg_.saturation_limit > 0.0) {
      if (m >= cfg_.saturation_limit * (1.0 - 1e-9)) {
        set_flag(flags, kFlagSaturated);
      }
    } else {
      if (m > rail_) {
        rail_ = m;
        rail_count_ = 1;
      } else if (m >= rail_ * (1.0 - 1e-12)) {
        ++rail_count_;
      }
      if (rail_ > 1.2 * kGravity &&
          rail_count_ >= cfg_.min_saturation_plateau &&
          rail_ > confirmed_rail_) {
        confirmed_rail_ = rail_;
        const double thr = confirmed_rail_ * (1.0 - 1e-9);
        for (Pending& p : pending_) {
          if ((p.flags & kFlagNonFinite) == 0 && max_abs_accel(p.s) >= thr) {
            set_flag(p.flags, kFlagSaturated);
          }
        }
      }
      if (confirmed_rail_ > 0.0 &&
          m >= confirmed_rail_ * (1.0 - 1e-9)) {
        set_flag(flags, kFlagSaturated);
      }
    }
    if (cfg_.gyro_saturation_limit > 0.0 &&
        max_abs_gyro(s) >= cfg_.gyro_saturation_limit * (1.0 - 1e-9)) {
      set_flag(flags, kFlagSaturated);
    }
  }
}

void IncrementalQuality::evaluate_spike_before_last() {
  // The excursion-and-return test needs both neighbors, so the candidate is
  // the second-newest pending sample; its left neighbor may already have
  // been finalized (out1_, raw values). Held samples can never spike
  // (d_prev == 0), so a dropout flag arriving later cannot contradict this.
  if (pending_.size() < 2) return;
  Pending& center = pending_[pending_.size() - 2];
  if (center.flags != kFlagClean) return;
  const Pending& right = pending_.back();
  const Sample* left = nullptr;
  std::uint8_t left_flags = kFlagClean;
  if (pending_.size() >= 3) {
    left = &pending_[pending_.size() - 3].s;
    left_flags = pending_[pending_.size() - 3].flags;
  } else if (out1_.has_value()) {
    left = &out1_->raw;
    left_flags = out1_->flags;
  } else {
    return;  // stream-start sample: batch never flags index 0 either
  }
  if ((left_flags | right.flags) & kFlagNonFinite) return;
  for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
    for (const auto& [channel, delta] :
         {std::pair{&Sample::accel, cfg_.spike_delta},
          std::pair{&Sample::gyro, cfg_.gyro_spike_delta}}) {
      const double prev = (*left).*channel.*comp;
      const double cur = center.s.*channel.*comp;
      const double next = right.s.*channel.*comp;
      const double d_prev = cur - prev;
      const double d_next = cur - next;
      if (std::abs(d_prev) > delta && std::abs(d_next) > delta &&
          d_prev * d_next > 0.0) {
        set_flag(center.flags, kFlagSpike);
        return;
      }
    }
  }
}

Sample IncrementalQuality::neutral_sample() const {
  Sample s;
  if (clean_count_ > 0) {
    s.accel = accel_sum_ / static_cast<double>(clean_count_);
    s.gyro = gyro_sum_ / static_cast<double>(clean_count_);
  } else {
    s.accel = {0.0, 0.0, kGravity};
    s.gyro = {};
  }
  return s;
}

void IncrementalQuality::emit(const Sample& repaired, const Sample& raw,
                              std::uint8_t flags,
                              std::vector<RepairedSample>& out) {
  out.push_back({repaired, flags});
  ++counts_.emitted;
  if (flags & kFlagDropout) ++counts_.dropout;
  if (flags & kFlagSaturated) ++counts_.saturated;
  if (flags & kFlagSpike) ++counts_.spike;
  if (flags & kFlagNonFinite) ++counts_.nonfinite;
  if (flags & kFlagRepaired) ++counts_.repaired;
  if (flags & kFlagMasked) ++counts_.masked;
  if (flags == kFlagClean) {
    accel_sum_ += raw.accel;
    gyro_sum_ += raw.gyro;
    ++clean_count_;
  }
  out2_ = out1_;
  out1_ = Emitted{raw, flags};
}

void IncrementalQuality::fill_and_emit(std::size_t run,
                                       std::vector<RepairedSample>& out) {
  // Mirrors hermite_fill: p0 = the last finalized sample (clean by run
  // maximality), p1 = the closing clean sample, tangents one-sided where
  // the outer neighbors are clean.
  const Sample& p0s = out1_->raw;
  const Sample& p1s = pending_[run].s;
  const bool m0_clean = out2_.has_value() && out2_->flags == kFlagClean;
  const bool m1_clean = run + 1 < pending_.size() &&
                        pending_[run + 1].flags == kFlagClean;
  const auto span = static_cast<double>(run + 1);
  for (std::size_t i = 0; i < run; ++i) {
    Sample repaired = pending_[i].s;
    for (double Vec3::*comp : {&Vec3::x, &Vec3::y, &Vec3::z}) {
      for (Vec3 Sample::*channel : {&Sample::accel, &Sample::gyro}) {
        const double p0 = p0s.*channel.*comp;
        const double p1 = p1s.*channel.*comp;
        const double secant = (p1 - p0) / span;
        const double m0 =
            m0_clean ? p0 - out2_->raw.*channel.*comp : secant;
        const double m1 =
            m1_clean ? pending_[run + 1].s.*channel.*comp - p1 : secant;
        const double u = static_cast<double>(i + 1) / span;
        repaired.*channel.*comp = hermite_point(p0, m0, p1, m1, span, u);
      }
    }
    const auto flags =
        static_cast<std::uint8_t>(pending_[i].flags | kFlagRepaired);
    emit(repaired, pending_[i].s, flags, out);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(run));
}

void IncrementalQuality::mask_and_emit(std::size_t run,
                                       std::vector<RepairedSample>& out) {
  const Sample neutral = neutral_sample();
  for (std::size_t i = 0; i < run; ++i) {
    Sample repaired = pending_[i].s;
    repaired.accel = neutral.accel;
    repaired.gyro = neutral.gyro;
    const auto flags =
        static_cast<std::uint8_t>(pending_[i].flags | kFlagMasked);
    emit(repaired, pending_[i].s, flags, out);
  }
  pending_.erase(pending_.begin(),
                 pending_.begin() + static_cast<std::ptrdiff_t>(run));
}

void IncrementalQuality::finalize_ready(std::vector<RepairedSample>& out,
                                        bool flushing) {
  while (!pending_.empty()) {
    const std::size_t n = pending_.size();
    // Keep one sample back so its spike test has a right neighbor.
    if (!flushing && n < 2) break;
    if (pending_.front().flags == kFlagClean) {
      // A trailing held run shorter than the dropout minimum may still be
      // retro-flagged; hold its members back.
      if (!flushing && held_run_ > 0 && held_run_ < cfg_.min_dropout_run &&
          n <= held_run_) {
        break;
      }
      const Pending front = pending_.front();
      pending_.erase(pending_.begin(), pending_.begin() + 1);
      emit(front.s, front.s, front.flags, out);
      continue;
    }
    // Maximal flagged run at the head.
    std::size_t run = 1;
    while (run < n && pending_[run].flags != kFlagClean) ++run;
    const bool closed = run < n;
    if (!closed) {
      // Open run: a run already longer than the fill limit will be masked
      // no matter how it ends (batch masks on total length); emit it now
      // to keep the latency bound. Otherwise wait for the closing sample.
      if (flushing || run > max_fill_) {
        mask_and_emit(run, out);
        continue;
      }
      break;
    }
    // Closed run [0, run); pending_[run] is the clean right endpoint. The
    // right tangent inspects the flags of pending_[run + 1], whose spike
    // bit settles only once pending_[run + 2] has arrived.
    if (!flushing && n < run + 3) break;
    // The left endpoint must be a clean finalized sample: absent at stream
    // start (batch: i == 0), and non-clean when this run is the tail of a
    // longer run whose head was already masked.
    const bool fillable = run <= max_fill_ && out1_.has_value() &&
                          out1_->flags == kFlagClean;
    if (fillable) {
      fill_and_emit(run, out);
    } else {
      mask_and_emit(run, out);
    }
  }
}

void IncrementalQuality::push(const Sample& s,
                              std::vector<RepairedSample>& out) {
  if (!cfg_.enabled) {
    out.push_back({s, kFlagClean});
    ++counts_.emitted;
    return;
  }
  std::uint8_t flags = kFlagClean;
  detect_on_push(s, flags);
  pending_.push_back({s, flags});
  evaluate_spike_before_last();
  finalize_ready(out, false);
  PTRACK_CHECK_MSG(pending_.size() <= latency_bound(),
                   "IncrementalQuality: bounded hold-back");
}

void IncrementalQuality::flush(std::vector<RepairedSample>& out) {
  if (!cfg_.enabled) return;
  finalize_ready(out, true);
  PTRACK_CHECK_MSG(pending_.empty(), "IncrementalQuality: flush drains all");
}

}  // namespace ptrack::imu
