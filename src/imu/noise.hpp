// Sensor error model for the simulated wearable IMU.
//
// Models the error sources that matter for step counting and stride
// estimation on a consumer MEMS accelerometer (e.g. the LG Urbane's
// InvenSense part): a per-axis constant bias, white measurement noise, and
// output quantization. The mean-removal integration in PTrack specifically
// exists to survive the bias term, so the model keeps it explicit.

#pragma once

#include "common/rng.hpp"
#include "imu/trace.hpp"

namespace ptrack::imu {

/// Parameters of the sensor error model. Defaults approximate a consumer
/// MEMS accelerometer at 100 Hz.
struct SensorErrorModel {
  double accel_bias_stddev = 0.03;    ///< per-axis constant bias draw (m/s^2)
  double accel_noise_stddev = 0.03;   ///< white noise per sample (m/s^2)
  double accel_quantization = 0.0024; ///< output LSB (m/s^2); 0 disables
  double gyro_bias_stddev = 0.002;    ///< rad/s
  double gyro_noise_stddev = 0.003;   ///< rad/s per sample
};

/// Applies the error model to a clean trace (bias drawn once per trace,
/// noise per sample, then quantization). Deterministic given `rng`.
Trace corrupt(const Trace& clean, const SensorErrorModel& model, Rng& rng);

/// A noiseless model (all parameters zero) for unit tests that need exact
/// kinematics.
SensorErrorModel noiseless();

}  // namespace ptrack::imu
