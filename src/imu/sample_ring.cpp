#include "imu/sample_ring.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::imu {

// ptrack-lint: push-allow(alloc) amortized channel growth; the dead prefix
// is compacted by trim_to, so capacity plateaus at the retention window
void SampleRing::push(const Sample& s, std::uint8_t flags) {
  ax_.push_back(s.accel.x);
  ay_.push_back(s.accel.y);
  az_.push_back(s.accel.z);
  gx_.push_back(s.gyro.x);
  gy_.push_back(s.gyro.y);
  gz_.push_back(s.gyro.z);
  flags_.push_back(flags);
  if (f32_) {
    axf_.push_back(static_cast<float>(s.accel.x));
    ayf_.push_back(static_cast<float>(s.accel.y));
    azf_.push_back(static_cast<float>(s.accel.z));
  }
}
// ptrack-lint: pop-allow(alloc)

void SampleRing::enable_f32() {
  if (f32_) return;
  f32_ = true;
  const auto mirror = [](const std::vector<double>& src,
                         std::vector<float>& dst) {
    // ptrack-lint: allow(alloc) one-shot mode switch before streaming
    dst.resize(src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = static_cast<float>(src[i]);
    }
  };
  mirror(ax_, axf_);
  mirror(ay_, ayf_);
  mirror(az_, azf_);
}

void SampleRing::trim_to(std::size_t new_base) {
  new_base = std::clamp(new_base, base_, end());
  head_ += new_base - base_;
  base_ = new_base;
  maybe_compact();
}

void SampleRing::maybe_compact() {
  if (head_ == 0 || head_ <= size()) return;
  const auto erase_prefix = [this](auto& v) {
    v.erase(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(head_));
  };
  erase_prefix(ax_);
  erase_prefix(ay_);
  erase_prefix(az_);
  erase_prefix(gx_);
  erase_prefix(gy_);
  erase_prefix(gz_);
  erase_prefix(flags_);
  if (f32_) {
    erase_prefix(axf_);
    erase_prefix(ayf_);
    erase_prefix(azf_);
  }
  head_ = 0;
  ++compactions_;
}

std::size_t SampleRing::offset(std::size_t abs_index) const {
  PTRACK_CHECK_MSG(abs_index >= base_ && abs_index <= end(),
                   "SampleRing: absolute index inside the retained range");
  return head_ + (abs_index - base_);
}

namespace {
std::span<const double> sub(const std::vector<double>& v, std::size_t o,
                            std::size_t len) {
  return {v.data() + o, len};
}
}  // namespace

std::size_t SampleRing::span_offset(std::size_t b, std::size_t e) const {
  expects(b <= e, "SampleRing: span begin <= end");
  PTRACK_CHECK_MSG(b >= base_ && e <= end(),
                   "SampleRing: span inside the retained range");
  return head_ + (b - base_);
}

std::span<const double> SampleRing::ax(std::size_t b, std::size_t e) const {
  return sub(ax_, span_offset(b, e), e - b);
}
std::span<const double> SampleRing::ay(std::size_t b, std::size_t e) const {
  return sub(ay_, span_offset(b, e), e - b);
}
std::span<const double> SampleRing::az(std::size_t b, std::size_t e) const {
  return sub(az_, span_offset(b, e), e - b);
}
std::span<const double> SampleRing::gx(std::size_t b, std::size_t e) const {
  return sub(gx_, span_offset(b, e), e - b);
}
std::span<const double> SampleRing::gy(std::size_t b, std::size_t e) const {
  return sub(gy_, span_offset(b, e), e - b);
}
std::span<const std::uint8_t> SampleRing::flags(std::size_t b,
                                                std::size_t e) const {
  return {flags_.data() + span_offset(b, e), e - b};
}
std::span<const double> SampleRing::gz(std::size_t b, std::size_t e) const {
  return sub(gz_, span_offset(b, e), e - b);
}

std::span<const float> SampleRing::axf(std::size_t b, std::size_t e) const {
  expects(f32_, "SampleRing: enable_f32() before axf()");
  return {axf_.data() + span_offset(b, e), e - b};
}
std::span<const float> SampleRing::ayf(std::size_t b, std::size_t e) const {
  expects(f32_, "SampleRing: enable_f32() before ayf()");
  return {ayf_.data() + span_offset(b, e), e - b};
}
std::span<const float> SampleRing::azf(std::size_t b, std::size_t e) const {
  expects(f32_, "SampleRing: enable_f32() before azf()");
  return {azf_.data() + span_offset(b, e), e - b};
}

Sample SampleRing::sample(std::size_t abs_index) const {
  const std::size_t o = offset(abs_index);
  PTRACK_CHECK_MSG(abs_index < end(), "SampleRing: sample index in range");
  Sample s;
  s.accel = {ax_[o], ay_[o], az_[o]};
  s.gyro = {gx_[o], gy_[o], gz_[o]};
  return s;
}

std::size_t SampleRing::count_flagged(std::size_t b, std::size_t e,
                                      std::uint8_t mask) const {
  e = std::min(e, end());
  b = std::max(b, base_);
  if (b >= e) return 0;
  std::size_t hits = 0;
  for (std::uint8_t f : flags(b, e)) {
    if (f & mask) ++hits;
  }
  return hits;
}

double SampleRing::fraction_flagged(std::size_t b, std::size_t e,
                                    std::uint8_t mask) const {
  e = std::min(e, end());
  b = std::max(b, base_);
  if (b >= e) return 0.0;
  return static_cast<double>(count_flagged(b, e, mask)) /
         static_cast<double>(e - b);
}

}  // namespace ptrack::imu
