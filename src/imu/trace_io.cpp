#include "imu/trace_io.hpp"

#include <cmath>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::imu {

namespace {

const std::vector<std::string> kHeader = {"t",  "ax", "ay", "az",
                                          "gx", "gy", "gz"};

// Sampling rates outside this band are either metadata corruption or an
// attempt to drive the resampler/FFT into absurd allocation sizes. Real
// wearable IMUs sit in [10, 1000] Hz; the band is deliberately wider.
constexpr double kMinFs = 1e-3;
constexpr double kMaxFs = 1e6;

}  // namespace

void save_csv(const Trace& trace, const std::string& path) {
  std::vector<std::vector<double>> rows;
  rows.reserve(trace.size() + 1);
  // First row is metadata: fs in the "t" column, the rest zero.
  rows.push_back({trace.fs(), 0, 0, 0, 0, 0, 0});
  for (const Sample& s : trace.samples()) {
    rows.push_back({s.t, s.accel.x, s.accel.y, s.accel.z, s.gyro.x, s.gyro.y,
                    s.gyro.z});
  }
  csv::write(path, kHeader, rows);
}

Trace trace_from_document(const csv::Document& doc, const std::string& name) {
  if (doc.header != kHeader) {
    throw Error("trace_from_document: unexpected header in " + name);
  }
  if (doc.rows.empty()) {
    throw Error("trace_from_document: missing metadata row in " + name);
  }
  const double fs = doc.rows.front().front();
  // csv::parse already rejects non-finite cells; re-check here so documents
  // built programmatically get the same boundary validation.
  if (!std::isfinite(fs) || fs <= 0.0) {
    throw Error("trace_from_document: non-finite or non-positive fs in " +
                name);
  }
  if (fs < kMinFs || fs > kMaxFs) {
    throw Error("trace_from_document: implausible fs " + std::to_string(fs) +
                " Hz in " + name);
  }
  if (doc.rows.size() - 1 > kMaxTraceSamples) {
    throw Error("trace_from_document: absurd sample count in " + name);
  }
  std::vector<Sample> samples;
  samples.reserve(doc.rows.size() - 1);
  for (std::size_t i = 1; i < doc.rows.size(); ++i) {
    const auto& r = doc.rows[i];
    Sample s;
    s.t = r[0];
    if (!std::isfinite(s.t)) {
      throw Error("trace_from_document: non-finite timestamp in row " +
                  std::to_string(i + 1) + " of " + name);
    }
    if (!samples.empty() && s.t < samples.back().t) {
      throw Error("trace_from_document: non-monotonic timestamp in row " +
                  std::to_string(i + 1) + " of " + name);
    }
    s.accel = {r[1], r[2], r[3]};
    s.gyro = {r[4], r[5], r[6]};
    samples.push_back(s);
  }
  Trace trace(fs, std::move(samples));
  PTRACK_CHECK_MSG(trace.size() + 1 == doc.rows.size(),
                   "trace_from_document: one sample per data row");
  return trace;
}

Trace load_csv(const std::string& path) {
  PTRACK_OBS_SPAN("ptrack.imu.load_csv");
  Trace trace = trace_from_document(csv::read(path), path);
  PTRACK_COUNT("ptrack.imu.load.traces");
  return trace;
}

}  // namespace ptrack::imu
