#include "imu/trace_io.hpp"

#include "common/csv.hpp"
#include "common/error.hpp"

namespace ptrack::imu {

namespace {
const std::vector<std::string> kHeader = {"t",  "ax", "ay", "az",
                                          "gx", "gy", "gz"};
}

void save_csv(const Trace& trace, const std::string& path) {
  std::vector<std::vector<double>> rows;
  rows.reserve(trace.size() + 1);
  // First row is metadata: fs in the "t" column, the rest zero.
  rows.push_back({trace.fs(), 0, 0, 0, 0, 0, 0});
  for (const Sample& s : trace.samples()) {
    rows.push_back({s.t, s.accel.x, s.accel.y, s.accel.z, s.gyro.x, s.gyro.y,
                    s.gyro.z});
  }
  csv::write(path, kHeader, rows);
}

Trace load_csv(const std::string& path) {
  const csv::Document doc = csv::read(path);
  if (doc.header != kHeader) throw Error("load_csv: unexpected header in " + path);
  if (doc.rows.empty()) throw Error("load_csv: missing metadata row in " + path);
  const double fs = doc.rows.front().front();
  if (fs <= 0.0) throw Error("load_csv: invalid fs in " + path);
  std::vector<Sample> samples;
  samples.reserve(doc.rows.size() - 1);
  for (std::size_t i = 1; i < doc.rows.size(); ++i) {
    const auto& r = doc.rows[i];
    Sample s;
    s.t = r[0];
    s.accel = {r[1], r[2], r[3]};
    s.gyro = {r[4], r[5], r[6]};
    samples.push_back(s);
  }
  return Trace(fs, std::move(samples));
}

}  // namespace ptrack::imu
