#include "imu/noise.hpp"

#include <cmath>

namespace ptrack::imu {

namespace {

double quantize(double v, double lsb) {
  if (lsb <= 0.0) return v;
  return std::round(v / lsb) * lsb;
}

}  // namespace

Trace corrupt(const Trace& clean, const SensorErrorModel& model, Rng& rng) {
  const Vec3 accel_bias{rng.normal(0.0, model.accel_bias_stddev),
                        rng.normal(0.0, model.accel_bias_stddev),
                        rng.normal(0.0, model.accel_bias_stddev)};
  const Vec3 gyro_bias{rng.normal(0.0, model.gyro_bias_stddev),
                       rng.normal(0.0, model.gyro_bias_stddev),
                       rng.normal(0.0, model.gyro_bias_stddev)};

  std::vector<Sample> out;
  out.reserve(clean.size());
  for (const Sample& s : clean.samples()) {
    Sample c = s;
    c.accel += accel_bias;
    c.accel += Vec3{rng.normal(0.0, model.accel_noise_stddev),
                    rng.normal(0.0, model.accel_noise_stddev),
                    rng.normal(0.0, model.accel_noise_stddev)};
    c.accel = {quantize(c.accel.x, model.accel_quantization),
               quantize(c.accel.y, model.accel_quantization),
               quantize(c.accel.z, model.accel_quantization)};
    c.gyro += gyro_bias;
    c.gyro += Vec3{rng.normal(0.0, model.gyro_noise_stddev),
                   rng.normal(0.0, model.gyro_noise_stddev),
                   rng.normal(0.0, model.gyro_noise_stddev)};
    out.push_back(c);
  }
  return Trace(clean.fs(), std::move(out));
}

SensorErrorModel noiseless() {
  SensorErrorModel m;
  m.accel_bias_stddev = 0.0;
  m.accel_noise_stddev = 0.0;
  m.accel_quantization = 0.0;
  m.gyro_bias_stddev = 0.0;
  m.gyro_noise_stddev = 0.0;
  return m;
}

}  // namespace ptrack::imu
