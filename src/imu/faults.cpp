#include "imu/faults.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace ptrack::imu {

Trace inject_dropouts(const Trace& trace, double rate_per_min,
                      std::size_t min_len, std::size_t max_len, Rng& rng) {
  expects(rate_per_min >= 0.0, "inject_dropouts: rate >= 0");
  expects(min_len >= 1 && max_len >= min_len, "inject_dropouts: valid run lengths");
  std::vector<Sample> samples = trace.samples();
  if (samples.size() < 2 || rate_per_min == 0.0) {
    return Trace(trace.fs(), std::move(samples));
  }

  const double runs_expected = rate_per_min * trace.duration() / 60.0;
  const auto runs = static_cast<std::size_t>(runs_expected + 0.5);
  for (std::size_t r = 0; r < runs; ++r) {
    const auto start = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<int>(samples.size() - 1)));
    const auto len = static_cast<std::size_t>(rng.uniform_int(
        static_cast<int>(min_len), static_cast<int>(max_len)));
    for (std::size_t i = start; i < std::min(start + len, samples.size());
         ++i) {
      samples[i].accel = samples[start - 1].accel;
      samples[i].gyro = samples[start - 1].gyro;
    }
  }
  return Trace(trace.fs(), std::move(samples));
}

Trace clip_acceleration(const Trace& trace, double limit) {
  expects(limit > 0.0, "clip_acceleration: limit > 0");
  std::vector<Sample> samples = trace.samples();
  for (Sample& s : samples) {
    s.accel.x = std::clamp(s.accel.x, -limit, limit);
    s.accel.y = std::clamp(s.accel.y, -limit, limit);
    s.accel.z = std::clamp(s.accel.z, -limit, limit);
  }
  return Trace(trace.fs(), std::move(samples));
}

Trace clip_gyro(const Trace& trace, double limit) {
  expects(limit > 0.0, "clip_gyro: limit > 0");
  std::vector<Sample> samples = trace.samples();
  for (Sample& s : samples) {
    s.gyro.x = std::clamp(s.gyro.x, -limit, limit);
    s.gyro.y = std::clamp(s.gyro.y, -limit, limit);
    s.gyro.z = std::clamp(s.gyro.z, -limit, limit);
  }
  return Trace(trace.fs(), std::move(samples));
}

Trace inject_spikes(const Trace& trace, double rate_per_min, double glitch_g,
                    Rng& rng, FaultChannels channels) {
  expects(rate_per_min >= 0.0, "inject_spikes: rate >= 0");
  std::vector<Sample> samples = trace.samples();
  if (samples.empty() || rate_per_min == 0.0) {
    return Trace(trace.fs(), std::move(samples));
  }
  const double expected = rate_per_min * trace.duration() / 60.0;
  const auto spikes = static_cast<std::size_t>(expected + 0.5);
  for (std::size_t k = 0; k < spikes; ++k) {
    const auto i = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(samples.size() - 1)));
    const int axis = rng.uniform_int(0, 2);
    const double v = (rng.chance(0.5) ? 1.0 : -1.0) * glitch_g * kGravity;
    const bool hit_gyro =
        channels == FaultChannels::Gyro ||
        (channels == FaultChannels::Both && rng.chance(0.5));
    Vec3& target = hit_gyro ? samples[i].gyro : samples[i].accel;
    if (axis == 0) {
      target.x = v;
    } else if (axis == 1) {
      target.y = v;
    } else {
      target.z = v;
    }
  }
  return Trace(trace.fs(), std::move(samples));
}

}  // namespace ptrack::imu
