// A uniformly sampled IMU trace with slicing and axis-extraction helpers.

#pragma once

#include <span>
#include <vector>

#include "imu/sample.hpp"

namespace ptrack::imu {

/// Uniformly sampled IMU recording. Invariant: samples are evenly spaced at
/// 1/fs starting from samples.front().t (enforced on construction paths that
/// can check it).
class Trace {
 public:
  Trace() = default;

  /// Builds a trace from samples at the given rate. fs > 0; sample times must
  /// be non-decreasing.
  Trace(double fs, std::vector<Sample> samples);

  [[nodiscard]] double fs() const { return fs_; }
  [[nodiscard]] double dt() const { return 1.0 / fs_; }
  [[nodiscard]] std::size_t size() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }
  [[nodiscard]] double duration() const {
    return empty() ? 0.0 : static_cast<double>(size()) / fs_;
  }

  [[nodiscard]] const Sample& operator[](std::size_t i) const {
    return samples_[i];
  }
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::vector<Sample>& samples() { return samples_; }

  /// Appends another trace recorded at the same rate; timestamps of `tail`
  /// are shifted to continue seamlessly after this trace.
  void append(const Trace& tail);

  /// Sub-trace covering sample indices [begin, end).
  [[nodiscard]] Trace slice(std::size_t begin, std::size_t end) const;

  /// Acceleration (specific-force) vectors in sample order.
  [[nodiscard]] std::vector<Vec3> accel_vectors() const;

  /// One acceleration axis as a flat array: 0 = x, 1 = y, 2 = z.
  [[nodiscard]] std::vector<double> accel_axis(int axis) const;

  /// Euclidean norm of each acceleration sample.
  [[nodiscard]] std::vector<double> accel_magnitude() const;

 private:
  double fs_ = 0.0;
  std::vector<Sample> samples_;
};

}  // namespace ptrack::imu
