// One inertial sample from a (real or simulated) wearable IMU.

#pragma once

#include "common/vec3.hpp"

namespace ptrack::imu {

/// One IMU reading. `accel` is the *specific force* the accelerometer
/// reports (m/s^2, device/world frame as documented by the producing
/// source): for a device at rest it is +g along the up axis. `gyro` is
/// angular rate (rad/s); the synthesizer fills it for completeness and the
/// heading substrate consumes it, PTrack's core needs only `accel`.
struct Sample {
  double t = 0.0;  ///< seconds since trace start
  Vec3 accel{};    ///< specific force (m/s^2)
  Vec3 gyro{};     ///< angular rate (rad/s)
};

}  // namespace ptrack::imu
