// Sensor fault injection: the failure modes a deployed wearable actually
// exhibits beyond Gaussian noise — dropped sample runs (BLE/driver
// hiccups; the driver repeats the last value), range clipping (cheap
// accelerometers saturate around +-4g or +-8g) and stuck-at glitches.
// Used by robustness tests and the fault-injection bench. Each injector has
// a dual detector in imu/quality.hpp; keep the two in sync.

#pragma once

#include "common/rng.hpp"
#include "imu/trace.hpp"

namespace ptrack::imu {

/// Which sensor channels a fault corrupts. Accel keeps the historical
/// accelerometer-only behavior; gyroscopes on the same bus glitch the same
/// way, so Gyro/Both model whole-IMU transport faults.
enum class FaultChannels { Accel, Gyro, Both };

/// Replaces randomly placed runs of samples with the value preceding the
/// run (sample-and-hold dropout, as real drivers do; accel and gyro are
/// held together — a dropped packet drops the whole sample). `rate_per_min`
/// runs per minute on average; each run lasts uniform [min_len, max_len]
/// samples. Deterministic given `rng`.
Trace inject_dropouts(const Trace& trace, double rate_per_min,
                      std::size_t min_len, std::size_t max_len, Rng& rng);

/// Clips every acceleration component into [-limit, +limit] (m/s^2),
/// emulating range saturation. limit > 0.
Trace clip_acceleration(const Trace& trace, double limit);

/// Clips every gyro component into [-limit, +limit] (rad/s), emulating
/// angular-rate range saturation. limit > 0.
Trace clip_gyro(const Trace& trace, double limit);

/// Replaces isolated random samples with a large spike (glitch_g times
/// gravity along a random axis) — transport-layer corruption. The glitch
/// value is glitch_g * kGravity numerically on whichever channel is hit
/// (m/s^2 on accel, rad/s on gyro): register-level corruption does not
/// respect units. `channels` selects the corrupted sensor; Accel is the
/// historical default.
Trace inject_spikes(const Trace& trace, double rate_per_min, double glitch_g,
                    Rng& rng, FaultChannels channels = FaultChannels::Accel);

}  // namespace ptrack::imu
