// Sensor fault injection: the failure modes a deployed wearable actually
// exhibits beyond Gaussian noise — dropped sample runs (BLE/driver
// hiccups; the driver repeats the last value), range clipping (cheap
// accelerometers saturate around +-4g or +-8g) and stuck-at glitches.
// Used by robustness tests and the fault-injection bench.

#pragma once

#include "common/rng.hpp"
#include "imu/trace.hpp"

namespace ptrack::imu {

/// Replaces randomly placed runs of samples with the value preceding the
/// run (sample-and-hold dropout, as real drivers do). `rate_per_min` runs
/// per minute on average; each run lasts uniform [min_len, max_len]
/// samples. Deterministic given `rng`.
Trace inject_dropouts(const Trace& trace, double rate_per_min,
                      std::size_t min_len, std::size_t max_len, Rng& rng);

/// Clips every acceleration component into [-limit, +limit] (m/s^2),
/// emulating range saturation. limit > 0.
Trace clip_acceleration(const Trace& trace, double limit);

/// Replaces isolated random samples with a large spike (glitch_g times
/// gravity along a random axis) — transport-layer corruption.
Trace inject_spikes(const Trace& trace, double rate_per_min, double glitch_g,
                    Rng& rng);

}  // namespace ptrack::imu
