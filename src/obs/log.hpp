// Structured logging: leveled JSON-lines records with literal keys,
// designed so a hot thread never blocks, allocates or formats.
//
// Write path: a call site checks the runtime kill switch, its subsystem's
// level and a per-subsystem token bucket, then copies a fixed-size Record
// (literal subsystem/event/key pointers, POD values, short strings copied
// inline) into the calling thread's lock-free SPSC ring. Formatting,
// escaping and I/O happen later, on whichever thread calls drain() — the
// reactor loop in ptrack_serve, or process exit in the CLIs. A full ring
// drops the record and counts the drop; it never blocks the writer.
//
// Levels are per subsystem and runtime-adjustable (set_level /
// apply_level_spec — the `--log-level` flag's format). The token bucket
// bounds a misbehaving subsystem's output rate; suppressed and dropped
// records are counted in the metrics registry
// (ptrack.obs.log_{suppressed,dropped}).
//
// Compile-time gate: with PTRACK_OBS=OFF the PTRACK_LOG_* macros expand to
// no-ops (arguments discarded unevaluated), matching the metrics macros.
//
// Record schema (one JSON object per line, literal snake_case keys —
// enforced by ptrack_lint's `log-key` rule):
//   {"ts":<unix seconds>,"level":"info","subsys":"net",
//    "event":"session_accepted","tid":0,<kv pairs...>}

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace ptrack::obs::log {

enum class Level : std::uint8_t {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

[[nodiscard]] const char* to_string(Level level);
/// "trace" | "debug" | "info" | "warn" | "error" | "off".
[[nodiscard]] bool parse_level(std::string_view text, Level& out);

/// Tagged value carried by a record. Not a union: records are copied
/// whole through the ring, and a few plain members keep that copy trivially
/// correct at the cost of some ring bytes.
struct Value {
  enum class Tag : std::uint8_t { kI64, kU64, kF64, kBool, kStr };
  Tag tag = Tag::kI64;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double f = 0.0;
  bool b = false;
  char str[24] = {};  ///< kStr: NUL-terminated, truncated copy
};

struct KeyValue {
  const char* key = nullptr;  ///< string literal (see log-key lint rule)
  Value value;
};

[[nodiscard]] KeyValue kv(const char* key, int v);
[[nodiscard]] KeyValue kv(const char* key, long v);
[[nodiscard]] KeyValue kv(const char* key, long long v);
[[nodiscard]] KeyValue kv(const char* key, unsigned v);
[[nodiscard]] KeyValue kv(const char* key, unsigned long v);
[[nodiscard]] KeyValue kv(const char* key, unsigned long long v);
[[nodiscard]] KeyValue kv(const char* key, double v);
[[nodiscard]] KeyValue kv(const char* key, bool v);
[[nodiscard]] KeyValue kv(const char* key, const char* v);
[[nodiscard]] KeyValue kv(const char* key, std::string_view v);

/// Key/value pairs per record; extra pairs are dropped (truncation is
/// visible in the output, never UB).
inline constexpr std::size_t kMaxKvs = 6;

struct Record {
  double wall_unix_s = 0.0;
  const char* subsystem = nullptr;  ///< stable registry-owned name
  const char* event = nullptr;      ///< string literal
  Level level = Level::kInfo;
  std::uint8_t n_kv = 0;
  std::uint32_t tid = 0;            ///< obs thread slot, not the OS tid
  KeyValue kvs[kMaxKvs];
};

/// Per-subsystem state: level and token bucket. Handles from subsystem()
/// are stable for the process lifetime (the macros cache them in
/// function-local statics, like the metric macros).
class Subsystem {
 public:
  /// Level gate plus one token-bucket draw. A true return must be followed
  /// by emit() — the token is already spent.
  [[nodiscard]] bool should(Level level);
  void emit(Level level, const char* event,
            std::initializer_list<KeyValue> kvs);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Level level() const {
    return static_cast<Level>(level_.load(std::memory_order_relaxed));
  }
  void set_level(Level level) {
    level_.store(static_cast<std::uint8_t>(level),
                 std::memory_order_relaxed);
  }
  /// records_per_s <= 0 disables refill (the bucket empties for good —
  /// tests use this for deterministic suppression). burst is the bucket
  /// capacity and initial fill.
  void set_rate_limit(double records_per_s, double burst);

 private:
  friend class Registrar;
  explicit Subsystem(std::string name);
  [[nodiscard]] bool take_token();

  std::string name_;
  std::atomic<std::uint8_t> level_;
  std::atomic<double> tokens_;
  std::atomic<double> rate_per_s_;
  std::atomic<double> burst_;
  std::atomic<std::int64_t> last_refill_ns_{0};
};

/// Registers (or finds) a subsystem. Names are one snake_case segment
/// ([a-z0-9_]+). New subsystems start at the process default level.
[[nodiscard]] Subsystem& subsystem(std::string_view name);

/// Default level applied to subsystems created afterwards.
void set_default_level(Level level);
/// Sets one subsystem's level (creating it if needed).
void set_level(std::string_view name, Level level);

/// Applies a `--log-level` spec: either a bare level ("debug" — becomes
/// the default and is applied to every existing subsystem) or a comma
/// list of overrides ("info,net=debug,serve=warn"). Returns false on a
/// malformed spec (unknown level or bad subsystem name).
[[nodiscard]] bool apply_level_spec(std::string_view spec);

/// Serializes every pending record from every thread's ring as JSON lines
/// to `os` (oldest-first per ring). One drainer at a time (internally
/// serialized); returns records written. A nonzero ring-overflow count
/// since the last drain emits one synthetic `log_records_dropped` record.
std::size_t drain(std::ostream& os);

/// drain() to the configured sink (set_sink; default stderr).
std::size_t drain();

/// Redirects drain()'s default sink; nullptr restores stderr. The pointee
/// must outlive subsequent drains.
void set_sink(std::ostream* os);

/// Formats one record as a JSON line (exposed for tests).
void format_record(std::ostream& os, const Record& rec);

}  // namespace ptrack::obs::log

#if PTRACK_OBS_ENABLED
/// Emits one structured record to subsystem `subsys_` (string literal) at
/// `level_`. Costs one relaxed load when the runtime switch is off, one
/// extra level check when the level filters it, and one Record copy into a
/// lock-free per-thread ring when it passes. Usage:
///   PTRACK_LOG_INFO("net", "session_accepted", kv("fd", fd));
#define PTRACK_LOG(subsys_, level_, event_, ...)                            \
  do {                                                                      \
    if (::ptrack::obs::enabled()) {                                         \
      static ::ptrack::obs::log::Subsystem& PTRACK_OBS_CAT_(                \
          ptrack_obs_log_, __LINE__) =                                      \
          ::ptrack::obs::log::subsystem(subsys_);                           \
      if (PTRACK_OBS_CAT_(ptrack_obs_log_, __LINE__).should(level_)) {      \
        using ::ptrack::obs::log::kv;                                       \
        PTRACK_OBS_CAT_(ptrack_obs_log_, __LINE__)                          \
            .emit(level_, event_, {__VA_ARGS__});                           \
      }                                                                     \
    }                                                                       \
  } while (0)
#else
#define PTRACK_LOG(...) static_cast<void>(0)
#endif

#if PTRACK_OBS_ENABLED
#define PTRACK_LOG_TRACE(subsys_, event_, ...)                         \
  PTRACK_LOG(subsys_, ::ptrack::obs::log::Level::kTrace,               \
             event_ __VA_OPT__(, ) __VA_ARGS__)
#define PTRACK_LOG_DEBUG(subsys_, event_, ...)                         \
  PTRACK_LOG(subsys_, ::ptrack::obs::log::Level::kDebug,               \
             event_ __VA_OPT__(, ) __VA_ARGS__)
#define PTRACK_LOG_INFO(subsys_, event_, ...)                          \
  PTRACK_LOG(subsys_, ::ptrack::obs::log::Level::kInfo,                \
             event_ __VA_OPT__(, ) __VA_ARGS__)
#define PTRACK_LOG_WARN(subsys_, event_, ...)                          \
  PTRACK_LOG(subsys_, ::ptrack::obs::log::Level::kWarn,                \
             event_ __VA_OPT__(, ) __VA_ARGS__)
#define PTRACK_LOG_ERROR(subsys_, event_, ...)                         \
  PTRACK_LOG(subsys_, ::ptrack::obs::log::Level::kError,               \
             event_ __VA_OPT__(, ) __VA_ARGS__)
#else
#define PTRACK_LOG_TRACE(...) static_cast<void>(0)
#define PTRACK_LOG_DEBUG(...) static_cast<void>(0)
#define PTRACK_LOG_INFO(...) static_cast<void>(0)
#define PTRACK_LOG_WARN(...) static_cast<void>(0)
#define PTRACK_LOG_ERROR(...) static_cast<void>(0)
#endif
