#include "obs/export.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <ostream>

#include "common/error.hpp"

namespace ptrack::obs {

namespace {

/// Shortest round-trippable decimal for a double (Prometheus sample and
/// `le` label values). %.17g always round-trips; try shorter first so the
/// common bounds render as "10", not "10.000000000000000".
std::string format_double(double v) {
  char buf[64];
  for (const int prec : {6, 15, 17}) {
    const int n = std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    expects(n > 0 && static_cast<std::size_t>(n) < sizeof(buf),
            "format_double: buffer");
    double back = 0.0;
    if (std::sscanf(buf, "%lf", &back) == 1 && back == v) break;
  }
  return buf;
}

std::uint64_t non_negative_u64(double v, const char* what) {
  expects(v >= 0.0, what);
  return static_cast<std::uint64_t>(v);
}

Histogram::Snapshot histogram_from_json(const json::Value& h) {
  Histogram::Snapshot snap;
  snap.count = non_negative_u64(h.at("count").as_number(),
                                "metrics json: histogram count >= 0");
  snap.sum = h.at("sum").as_number();
  for (const json::Value& b : h.at("buckets").items()) {
    const double le = b.at("le").as_number();
    expects(snap.bounds.empty() || le > snap.bounds.back(),
            "metrics json: bucket bounds strictly ascending");
    snap.bounds.push_back(le);
    snap.counts.push_back(non_negative_u64(
        b.at("count").as_number(), "metrics json: bucket count >= 0"));
  }
  expects(!snap.bounds.empty(), "metrics json: histogram has buckets");
  snap.counts.push_back(non_negative_u64(h.at("overflow").as_number(),
                                         "metrics json: overflow >= 0"));
  return snap;
}

/// Windowed per-bucket counts for one histogram, handling registration
/// mid-window (no prev), process restarts (any bucket moved backwards)
/// and changed bounds (re-registration) by falling back to `cur` alone.
HistogramDelta histogram_delta(const Histogram::Snapshot* prev,
                               const Histogram::Snapshot& cur,
                               double interval_s) {
  std::vector<std::uint64_t> window = cur.counts;
  std::uint64_t count = cur.count;
  double sum = cur.sum;
  const bool comparable = prev != nullptr && prev->bounds == cur.bounds &&
                          prev->counts.size() == cur.counts.size();
  if (comparable) {
    bool reset = prev->count > cur.count;
    for (std::size_t i = 0; !reset && i < window.size(); ++i) {
      reset = prev->counts[i] > cur.counts[i];
    }
    if (!reset) {
      for (std::size_t i = 0; i < window.size(); ++i) {
        window[i] -= prev->counts[i];
      }
      count = cur.count - prev->count;
      sum = cur.sum - prev->sum;
    }
  }
  HistogramDelta d;
  d.count = count;
  d.sum = sum;
  d.rate_per_s =
      interval_s > 0.0 ? static_cast<double>(count) / interval_s : 0.0;
  d.mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  d.p50 = quantile_from_buckets(cur.bounds, window, 0.50);
  d.p90 = quantile_from_buckets(cur.bounds, window, 0.90);
  d.p99 = quantile_from_buckets(cur.bounds, window, 0.99);
  return d;
}

}  // namespace

Snapshot Snapshot::take() {
  Snapshot s;
  s.taken_at_s = std::chrono::duration<double>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  Registry& r = Registry::instance();
  r.sample_builtin_gauges();
  for (auto& [name, v] : r.counter_values()) {
    s.counters.emplace(std::move(name), v);
  }
  for (auto& [name, v] : r.gauge_values()) {
    s.gauges.emplace(std::move(name), v);
  }
  for (auto& [name, h] : r.histogram_values()) {
    s.histograms.emplace(std::move(name), std::move(h));
  }
  return s;
}

Snapshot Snapshot::from_json(const json::Value& doc, double now_s) {
  const json::Value* metrics = &doc;
  if (doc.is_object() && doc.contains("metrics")) {
    if (doc.contains("schema")) {
      expects(doc.at("schema").as_string() == "ptrack.metrics.v1",
              "metrics json: schema must be ptrack.metrics.v1");
    }
    metrics = &doc.at("metrics");
  }
  Snapshot s;
  s.taken_at_s = now_s;
  for (const auto& [name, v] : metrics->at("counters").members()) {
    s.counters.emplace(
        name, non_negative_u64(v.as_number(), "metrics json: counter >= 0"));
  }
  for (const auto& [name, v] : metrics->at("gauges").members()) {
    s.gauges.emplace(name, v.as_number());
  }
  for (const auto& [name, v] : metrics->at("histograms").members()) {
    s.histograms.emplace(name, histogram_from_json(v));
  }
  return s;
}

SnapshotDelta delta(const Snapshot& prev, const Snapshot& cur) {
  SnapshotDelta d;
  d.interval_s = cur.taken_at_s - prev.taken_at_s;
  const double interval = d.interval_s > 0.0 ? d.interval_s : 0.0;
  for (const auto& [name, curv] : cur.counters) {
    const auto it = prev.counters.find(name);
    const std::uint64_t prevv = it == prev.counters.end() ? 0 : it->second;
    // Backwards movement means the process restarted (or wrapped — same
    // handling): the whole current value is the window's delta.
    const std::uint64_t dv = curv >= prevv ? curv - prevv : curv;
    d.counter_deltas.emplace(name, dv);
    d.counter_rates.emplace(
        name, interval > 0.0 ? static_cast<double>(dv) / interval : 0.0);
  }
  d.gauges = cur.gauges;
  for (const auto& [name, curh] : cur.histograms) {
    const auto it = prev.histograms.find(name);
    const Histogram::Snapshot* prevh =
        it == prev.histograms.end() ? nullptr : &it->second;
    d.histograms.emplace(name, histogram_delta(prevh, curh, interval));
  }
  return d;
}

double quantile_from_buckets(std::span<const double> bounds,
                             std::span<const std::uint64_t> counts,
                             double q) {
  expects(counts.size() == bounds.size() + 1,
          "quantile_from_buckets: counts = bounds + overflow");
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double c = static_cast<double>(counts[i]);
    if (c > 0.0 && rank <= cum + c) {
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double frac = (rank - cum) / c;
      return lo + frac * (bounds[i] - lo);
    }
    cum += c;
  }
  // The rank lives in the overflow bucket: the largest finite bound is the
  // most honest point estimate the bucket layout can give.
  return bounds.back();
}

std::string prom_metric_name(std::string_view name) {
  std::string out(name);
  std::replace(out.begin(), out.end(), '.', '_');
  return out;
}

std::string prom_escape_label(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

void write_prometheus(std::ostream& os, const Snapshot& snap) {
  for (const auto& [name, v] : snap.counters) {
    const std::string n = prom_metric_name(name);
    os << "# TYPE " << n << " counter\n" << n << " " << v << "\n";
  }
  for (const auto& [name, v] : snap.gauges) {
    const std::string n = prom_metric_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << format_double(v)
       << "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string n = prom_metric_name(name);
    os << "# TYPE " << n << " histogram\n";
    // Cumulative buckets, and _count derived from the same reads: the
    // shard sums for counts[] and count are taken at slightly different
    // instants under live writers, so deriving _count keeps the exposition
    // self-consistent (le="+Inf" == _count always holds).
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      os << n << "_bucket{le=\"" << prom_escape_label(format_double(
                                        h.bounds[i]))
         << "\"} " << cum << "\n";
    }
    cum += h.counts.back();
    os << n << "_bucket{le=\"+Inf\"} " << cum << "\n";
    os << n << "_sum " << format_double(h.sum) << "\n";
    os << n << "_count " << cum << "\n";
  }
}

void write_prometheus(std::ostream& os) { write_prometheus(os, Snapshot::take()); }

void write_metrics_document(std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.key("schema").value("ptrack.metrics.v1");
  w.key("obs_compiled").value(PTRACK_OBS_ENABLED != 0);
  w.key("metrics");
  Registry::instance().write_json(w);
  w.end_object();
  os << "\n";
}

}  // namespace ptrack::obs
