#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "common/json.hpp"

namespace ptrack::obs {

std::uint64_t now_ns() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

namespace {

/// 32 Ki events (~0.8 MB) per thread: a full batch trace emits ~10 spans,
/// so this holds thousands of traces between exports before wrapping.
constexpr std::uint64_t kRingCapacity = 1u << 15;

struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;
  bool end = false;
};

struct ThreadRing {
  std::uint32_t tid = 0;
  std::uint64_t head = 0;  ///< total events pushed (ring index = i % cap)
  std::vector<SpanEvent> events;
};

std::mutex& rings_mutex() {
  static std::mutex m;
  return m;
}

/// shared_ptr-held so rings of exited threads stay exportable.
std::vector<std::shared_ptr<ThreadRing>>& rings() {
  static std::vector<std::shared_ptr<ThreadRing>> r;
  return r;
}

#if PTRACK_OBS_ENABLED
ThreadRing& local_ring() {
  thread_local const std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    r->events.resize(kRingCapacity);
    std::lock_guard<std::mutex> lk(rings_mutex());
    r->tid = static_cast<std::uint32_t>(rings().size());
    rings().push_back(r);
    return r;
  }();
  return *ring;
}

void push_event(const char* name, bool end) {
  ThreadRing& r = local_ring();
  r.events[r.head % kRingCapacity] = {name, now_ns(), end};
  ++r.head;
}
#endif

}  // namespace

#if PTRACK_OBS_ENABLED

ObsSpan::ObsSpan(const char* name) : name_(enabled() ? name : nullptr) {
  // The end event is pushed iff the begin was, even if the runtime switch
  // flips mid-span — rings stay balanced under toggling.
  if (name_ != nullptr) push_event(name_, /*end=*/false);
}

ObsSpan::~ObsSpan() {
  if (name_ != nullptr) push_event(name_, /*end=*/true);
}

StageTimer::StageTimer() {
  if (enabled()) {
    active_ = true;
    last_ = now_ns();
  }
}

double StageTimer::lap_us() {
  if (!active_) return 0.0;
  const std::uint64_t t = now_ns();
  const double us = static_cast<double>(t - last_) / 1000.0;
  last_ = t;
  return us;
}

#endif  // PTRACK_OBS_ENABLED

void write_chrome_trace(std::ostream& os) {
  json::Writer w(os);
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  std::lock_guard<std::mutex> lk(rings_mutex());
  for (const auto& ring : rings()) {
    const std::uint64_t n = std::min(ring->head, kRingCapacity);
    std::vector<SpanEvent> evs;
    evs.reserve(static_cast<std::size_t>(n));
    for (std::uint64_t i = ring->head - n; i < ring->head; ++i) {
      evs.push_back(ring->events[i % kRingCapacity]);
    }
    // Re-balance: RAII guarantees strict nesting per thread, so the only
    // unmatched events are ends whose begin was overwritten by ring wrap
    // (truncated prefix) and begins still open at export time. A stack
    // match drops exactly those.
    std::vector<std::size_t> open;
    std::vector<bool> emit(evs.size(), false);
    for (std::size_t i = 0; i < evs.size(); ++i) {
      if (!evs[i].end) {
        open.push_back(i);
      } else if (!open.empty() && evs[open.back()].name == evs[i].name) {
        emit[open.back()] = true;
        emit[i] = true;
        open.pop_back();
      }
    }
    for (std::size_t i = 0; i < evs.size(); ++i) {
      if (!emit[i]) continue;
      w.begin_object();
      w.key("name").value(evs[i].name);
      w.key("cat").value("ptrack");
      w.key("ph").value(evs[i].end ? "E" : "B");
      w.key("ts").value(static_cast<double>(evs[i].ts_ns) / 1000.0);
      w.key("pid").value(static_cast<std::size_t>(1));
      w.key("tid").value(static_cast<std::size_t>(ring->tid));
      w.end_object();
    }
  }
  w.end_array();
  w.end_object();
}

void reset_trace() {
  std::lock_guard<std::mutex> lk(rings_mutex());
  for (const auto& ring : rings()) ring->head = 0;
}

}  // namespace ptrack::obs
