#include "obs/metrics.hpp"

#include <algorithm>
#include <cctype>

#include "common/alloc_hooks.hpp"
#include "common/error.hpp"

namespace ptrack::obs {

namespace detail {

std::size_t this_thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace detail

namespace {

std::size_t this_shard() { return detail::this_thread_slot() % kShards; }

/// C++20 atomic<double>::fetch_add exists, but a CAS loop keeps us off the
/// newest library surface for the same relaxed-accumulate semantics.
void atomic_add(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

/// `ptrack.<layer>.<name>`: lowercase/digit/underscore segments, at least
/// three, first one literally "ptrack".
bool valid_metric_name(std::string_view name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (const char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    const auto uc = static_cast<unsigned char>(c);
    if (!(std::islower(uc) != 0 || std::isdigit(uc) != 0 || c == '_')) {
      return false;
    }
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.substr(0, 7) == "ptrack.";
}

}  // namespace

void Counter::inc(std::uint64_t delta) {
  cells_[this_shard()].v.fetch_add(delta, std::memory_order_relaxed);
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const Cell& c : cells_) total += c.v.load(std::memory_order_relaxed);
  return total;
}

Histogram::Histogram(std::string name, std::span<const double> bounds)
    : name_(std::move(name)), bounds_(bounds.begin(), bounds.end()) {
  expects(!bounds_.empty(), "Histogram: at least one bucket bound");
  expects(std::is_sorted(bounds_.begin(), bounds_.end()) &&
              std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                  bounds_.end(),
          "Histogram: strictly ascending bounds");
  const std::size_t stride = bounds_.size() + 1;
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(kShards * stride);
  for (std::size_t i = 0; i < kShards * stride; ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::observe(double v) {
  const std::size_t stride = bounds_.size() + 1;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  const std::size_t shard = this_shard();
  counts_[shard * stride + bucket].fetch_add(1, std::memory_order_relaxed);
  atomic_add(sums_[shard].sum, v);
  sums_[shard].count.fetch_add(1, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot snap;
  snap.bounds = bounds_;
  const std::size_t stride = bounds_.size() + 1;
  snap.counts.assign(stride, 0);
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (std::size_t b = 0; b < stride; ++b) {
      snap.counts[b] +=
          counts_[shard * stride + b].load(std::memory_order_relaxed);
    }
    snap.sum += sums_[shard].sum.load(std::memory_order_relaxed);
    snap.count += sums_[shard].count.load(std::memory_order_relaxed);
  }
  return snap;
}

std::span<const double> latency_buckets_us() {
  static const double kBuckets[] = {10.0,    20.0,    50.0,     100.0,
                                    200.0,   500.0,   1000.0,   2000.0,
                                    5000.0,  10000.0, 20000.0,  50000.0,
                                    100000.0, 200000.0, 500000.0, 1000000.0};
  return kBuckets;
}

Registry& Registry::instance() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  expects(valid_metric_name(name),
          "Registry::counter: name must be ptrack.<layer>.<name>");
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(std::string(name))))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  expects(valid_metric_name(name),
          "Registry::gauge: name must be ptrack.<layer>.<name>");
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(new Gauge(std::string(name))))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> bounds) {
  expects(valid_metric_name(name),
          "Registry::histogram: name must be ptrack.<layer>.<name>");
  std::lock_guard<std::mutex> lk(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), bounds)))
             .first;
  } else {
    expects(std::equal(bounds.begin(), bounds.end(),
                       it->second->bounds().begin(),
                       it->second->bounds().end()),
            "Registry::histogram: re-registration with identical bounds");
  }
  return *it->second;
}

void Registry::sample_builtin_gauges() {
  // Registration locks the registry mutex, so sample before any caller
  // takes it for a scrape.
  gauge("ptrack.common.alloc.live_allocations")
      .set(static_cast<double>(alloc::live_allocations()));
  gauge("ptrack.common.alloc.live_bytes")
      .set(static_cast<double>(alloc::live_bytes()));
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::counter_values()
    const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauge_values() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>>
Registry::histogram_values() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.emplace_back(name, h->snapshot());
  }
  return out;
}

void Registry::write_json(json::Writer& w) {
  sample_builtin_gauges();

  std::lock_guard<std::mutex> lk(mutex_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) {
    w.key(name).value(c->value());
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) {
    w.key(name).value(g->value());
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot snap = h->snapshot();
    w.key(name).begin_object();
    w.key("count").value(snap.count);
    w.key("sum").value(snap.sum);
    w.key("buckets").begin_array();
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      w.begin_object();
      w.key("le").value(snap.bounds[b]);
      w.key("count").value(snap.counts[b]);
      w.end_object();
    }
    w.end_array();
    w.key("overflow").value(snap.counts.back());
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mutex_);
  for (auto& [name, c] : counters_) {
    for (Counter::Cell& cell : c->cells_) {
      cell.v.store(0, std::memory_order_relaxed);
    }
  }
  for (auto& [name, g] : gauges_) g->set(0.0);
  for (auto& [name, h] : histograms_) {
    const std::size_t stride = h->bounds_.size() + 1;
    for (std::size_t i = 0; i < kShards * stride; ++i) {
      h->counts_[i].store(0, std::memory_order_relaxed);
    }
    for (Histogram::SumCell& cell : h->sums_) {
      cell.sum.store(0.0, std::memory_order_relaxed);
      cell.count.store(0, std::memory_order_relaxed);
    }
  }
}

}  // namespace ptrack::obs
