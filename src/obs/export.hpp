// Exposition layer over the metrics registry: point-in-time Snapshots,
// deltas between two snapshots (rates + windowed histogram percentiles —
// what a poller wants instead of lifetime totals), and renderers for the
// two wire formats every consumer speaks:
//
//   * Prometheus text exposition (`/metrics`, obs_check --prom): metric
//     names mangle `.` to `_`, histograms emit cumulative `_bucket` series
//     with an explicit `le` label per exported bound plus `+Inf`, `_sum`
//     and `_count`.
//   * The repo's own JSON document (`--metrics-out`, `/metrics.json`):
//     {"schema":"ptrack.metrics.v1","obs_compiled":...,"metrics":{...}} —
//     bucket boundaries are explicit in both formats, never implicit.
//
// Snapshot::from_json parses that JSON document back, so ptrack_top and
// tests reuse the exact same delta/percentile code against a remote
// process that the in-process exporters use locally.

#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"
#include "obs/metrics.hpp"

namespace ptrack::obs {

/// Point-in-time copy of every registered metric. Plain data: tests build
/// them by hand to exercise delta edge cases (counter wraps, vanished
/// metrics) without touching the process registry.
struct Snapshot {
  /// Monotonic capture time in seconds (steady clock for take(); the
  /// caller's clock for from_json). Only differences are meaningful.
  double taken_at_s = 0.0;
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;

  /// Captures the process registry (samples the builtin gauges first).
  [[nodiscard]] static Snapshot take();

  /// Rebuilds a Snapshot from a ptrack.metrics.v1 document (either the
  /// whole document or just its "metrics" object). `taken_at_s` is set to
  /// `now_s` — the poller's own clock. Throws ptrack::InvalidArgument on
  /// schema violations.
  [[nodiscard]] static Snapshot from_json(const json::Value& doc,
                                          double now_s);
};

/// Windowed view of one histogram between two snapshots.
struct HistogramDelta {
  std::uint64_t count = 0;   ///< observations in the window
  double sum = 0.0;
  double rate_per_s = 0.0;   ///< count / interval
  double mean = 0.0;         ///< sum / count (0 when empty)
  double p50 = 0.0;          ///< interpolated from windowed bucket counts
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Rates between two snapshots of the same process. A counter that moved
/// backwards (process restart; 64-bit wrap is indistinguishable and
/// equally rare) is treated as reset: the delta is the current value, not
/// a huge unsigned difference.
struct SnapshotDelta {
  double interval_s = 0.0;
  std::map<std::string, std::uint64_t> counter_deltas;
  std::map<std::string, double> counter_rates;  ///< delta / interval
  std::map<std::string, double> gauges;         ///< current values
  std::map<std::string, HistogramDelta> histograms;
};

/// Computes cur - prev. Metrics absent from `prev` (registered mid-window)
/// are treated as starting from zero; metrics absent from `cur` are
/// dropped. interval_s <= 0 yields zero rates but still reports deltas.
[[nodiscard]] SnapshotDelta delta(const Snapshot& prev, const Snapshot& cur);

/// Quantile (q in [0,1]) from per-bucket (non-cumulative) counts:
/// counts.size() == bounds.size() + 1, last entry the overflow bucket.
/// Linear interpolation inside the owning bucket, assuming a non-negative
/// domain (bucket 0 spans [0, bounds[0]]); a rank landing in the overflow
/// bucket reports the largest finite bound. Returns 0 for an empty
/// histogram.
[[nodiscard]] double quantile_from_buckets(std::span<const double> bounds,
                                           std::span<const std::uint64_t> counts,
                                           double q);

/// `ptrack.net.bytes.in` -> `ptrack_net_bytes_in` (Prometheus name charset).
[[nodiscard]] std::string prom_metric_name(std::string_view name);

/// Escapes a Prometheus label value: backslash, double-quote and newline.
[[nodiscard]] std::string prom_escape_label(std::string_view value);

/// Renders a snapshot as Prometheus text exposition (version 0.0.4):
/// `# TYPE` comments, counters/gauges as single samples, histograms as
/// cumulative `_bucket{le="..."}` series ending in `+Inf` plus `_sum` and
/// `_count`.
void write_prometheus(std::ostream& os, const Snapshot& snap);

/// Convenience: take() + render.
void write_prometheus(std::ostream& os);

/// Writes the canonical ptrack.metrics.v1 JSON document — the one format
/// shared by `--metrics-out`, `/metrics.json` and the SIGUSR1 dump, and
/// the input contract of `obs_check --metrics`.
void write_metrics_document(std::ostream& os);

}  // namespace ptrack::obs
