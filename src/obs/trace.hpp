// RAII stage spans with Chrome-trace export.
//
// An ObsSpan records a begin event at construction and an end event at
// destruction into a per-thread ring buffer (no locks, no allocation on
// the hot path; span names must be string literals so only the pointer is
// stored). write_chrome_trace() serializes every thread's ring as Chrome
// `trace_event` JSON ("B"/"E" phase pairs), loadable in chrome://tracing
// and Perfetto.
//
// Concurrency contract: pushing spans is wait-free and per-thread.
// Exporting (write_chrome_trace) and reset_trace() must only run while
// span-producing threads are quiescent AND a happens-before edge exists
// from their last span to the exporting thread — a thread join, or the
// ThreadPool drain (workers release via the done counter that run()
// acquires). The CLI exports after BatchRunner::run returned, which
// satisfies both.
//
// Ring wrap: a thread that produces more than kRingCapacity events between
// exports overwrites its oldest ones. The exporter re-balances what is
// left (an end whose begin was overwritten is dropped, as is a begin whose
// end never landed), so the emitted file always contains matched pairs.
//
// With PTRACK_OBS=OFF, ObsSpan and StageTimer collapse to empty inline
// types and write_chrome_trace emits an empty (but valid) trace document.

#pragma once

#include <cstdint>
#include <iosfwd>

#include "obs/metrics.hpp"

namespace ptrack::obs {

/// Nanoseconds since the process's trace epoch (first call), from the
/// steady clock.
std::uint64_t now_ns();

#if PTRACK_OBS_ENABLED

/// Scoped stage timer. `name` MUST be a string literal (or otherwise
/// outlive the export) — only the pointer is recorded.
class ObsSpan {
 public:
  explicit ObsSpan(const char* name);
  ~ObsSpan();
  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  const char* name_;  ///< null when obs was disabled at construction
};

/// Sequential lap timer for filling per-trace timing blocks. Zero-cost
/// (and returning zeros) when obs is disabled at construction.
class StageTimer {
 public:
  StageTimer();
  /// Microseconds since construction or the previous lap.
  double lap_us();

 private:
  std::uint64_t last_ = 0;
  bool active_ = false;
};

#else

class ObsSpan {
 public:
  explicit ObsSpan(const char*) {}
};

class StageTimer {
 public:
  double lap_us() { return 0.0; }
};

#endif

/// Serializes every thread's span ring as one Chrome trace_event JSON
/// document. See the concurrency contract above.
void write_chrome_trace(std::ostream& os);

/// Drops all buffered span events (tests/benches). Same concurrency
/// contract as write_chrome_trace.
void reset_trace();

}  // namespace ptrack::obs

/// Opens a span covering the rest of the enclosing scope.
#define PTRACK_OBS_SPAN(name_)                                       \
  [[maybe_unused]] const ::ptrack::obs::ObsSpan PTRACK_OBS_CAT_(     \
      ptrack_obs_span_, __LINE__)(name_)
