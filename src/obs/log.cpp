#include "obs/log.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/error.hpp"
#include "common/json.hpp"

namespace ptrack::obs::log {

namespace {

/// One snake_case segment, mirroring a metric-name segment.
bool valid_subsystem_name(std::string_view name) {
  if (name.empty()) return false;
  for (const char c : name) {
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
  }
  return true;
}

double wall_unix_now_s() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Lock-free SPSC ring: the owning thread pushes, whichever thread holds
/// the drain mutex pops. A full ring drops (counted), never blocks.
class Ring {
 public:
  static constexpr std::size_t kCapacity = 128;  // power of two

  bool try_push(const Record& rec) {
    const std::uint64_t h = head_.load(std::memory_order_relaxed);
    const std::uint64_t t = tail_.load(std::memory_order_acquire);
    if (h - t >= kCapacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    slots_[h % kCapacity] = rec;
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  bool try_pop(Record& out) {
    const std::uint64_t t = tail_.load(std::memory_order_relaxed);
    const std::uint64_t h = head_.load(std::memory_order_acquire);
    if (t == h) return false;
    out = slots_[t % kCapacity];
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  std::uint64_t take_dropped() {
    return dropped_.exchange(0, std::memory_order_relaxed);
  }

 private:
  Record slots_[kCapacity];
  std::atomic<std::uint64_t> head_{0};  ///< owner-thread writes
  std::atomic<std::uint64_t> tail_{0};  ///< drainer writes
  std::atomic<std::uint64_t> dropped_{0};
};

struct RingRegistry {
  std::mutex mu;
  std::vector<std::unique_ptr<Ring>> rings;  ///< process-lifetime owned
};

RingRegistry& ring_registry() {
  static RingRegistry r;
  return r;
}

Ring& this_thread_ring() {
  thread_local Ring* ring = [] {
    auto owned = std::make_unique<Ring>();
    Ring* p = owned.get();
    RingRegistry& rr = ring_registry();
    std::lock_guard<std::mutex> lk(rr.mu);
    rr.rings.push_back(std::move(owned));
    return p;
  }();
  return *ring;
}

std::atomic<std::uint8_t> g_default_level{
    static_cast<std::uint8_t>(Level::kInfo)};

std::atomic<std::ostream*> g_sink{nullptr};

/// Shortest round-trippable decimal; NaN/Inf degrade to null so every
/// drained line stays valid JSON.
void write_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[64];
  for (const int prec : {6, 15, 17}) {
    const int n = std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    check(n > 0 && static_cast<std::size_t>(n) < sizeof(buf),
          "log write_double: buffer");
    double back = 0.0;
    if (std::sscanf(buf, "%lf", &back) == 1 && back == v) break;
  }
  os << buf;
}

void write_value(std::ostream& os, const Value& v) {
  switch (v.tag) {
    case Value::Tag::kI64: os << v.i; break;
    case Value::Tag::kU64: os << v.u; break;
    case Value::Tag::kF64: write_double(os, v.f); break;
    case Value::Tag::kBool: os << (v.b ? "true" : "false"); break;
    case Value::Tag::kStr:
      os << '"' << json::escape(std::string(v.str)) << '"';
      break;
  }
}

}  // namespace

const char* to_string(Level level) {
  switch (level) {
    case Level::kTrace: return "trace";
    case Level::kDebug: return "debug";
    case Level::kInfo: return "info";
    case Level::kWarn: return "warn";
    case Level::kError: return "error";
    case Level::kOff: return "off";
  }
  return "invalid";
}

bool parse_level(std::string_view text, Level& out) {
  if (text == "trace") out = Level::kTrace;
  else if (text == "debug") out = Level::kDebug;
  else if (text == "info") out = Level::kInfo;
  else if (text == "warn") out = Level::kWarn;
  else if (text == "error") out = Level::kError;
  else if (text == "off") out = Level::kOff;
  else return false;
  return true;
}

namespace {

KeyValue make_i64(const char* key, std::int64_t v) {
  KeyValue p;
  p.key = key;
  p.value.tag = Value::Tag::kI64;
  p.value.i = v;
  return p;
}

KeyValue make_u64(const char* key, std::uint64_t v) {
  KeyValue p;
  p.key = key;
  p.value.tag = Value::Tag::kU64;
  p.value.u = v;
  return p;
}

}  // namespace

KeyValue kv(const char* key, int v) { return make_i64(key, v); }
KeyValue kv(const char* key, long v) { return make_i64(key, v); }
KeyValue kv(const char* key, long long v) { return make_i64(key, v); }
KeyValue kv(const char* key, unsigned v) { return make_u64(key, v); }
KeyValue kv(const char* key, unsigned long v) { return make_u64(key, v); }
KeyValue kv(const char* key, unsigned long long v) { return make_u64(key, v); }

KeyValue kv(const char* key, double v) {
  KeyValue p;
  p.key = key;
  p.value.tag = Value::Tag::kF64;
  p.value.f = v;
  return p;
}

KeyValue kv(const char* key, bool v) {
  KeyValue p;
  p.key = key;
  p.value.tag = Value::Tag::kBool;
  p.value.b = v;
  return p;
}

KeyValue kv(const char* key, std::string_view v) {
  KeyValue p;
  p.key = key;
  p.value.tag = Value::Tag::kStr;
  const std::size_t n = std::min(v.size(), sizeof(p.value.str) - 1);
  std::memcpy(p.value.str, v.data(), n);
  p.value.str[n] = '\0';
  return p;
}

KeyValue kv(const char* key, const char* v) {
  return kv(key, std::string_view(v == nullptr ? "" : v));
}

Subsystem::Subsystem(std::string name)
    : name_(std::move(name)),
      level_(g_default_level.load(std::memory_order_relaxed)),
      tokens_(256.0),
      rate_per_s_(128.0),
      burst_(256.0) {}

void Subsystem::set_rate_limit(double records_per_s, double burst) {
  expects(burst >= 0.0, "Subsystem::set_rate_limit: burst >= 0");
  rate_per_s_.store(records_per_s, std::memory_order_relaxed);
  burst_.store(burst, std::memory_order_relaxed);
  tokens_.store(burst, std::memory_order_relaxed);
  last_refill_ns_.store(0, std::memory_order_relaxed);
}

bool Subsystem::take_token() {
  const double rate = rate_per_s_.load(std::memory_order_relaxed);
  if (rate > 0.0) {
    const std::int64_t now_ns = steady_now_ns();
    const std::int64_t last =
        last_refill_ns_.exchange(now_ns, std::memory_order_relaxed);
    if (last > 0 && now_ns > last) {
      const double add =
          static_cast<double>(now_ns - last) * 1e-9 * rate;
      const double cap = burst_.load(std::memory_order_relaxed);
      double cur = tokens_.load(std::memory_order_relaxed);
      while (!tokens_.compare_exchange_weak(cur, std::min(cap, cur + add),
                                            std::memory_order_relaxed)) {
      }
    }
  }
  double cur = tokens_.load(std::memory_order_relaxed);
  while (cur >= 1.0) {
    if (tokens_.compare_exchange_weak(cur, cur - 1.0,
                                      std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

bool Subsystem::should(Level level) {
  if (level == Level::kOff) return false;
  if (static_cast<std::uint8_t>(level) <
      level_.load(std::memory_order_relaxed)) {
    return false;
  }
  if (take_token()) return true;
  PTRACK_COUNT("ptrack.obs.log_suppressed");
  return false;
}

void Subsystem::emit(Level level, const char* event,
                     std::initializer_list<KeyValue> kvs) {
  Record rec;
  rec.wall_unix_s = wall_unix_now_s();
  rec.subsystem = name_.c_str();
  rec.event = event;
  rec.level = level;
  rec.tid = static_cast<std::uint32_t>(obs::detail::this_thread_slot());
  for (const KeyValue& p : kvs) {
    if (rec.n_kv == kMaxKvs) break;
    rec.kvs[rec.n_kv] = p;
    ++rec.n_kv;
  }
  if (!this_thread_ring().try_push(rec)) {
    PTRACK_COUNT("ptrack.obs.log_dropped");
  }
}

/// Grants the free factory functions access to the private constructor.
class Registrar {
 public:
  static std::unique_ptr<Subsystem> make(std::string name) {
    return std::unique_ptr<Subsystem>(new Subsystem(std::move(name)));
  }
};

namespace {

struct SubsystemRegistry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Subsystem>, std::less<>> map;
};

SubsystemRegistry& subsystem_registry() {
  static SubsystemRegistry r;
  return r;
}

}  // namespace

Subsystem& subsystem(std::string_view name) {
  expects(valid_subsystem_name(name),
          "log::subsystem: name must be one snake_case segment");
  SubsystemRegistry& reg = subsystem_registry();
  std::lock_guard<std::mutex> lk(reg.mu);
  auto it = reg.map.find(name);
  if (it == reg.map.end()) {
    it = reg.map.emplace(std::string(name), Registrar::make(std::string(name)))
             .first;
  }
  return *it->second;
}

void set_default_level(Level level) {
  g_default_level.store(static_cast<std::uint8_t>(level),
                        std::memory_order_relaxed);
}

void set_level(std::string_view name, Level level) {
  subsystem(name).set_level(level);
}

bool apply_level_spec(std::string_view spec) {
  while (true) {
    const std::size_t comma = spec.find(',');
    const std::string_view part =
        comma == std::string_view::npos ? spec : spec.substr(0, comma);
    if (part.empty()) return false;
    const std::size_t eq = part.find('=');
    Level level = Level::kInfo;
    if (eq == std::string_view::npos) {
      if (!parse_level(part, level)) return false;
      set_default_level(level);
      SubsystemRegistry& reg = subsystem_registry();
      std::lock_guard<std::mutex> lk(reg.mu);
      for (auto& [name, sub] : reg.map) sub->set_level(level);
    } else {
      const std::string_view name = part.substr(0, eq);
      if (!valid_subsystem_name(name) ||
          !parse_level(part.substr(eq + 1), level)) {
        return false;
      }
      set_level(name, level);
    }
    if (comma == std::string_view::npos) return true;
    spec = spec.substr(comma + 1);
  }
}

void format_record(std::ostream& os, const Record& rec) {
  os << "{\"ts\":";
  char ts[48];
  std::snprintf(ts, sizeof(ts), "%.6f", rec.wall_unix_s);
  os << ts;
  os << ",\"level\":\"" << to_string(rec.level) << "\",\"subsys\":\""
     << json::escape(rec.subsystem == nullptr ? "" : rec.subsystem)
     << "\",\"event\":\""
     << json::escape(rec.event == nullptr ? "" : rec.event)
     << "\",\"tid\":" << rec.tid;
  for (std::size_t i = 0; i < rec.n_kv; ++i) {
    const KeyValue& p = rec.kvs[i];
    os << ",\"" << json::escape(p.key == nullptr ? "" : p.key) << "\":";
    write_value(os, p.value);
  }
  os << "}\n";
}

std::size_t drain(std::ostream& os) {
  // One drainer at a time keeps the rings strictly SPSC.
  static std::mutex drain_mu;
  std::lock_guard<std::mutex> lk(drain_mu);
  std::vector<Ring*> local;
  {
    RingRegistry& rr = ring_registry();
    std::lock_guard<std::mutex> rlk(rr.mu);
    local.reserve(rr.rings.size());
    for (const auto& r : rr.rings) local.push_back(r.get());
  }
  std::size_t written = 0;
  std::uint64_t dropped = 0;
  Record rec;
  for (Ring* r : local) {
    while (r->try_pop(rec)) {
      format_record(os, rec);
      ++written;
    }
    dropped += r->take_dropped();
  }
  if (dropped > 0) {
    Record note;
    note.wall_unix_s = wall_unix_now_s();
    note.subsystem = "log";
    note.event = "log_records_dropped";
    note.level = Level::kWarn;
    note.tid = static_cast<std::uint32_t>(obs::detail::this_thread_slot());
    note.kvs[0] = kv("dropped", dropped);
    note.n_kv = 1;
    format_record(os, note);
    ++written;
  }
  if (written > 0) {
    os.flush();
    PTRACK_COUNT_N("ptrack.obs.log_records", written);
  }
  return written;
}

std::size_t drain() {
  std::ostream* os = g_sink.load(std::memory_order_acquire);
  return drain(os == nullptr ? std::cerr : *os);
}

void set_sink(std::ostream* os) {
  g_sink.store(os, std::memory_order_release);
}

}  // namespace ptrack::obs::log
