// Process-wide metrics registry: named counters, gauges and fixed-bucket
// histograms for attributing work and latency to pipeline stages.
//
// Hot-path design: every counter and histogram is sharded into kShards
// cache-line-aligned cells; a thread increments the cell picked by its
// (stable) thread slot with one relaxed atomic add — no locks, no
// contention in the common case, and scrapes pay the aggregation cost
// instead of the writers. The registry mutex is only taken at metric
// registration (once per call site, via the macros' function-local static
// handles) and on scrape.
//
// Naming scheme: `ptrack.<layer>.<name>` with layer one of the source
// subdirectories (dsp, imu, core, runtime, ...). The registry enforces the
// prefix so dashboards can rely on it (see DESIGN.md "Observability").
//
// Compile-time gate: configuring with -DPTRACK_OBS=OFF defines
// PTRACK_OBS_ENABLED=0, which turns the instrumentation macros into no-ops
// and pins obs::enabled() to false so guarded blocks fold away. The
// registry type itself stays compiled (it is tiny) so the CLI's
// --metrics-out flag degrades to an empty snapshot instead of vanishing.
// At runtime, obs::set_enabled(false) is a kill switch that short-circuits
// the macros before any registry access.

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/json.hpp"

#ifndef PTRACK_OBS_ENABLED
#define PTRACK_OBS_ENABLED 1
#endif

namespace ptrack::obs {

namespace detail {
/// Stable small slot for the calling thread (assigned on first use).
std::size_t this_thread_slot();
}  // namespace detail

#if PTRACK_OBS_ENABLED
namespace detail {
inline std::atomic<bool> g_enabled{true};
}  // namespace detail

/// Runtime kill switch (default on). Checked by every instrumentation
/// macro before touching the registry; one relaxed load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}
#else
inline constexpr bool enabled() { return false; }
inline void set_enabled(bool) {}
#endif

/// Shard count per metric. More shards than typical worker counts would
/// waste cache; fewer would contend. Threads map to shards slot % kShards.
inline constexpr std::size_t kShards = 16;

/// Monotone event counter. inc() is one relaxed atomic add on the calling
/// thread's shard; value() sums the shards (approximate while writers are
/// active, exact once they are quiescent or joined).
class Counter {
 public:
  void inc(std::uint64_t delta = 1);
  [[nodiscard]] std::uint64_t value() const;
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Counter(std::string name) : name_(std::move(name)) {}

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::string name_;
  std::array<Cell, kShards> cells_{};
};

/// Last-write-wins instantaneous value (e.g. worker utilization). Set is
/// rare (per batch, not per sample), so a single relaxed atomic suffices.
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  friend class Registry;
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  std::string name_;
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram (cumulative-style buckets: counts[i] covers
/// values <= bounds[i], plus one overflow bucket). Sharded like Counter.
class Histogram {
 public:
  void observe(double v);

  struct Snapshot {
    std::vector<double> bounds;        ///< ascending upper bounds
    std::vector<std::uint64_t> counts; ///< bounds.size() + 1 (last: overflow)
    double sum = 0.0;
    std::uint64_t count = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  friend class Registry;
  Histogram(std::string name, std::span<const double> bounds);

  struct alignas(64) SumCell {
    std::atomic<double> sum{0.0};
    std::atomic<std::uint64_t> count{0};
  };
  std::string name_;
  std::vector<double> bounds_;
  /// Shard-major layout: shard * (bounds_.size() + 1) + bucket.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::array<SumCell, kShards> sums_{};
};

/// Exponential microsecond buckets covering 10 µs .. 1 s — the default for
/// stage latency histograms.
std::span<const double> latency_buckets_us();

/// Process-wide registry. Handles returned by counter()/gauge()/histogram()
/// are stable for the process lifetime; cache them (the instrumentation
/// macros do, in function-local statics).
class Registry {
 public:
  static Registry& instance();

  /// Registers (or finds) a metric. Names must match
  /// `ptrack.<layer>.<name>`; re-registering a histogram with different
  /// bounds throws.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Serializes one snapshot as a JSON object value:
  /// {"counters":{name:n,...},"gauges":{...},"histograms":{name:
  ///  {"count":n,"sum":s,"buckets":[{"le":b,"count":n},...],
  ///   "overflow":n},...}}. Names are emitted sorted (deterministic).
  /// Non-const: scrape time is when the live-allocation gauges
  /// (`ptrack.common.alloc.live_{allocations,bytes}`) are sampled from the
  /// alloc hooks into the registry.
  void write_json(json::Writer& w);

  /// Enumerates registered metrics under the registry lock — the export
  /// layer (obs/export.hpp) builds Snapshots from these. Values are read
  /// with the same relaxed semantics as write_json (approximate while
  /// writers are active).
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>>
  counter_values() const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauge_values()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, Histogram::Snapshot>>
  histogram_values() const;

  /// Samples process-level state (the live-allocation gauges
  /// `ptrack.common.alloc.live_{allocations,bytes}`) into the registry.
  /// Every exporter calls this before reading so scrapes agree on what a
  /// snapshot contains.
  void sample_builtin_gauges();

  /// Zeroes every registered metric (tests and benches; not thread-safe
  /// against concurrent writers beyond the per-cell atomicity).
  void reset();

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace ptrack::obs

#define PTRACK_OBS_CAT2_(a, b) a##b
#define PTRACK_OBS_CAT_(a, b) PTRACK_OBS_CAT2_(a, b)

#if PTRACK_OBS_ENABLED
/// Adds `n_` to the counter `name_` (string literal). The handle is looked
/// up once per call site; afterwards the cost is one branch plus one
/// relaxed atomic add.
#define PTRACK_COUNT_N(name_, n_)                                           \
  do {                                                                      \
    if (::ptrack::obs::enabled()) {                                         \
      static ::ptrack::obs::Counter& PTRACK_OBS_CAT_(ptrack_obs_c_,         \
                                                     __LINE__) =            \
          ::ptrack::obs::Registry::instance().counter(name_);               \
      PTRACK_OBS_CAT_(ptrack_obs_c_, __LINE__)                              \
          .inc(static_cast<std::uint64_t>(n_));                             \
    }                                                                       \
  } while (0)

/// Records `v_` (µs) into the latency histogram `name_`.
#define PTRACK_HIST_US(name_, v_)                                           \
  do {                                                                      \
    if (::ptrack::obs::enabled()) {                                         \
      static ::ptrack::obs::Histogram& PTRACK_OBS_CAT_(ptrack_obs_h_,       \
                                                       __LINE__) =          \
          ::ptrack::obs::Registry::instance().histogram(                    \
              name_, ::ptrack::obs::latency_buckets_us());                  \
      PTRACK_OBS_CAT_(ptrack_obs_h_, __LINE__)                              \
          .observe(static_cast<double>(v_));                                \
    }                                                                       \
  } while (0)
#else
#define PTRACK_COUNT_N(name_, n_) static_cast<void>(0)
#define PTRACK_HIST_US(name_, v_) static_cast<void>(0)
#endif

#define PTRACK_COUNT(name_) PTRACK_COUNT_N(name_, 1)
