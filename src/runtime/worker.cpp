#include "runtime/worker.hpp"

#include "common/error.hpp"

namespace ptrack::runtime {

namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 2;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

TaskQueue::TaskQueue(std::size_t capacity) {
  expects(capacity >= 1, "TaskQueue: capacity must be positive");
  const std::size_t cap = round_up_pow2(capacity);
  // The one allocation this queue ever performs; steady-state push/pop
  // only touch the cells.
  cells_ = std::make_unique<Cell[]>(cap);
  mask_ = cap - 1;
  for (std::size_t i = 0; i < cap; ++i) {
    cells_[i].seq.store(i, std::memory_order_relaxed);
  }
}

bool TaskQueue::push(const Task& task) {
  std::size_t pos = enqueue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff =
        static_cast<std::intptr_t>(seq) - static_cast<std::intptr_t>(pos);
    if (diff == 0) {
      if (enqueue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        cell.task = task;
        cell.seq.store(pos + 1, std::memory_order_release);
        return true;
      }
      // CAS failure reloaded `pos`; retry with the fresh value.
    } else if (diff < 0) {
      return false;  // ring full: the cell still holds an unpopped task
    } else {
      pos = enqueue_pos_.load(std::memory_order_relaxed);
    }
  }
}

bool TaskQueue::pop(Task& out) {
  std::size_t pos = dequeue_pos_.load(std::memory_order_relaxed);
  for (;;) {
    Cell& cell = cells_[pos & mask_];
    const std::size_t seq = cell.seq.load(std::memory_order_acquire);
    const auto diff = static_cast<std::intptr_t>(seq) -
                      static_cast<std::intptr_t>(pos + 1);
    if (diff == 0) {
      if (dequeue_pos_.compare_exchange_weak(pos, pos + 1,
                                             std::memory_order_relaxed)) {
        out = cell.task;
        cell.seq.store(pos + mask_ + 1, std::memory_order_release);
        return true;
      }
    } else if (diff < 0) {
      return false;  // empty (or producer mid-write; caller treats as empty)
    } else {
      pos = dequeue_pos_.load(std::memory_order_relaxed);
    }
  }
}

std::size_t TaskQueue::size_approx() const {
  const std::size_t enq = enqueue_pos_.load(std::memory_order_relaxed);
  const std::size_t deq = dequeue_pos_.load(std::memory_order_relaxed);
  return enq >= deq ? enq - deq : 0;
}

}  // namespace ptrack::runtime
