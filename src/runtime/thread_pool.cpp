#include "runtime/thread_pool.hpp"

#include "common/check.hpp"
#include "common/error.hpp"

namespace ptrack::runtime {

ThreadPool::ThreadPool(std::size_t threads) : thread_count_(threads) {
  expects(threads >= 1, "ThreadPool: threads >= 1");
  threads_.reserve(threads - 1);
  for (std::size_t w = 1; w < threads; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lk(mutex_);
  for (;;) {
    work_cv_.wait(lk, [&] { return stop_ || (job_ && generation_ != seen); });
    if (stop_) return;
    seen = generation_;
    // Hold a shared_ptr so the job outlives run() even if this worker is
    // still draining when the caller returns.
    const std::shared_ptr<Job> job = job_;
    lk.unlock();
    execute(*job, worker);
    lk.lock();
  }
}

void ThreadPool::execute(Job& job, std::size_t worker) {
  for (;;) {
    const std::size_t task = job.next.fetch_add(1, std::memory_order_relaxed);
    if (task >= job.n_tasks) return;
    try {
      (*job.fn)(task, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.error_mutex);
      if (!job.error) job.error = std::current_exception();
    }
    const std::size_t completed =
        job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    // Task accounting: each of the n_tasks indices is claimed exactly once
    // via the next counter, so completions can never exceed the task count.
    PTRACK_CHECK_MSG(completed <= job.n_tasks,
                     "ThreadPool: completions never exceed the task count");
    if (completed == job.n_tasks) {
      std::lock_guard<std::mutex> lk(mutex_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::run(std::size_t n_tasks, const TaskFn& fn) {
  if (n_tasks == 0) return;
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->n_tasks = n_tasks;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    check(job_ == nullptr, "ThreadPool::run: not reentrant");
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();

  execute(*job, /*worker=*/0);  // the calling thread is worker 0

  {
    std::unique_lock<std::mutex> lk(mutex_);
    done_cv_.wait(lk, [&] {
      return job->done.load(std::memory_order_acquire) == n_tasks;
    });
    job_ = nullptr;
  }
  // On return every task ran to completion and the claim counter moved past
  // the last index (each worker overshoots by exactly one failed claim).
  PTRACK_CHECK_MSG(job->done.load(std::memory_order_acquire) == n_tasks,
                   "ThreadPool::run: all tasks completed");
  PTRACK_CHECK_MSG(job->next.load(std::memory_order_acquire) >= n_tasks,
                   "ThreadPool::run: claim counter consumed every index");
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace ptrack::runtime
