#include "runtime/thread_pool.hpp"

#include <thread>

#include "common/error.hpp"

namespace ptrack::runtime {

namespace {

SchedulerOptions pool_options(std::size_t threads) {
  SchedulerOptions o;
  o.workers = threads - 1;  // the calling thread is worker 0
  return o;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : sched_((expects(threads >= 1, "ThreadPool: threads >= 1"),
              pool_options(threads))) {}

std::size_t ThreadPool::resolve_threads(std::size_t requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

void ThreadPool::run(std::size_t n_tasks, const TaskFn& fn) {
  const std::size_t caller = sched_.caller_executor();
  sched_.parallel_for(
      Lane::kThroughput, n_tasks,
      [&fn, caller](std::size_t task, std::size_t executor) {
        // Scheduler convention: workers are [0, W), caller is W. Pool
        // convention: caller is 0, spawned workers are [1, size()).
        fn(task, executor == caller ? 0 : executor + 1);
      });
}

}  // namespace ptrack::runtime
