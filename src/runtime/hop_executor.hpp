// Adapter: core::HopExecutor port -> Scheduler latency lane.
//
// core defines the HopExecutor interface so HopJob can exist without a
// dependency on the runtime layer (tests drive it with an inline
// executor); this header is where the two meet. Hops are latency-lane
// tasks by definition — they preempt any batch work queued on the same
// scheduler — and the stream id flows through as the affinity hint so a
// session's hops keep landing on the worker whose cache holds its
// SampleRing.

#pragma once

#include "core/hop_job.hpp"
#include "runtime/scheduler.hpp"

namespace ptrack::runtime {

class SchedulerHopExecutor final : public core::HopExecutor {
 public:
  explicit SchedulerHopExecutor(Scheduler& sched) : sched_(sched) {}

  void submit(core::HopJob& job, std::uint64_t affinity) override {
    Task t;
    t.fn = [](void* ctx, std::size_t executor, std::uint64_t /*arg*/) {
      static_cast<core::HopJob*>(ctx)->run_scheduled(executor);
    };
    t.ctx = &job;
    sched_.submit(Lane::kLatency, t, affinity);
  }

 private:
  Scheduler& sched_;
};

}  // namespace ptrack::runtime
