#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <exception>
#include <filesystem>

#include "common/check.hpp"
#include "common/error.hpp"
#include "imu/trace_io.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace ptrack::runtime {

std::string_view to_string(TraceError::Stage s) {
  switch (s) {
    case TraceError::Stage::Load:
      return "load";
    case TraceError::Stage::Process:
      return "process";
  }
  return "unknown";
}

namespace {

std::unique_ptr<Scheduler> make_owned_scheduler(const BatchOptions& opt) {
  if (opt.scheduler != nullptr) return nullptr;
  SchedulerOptions so;
  // Pool convention carried over from the fork-join era: `threads` counts
  // the calling thread, the scheduler counts only spawned workers.
  so.workers = ThreadPool::resolve_threads(opt.threads) - 1;
  // ptrack-lint: allow(alloc) runner construction, amortized over every batch it runs
  return std::make_unique<Scheduler>(so);
}

}  // namespace

BatchRunner::BatchRunner(core::PTrackConfig cfg, BatchOptions opt)
    : cfg_(cfg),
      owned_(make_owned_scheduler(opt)),
      borrowed_(opt.scheduler),
      caller_participates_(opt.caller_participates) {}

std::vector<TraceResult> BatchRunner::run(
    const std::vector<imu::Trace>& traces) {
  std::vector<TraceResult> results(traces.size());
  if (traces.empty()) return results;

  PTRACK_OBS_SPAN("ptrack.runtime.batch");
  PTRACK_COUNT("ptrack.runtime.batch.runs");
  // The obs decision is latched once per batch so a mid-run toggle cannot
  // produce half-measured tasks, and the disabled path never reads clocks.
  const bool obs_on = obs::enabled();
  const std::uint64_t batch_start_ns = obs_on ? obs::now_ns() : 0;

  const std::size_t executors = threads();

  /// Per-executor busy-time accumulator, padded so executors on adjacent
  /// entries do not share a cache line.
  struct alignas(64) WorkerBusy {
    std::uint64_t ns = 0;
  };
  std::vector<WorkerBusy> busy(executors);

  // One pipeline (and thus one scratch workspace) per executor: no sharing,
  // no locks, and buffer capacities amortize across that executor's traces.
  // Executor ids are dense — scheduler workers [0, W) plus the calling
  // thread at W — so they index these vectors directly.
  std::vector<core::PTrack> trackers(executors, core::PTrack(cfg_));
  sched().parallel_for(
      Lane::kThroughput, traces.size(),
      [&](std::size_t task, std::size_t executor) {
        PTRACK_CHECK_MSG(task < results.size() && executor < trackers.size(),
                         "BatchRunner: task and executor indices in range");
        PTRACK_OBS_SPAN("ptrack.runtime.task");
        const std::uint64_t task_start_ns = obs_on ? obs::now_ns() : 0;
        // Exceptions are converted to values here, inside the task, so one
        // bad trace cannot poison the batch (parallel_for rethrows escaped
        // exceptions after the drain, which would abort the whole batch).
        try {
          results[task] = trackers[executor].process(traces[task]);
        } catch (const std::exception& e) {
          results[task] = make_unexpected(
              TraceError{TraceError::Stage::Process,
                         "#" + std::to_string(task), e.what()});
        } catch (...) {
          results[task] = make_unexpected(
              TraceError{TraceError::Stage::Process,
                         "#" + std::to_string(task), "unknown exception"});
        }
        if (obs_on) {
          const std::uint64_t task_end_ns = obs::now_ns();
          // "Queue wait" at batch granularity: how long the trace sat
          // behind earlier traces before an executor picked it up. The
          // scheduler's own per-lane queue_wait histograms time the
          // individual claimer hops.
          PTRACK_HIST_US("ptrack.runtime.batch.queue_wait_us",
                         static_cast<double>(task_start_ns - batch_start_ns) /
                             1000.0);
          PTRACK_HIST_US("ptrack.runtime.batch.exec_us",
                         static_cast<double>(task_end_ns - task_start_ns) /
                             1000.0);
          busy[executor].ns += task_end_ns - task_start_ns;
        }
      },
      caller_participates_);
  if (obs_on) {
    const std::uint64_t batch_ns =
        std::max<std::uint64_t>(obs::now_ns() - batch_start_ns, 1);
    std::size_t ok = 0;
    for (const TraceResult& r : results) ok += r.has_value() ? 1 : 0;
    PTRACK_COUNT_N("ptrack.runtime.batch.traces_ok", ok);
    PTRACK_COUNT_N("ptrack.runtime.batch.traces_failed", results.size() - ok);
    auto& reg = obs::Registry::instance();
    reg.gauge("ptrack.runtime.batch.workers")
        .set(static_cast<double>(executors));
    for (std::size_t w = 0; w < busy.size(); ++w) {
      reg.gauge("ptrack.runtime.worker." + std::to_string(w) + ".utilization")
          .set(static_cast<double>(busy[w].ns) /
               static_cast<double>(batch_ns));
    }
  }
  // Deterministic batch contract: results come back positionally, slot i
  // holding trace i's result regardless of which executor ran it.
  PTRACK_CHECK_MSG(results.size() == traces.size(),
                   "BatchRunner: one result per input trace, in input order");
  return results;
}

// ptrack-lint: push-allow(alloc) directory loading is IO-bound batch setup, not a steady-state path
TraceDirListing load_trace_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw Error("load_trace_dir: not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  if (ec) throw Error("load_trace_dir: cannot read " + dir + ": " + ec.message());
  std::sort(files.begin(), files.end());

  TraceDirListing out;
  out.traces.reserve(files.size());
  for (const fs::path& p : files) {
    std::string name = p.filename().string();
    try {
      out.traces.push_back({name, imu::load_csv(p.string())});
    } catch (const std::exception& e) {
      PTRACK_COUNT("ptrack.imu.load.errors");
      out.errors.push_back(
          {TraceError::Stage::Load, std::move(name), e.what()});
    }
  }
  // Directory iteration order is filesystem-dependent; the sort above is
  // what makes batch runs reproducible across machines.
  PTRACK_CHECK_MSG(std::is_sorted(out.traces.begin(), out.traces.end(),
                                  [](const NamedTrace& a, const NamedTrace& b) {
                                    return a.name < b.name;
                                  }),
                   "load_trace_dir: traces ordered by filename");
  return out;
}
// ptrack-lint: pop-allow(alloc)

}  // namespace ptrack::runtime
