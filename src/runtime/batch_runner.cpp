#include "runtime/batch_runner.hpp"

#include <algorithm>
#include <filesystem>

#include "common/check.hpp"
#include "common/error.hpp"
#include "imu/trace_io.hpp"

namespace ptrack::runtime {

BatchRunner::BatchRunner(core::PTrackConfig cfg, BatchOptions opt)
    : cfg_(cfg), pool_(ThreadPool::resolve_threads(opt.threads)) {}

std::vector<core::TrackResult> BatchRunner::run(
    const std::vector<imu::Trace>& traces) {
  std::vector<core::TrackResult> results(traces.size());
  if (traces.empty()) return results;

  // One pipeline (and thus one scratch workspace) per worker: no sharing,
  // no locks, and buffer capacities amortize across that worker's traces.
  std::vector<core::PTrack> trackers(pool_.size(), core::PTrack(cfg_));
  pool_.run(traces.size(), [&](std::size_t task, std::size_t worker) {
    PTRACK_CHECK_MSG(task < results.size() && worker < trackers.size(),
                     "BatchRunner: task and worker indices in range");
    results[task] = trackers[worker].process(traces[task]);
  });
  // Deterministic batch contract: results come back positionally, slot i
  // holding trace i's result regardless of which worker ran it.
  PTRACK_CHECK_MSG(results.size() == traces.size(),
                   "BatchRunner: one result per input trace, in input order");
  return results;
}

std::vector<NamedTrace> load_trace_dir(const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw Error("load_trace_dir: not a directory: " + dir);
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  if (ec) throw Error("load_trace_dir: cannot read " + dir + ": " + ec.message());
  std::sort(files.begin(), files.end());

  std::vector<NamedTrace> out;
  out.reserve(files.size());
  for (const fs::path& p : files) {
    out.push_back({p.filename().string(), imu::load_csv(p.string())});
  }
  // Directory iteration order is filesystem-dependent; the sort above is
  // what makes batch runs reproducible across machines.
  PTRACK_CHECK_MSG(std::is_sorted(out.begin(), out.end(),
                                  [](const NamedTrace& a, const NamedTrace& b) {
                                    return a.name < b.name;
                                  }),
                   "load_trace_dir: traces ordered by filename");
  return out;
}

}  // namespace ptrack::runtime
