// Fork-join compatibility facade over the work-stealing Scheduler.
//
// PR-1's ThreadPool was a dedicated fork-join pool; the scheduler refactor
// (DESIGN.md §18) replaced that machinery with Scheduler::parallel_for on
// the throughput lane. This type keeps the original fork-join surface —
// submit a task count and a function, the call blocks until every task
// ran, worker indices in [0, size()) with the calling thread as worker 0 —
// for callers and tests written against it, while the actual scheduling
// (claimer tasks, lane priority, steal-half) lives in the Scheduler.
//
// The index mapping is the only translation: a pool of size T is a
// Scheduler with T-1 background workers, the caller's executor id
// (Scheduler convention: workers()) maps to worker 0 here and scheduler
// worker w maps to w+1. A pool of size 1 therefore spawns no threads and
// runs strictly inline, exactly as before.

#pragma once

#include <cstddef>
#include <functional>

#include "runtime/scheduler.hpp"

namespace ptrack::runtime {

class ThreadPool {
 public:
  /// Worker function: (task_index, worker_index). Worker indices are in
  /// [0, size()); index 0 is the calling thread.
  using TaskFn = std::function<void(std::size_t, std::size_t)>;

  /// Creates a pool with `threads` workers (>= 1); spawns threads - 1
  /// background threads.
  explicit ThreadPool(std::size_t threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return sched_.workers() + 1; }

  /// Runs fn(task, worker) for every task in [0, n_tasks), dynamically
  /// load-balanced across workers; blocks until all tasks completed.
  /// If any task throws, the first exception (in completion order) is
  /// rethrown here after all tasks have been drained. Not reentrant: a
  /// task must not call run() on the same pool.
  void run(std::size_t n_tasks, const TaskFn& fn);

  /// Threads to use for `requested` (0 = one per hardware thread).
  static std::size_t resolve_threads(std::size_t requested);

  /// The scheduler backing this pool (e.g. to co-schedule latency work on
  /// the same cores).
  [[nodiscard]] Scheduler& scheduler() { return sched_; }

 private:
  Scheduler sched_;
};

}  // namespace ptrack::runtime
