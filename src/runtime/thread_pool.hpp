// Fixed-size fork-join thread pool.
//
// The PTrack batch workloads (cohort-scale trace processing, parameter
// sweeps) are embarrassingly parallel: many independent tasks, each a pure
// function of its input. This pool provides exactly that shape — submit a
// task count and a function, workers pull task indices off a shared atomic
// counter (dynamic load balancing: trace lengths vary), the call blocks
// until every task ran. The worker index is passed alongside the task index
// so callers can maintain per-worker state (pipeline instances, scratch
// workspaces) without locking.
//
// The calling thread participates as worker 0, so a pool of size 1 spawns
// no threads at all and runs strictly inline — useful both as the baseline
// in scaling benchmarks and as the zero-overhead path on single-core
// devices.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ptrack::runtime {

class ThreadPool {
 public:
  /// Worker function: (task_index, worker_index). Worker indices are in
  /// [0, size()); index 0 is the calling thread.
  using TaskFn = std::function<void(std::size_t, std::size_t)>;

  /// Creates a pool with `threads` workers (>= 1); spawns threads - 1
  /// background threads.
  explicit ThreadPool(std::size_t threads);

  /// Joins all background workers. Must not be called while run() is active.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const { return thread_count_; }

  /// Runs fn(task, worker) for every task in [0, n_tasks), dynamically
  /// load-balanced across workers; blocks until all tasks completed.
  /// If any task throws, the first exception (in completion order) is
  /// rethrown here after all tasks have been drained. Not reentrant: a
  /// task must not call run() on the same pool.
  void run(std::size_t n_tasks, const TaskFn& fn);

  /// Threads to use for `requested` (0 = one per hardware thread).
  static std::size_t resolve_threads(std::size_t requested);

 private:
  struct Job {
    const TaskFn* fn = nullptr;
    std::size_t n_tasks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::mutex error_mutex;
    std::exception_ptr error;
  };

  void worker_loop(std::size_t worker);
  void execute(Job& job, std::size_t worker);

  std::size_t thread_count_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;   ///< wakes workers on a new job
  std::condition_variable done_cv_;   ///< wakes run() on job completion
  std::shared_ptr<Job> job_;          ///< active job; null when idle
  std::uint64_t generation_ = 0;      ///< bumped per job (spurious-wake guard)
  bool stop_ = false;
};

}  // namespace ptrack::runtime
