// Per-worker state of the work-stealing scheduler: the bounded lock-free
// task rings (one per priority lane), the futex-style park slot, and the
// victim-selection cursor. The scheduling policy itself (lane priority,
// steal-half, spin/park) lives in runtime/scheduler.{hpp,cpp}; this header
// only defines the data structures it runs on.
//
// TaskQueue is a bounded MPMC ring (Vyukov's per-cell sequence algorithm):
// any thread may push (external submission with an affinity hint lands
// directly in the preferred worker's ring) and any thread may pop (the
// owner drains its own ring front-to-back; thieves pop the very same way,
// so "steal half" is just a batched pop). Both operations are a CAS plus
// two cache-line touches, allocation-free by construction — the cell array
// is sized once in the constructor and never grows. FIFO order per ring
// gives the latency lane a bounded-unfairness property a LIFO deque cannot:
// the oldest queued hop is always the next one taken.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>

namespace ptrack::runtime {

/// The two priority lanes of the scheduler. Latency work (streaming hops)
/// always drains before throughput work (batch traces) — see
/// Scheduler's class comment for the exact policy.
enum class Lane : std::uint8_t {
  kLatency = 0,
  kThroughput = 1,
};

inline constexpr std::size_t kLaneCount = 2;

[[nodiscard]] constexpr std::size_t lane_index(Lane lane) noexcept {
  return static_cast<std::size_t>(lane);
}

/// One unit of scheduled work: a plain function pointer plus context, so a
/// queue slot is POD and submission never allocates. `arg` is a free
/// payload word (parallel-for passes nothing, stream jobs could pass a
/// sequence number); `submit_ns` carries the submission timestamp for the
/// queue-wait histograms (0 when telemetry is off — the pop side skips the
/// clock read too).
struct Task {
  void (*fn)(void* ctx, std::size_t executor, std::uint64_t arg) = nullptr;
  void* ctx = nullptr;
  std::uint64_t arg = 0;
  std::uint64_t submit_ns = 0;
};

/// Bounded lock-free MPMC ring of Tasks. Capacity is fixed at construction
/// (rounded up to a power of two); push returns false when full — the
/// scheduler then falls back to its mutex-protected spill queue and counts
/// the event, so the lock-free path never blocks and never grows.
class TaskQueue {
 public:
  /// `capacity` is rounded up to the next power of two, minimum 2.
  explicit TaskQueue(std::size_t capacity);

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  /// Enqueues a task. Any thread. False when the ring is full.
  bool push(const Task& task);

  /// Dequeues the oldest task. Any thread. False when empty (or when every
  /// present cell is still being written by a racing producer — callers
  /// treat that transient as empty).
  bool pop(Task& out);

  /// Approximate occupancy (racy by nature; used for steal-half sizing and
  /// the depth gauges only).
  [[nodiscard]] std::size_t size_approx() const;

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::size_t> seq{0};
    Task task;
  };

  std::unique_ptr<Cell[]> cells_;
  std::size_t mask_;
  alignas(64) std::atomic<std::size_t> enqueue_pos_{0};
  alignas(64) std::atomic<std::size_t> dequeue_pos_{0};
};

/// Per-worker scheduler state. The park slot is the portable condvar
/// equivalent of a futex wait: `epoch` (guarded by `mutex`) is bumped on
/// every targeted wake so a notify that fires between the worker's last
/// queue scan and its cv wait is never lost, and `parked` is the cheap
/// seq_cst flag submitters read to decide whether a wake syscall is needed
/// at all.
struct Worker {
  Worker(std::size_t queue_capacity)
      : latency_q(queue_capacity), throughput_q(queue_capacity) {}

  TaskQueue& lane(Lane l) {
    return l == Lane::kLatency ? latency_q : throughput_q;
  }

  TaskQueue latency_q;
  TaskQueue throughput_q;

  // --- Park slot ---------------------------------------------------------
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t epoch = 0;           ///< guarded by mutex
  std::atomic<bool> parked{false};   ///< true only while inside park()

  // --- Worker-loop locals that survive parking ---------------------------
  std::uint64_t steal_seed = 0;      ///< xorshift state for victim selection
  std::thread thread;                ///< joined by the Scheduler destructor
};

}  // namespace ptrack::runtime
