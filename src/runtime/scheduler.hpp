// Work-stealing scheduler with two priority lanes — the one compute
// substrate for both of PTrack's workload shapes (DESIGN.md §18).
//
// The deployment story is mixed-load: latency-sensitive streaming hops
// (a connected wearable's next 2 s of samples) sharing cores with
// throughput batch jobs (self-training profile rebuilds, cohort sweeps).
// A homogeneous fork-join pool head-of-line-blocks the hops whenever a
// batch saturates; this scheduler removes that by construction:
//
//   * Two lanes. Every worker drains its latency work (own ring, shared
//     spill, then stolen) before it looks at any throughput work. A hop
//     submitted during a saturating batch waits for at most the batch
//     item currently executing, never for the queue behind it.
//   * Per-worker bounded lock-free rings (runtime/worker.hpp), steal-half
//     victim selection: an idle worker takes half of a random victim's
//     ring in one pass, runs one task and re-homes the rest, so imbalance
//     halves per steal instead of migrating one task at a time.
//   * Bounded spin then park. An idle worker spins a few thousand
//     iterations watching the pending counters (covers the common
//     hop-every-few-ms cadence without syscalls), then parks on its own
//     condvar. Submission wakes the affinity-preferred worker first so a
//     stream's hops keep landing on the worker whose cache holds its
//     SampleRing.
//   * Deterministic fork-join on top: parallel_for() fans an index space
//     across the workers via self-resubmitting claimer tasks — each
//     claims ONE index, runs it, and resubmits itself, so the worker loop
//     re-checks the latency lane between every batch item. Results are
//     positional, so BatchRunner's bit-determinism contract survives
//     unchanged, as do the PR-2 exception semantics (first exception in
//     completion order, rethrown after the drain).
//
// Steady-state submission, claiming and stealing are allocation-free
// (rings are pre-sized in constructors; the only allocating path is the
// counted spill fallback when a ring overflows) — enforced by the alloc
// lint rule covering runtime/*.cpp.

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "runtime/worker.hpp"

namespace ptrack::runtime {

/// "No placement preference" for submit(); the task round-robins.
inline constexpr std::uint64_t kNoAffinity = ~std::uint64_t{0};

struct SchedulerOptions {
  /// Background worker threads. 0 is valid: submit() runs tasks inline on
  /// the submitting thread and parallel_for() degenerates to a serial
  /// loop (the single-core / baseline-bench configuration).
  std::size_t workers = 0;
  /// Per-worker per-lane ring capacity (rounded up to a power of two).
  /// Overflow goes to the mutex-protected spill queue — counted, never
  /// dropped.
  std::size_t queue_capacity = 2048;
  /// Idle iterations a worker spins watching the pending counters before
  /// parking on its condvar. Covers sub-millisecond submit gaps without
  /// paying a futex round trip per hop.
  std::uint32_t spin_iterations = 4000;
};

/// Monotone scheduler event counts, readable at any time (relaxed; exact
/// once workers are quiescent). Tests assert on these; the same events
/// feed the `ptrack.runtime.sched.*` metrics.
struct SchedulerStats {
  std::uint64_t submitted_latency = 0;
  std::uint64_t submitted_throughput = 0;
  std::uint64_t executed_latency = 0;
  std::uint64_t executed_throughput = 0;
  std::uint64_t inline_runs = 0;       ///< tasks run by submit() (0 workers)
  std::uint64_t steals = 0;            ///< tasks migrated by steal-half
  std::uint64_t steal_batches = 0;     ///< steal-half passes that got >= 1
  std::uint64_t parks = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t spills = 0;            ///< ring-full fallbacks
  std::uint64_t task_exceptions = 0;   ///< exceptions swallowed at the loop
};

class Scheduler {
 public:
  /// parallel_for body: (task_index, executor_index). Executor indices:
  /// worker threads are [0, workers()); the calling thread participates
  /// as executor workers().
  using TaskFn = std::function<void(std::size_t, std::size_t)>;

  explicit Scheduler(SchedulerOptions opts = {});

  /// Signals stop, wakes and joins every worker. Queued tasks still run
  /// (workers drain on the way out; contexts must outlive the scheduler).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] std::size_t workers() const { return n_workers_; }
  /// Executor index parallel_for() reports for the calling thread.
  [[nodiscard]] std::size_t caller_executor() const { return n_workers_; }

  /// Enqueues one task (fire-and-forget; completion signalling is the
  /// task's business — see core::HopJob). `affinity` pins the task to
  /// worker `affinity % workers()`'s ring; submission is wait-free apart
  /// from the rare ring-overflow spill. With 0 workers the task runs
  /// inline here. Exceptions escaping a task are swallowed and counted
  /// (stats().task_exceptions) — tasks own their error channel.
  void submit(Lane lane, Task task, std::uint64_t affinity = kNoAffinity);

  /// Runs fn(task, executor) for every task in [0, n_tasks) on `lane`,
  /// dynamically load-balanced; blocks until all completed. The calling
  /// thread participates as executor workers(). If any task throws, the
  /// first exception (in completion order) is rethrown here after the
  /// drain. Must not be called from this scheduler's own worker threads.
  ///
  /// `caller_participates = false` makes the call dispatch-only: the
  /// caller seeds the claimers and then just waits, donating no CPU — for
  /// threads with other duties (a daemon control thread fanning out a
  /// rebuild). Ignored with 0 workers, where the caller is the only
  /// executor there is.
  void parallel_for(Lane lane, std::size_t n_tasks, const TaskFn& fn,
                    bool caller_participates = true);

  [[nodiscard]] SchedulerStats stats() const;

 private:
  struct ParallelJob;

  static void claimer_trampoline(void* ctx, std::size_t executor,
                                 std::uint64_t arg);
  void claim_inline(ParallelJob& job, std::size_t executor);

  bool find_task(std::size_t self, Task& out, Lane& lane_out);
  bool pop_spill(Lane lane, Task& out);
  bool steal_half(std::size_t self, Lane lane, Task& out);
  void execute(const Task& t, std::size_t executor, Lane lane);
  bool try_wake(std::size_t w);
  void wake_one(std::size_t preferred);
  void update_depth_gauges();
  void worker_loop(std::size_t w);

  SchedulerOptions opts_;
  std::size_t n_workers_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<std::size_t> rr_{0};  ///< round-robin cursor (no affinity)

  /// Tasks currently queued (rings + spill) per lane; the seq_cst
  /// handshake between submitters and parking workers (see worker.hpp).
  alignas(64) std::atomic<std::size_t> pending_[kLaneCount] = {};

  std::mutex spill_mu_[kLaneCount];
  std::deque<Task> spill_[kLaneCount];
  std::atomic<std::size_t> spill_count_[kLaneCount] = {};

  std::atomic<bool> stop_{false};

  struct InternalStats {
    std::atomic<std::uint64_t> submitted[kLaneCount] = {};
    std::atomic<std::uint64_t> executed[kLaneCount] = {};
    std::atomic<std::uint64_t> inline_runs{0};
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> steal_batches{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> wakeups{0};
    std::atomic<std::uint64_t> spills{0};
    std::atomic<std::uint64_t> task_exceptions{0};
  };
  InternalStats st_;
};

}  // namespace ptrack::runtime
