#include "runtime/scheduler.hpp"

#include <algorithm>
#include <condition_variable>
#include <exception>
#include <thread>

#include "common/check.hpp"
#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ptrack::runtime {

namespace {

/// Identifies the scheduler whose worker loop owns the current thread, so
/// parallel_for() can reject the call shape that deadlocks (a worker
/// blocking on a job only its own pool can finish).
thread_local const Scheduler* tl_worker_of = nullptr;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__) || defined(__arm__)
  asm volatile("yield");
#else
  std::this_thread::yield();
#endif
}

/// Steal-half transfer cap: bounds the thief's stack buffer (keeps the
/// steal allocation-free) and the latency-lane delay a single steal pass
/// can introduce.
constexpr std::size_t kStealMax = 16;

}  // namespace

struct Scheduler::ParallelJob {
  Scheduler* sched = nullptr;
  const TaskFn* fn = nullptr;
  Lane lane = Lane::kThroughput;
  std::size_t n = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> done{0};
  /// Claimer tasks alive in queues or executing. The caller's wait covers
  /// outstanding == 0 as well as done == n so no queued claimer can
  /// outlive this stack-allocated job.
  std::atomic<std::size_t> outstanding{0};
  std::mutex mu;
  std::condition_variable cv;
  std::exception_ptr error;  ///< first in completion order; guarded by mu
};

Scheduler::Scheduler(SchedulerOptions opts) : opts_(opts) {
  expects(opts.queue_capacity >= 2, "Scheduler: queue_capacity >= 2");
  expects(opts.workers <= 4096, "Scheduler: implausible worker count");
  n_workers_ = opts.workers;
  workers_.reserve(n_workers_);
  for (std::size_t w = 0; w < n_workers_; ++w) {
    workers_.push_back(std::make_unique<Worker>(opts.queue_capacity));
  }
  if (obs::enabled()) {
    obs::Registry::instance()
        .gauge("ptrack.runtime.sched.workers")
        .set(static_cast<double>(n_workers_));
  }
  // Threads start only after every Worker exists: a worker's first steal
  // scan touches all of its siblings.
  for (std::size_t w = 0; w < n_workers_; ++w) {
    workers_[w]->thread = std::thread([this, w] { worker_loop(w); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_seq_cst);
  for (auto& w : workers_) {
    std::lock_guard<std::mutex> lk(w->mutex);
    ++w->epoch;
    w->cv.notify_all();
  }
  for (auto& w : workers_) w->thread.join();
  // Straggler drain: anything a racing submitter queued while workers were
  // exiting runs here, on the destroying thread, so no task is dropped.
  if (n_workers_ > 0) {
    Task t;
    Lane lane{};
    while (find_task(0, t, lane)) execute(t, /*executor=*/0, lane);
  }
}

void Scheduler::submit(Lane lane, Task task, std::uint64_t affinity) {
  expects(task.fn != nullptr, "Scheduler::submit: task.fn required");
  const std::size_t l = lane_index(lane);
  st_.submitted[l].fetch_add(1, std::memory_order_relaxed);
  if (lane == Lane::kLatency) {
    PTRACK_COUNT("ptrack.runtime.sched.submitted.latency");
  } else {
    PTRACK_COUNT("ptrack.runtime.sched.submitted.throughput");
  }
  if (n_workers_ == 0) {
    // Degenerate single-threaded configuration: run inline, preserving the
    // "executor 0 == submitting thread" convention (caller_executor() == 0).
    st_.inline_runs.fetch_add(1, std::memory_order_relaxed);
    execute(task, /*executor=*/0, lane);
    return;
  }
  if (obs::enabled()) task.submit_ns = obs::now_ns();

  // Dekker handshake with parking workers: the pending increment must be
  // seq_cst-ordered before the parked-flag reads in wake_one (worker.hpp).
  pending_[l].fetch_add(1, std::memory_order_seq_cst);
  const std::size_t target =
      affinity != kNoAffinity
          ? static_cast<std::size_t>(affinity) % n_workers_
          : rr_.fetch_add(1, std::memory_order_relaxed) % n_workers_;
  if (!workers_[target]->lane(lane).push(task)) {
    {
      std::lock_guard<std::mutex> lk(spill_mu_[l]);
      // ptrack-lint: allow(alloc) counted ring-overflow fallback, not steady state
      spill_[l].push_back(task);
    }
    spill_count_[l].fetch_add(1, std::memory_order_relaxed);
    st_.spills.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.runtime.sched.spills");
  }
  update_depth_gauges();
  wake_one(target);
}

bool Scheduler::try_wake(std::size_t w) {
  Worker& wk = *workers_[w];
  if (!wk.parked.load(std::memory_order_seq_cst)) return false;
  {
    // Notify under the lock: the epoch bump is what the wait predicate
    // reads, and notifying while holding it closes the window where the
    // worker re-parks between our check and the notify.
    std::lock_guard<std::mutex> lk(wk.mutex);
    ++wk.epoch;
    // Claim the wake on the sleeper's behalf: until the worker is actually
    // scheduled it cannot clear its own flag, and a submit burst that kept
    // seeing parked==true would funnel every wake into this one worker
    // while its siblings slept through the backlog. (The worker's own
    // clear after cv.wait is then a harmless redundant store.)
    wk.parked.store(false, std::memory_order_seq_cst);
    wk.cv.notify_one();
  }
  st_.wakeups.fetch_add(1, std::memory_order_relaxed);
  PTRACK_COUNT("ptrack.runtime.sched.wakeups");
  return true;
}

void Scheduler::wake_one(std::size_t preferred) {
  // Affinity-first: the preferred worker's cache holds the stream's state.
  // If it is busy (not parked), any other parked worker will do — it can
  // steal the task if the preferred ring backs up.
  if (try_wake(preferred)) return;
  for (std::size_t k = 0; k < n_workers_; ++k) {
    if (k == preferred) continue;
    if (try_wake(k)) return;
  }
}

bool Scheduler::pop_spill(Lane lane, Task& out) {
  const std::size_t l = lane_index(lane);
  if (spill_count_[l].load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lk(spill_mu_[l]);
  if (spill_[l].empty()) return false;
  out = spill_[l].front();
  spill_[l].pop_front();
  spill_count_[l].fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Scheduler::steal_half(std::size_t self, Lane lane, Task& out) {
  if (n_workers_ < 2) return false;
  const std::size_t l = lane_index(lane);
  Worker& me = *workers_[self];
  // xorshift64 victim cursor: cheap, per-worker, and deterministic enough
  // that tests can provoke steals by pinning work onto one ring.
  std::uint64_t x = me.steal_seed;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  me.steal_seed = x;
  const std::size_t start = static_cast<std::size_t>(x) % n_workers_;

  for (std::size_t k = 0; k < n_workers_; ++k) {
    const std::size_t v = (start + k) % n_workers_;
    if (v == self) continue;
    TaskQueue& vic = workers_[v]->lane(lane);
    const std::size_t avail = vic.size_approx();
    if (avail == 0) continue;
    const std::size_t want =
        std::min(std::max<std::size_t>(avail / 2, 1), kStealMax);
    Task buf[kStealMax];
    std::size_t got = 0;
    while (got < want && vic.pop(buf[got])) ++got;
    if (got == 0) continue;

    pending_[l].fetch_sub(got, std::memory_order_seq_cst);
    st_.steals.fetch_add(got, std::memory_order_relaxed);
    st_.steal_batches.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT_N("ptrack.runtime.sched.steals", got);

    // Run the oldest now; re-home the rest so our subsequent pops are
    // local. The re-homed tasks re-enter pending, so no sibling parks
    // while they exist.
    out = buf[0];
    for (std::size_t i = 1; i < got; ++i) {
      pending_[l].fetch_add(1, std::memory_order_seq_cst);
      if (!me.lane(lane).push(buf[i])) {
        {
          std::lock_guard<std::mutex> lk(spill_mu_[l]);
          // ptrack-lint: allow(alloc) counted ring-overflow fallback, not steady state
          spill_[l].push_back(buf[i]);
        }
        spill_count_[l].fetch_add(1, std::memory_order_relaxed);
        st_.spills.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return true;
  }
  return false;
}

bool Scheduler::find_task(std::size_t self, Task& out, Lane& lane_out) {
  // Lane priority is absolute: every latency source — own ring, spill,
  // steal — is checked before any throughput work is touched.
  for (const Lane lane : {Lane::kLatency, Lane::kThroughput}) {
    const std::size_t l = lane_index(lane);
    if (workers_[self]->lane(lane).pop(out)) {
      pending_[l].fetch_sub(1, std::memory_order_seq_cst);
      lane_out = lane;
      return true;
    }
    if (pop_spill(lane, out)) {
      pending_[l].fetch_sub(1, std::memory_order_seq_cst);
      lane_out = lane;
      return true;
    }
    if (steal_half(self, lane, out)) {
      lane_out = lane;  // steal_half already settled pending accounting
      return true;
    }
  }
  return false;
}

void Scheduler::execute(const Task& t, std::size_t executor, Lane lane) {
  const std::size_t l = lane_index(lane);
  const bool timed = t.submit_ns != 0 && obs::enabled();
  std::uint64_t start = 0;
  if (timed) {
    start = obs::now_ns();
    const double wait_us =
        static_cast<double>(start - t.submit_ns) / 1000.0;
    if (lane == Lane::kLatency) {
      PTRACK_HIST_US("ptrack.runtime.sched.latency.queue_wait_us", wait_us);
    } else {
      PTRACK_HIST_US("ptrack.runtime.sched.throughput.queue_wait_us",
                     wait_us);
    }
  }
  try {
    t.fn(t.ctx, executor, t.arg);
  } catch (...) {
    // Fire-and-forget tasks own their error channel (HopJob captures
    // internally, parallel_for claimers record into their job); anything
    // reaching here is a contract breach we count rather than crash on.
    st_.task_exceptions.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.runtime.sched.task_exceptions");
  }
  st_.executed[l].fetch_add(1, std::memory_order_relaxed);
  if (timed) {
    const double exec_us =
        static_cast<double>(obs::now_ns() - start) / 1000.0;
    if (lane == Lane::kLatency) {
      PTRACK_HIST_US("ptrack.runtime.sched.latency.exec_us", exec_us);
    } else {
      PTRACK_HIST_US("ptrack.runtime.sched.throughput.exec_us", exec_us);
    }
  }
}

void Scheduler::update_depth_gauges() {
  if (!obs::enabled()) return;
  static obs::Gauge& g_lat =
      obs::Registry::instance().gauge("ptrack.runtime.sched.depth.latency");
  static obs::Gauge& g_thr = obs::Registry::instance().gauge(
      "ptrack.runtime.sched.depth.throughput");
  g_lat.set(static_cast<double>(
      pending_[lane_index(Lane::kLatency)].load(std::memory_order_relaxed)));
  g_thr.set(static_cast<double>(pending_[lane_index(Lane::kThroughput)].load(
      std::memory_order_relaxed)));
}

void Scheduler::worker_loop(std::size_t w) {
  tl_worker_of = this;
  Worker& self = *workers_[w];
  self.steal_seed = 0x9e3779b97f4a7c15ULL ^ (w + 1);
  for (;;) {
    Task t;
    Lane lane{};
    if (find_task(w, t, lane)) {
      execute(t, w, lane);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;

    // Bounded spin: watch the pending counters (one cache line) instead of
    // rescanning every ring; covers sub-millisecond submit gaps without a
    // futex round trip.
    bool hot = false;
    for (std::uint32_t i = 0; i < opts_.spin_iterations; ++i) {
      if (pending_[0].load(std::memory_order_relaxed) != 0 ||
          pending_[1].load(std::memory_order_relaxed) != 0 ||
          stop_.load(std::memory_order_relaxed)) {
        hot = true;
        break;
      }
      cpu_relax();
    }
    if (hot) continue;

    // Park. The parked-flag store and pending re-check are both seq_cst:
    // either a racing submitter's pending increment is visible here (we
    // skip the wait), or our parked=true is visible to its wake_one (it
    // bumps the epoch under our mutex). Lost wakeups are impossible.
    std::unique_lock<std::mutex> lk(self.mutex);
    self.parked.store(true, std::memory_order_seq_cst);
    if (pending_[0].load(std::memory_order_seq_cst) != 0 ||
        pending_[1].load(std::memory_order_seq_cst) != 0 ||
        stop_.load(std::memory_order_seq_cst)) {
      self.parked.store(false, std::memory_order_relaxed);
      continue;
    }
    st_.parks.fetch_add(1, std::memory_order_relaxed);
    PTRACK_COUNT("ptrack.runtime.sched.parks");
    update_depth_gauges();
    const std::uint64_t epoch0 = self.epoch;
    self.cv.wait(lk, [&] { return self.epoch != epoch0; });
    self.parked.store(false, std::memory_order_relaxed);
  }
  // Stop was signalled with the queues apparently empty; one final drain
  // catches tasks that raced in while we were exiting.
  Task t;
  Lane lane{};
  while (find_task(w, t, lane)) execute(t, w, lane);
  tl_worker_of = nullptr;
}

// ---------------------------------------------------------------------------
// parallel_for: deterministic fork-join on the throughput (or latency) lane.

void Scheduler::claimer_trampoline(void* ctx, std::size_t executor,
                                   std::uint64_t /*arg*/) {
  auto& job = *static_cast<ParallelJob*>(ctx);
  const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
  if (i < job.n) {
    try {
      (*job.fn)(i, executor);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    const std::size_t completed =
        job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    PTRACK_CHECK_MSG(completed <= job.n,
                     "Scheduler: completions never exceed the task count");
    if (completed == job.n) {
      std::lock_guard<std::mutex> lk(job.mu);
      job.cv.notify_all();
    }
    if (job.next.load(std::memory_order_relaxed) < job.n) {
      // Resubmit instead of looping: the worker loop re-checks the latency
      // lane between consecutive batch items, which is the whole
      // anti-head-of-line-blocking mechanism. Affinity = our own ring, so
      // the resubmission is a local push, not a migration.
      job.sched->submit(job.lane,
                        Task{&Scheduler::claimer_trampoline, &job, 0, 0},
                        /*affinity=*/executor);
      return;
    }
  }
  // This claimer dies (index space consumed). The job may only be
  // reclaimed once outstanding hits zero.
  if (job.outstanding.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lk(job.mu);
    job.cv.notify_all();
  }
}

void Scheduler::claim_inline(ParallelJob& job, std::size_t executor) {
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.n) return;
    try {
      (*job.fn)(i, executor);
    } catch (...) {
      std::lock_guard<std::mutex> lk(job.mu);
      if (!job.error) job.error = std::current_exception();
    }
    const std::size_t completed =
        job.done.fetch_add(1, std::memory_order_acq_rel) + 1;
    PTRACK_CHECK_MSG(completed <= job.n,
                     "Scheduler: completions never exceed the task count");
    if (completed == job.n) {
      std::lock_guard<std::mutex> lk(job.mu);
      job.cv.notify_all();
    }
  }
}

void Scheduler::parallel_for(Lane lane, std::size_t n_tasks,
                             const TaskFn& fn, bool caller_participates) {
  if (n_tasks == 0) return;
  check(tl_worker_of != this,
        "Scheduler::parallel_for: must not be called from this scheduler's "
        "own worker threads (deadlock)");

  ParallelJob job;
  job.sched = this;
  job.fn = &fn;
  job.lane = lane;
  job.n = n_tasks;

  // One claimer seeded per worker (fewer if the index space is smaller),
  // pinned to distinct rings so the fan-out does not itself need steals.
  const std::size_t seeds = std::min(n_tasks, n_workers_);
  job.outstanding.store(seeds, std::memory_order_relaxed);
  for (std::size_t w = 0; w < seeds; ++w) {
    submit(lane, Task{&Scheduler::claimer_trampoline, &job, 0, 0},
           /*affinity=*/w);
  }

  // The calling thread participates as executor workers() — with zero
  // workers this loop IS the whole job, run strictly inline and in order,
  // so participation is not optional there.
  if (caller_participates || n_workers_ == 0) {
    claim_inline(job, caller_executor());
  }

  {
    std::unique_lock<std::mutex> lk(job.mu);
    job.cv.wait(lk, [&] {
      return job.done.load(std::memory_order_acquire) == job.n &&
             job.outstanding.load(std::memory_order_acquire) == 0;
    });
  }
  PTRACK_CHECK_MSG(job.next.load(std::memory_order_acquire) >= job.n,
                   "Scheduler::parallel_for: claim counter consumed every "
                   "index");
  if (job.error) std::rethrow_exception(job.error);
}

SchedulerStats Scheduler::stats() const {
  SchedulerStats s;
  s.submitted_latency =
      st_.submitted[lane_index(Lane::kLatency)].load(std::memory_order_relaxed);
  s.submitted_throughput = st_.submitted[lane_index(Lane::kThroughput)].load(
      std::memory_order_relaxed);
  s.executed_latency =
      st_.executed[lane_index(Lane::kLatency)].load(std::memory_order_relaxed);
  s.executed_throughput = st_.executed[lane_index(Lane::kThroughput)].load(
      std::memory_order_relaxed);
  s.inline_runs = st_.inline_runs.load(std::memory_order_relaxed);
  s.steals = st_.steals.load(std::memory_order_relaxed);
  s.steal_batches = st_.steal_batches.load(std::memory_order_relaxed);
  s.parks = st_.parks.load(std::memory_order_relaxed);
  s.wakeups = st_.wakeups.load(std::memory_order_relaxed);
  s.spills = st_.spills.load(std::memory_order_relaxed);
  s.task_exceptions = st_.task_exceptions.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ptrack::runtime
