// Cohort-scale batch execution of the PTrack pipeline.
//
// Related wearable studies process thousands of independent wrist traces
// through one DSP front end (Urbanek et al.; Straczkiewicz et al.) — the
// workload this runner serves. Each worker thread owns a private
// core::PTrack instance (and therefore a private dsp::Workspace), traces
// are fanned out dynamically, and results come back in input order.
//
// Determinism: PTrack::process is a pure function of the input trace, and
// no state is shared between workers, so the result vector is bit-identical
// regardless of thread count or scheduling (validated by
// tests/test_runtime_batch).

#pragma once

#include <string>
#include <vector>

#include "core/ptrack.hpp"
#include "imu/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace ptrack::runtime {

struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
};

/// Fans independent traces across a fixed-size thread pool through the full
/// PTrack pipeline.
class BatchRunner {
 public:
  explicit BatchRunner(core::PTrackConfig cfg = {}, BatchOptions opt = {});

  [[nodiscard]] std::size_t threads() const { return pool_.size(); }
  [[nodiscard]] const core::PTrackConfig& config() const { return cfg_; }

  /// Processes every trace; results[i] corresponds to traces[i].
  std::vector<core::TrackResult> run(const std::vector<imu::Trace>& traces);

 private:
  core::PTrackConfig cfg_;
  ThreadPool pool_;
};

/// A trace tagged with the file it came from.
struct NamedTrace {
  std::string name;  ///< file name without directory
  imu::Trace trace;
};

/// Loads every `.csv` file in `dir` (imu::load_csv format), sorted by file
/// name so batch runs are reproducible across platforms. Throws
/// ptrack::Error when the directory cannot be read or a file is malformed.
std::vector<NamedTrace> load_trace_dir(const std::string& dir);

}  // namespace ptrack::runtime
