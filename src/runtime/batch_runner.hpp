// Cohort-scale batch execution of the PTrack pipeline.
//
// Related wearable studies process thousands of independent wrist traces
// through one DSP front end (Urbanek et al.; Straczkiewicz et al.) — the
// workload this runner serves. Each executor owns a private core::PTrack
// instance (and therefore a private dsp::Workspace), traces are fanned out
// dynamically, and results come back in input order.
//
// Since the scheduler refactor (DESIGN.md §18) the runner is a thin
// deterministic wrapper over Scheduler::parallel_for on the THROUGHPUT
// lane: batch traces never delay latency-lane streaming hops sharing the
// same scheduler, and the claimer design re-checks the latency lane
// between consecutive traces.
//
// Fault isolation: one bad trace must not abort the other ten thousand.
// Every per-trace failure — a malformed file at load time, an exception
// out of the pipeline at process time — is captured as a value
// (Expected<TrackResult, TraceError>) attributed to its trace, and the
// batch completes. Worker-thread exceptions never escape the scheduler.
//
// Determinism: PTrack::process is a pure function of the input trace, and
// no state is shared between executors, so the result vector is
// bit-identical regardless of thread count or scheduling (validated by
// tests/test_runtime_batch and test_runtime_scheduler).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "core/ptrack.hpp"
#include "imu/trace.hpp"
#include "runtime/scheduler.hpp"

namespace ptrack::runtime {

/// One trace's failure, attributed to where it happened.
struct TraceError {
  enum class Stage {
    Load,     ///< the file could not be read or parsed
    Process,  ///< the pipeline rejected or crashed on the trace
  };
  Stage stage = Stage::Process;
  std::string trace;    ///< file name or batch index ("#7") of the trace
  std::string message;  ///< the underlying exception's message
};

[[nodiscard]] std::string_view to_string(TraceError::Stage s);

/// Per-trace outcome of a batch run.
using TraceResult = Expected<core::TrackResult, TraceError>;

struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread. Ignored when
  /// `scheduler` is set.
  std::size_t threads = 0;

  /// Borrow an existing scheduler instead of owning one — the mixed-load
  /// configuration where batch sweeps and streaming hops share cores.
  /// Must outlive the BatchRunner; batch work goes to its throughput
  /// lane.
  Scheduler* scheduler = nullptr;

  /// When false, run() only dispatches and waits: the calling thread
  /// claims no traces itself (for control threads with other duties, e.g.
  /// a daemon looping rebuilds next to live ingest). Ignored when the
  /// scheduler has no workers — someone has to run the traces.
  bool caller_participates = true;
};

/// Fans independent traces across the scheduler's throughput lane through
/// the full PTrack pipeline.
class BatchRunner {
 public:
  explicit BatchRunner(core::PTrackConfig cfg = {}, BatchOptions opt = {});

  /// Executors a batch runs on: scheduler workers plus the calling thread.
  [[nodiscard]] std::size_t threads() const { return sched().workers() + 1; }
  [[nodiscard]] const core::PTrackConfig& config() const { return cfg_; }

  /// Processes every trace; results[i] corresponds to traces[i]. A trace
  /// whose processing throws yields a TraceError in its slot (stage
  /// Process, trace "#i"); the remaining traces still complete.
  std::vector<TraceResult> run(const std::vector<imu::Trace>& traces);

 private:
  [[nodiscard]] Scheduler& sched() const {
    return borrowed_ != nullptr ? *borrowed_ : *owned_;
  }

  core::PTrackConfig cfg_;
  std::unique_ptr<Scheduler> owned_;  ///< null when borrowing
  Scheduler* borrowed_ = nullptr;
  bool caller_participates_ = true;
};

/// A trace tagged with the file it came from.
struct NamedTrace {
  std::string name;  ///< file name without directory
  imu::Trace trace;
};

/// Outcome of loading a trace directory: the traces that parsed, plus one
/// TraceError (stage Load) per file that did not.
struct TraceDirListing {
  std::vector<NamedTrace> traces;
  std::vector<TraceError> errors;
};

/// Loads every `.csv` file in `dir` (imu::load_csv format), sorted by file
/// name so batch runs are reproducible across platforms. Unreadable or
/// malformed files are collected into `errors` instead of aborting the
/// batch. Throws ptrack::Error only when the directory itself cannot be
/// read.
TraceDirListing load_trace_dir(const std::string& dir);

}  // namespace ptrack::runtime
