// Cohort-scale batch execution of the PTrack pipeline.
//
// Related wearable studies process thousands of independent wrist traces
// through one DSP front end (Urbanek et al.; Straczkiewicz et al.) — the
// workload this runner serves. Each worker thread owns a private
// core::PTrack instance (and therefore a private dsp::Workspace), traces
// are fanned out dynamically, and results come back in input order.
//
// Fault isolation: one bad trace must not abort the other ten thousand.
// Every per-trace failure — a malformed file at load time, an exception
// out of the pipeline at process time — is captured as a value
// (Expected<TrackResult, TraceError>) attributed to its trace, and the
// batch completes. Worker-thread exceptions never escape the pool.
//
// Determinism: PTrack::process is a pure function of the input trace, and
// no state is shared between workers, so the result vector is bit-identical
// regardless of thread count or scheduling (validated by
// tests/test_runtime_batch).

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/expected.hpp"
#include "core/ptrack.hpp"
#include "imu/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace ptrack::runtime {

/// One trace's failure, attributed to where it happened.
struct TraceError {
  enum class Stage {
    Load,     ///< the file could not be read or parsed
    Process,  ///< the pipeline rejected or crashed on the trace
  };
  Stage stage = Stage::Process;
  std::string trace;    ///< file name or batch index ("#7") of the trace
  std::string message;  ///< the underlying exception's message
};

[[nodiscard]] std::string_view to_string(TraceError::Stage s);

/// Per-trace outcome of a batch run.
using TraceResult = Expected<core::TrackResult, TraceError>;

struct BatchOptions {
  /// Worker threads; 0 = one per hardware thread.
  std::size_t threads = 0;
};

/// Fans independent traces across a fixed-size thread pool through the full
/// PTrack pipeline.
class BatchRunner {
 public:
  explicit BatchRunner(core::PTrackConfig cfg = {}, BatchOptions opt = {});

  [[nodiscard]] std::size_t threads() const { return pool_.size(); }
  [[nodiscard]] const core::PTrackConfig& config() const { return cfg_; }

  /// Processes every trace; results[i] corresponds to traces[i]. A trace
  /// whose processing throws yields a TraceError in its slot (stage
  /// Process, trace "#i"); the remaining traces still complete.
  std::vector<TraceResult> run(const std::vector<imu::Trace>& traces);

 private:
  core::PTrackConfig cfg_;
  ThreadPool pool_;
};

/// A trace tagged with the file it came from.
struct NamedTrace {
  std::string name;  ///< file name without directory
  imu::Trace trace;
};

/// Outcome of loading a trace directory: the traces that parsed, plus one
/// TraceError (stage Load) per file that did not.
struct TraceDirListing {
  std::vector<NamedTrace> traces;
  std::vector<TraceError> errors;
};

/// Loads every `.csv` file in `dir` (imu::load_csv format), sorted by file
/// name so batch runs are reproducible across platforms. Unreadable or
/// malformed files are collected into `errors` instead of aborting the
/// batch. Throws ptrack::Error only when the directory itself cannot be
/// read.
TraceDirListing load_trace_dir(const std::string& dir);

}  // namespace ptrack::runtime
