// ptrack_lint: allocation-discipline and convention linter for src/
// (DESIGN.md §15). A deliberately lexer-level tool — no compiler frontend,
// no build graph — so it runs in milliseconds as a ctest and a CI job and
// never needs a compilation database. It tokenizes each translation unit
// (comments and literals stripped), tracks brace scopes well enough to know
// the enclosing function of every token, and enforces five rules:
//
//   alloc       In hot-path TUs (core/stages.cpp, dsp/*.cpp,
//               imu/sample_ring.cpp, runtime/*.cpp, net/*.cpp except the
//               chaos test clients and the http/admin control plane) no
//               `new`, `make_unique`/`make_shared`
//               or container-growth call (push_back, emplace_back, resize,
//               reserve, insert, emplace, assign) may appear outside a
//               constructor body (reserved setup). Steady-state growth into
//               pre-reserved scratch is legal but must carry an explicit
//               reviewed annotation (see directives below) so every such
//               site names its amortization argument.
//   span-name   Every PTRACK_OBS_SPAN argument must be a single string
//               literal of the form ptrack.<layer>.<name> (>= 3 dot-
//               separated lowercase segments) — non-literal names defeat
//               the obs trace viewer's aggregation.
//   entry-check Every public entry point defined in core/*.cpp (top-level,
//               outside anonymous namespaces) must contain a precondition
//               guard: expects(), PTRACK_CHECK or PTRACK_CHECK_MSG.
//   header      Every header has #pragma once and no `using namespace`.
//   log-key     Every PTRACK_LOG / PTRACK_LOG_<LEVEL> call site names its
//               subsystem and event with literal snake_case strings, and
//               every kv() inside the call carries a literal snake_case
//               key — computed names defeat grep and log indexing.
//
// Suppression directives (line comments, reviewed in code review like any
// other line):
//   // ptrack-lint: allow(rule[,rule]) [reason]     this line and the next
//   // ptrack-lint: push-allow(rule) [reason]       until the matching pop
//   // ptrack-lint: pop-allow(rule)
//
// Usage: ptrack_lint <path>... [--report <file.json>] [--dump-functions]
// Exits 0 when clean, 1 when findings exist, 2 on usage/IO errors. The
// JSON report is machine-readable: {"findings":[{file,line,rule,message}],
// "files_scanned":N, "clean":bool}.

#include <algorithm>
#include <cctype>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Findings and suppression directives

struct Finding {
  std::string file;
  std::size_t line = 0;
  std::string rule;
  std::string message;
};

const std::set<std::string>& known_rules() {
  static const std::set<std::string> rules = {"alloc", "span-name",
                                             "entry-check", "header",
                                             "log-key"};
  return rules;
}

struct Directives {
  // allow(...) on line L suppresses findings on L and L+1.
  std::map<std::size_t, std::set<std::string>> allow_lines;
  // Closed push/pop ranges per rule: [push_line, pop_line].
  std::vector<std::pair<std::string, std::pair<std::size_t, std::size_t>>>
      ranges;

  bool allows(const std::string& rule, std::size_t line) const {
    for (std::size_t l : {line, line == 0 ? line : line - 1}) {
      auto it = allow_lines.find(l);
      if (it != allow_lines.end() && it->second.count(rule) != 0) return true;
    }
    for (const auto& [r, span] : ranges) {
      if (r == rule && line >= span.first && line <= span.second) return true;
    }
    return false;
  }
};

// ---------------------------------------------------------------------------
// Lexer: comments and literals stripped, preprocessor lines skipped.

enum class Tok { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  Tok kind;
  std::string text;  // literal content for kString (quotes removed)
  std::size_t line;
};

struct LexedFile {
  std::vector<Token> tokens;
  Directives directives;
  bool has_pragma_once = false;
  std::vector<Finding> directive_findings;  // malformed/unbalanced directives
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

// Parses the text of one `// ptrack-lint: ...` comment into the directive
// tables. `open` tracks currently unclosed push-allow lines per rule.
void parse_directive(const std::string& file, std::size_t line,
                     std::string_view body, LexedFile& out,
                     std::map<std::string, std::vector<std::size_t>>& open) {
  const auto fail = [&](const std::string& msg) {
    out.directive_findings.push_back({file, line, "directive", msg});
  };
  // body starts right after "ptrack-lint:"; expect <verb>(<rules>) [reason]
  std::size_t i = 0;
  while (i < body.size() && std::isspace(static_cast<unsigned char>(body[i]))) {
    ++i;
  }
  std::size_t v = i;
  while (v < body.size() && (ident_char(body[v]) || body[v] == '-')) ++v;
  const std::string verb(body.substr(i, v - i));
  if (verb != "allow" && verb != "push-allow" && verb != "pop-allow") {
    fail("unknown ptrack-lint directive '" + verb + "'");
    return;
  }
  if (v >= body.size() || body[v] != '(') {
    fail("ptrack-lint " + verb + " needs a (rule) list");
    return;
  }
  const std::size_t close = body.find(')', v);
  if (close == std::string_view::npos) {
    fail("unterminated rule list in ptrack-lint " + verb);
    return;
  }
  std::vector<std::string> rules;
  std::string cur;
  for (std::size_t k = v + 1; k < close; ++k) {
    const char c = body[k];
    if (c == ',') {
      if (!cur.empty()) rules.push_back(cur);
      cur.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) rules.push_back(cur);
  if (rules.empty()) {
    fail("empty rule list in ptrack-lint " + verb);
    return;
  }
  for (const std::string& r : rules) {
    if (known_rules().count(r) == 0) {
      fail("unknown lint rule '" + r + "'");
      continue;
    }
    if (verb == "allow") {
      out.directives.allow_lines[line].insert(r);
    } else if (verb == "push-allow") {
      open[r].push_back(line);
    } else {  // pop-allow
      auto& stack = open[r];
      if (stack.empty()) {
        fail("pop-allow(" + r + ") without a matching push-allow");
      } else {
        out.directives.ranges.push_back({r, {stack.back(), line}});
        stack.pop_back();
      }
    }
  }
}

LexedFile lex(const std::string& file, const std::string& text) {
  LexedFile out;
  std::map<std::string, std::vector<std::size_t>> open_pushes;
  std::size_t line = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();
  bool at_line_start = true;  // only whitespace so far on this line

  const auto newline = [&] {
    ++line;
    at_line_start = true;
  };

  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      newline();
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    // Preprocessor line: skip wholesale (macro bodies may have unbalanced
    // braces); remember #pragma once. Honors backslash continuations.
    if (c == '#' && at_line_start) {
      std::string pp;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') break;
        pp.push_back(text[i]);
        ++i;
      }
      std::string squashed;
      for (char pc : pp) {
        if (std::isspace(static_cast<unsigned char>(pc)) == 0) {
          squashed.push_back(pc);
        }
      }
      if (squashed == "#pragmaonce") out.has_pragma_once = true;
      continue;
    }
    at_line_start = false;
    // Comments.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      std::size_t e = i + 2;
      while (e < n && text[e] != '\n') ++e;
      std::string_view body(text.data() + i + 2, e - (i + 2));
      // Doc comments use /// — strip extra slashes before matching.
      while (!body.empty() && body.front() == '/') body.remove_prefix(1);
      std::size_t s = 0;
      while (s < body.size() &&
             std::isspace(static_cast<unsigned char>(body[s])) != 0) {
        ++s;
      }
      body.remove_prefix(s);
      constexpr std::string_view kTag = "ptrack-lint:";
      if (body.substr(0, kTag.size()) == kTag) {
        parse_directive(file, line, body.substr(kTag.size()), out,
                        open_pushes);
      }
      i = e;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    // String and char literals (escape-aware; raw strings are not used in
    // this codebase and are not handled).
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t start_line = line;
      std::string content;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          content.push_back(text[i]);
          content.push_back(text[i + 1]);
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;  // unterminated; keep line count sane
        content.push_back(text[i]);
        ++i;
      }
      if (i < n) ++i;  // closing quote
      out.tokens.push_back({quote == '"' ? Tok::kString : Tok::kChar,
                            std::move(content), start_line});
      continue;
    }
    if (ident_start(c)) {
      std::size_t e = i + 1;
      while (e < n && ident_char(text[e])) ++e;
      out.tokens.push_back({Tok::kIdent, text.substr(i, e - i), line});
      i = e;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t e = i + 1;
      while (e < n && (ident_char(text[e]) || text[e] == '.' ||
                       ((text[e] == '+' || text[e] == '-') &&
                        (text[e - 1] == 'e' || text[e - 1] == 'E')))) {
        ++e;
      }
      out.tokens.push_back({Tok::kNumber, text.substr(i, e - i), line});
      i = e;
      continue;
    }
    // Multi-char punctuation the scope tracker cares about.
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out.tokens.push_back({Tok::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out.tokens.push_back({Tok::kPunct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back({Tok::kPunct, std::string(1, c), line});
    ++i;
  }
  for (const auto& [rule, stack] : open_pushes) {
    for (std::size_t l : stack) {
      out.directive_findings.push_back(
          {file, l, "directive",
           "push-allow(" + rule + ") never closed by pop-allow"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope tracking: classify each `{` so rules know the enclosing function.

enum class ScopeKind { kPlain, kNamespace, kAnonNamespace, kType, kFunction };

struct Scope {
  ScopeKind kind;
  std::string name;       // function or namespace/type name when known
  std::size_t name_line;  // line of the defining identifier
};

bool is_control_keyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "catch" || s == "return" || s == "sizeof" || s == "alignof" ||
         s == "decltype";
}

// Finds the index of the token that opens the group closed at `close`
// (matching ')' -> '(', '}' -> '{', '>' -> '<'). Returns npos on failure.
std::size_t match_back(const std::vector<Token>& t, std::size_t close,
                       const char* open_s, const char* close_s) {
  int depth = 0;
  for (std::size_t j = close + 1; j-- > 0;) {
    if (t[j].kind != Tok::kPunct) continue;
    if (t[j].text == close_s) ++depth;
    if (t[j].text == open_s) {
      --depth;
      if (depth == 0) return j;
    }
  }
  return static_cast<std::size_t>(-1);
}

constexpr std::size_t kNpos = static_cast<std::size_t>(-1);

// Walks back from index `p` over a qualified name chain (A::B<T>::name),
// writing the dot-free qualified name. Returns the index of the first token
// of the chain, or kNpos if t[p] is not an identifier.
std::size_t name_chain_back(const std::vector<Token>& t, std::size_t p,
                            std::string* name_out) {
  if (t[p].kind != Tok::kIdent) return kNpos;
  std::string name = t[p].text;
  std::size_t first = p;
  while (first > 0 && t[first - 1].kind == Tok::kPunct &&
         t[first - 1].text == "::") {
    std::size_t q = first - 2;  // token before the ::
    if (q == kNpos) break;
    if (t[q].kind == Tok::kPunct && t[q].text == ">") {
      const std::size_t lt = match_back(t, q, "<", ">");
      if (lt == kNpos || lt == 0 || t[lt - 1].kind != Tok::kIdent) break;
      name = t[lt - 1].text + "::" + name;
      first = lt - 1;
    } else if (t[q].kind == Tok::kIdent) {
      name = t[q].text + "::" + name;
      first = q;
    } else {
      break;
    }
  }
  *name_out = name;
  return first;
}

// Classifies the `{` at token index i. A best-effort heuristic that is
// exact for this codebase's style (out-of-line methods, ctor init lists
// with parens, lambdas, trailing return types); anything unrecognized
// degrades to kPlain, which only ever relaxes the rules, never tightens.
Scope classify_brace(const std::vector<Token>& t, std::size_t i) {
  if (i == 0) return {ScopeKind::kPlain, "", t[i].line};
  std::size_t j = i - 1;

  if (t[j].kind == Tok::kIdent) {
    if (t[j].text == "namespace") {
      return {ScopeKind::kAnonNamespace, "", t[j].line};
    }
    if (j > 0 && t[j - 1].kind == Tok::kIdent &&
        t[j - 1].text == "namespace") {
      return {ScopeKind::kNamespace, t[j].text, t[j].line};
    }
    // class/struct/enum/union heading: scan back a bounded distance over
    // name, base-class list and template-argument tokens.
    for (std::size_t back = 0, k = j; back < 48 && k != kNpos; ++back, --k) {
      const Token& tk = t[k];
      if (tk.kind == Tok::kIdent) {
        if (tk.text == "class" || tk.text == "struct" ||
            tk.text == "union" || tk.text == "enum") {
          return {ScopeKind::kType, t[j].text, t[j].line};
        }
        if (tk.text == "namespace") {
          return {ScopeKind::kNamespace, t[j].text, t[j].line};
        }
      } else if (tk.kind == Tok::kPunct &&
                 (tk.text == ";" || tk.text == "}" || tk.text == "{" ||
                  tk.text == ")")) {
        break;
      }
      if (k == 0) break;
    }
    return {ScopeKind::kPlain, "", t[i].line};
  }

  // Walk back over function decorators / ctor init lists toward the
  // parameter list, resolving the function name.
  for (int hops = 0; hops < 64; ++hops) {
    if (j == kNpos) return {ScopeKind::kPlain, "", t[i].line};
    const Token& tk = t[j];
    if (tk.kind == Tok::kIdent) {
      if (tk.text == "const" || tk.text == "noexcept" ||
          tk.text == "override" || tk.text == "final" ||
          tk.text == "mutable" || tk.text == "try") {
        --j;
        continue;
      }
      // Trailing return type: scan back to the `->`.
      std::size_t k = j;
      for (std::size_t back = 0; back < 48 && k != kNpos; ++back, --k) {
        if (t[k].kind == Tok::kPunct && t[k].text == "->") {
          break;
        }
        if (t[k].kind == Tok::kPunct &&
            (t[k].text == ";" || t[k].text == "{" || t[k].text == "}")) {
          k = kNpos;
          break;
        }
        if (k == 0) k = kNpos;
      }
      if (k == kNpos || t[k].text != "->") {
        return {ScopeKind::kPlain, "", t[i].line};
      }
      j = k - 1;
      continue;
    }
    if (tk.kind != Tok::kPunct) return {ScopeKind::kPlain, "", t[i].line};
    if (tk.text == "&" || tk.text == "*" || tk.text == ">" ||
        tk.text == "<") {
      --j;
      continue;
    }
    if (tk.text == "}") {  // brace member-init in a ctor init list
      const std::size_t ob = match_back(t, j, "{", "}");
      if (ob == kNpos || ob == 0) return {ScopeKind::kPlain, "", t[i].line};
      j = ob - 1;
      // Expect the member name, then continue past the , or : below.
      std::string ignored;
      const std::size_t first = name_chain_back(t, j, &ignored);
      if (first == kNpos) return {ScopeKind::kPlain, "", t[i].line};
      j = first == 0 ? kNpos : first - 1;
      if (j != kNpos && t[j].kind == Tok::kPunct &&
          (t[j].text == ":" || t[j].text == ",")) {
        --j;
        continue;
      }
      return {ScopeKind::kPlain, "", t[i].line};
    }
    if (tk.text != ")") return {ScopeKind::kPlain, "", t[i].line};
    const std::size_t op = match_back(t, j, "(", ")");
    if (op == kNpos || op == 0) return {ScopeKind::kPlain, "", t[i].line};
    std::size_t p = op - 1;
    if (t[p].kind == Tok::kPunct && t[p].text == "]") {
      // Lambda introducer: the body belongs to the enclosing function.
      return {ScopeKind::kPlain, "", t[i].line};
    }
    if (t[p].kind == Tok::kIdent && t[p].text == "noexcept") {
      j = p - 1;
      continue;
    }
    if (t[p].kind == Tok::kIdent && is_control_keyword(t[p].text)) {
      return {ScopeKind::kPlain, "", t[i].line};
    }
    std::string name;
    std::size_t first = name_chain_back(t, p, &name);
    if (first == kNpos) return {ScopeKind::kPlain, "", t[i].line};
    // operator overloads: name_chain lands on `operator` or the symbol
    // after it; normalize to "...::operator".
    if (first > 0 && t[first - 1].kind == Tok::kIdent &&
        t[first - 1].text == "operator") {
      std::string qual;
      first = name_chain_back(t, first - 1, &qual);
      name = qual;
    }
    // Destructor: ~ right before the final name component.
    if (first > 0 && t[first - 1].kind == Tok::kPunct &&
        t[first - 1].text == "~") {
      name.insert(name.rfind(':') == std::string::npos
                      ? 0
                      : name.rfind(':') + 1,
                  "~");
      --first;
    }
    const std::size_t before = first == 0 ? kNpos : first - 1;
    if (before != kNpos && t[before].kind == Tok::kPunct &&
        (t[before].text == ":" || t[before].text == ",")) {
      // This was a ctor-init-list member; keep walking toward the real
      // parameter list.
      j = before - 1;
      continue;
    }
    return {ScopeKind::kFunction, name, t[p].line};
  }
  return {ScopeKind::kPlain, "", t[i].line};
}

bool in_anon_namespace(const std::vector<Scope>& stack) {
  return std::any_of(stack.begin(), stack.end(), [](const Scope& s) {
    return s.kind == ScopeKind::kAnonNamespace;
  });
}

const Scope* enclosing_function(const std::vector<Scope>& stack) {
  for (std::size_t k = stack.size(); k-- > 0;) {
    if (stack[k].kind == ScopeKind::kFunction) return &stack[k];
  }
  return nullptr;
}

// A::B::B and plain T (aggregate-like ctor name T::T only) — the blanket
// "reserved setup" exemption for the alloc rule.
bool is_constructor_name(const std::string& name) {
  const std::size_t pos = name.rfind("::");
  if (pos == std::string::npos) return false;
  const std::string last = name.substr(pos + 2);
  const std::string prev_rest = name.substr(0, pos);
  const std::size_t prev_pos = prev_rest.rfind("::");
  const std::string prev =
      prev_pos == std::string::npos ? prev_rest : prev_rest.substr(prev_pos + 2);
  return !last.empty() && last == prev;
}

// ---------------------------------------------------------------------------
// Rules

bool is_hot_path_tu(const std::string& generic_path) {
  const auto ends_with = [&](std::string_view suffix) {
    return generic_path.size() >= suffix.size() &&
           std::string_view(generic_path).substr(generic_path.size() -
                                                 suffix.size()) == suffix;
  };
  if (ends_with("core/stages.cpp")) return true;
  if (ends_with("imu/sample_ring.cpp")) return true;
  if (!ends_with(".cpp")) return false;
  if (generic_path.find("dsp/") != std::string::npos) return true;
  // The scheduler's steady state (submission, claiming, stealing) must be
  // allocation-free after warm-up: rings are pre-sized in constructors and
  // the only allocating paths are counted, annotated fallbacks.
  if (generic_path.find("runtime/") != std::string::npos) return true;
  // The ingest reactor's steady state must also be allocation-free. The
  // chaos test clients (blocking test support) and the HTTP admin control
  // plane (one bounded allocation burst per scrape, off the ingest path)
  // are deliberately exempt.
  return generic_path.find("net/") != std::string::npos &&
         !ends_with("net/chaos.cpp") && !ends_with("net/http.cpp") &&
         !ends_with("net/admin.cpp");
}

bool is_growth_call(const std::string& name) {
  static const std::set<std::string> kGrowth = {
      "push_back", "emplace_back", "resize",
      "reserve",   "insert",       "emplace",
      "assign"};
  return kGrowth.count(name) != 0;
}

/// Log subsystems, events and kv keys: non-empty [a-z0-9_]+.
bool valid_log_key(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (std::islower(static_cast<unsigned char>(c)) == 0 &&
        std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

bool valid_span_name(const std::string& name) {
  std::size_t segments = 0;
  std::size_t seg_len = 0;
  for (char c : name) {
    if (c == '.') {
      if (seg_len == 0) return false;
      ++segments;
      seg_len = 0;
      continue;
    }
    if ((std::islower(static_cast<unsigned char>(c)) == 0 &&
         std::isdigit(static_cast<unsigned char>(c)) == 0 && c != '_')) {
      return false;
    }
    ++seg_len;
  }
  if (seg_len == 0) return false;
  ++segments;
  return segments >= 3 && name.rfind("ptrack.", 0) == 0;
}

struct LintOptions {
  bool dump_functions = false;
};

void lint_file(const fs::path& path, const std::string& rel,
               const LintOptions& opt, std::vector<Finding>& findings,
               std::vector<Finding>& raw) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();

  const LexedFile lexed = lex(rel, text);
  for (const Finding& f : lexed.directive_findings) raw.push_back(f);

  const bool is_header = rel.size() >= 4 &&
                         rel.compare(rel.size() - 4, 4, ".hpp") == 0;
  const bool core_cpp = rel.find("core/") != std::string::npos &&
                        !is_header;
  const bool hot_tu = is_hot_path_tu(rel);
  const std::vector<Token>& t = lexed.tokens;

  // header rule -------------------------------------------------------------
  if (is_header) {
    if (!lexed.has_pragma_once) {
      raw.push_back({rel, 1, "header", "header is missing #pragma once"});
    }
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
      if (t[i].kind == Tok::kIdent && t[i].text == "using" &&
          t[i + 1].kind == Tok::kIdent && t[i + 1].text == "namespace") {
        raw.push_back({rel, t[i].line, "header",
                       "`using namespace` in a header leaks into every "
                       "includer"});
      }
    }
  }

  // Scope-tracking pass: alloc, span-name and entry-check in one sweep.
  std::vector<Scope> stack;
  struct PendingEntry {
    std::string name;
    std::size_t line;
    std::size_t depth;  // stack depth of the function scope
    bool has_check = false;
    std::size_t body_tokens = 0;
  };
  // Trivial forwarding bodies (getters, poll-style delegators) carry no
  // preconditions of their own; demanding a guard there would only breed
  // noise annotations. Anything with real logic exceeds this quickly.
  constexpr std::size_t kTrivialBodyTokens = 48;
  std::vector<PendingEntry> entries;

  for (std::size_t i = 0; i < t.size(); ++i) {
    const Token& tok = t[i];
    if (tok.kind == Tok::kPunct && tok.text == "{") {
      Scope s = classify_brace(t, i);
      stack.push_back(s);
      if (s.kind == ScopeKind::kFunction) {
        if (opt.dump_functions) {
          std::cerr << rel << ":" << s.name_line << " function " << s.name
                    << (in_anon_namespace(stack) ? " (anon)" : "") << "\n";
        }
        // entry-check: top-level named functions in core/*.cpp outside
        // anonymous namespaces. Lambdas and local helpers never reach here
        // (lambdas classify kPlain; nested types are excluded below).
        bool nested = false;
        for (std::size_t k = 0; k + 1 < stack.size(); ++k) {
          if (stack[k].kind == ScopeKind::kFunction ||
              stack[k].kind == ScopeKind::kType) {
            nested = true;
          }
        }
        if (core_cpp && !nested && !in_anon_namespace(stack) &&
            s.name.find("operator") == std::string::npos &&
            s.name.find('~') == std::string::npos) {
          entries.push_back({s.name, s.name_line, stack.size(), false});
        }
      }
      continue;
    }
    if (tok.kind == Tok::kPunct && tok.text == "}") {
      if (!stack.empty()) {
        if (!entries.empty() && entries.back().depth == stack.size() &&
            stack.back().kind == ScopeKind::kFunction) {
          const PendingEntry e = entries.back();
          entries.pop_back();
          if (!e.has_check && e.body_tokens > kTrivialBodyTokens) {
            raw.push_back({rel, e.line, "entry-check",
                           "public core entry point '" + e.name +
                               "' has no expects()/PTRACK_CHECK guard"});
          }
        }
        stack.pop_back();
      }
      continue;
    }
    if (!entries.empty()) ++entries.back().body_tokens;
    if (tok.kind != Tok::kIdent) continue;

    // entry-check satisfaction.
    if ((tok.text == "expects" || tok.text == "PTRACK_CHECK" ||
         tok.text == "PTRACK_CHECK_MSG") &&
        !entries.empty()) {
      entries.back().has_check = true;
    }

    // span-name rule.
    if (tok.text == "PTRACK_OBS_SPAN") {
      const bool open_paren = i + 1 < t.size() &&
                              t[i + 1].kind == Tok::kPunct &&
                              t[i + 1].text == "(";
      if (!open_paren) continue;  // macro definition itself
      if (i + 2 >= t.size() || t[i + 2].kind != Tok::kString) {
        raw.push_back({rel, tok.line, "span-name",
                       "PTRACK_OBS_SPAN argument must be a string literal"});
      } else if (!valid_span_name(t[i + 2].text)) {
        raw.push_back({rel, tok.line, "span-name",
                       "span name '" + t[i + 2].text +
                           "' does not match ptrack.<layer>.<name>"});
      }
    }

    // log-key rule: scoped to one PTRACK_LOG* argument list so `kv` as an
    // ordinary identifier elsewhere (the overload definitions in obs/log)
    // is never confused with a call-site key.
    if (tok.text == "PTRACK_LOG" || tok.text == "PTRACK_LOG_TRACE" ||
        tok.text == "PTRACK_LOG_DEBUG" || tok.text == "PTRACK_LOG_INFO" ||
        tok.text == "PTRACK_LOG_WARN" || tok.text == "PTRACK_LOG_ERROR") {
      const bool open_paren = i + 1 < t.size() &&
                              t[i + 1].kind == Tok::kPunct &&
                              t[i + 1].text == "(";
      if (!open_paren) continue;  // macro definition itself
      // Plain PTRACK_LOG carries the level as argument 1, pushing the
      // event to argument 2; the leveled wrappers bake the level in.
      const std::size_t event_arg = tok.text == "PTRACK_LOG" ? 2 : 1;
      std::size_t depth = 1;
      std::size_t arg_index = 0;
      bool at_arg_start = true;
      for (std::size_t j = i + 2; j < t.size() && depth > 0; ++j) {
        const Token& tj = t[j];
        if (tj.kind == Tok::kPunct) {
          if (tj.text == "(") ++depth;
          if (tj.text == ")") --depth;
          if (tj.text == "," && depth == 1) {
            ++arg_index;
            at_arg_start = true;
            continue;
          }
        }
        if (at_arg_start && depth == 1 &&
            (arg_index == 0 || arg_index == event_arg)) {
          if (tj.kind != Tok::kString || !valid_log_key(tj.text)) {
            raw.push_back(
                {rel, tok.line, "log-key",
                 std::string(arg_index == 0 ? "subsystem" : "event") +
                     " of " + tok.text +
                     " must be a literal snake_case string"});
          }
        }
        at_arg_start = false;
        if (tj.kind == Tok::kIdent && tj.text == "kv" && j + 1 < t.size() &&
            t[j + 1].kind == Tok::kPunct && t[j + 1].text == "(") {
          if (j + 2 >= t.size() || t[j + 2].kind != Tok::kString ||
              !valid_log_key(t[j + 2].text)) {
            raw.push_back({rel, t[j].line, "log-key",
                           "kv() key must be a literal snake_case string"});
          }
        }
      }
    }

    // alloc rule (hot-path TUs only).
    if (!hot_tu) continue;
    const Scope* fn = enclosing_function(stack);
    const bool in_ctor = fn != nullptr && is_constructor_name(fn->name);
    if (in_ctor) continue;  // reserved setup
    const auto flag = [&](const std::string& what) {
      raw.push_back({rel, tok.line, "alloc",
                     what + " in hot-path TU outside constructor setup" +
                         (fn != nullptr ? " (in " + fn->name + ")" : "")});
    };
    if (tok.text == "new") {
      const bool op_new = i > 0 && t[i - 1].kind == Tok::kIdent &&
                          t[i - 1].text == "operator";
      if (!op_new) flag("`new` expression");
      continue;
    }
    if (tok.text == "make_unique" || tok.text == "make_shared") {
      flag("`" + tok.text + "` call");
      continue;
    }
    if (is_growth_call(tok.text)) {
      const bool member_call =
          i > 0 && t[i - 1].kind == Tok::kPunct &&
          (t[i - 1].text == "." || t[i - 1].text == "->");
      const bool called = i + 1 < t.size() &&
                          ((t[i + 1].kind == Tok::kPunct &&
                            t[i + 1].text == "(") ||
                           (t[i + 1].kind == Tok::kPunct &&
                            t[i + 1].text == "<"));
      if (member_call && called) {
        flag("container-growth call `" + tok.text + "`");
      }
    }
  }

  // Apply suppressions.
  for (Finding& f : raw) {
    if (f.rule == "directive" || !lexed.directives.allows(f.rule, f.line)) {
      findings.push_back(std::move(f));
    }
  }
  raw.clear();
}

// ---------------------------------------------------------------------------
// Report

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_report(std::ostream& os, const std::vector<Finding>& findings,
                  std::size_t files_scanned) {
  os << "{\n  \"files_scanned\": " << files_scanned
     << ",\n  \"clean\": " << (findings.empty() ? "true" : "false")
     << ",\n  \"findings\": [";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i == 0 ? "\n" : ",\n")
       << "    {\"file\": \"" << json_escape(f.file) << "\", \"line\": "
       << f.line << ", \"rule\": \"" << json_escape(f.rule)
       << "\", \"message\": \"" << json_escape(f.message) << "\"}";
  }
  os << (findings.empty() ? "]" : "\n  ]") << "\n}\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<fs::path> roots;
  std::string report_path;
  LintOptions opt;
  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--report") {
      if (a + 1 >= argc) {
        std::cerr << "ptrack_lint: --report needs a path\n";
        return 2;
      }
      report_path = argv[++a];
    } else if (arg == "--dump-functions") {
      opt.dump_functions = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "ptrack_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.emplace_back(arg);
    }
  }
  if (roots.empty()) {
    std::cerr << "usage: ptrack_lint <path>... [--report <file.json>]\n";
    return 2;
  }

  std::vector<fs::path> files;
  for (const fs::path& root : roots) {
    std::error_code ec;
    if (fs::is_regular_file(root, ec)) {
      files.push_back(root);
      continue;
    }
    if (!fs::is_directory(root, ec)) {
      std::cerr << "ptrack_lint: no such path: " << root << "\n";
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".cpp" || ext == ".hpp") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<Finding> findings;
  std::vector<Finding> scratch;
  for (const fs::path& f : files) {
    lint_file(f, f.generic_string(), opt, findings, scratch);
  }

  for (const Finding& f : findings) {
    std::cout << f.file << ":" << f.line << ": [" << f.rule << "] "
              << f.message << "\n";
  }
  std::cout << "ptrack_lint: " << files.size() << " files, "
            << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";

  if (!report_path.empty()) {
    std::ofstream rep(report_path);
    if (!rep.is_open()) {
      std::cerr << "ptrack_lint: cannot write report to " << report_path
                << "\n";
      return 2;
    }
    write_report(rep, findings, files.size());
  }
  return findings.empty() ? 0 : 1;
}
