#include <iostream>
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "core/ptrack.hpp"
#include "imu/noise.hpp"
#include "synth/synthesizer.hpp"
using namespace ptrack;

double run_case(const std::string&, bool jit, bool cushion, bool wander,
                bool noise, bool mount, double leak) {
  Rng rng(2024);
  std::vector<double> errs;
  for (int u = 0; u < 3; ++u) {
    auto user = synth::random_user(rng);
    if (!jit) { user.step_time_jitter = 0; user.stride_jitter = 0; }
    if (!cushion) user.swing_cushion = 0;
    if (!wander) user.arm_phase_jitter = 0;
    synth::SynthOptions opt = bench::standard_options();
    if (!noise) opt.noise = imu::noiseless();
    opt.random_mount = mount;
    opt.attitude_leak = leak;
    auto r = synth::synthesize(synth::Scenario::pure_walking(60), user, opt, rng);
    core::PTrackConfig cfg;
    cfg.stride.profile = {user.arm_length, user.leg_length, 2.0};
    core::PTrack pt(cfg);
    auto res = pt.process(r.trace);
    for (auto& e : res.events) {
      if (e.stride <= 0) continue;
      double best = 1e9, bs = 0;
      for (auto& st : r.truth.steps)
        if (std::abs(st.t - e.t) < best) { best = std::abs(st.t - e.t); bs = st.stride; }
      if (best < 0.6) errs.push_back(std::abs(e.stride - bs));
    }
  }
  return errs.empty() ? -1 : stats::mean(errs) * 100;
}

int main() {
  struct C { const char* name; bool jit, cushion, wander, noise, mount; double leak; };
  const C cases[] = {
    {"all-off (clean)",      false,false,false,false,false,0.0},
    {"+step/stride jitter",  true, false,false,false,false,0.0},
    {"+cushion",             false,true, false,false,false,0.0},
    {"+wander",              false,false,true, false,false,0.0},
    {"+sensor noise",        false,false,false,true, false,0.0},
    {"+mount",               false,false,false,false,true, 0.0},
    {"+leak 0.2",            false,false,false,false,false,0.2},
    {"all-on",               true, true, true, true, true, 0.2},
  };
  for (auto& c : cases)
    std::cout << c.name << ": " << run_case(c.name,c.jit,c.cushion,c.wander,c.noise,c.mount,c.leak) << " cm\n";
}
